// Reproduces Fig. 4 and Fig. 5: vertices and edges remaining after each
// graph reduction (EnColorfulCore, ColorfulSup, EnColorfulSup), varying k.
//
// The paper plots, per dataset and per k, four series: the original size and
// the size after each reduction applied cumulatively in the MaxRFC order.
// Fig. 4 covers the five synthetic-attribute datasets; Fig. 5 is Aminer with
// real (here: correlated stand-in) attributes.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "reduction/reduce.h"

namespace fairclique {
namespace {

void RunDataset(const DatasetSpec& spec) {
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  std::printf("## %s  (|V|=%u |E|=%u)\n", spec.name.c_str(), g.num_vertices(),
              g.num_edges());
  std::printf("%-4s %12s %16s %14s %16s   %12s %16s %14s %16s\n", "k",
              "orig|V|", "EnColorfulCore", "ColorfulSup", "EnColorfulSup",
              "orig|E|", "EnColorfulCore", "ColorfulSup", "EnColorfulSup");
  for (int k : spec.k_range) {
    ReductionPipelineResult r = ReduceForFairClique(g, k, ReductionOptions{});
    FC_CHECK(r.stages.size() == 3);
    std::printf("%-4d %12u %16u %14u %16u   %12u %16u %14u %16u\n", k,
                g.num_vertices(), r.stages[0].vertices_left,
                r.stages[1].vertices_left, r.stages[2].vertices_left,
                g.num_edges(), r.stages[0].edges_left, r.stages[1].edges_left,
                r.stages[2].edges_left);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf(
      "=== Fig. 4 / Fig. 5: graph reduction comparison "
      "(EnColorfulCore vs ColorfulSup vs EnColorfulSup, vary k) ===\n\n");
  for (const DatasetSpec& spec : StandardDatasets()) {
    RunDataset(spec);
  }
  return 0;
}
