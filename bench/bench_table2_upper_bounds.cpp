// Reproduces Table II: running time (µs) of the MaxRFC algorithm equipped
// with each upper-bound configuration — ubAD alone and ubAD stacked with
// ub_degeneracy, ub_h, ub_cd, ub_ch, ub_cp — varying k (delta at its
// default) and varying delta (k at its default), per dataset.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"

namespace fairclique {
namespace {

const std::vector<ExtraBound>& Bounds() {
  static const std::vector<ExtraBound> kBounds = {
      ExtraBound::kNone,           ExtraBound::kDegeneracy,
      ExtraBound::kHIndex,         ExtraBound::kColorfulDegeneracy,
      ExtraBound::kColorfulHIndex, ExtraBound::kColorfulPath,
  };
  return kBounds;
}

void PrintHeader() {
  std::printf("%-6s", "param");
  for (ExtraBound b : Bounds()) {
    std::printf(" %12s", ExtraBoundName(b).c_str());
  }
  std::printf("  %8s\n", "|MRFC|");
}

void RunRow(const AttributedGraph& g, const char* label, int k, int delta) {
  std::printf("%-6s", label);
  size_t answer = 0;
  for (ExtraBound b : Bounds()) {
    SearchResult r = bench::TimedSearch(g, BoundedOptions(k, delta, b));
    std::printf(" %12s", bench::TimeCell(r).c_str());
    answer = std::max(answer, r.clique.size());
  }
  std::printf("  %8zu\n", answer);
}

void RunDataset(const DatasetSpec& spec) {
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  std::printf("## %s  (|V|=%u |E|=%u, defaults k=%d delta=%d)\n",
              spec.name.c_str(), g.num_vertices(), g.num_edges(),
              spec.default_k, spec.default_delta);
  std::printf("-- vary k (delta=%d), times in µs --\n", spec.default_delta);
  PrintHeader();
  char label[32];
  for (int k : spec.k_range) {
    std::snprintf(label, sizeof(label), "k=%d", k);
    RunRow(g, label, k, spec.default_delta);
  }
  std::printf("-- vary delta (k=%d), times in µs --\n", spec.default_k);
  PrintHeader();
  for (int delta = 1; delta <= 5; ++delta) {
    std::snprintf(label, sizeof(label), "d=%d", delta);
    RunRow(g, label, spec.default_k, delta);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf(
      "=== Table II: MaxRFC runtimes with different upper bounds ===\n\n");
  for (const DatasetSpec& spec : StandardDatasets()) {
    RunDataset(spec);
  }
  return 0;
}
