// Google-benchmark microbenchmarks for the library's primitives: coloring,
// core decompositions, reductions, upper bounds and heuristics. Not tied to
// a specific paper figure; used to watch for regressions in the building
// blocks the headline experiments are made of.

#include <benchmark/benchmark.h>

#include "bounds/upper_bounds.h"
#include "common/logging.h"
#include "core/heuristics.h"
#include "core/max_fair_clique.h"
#include "graph/coloring.h"
#include "graph/cores.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "reduction/colorful_core.h"
#include "reduction/colorful_support.h"
#include "reduction/support_decomposition.h"

namespace fairclique {
namespace {

AttributedGraph MakeBenchGraph(int64_t n, double avg_degree) {
  Rng rng(0xBE7C);
  AttributedGraph g =
      ChungLuPowerLaw(static_cast<VertexId>(n), avg_degree, 2.4, rng);
  return AssignAttributesBernoulli(g, 0.5, rng);
}

void BM_GreedyColoring(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    Coloring c = GreedyColoring(g);
    benchmark::DoNotOptimize(c.num_colors);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_GreedyColoring)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CoreDecomposition(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    CoreDecomposition d = ComputeCores(g);
    benchmark::DoNotOptimize(d.degeneracy);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecomposition)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ColorfulCoreDecomposition(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    ColorfulCoreDecomposition d = ComputeColorfulCores(g, c);
    benchmark::DoNotOptimize(d.colorful_degeneracy);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ColorfulCoreDecomposition)->Arg(1000)->Arg(4000);

void BM_TriangleCount(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TriangleCount)->Arg(1000)->Arg(4000);

void BM_ColorfulSupReduction(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    EdgeReductionResult r = ColorfulSupReduction(g, c, 3);
    benchmark::DoNotOptimize(r.edges_left);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ColorfulSupReduction)->Arg(1000)->Arg(4000);

void BM_EnColorfulSupReduction(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    EdgeReductionResult r = EnColorfulSupReduction(g, c, 3);
    benchmark::DoNotOptimize(r.edges_left);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_EnColorfulSupReduction)->Arg(1000)->Arg(4000);

void BM_AdvancedBound(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AdvancedBound(g, c, 2));
  }
}
BENCHMARK(BM_AdvancedBound)->Arg(1000)->Arg(4000);

void BM_ColorfulPathBound(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColorfulPathBound(g, c));
  }
}
BENCHMARK(BM_ColorfulPathBound)->Arg(1000)->Arg(4000);

void BM_SupportDecomposition(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
    benchmark::DoNotOptimize(d.max_k);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportDecomposition)->Arg(1000)->Arg(4000);

void BM_SearchVectorEngine(benchmark::State& state) {
  Rng rng(0x5EA);
  AttributedGraph g = MakeBenchGraph(state.range(0), 14.0);
  g = PlantClique(g, 16, /*balanced=*/true, rng, nullptr);
  SearchOptions opts = BoundedOptions(4, 2, ExtraBound::kColorfulDegeneracy);
  opts.engine = SearchEngine::kVector;
  for (auto _ : state) {
    SearchResult r = FindMaximumFairClique(g, opts);
    benchmark::DoNotOptimize(r.clique.size());
  }
}
BENCHMARK(BM_SearchVectorEngine)->Arg(1000)->Arg(3000);

void BM_SearchBitsetEngine(benchmark::State& state) {
  Rng rng(0x5EA);
  AttributedGraph g = MakeBenchGraph(state.range(0), 14.0);
  g = PlantClique(g, 16, /*balanced=*/true, rng, nullptr);
  SearchOptions opts = BoundedOptions(4, 2, ExtraBound::kColorfulDegeneracy);
  opts.engine = SearchEngine::kBitset;
  for (auto _ : state) {
    SearchResult r = FindMaximumFairClique(g, opts);
    benchmark::DoNotOptimize(r.clique.size());
  }
}
BENCHMARK(BM_SearchBitsetEngine)->Arg(1000)->Arg(3000);

void BM_HeurRFC(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    HeuristicResult r = HeurRFC(g, {{3, 2}, 1});
    benchmark::DoNotOptimize(r.clique.size());
  }
}
BENCHMARK(BM_HeurRFC)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace fairclique

int main(int argc, char** argv) {
  fairclique::SetLogLevel(fairclique::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
