// Google-benchmark microbenchmarks for the library's primitives: coloring,
// core decompositions, reductions, upper bounds and heuristics. Not tied to
// a specific paper figure; used to watch for regressions in the building
// blocks the headline experiments are made of.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <random>
#include <vector>

#include "bench_util.h"
#include "bounds/upper_bounds.h"
#include "common/bitset_simd.h"
#include "common/logging.h"
#include "core/heuristics.h"
#include "core/max_fair_clique.h"
#include "graph/coloring.h"
#include "graph/cores.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "reduction/colorful_core.h"
#include "reduction/colorful_support.h"
#include "reduction/support_decomposition.h"

namespace fairclique {
namespace {

AttributedGraph MakeBenchGraph(int64_t n, double avg_degree) {
  Rng rng(0xBE7C);
  AttributedGraph g =
      ChungLuPowerLaw(static_cast<VertexId>(n), avg_degree, 2.4, rng);
  return AssignAttributesBernoulli(g, 0.5, rng);
}

void BM_GreedyColoring(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    Coloring c = GreedyColoring(g);
    benchmark::DoNotOptimize(c.num_colors);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_GreedyColoring)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CoreDecomposition(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    CoreDecomposition d = ComputeCores(g);
    benchmark::DoNotOptimize(d.degeneracy);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecomposition)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ColorfulCoreDecomposition(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    ColorfulCoreDecomposition d = ComputeColorfulCores(g, c);
    benchmark::DoNotOptimize(d.colorful_degeneracy);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ColorfulCoreDecomposition)->Arg(1000)->Arg(4000);

void BM_TriangleCount(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TriangleCount)->Arg(1000)->Arg(4000);

void BM_ColorfulSupReduction(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    EdgeReductionResult r = ColorfulSupReduction(g, c, 3);
    benchmark::DoNotOptimize(r.edges_left);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ColorfulSupReduction)->Arg(1000)->Arg(4000);

void BM_EnColorfulSupReduction(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    EdgeReductionResult r = EnColorfulSupReduction(g, c, 3);
    benchmark::DoNotOptimize(r.edges_left);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_EnColorfulSupReduction)->Arg(1000)->Arg(4000);

void BM_AdvancedBound(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AdvancedBound(g, c, 2));
  }
}
BENCHMARK(BM_AdvancedBound)->Arg(1000)->Arg(4000);

void BM_ColorfulPathBound(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColorfulPathBound(g, c));
  }
}
BENCHMARK(BM_ColorfulPathBound)->Arg(1000)->Arg(4000);

void BM_SupportDecomposition(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  Coloring c = GreedyColoring(g);
  for (auto _ : state) {
    SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
    benchmark::DoNotOptimize(d.max_k);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportDecomposition)->Arg(1000)->Arg(4000);

void BM_SearchVectorEngine(benchmark::State& state) {
  Rng rng(0x5EA);
  AttributedGraph g = MakeBenchGraph(state.range(0), 14.0);
  g = PlantClique(g, 16, /*balanced=*/true, rng, nullptr);
  SearchOptions opts = BoundedOptions(4, 2, ExtraBound::kColorfulDegeneracy);
  opts.engine = SearchEngine::kVector;
  for (auto _ : state) {
    SearchResult r = FindMaximumFairClique(g, opts);
    benchmark::DoNotOptimize(r.clique.size());
  }
}
BENCHMARK(BM_SearchVectorEngine)->Arg(1000)->Arg(3000);

void BM_SearchBitsetEngine(benchmark::State& state) {
  Rng rng(0x5EA);
  AttributedGraph g = MakeBenchGraph(state.range(0), 14.0);
  g = PlantClique(g, 16, /*balanced=*/true, rng, nullptr);
  SearchOptions opts = BoundedOptions(4, 2, ExtraBound::kColorfulDegeneracy);
  opts.engine = SearchEngine::kBitset;
  for (auto _ : state) {
    SearchResult r = FindMaximumFairClique(g, opts);
    benchmark::DoNotOptimize(r.clique.size());
  }
}
BENCHMARK(BM_SearchBitsetEngine)->Arg(1000)->Arg(3000);

// ---------------------------------------------------------------------
// Bitset kernel section: the word-parallel primitives the branch engine is
// made of, timed per variant. `/scalar` pins the reference kernels;
// `/dispatched` runs whatever the CPU dispatched (avx2/neon, or scalar
// again on machines without vector ISA — compare the two to read the
// speedup). Arg is the word count per operand: 64 words = 4096 bits, one
// adjacency row of the largest component the old fixed threshold allowed.

std::vector<uint64_t> KernelWords(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

void RunKernelBench(benchmark::State& state, bool scalar,
                    void (*op)(const simd::Kernels&, uint64_t*,
                               const uint64_t*, const uint64_t*,
                               const uint64_t*, size_t)) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> a = KernelWords(n, 1);
  std::vector<uint64_t> b = KernelWords(n, 2);
  std::vector<uint64_t> mask = KernelWords(n, 3);
  std::vector<uint64_t> dst(n, 0);
  simd::SetKernelOverride(scalar ? "scalar" : nullptr);
  const simd::Kernels& k = simd::Active();
  state.SetLabel(k.name);
  for (auto _ : state) {
    op(k, dst.data(), a.data(), b.data(), mask.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  simd::SetKernelOverride(nullptr);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(n * sizeof(uint64_t)));
}

void OpIntersectDual(const simd::Kernels& k, uint64_t* dst, const uint64_t* a,
                     const uint64_t* b, const uint64_t* mask, size_t n) {
  simd::DualCount c = k.intersect_into_dual(dst, a, b, mask, n);
  benchmark::DoNotOptimize(c.total);
}

void OpIntersectCount(const simd::Kernels& k, uint64_t* dst, const uint64_t* a,
                      const uint64_t* b, const uint64_t*, size_t n) {
  uint64_t c = k.intersect_count(a, b, n);
  benchmark::DoNotOptimize(c);
  benchmark::DoNotOptimize(dst);
}

void OpAndInPlace(const simd::Kernels& k, uint64_t* dst, const uint64_t* a,
                  const uint64_t* b, const uint64_t*, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i];
  k.and_inplace(dst, b, n);
}

void BM_BitsetKernelDual_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, OpIntersectDual);
}
BENCHMARK(BM_BitsetKernelDual_Scalar)->Arg(8)->Arg(64)->Arg(512);

void BM_BitsetKernelDual_Dispatched(benchmark::State& state) {
  RunKernelBench(state, false, OpIntersectDual);
}
BENCHMARK(BM_BitsetKernelDual_Dispatched)->Arg(8)->Arg(64)->Arg(512);

void BM_BitsetKernelIntersectCount_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, OpIntersectCount);
}
BENCHMARK(BM_BitsetKernelIntersectCount_Scalar)->Arg(64)->Arg(512);

void BM_BitsetKernelIntersectCount_Dispatched(benchmark::State& state) {
  RunKernelBench(state, false, OpIntersectCount);
}
BENCHMARK(BM_BitsetKernelIntersectCount_Dispatched)->Arg(64)->Arg(512);

void BM_BitsetKernelAnd_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, OpAndInPlace);
}
BENCHMARK(BM_BitsetKernelAnd_Scalar)->Arg(64)->Arg(512);

void BM_BitsetKernelAnd_Dispatched(benchmark::State& state) {
  RunKernelBench(state, false, OpAndInPlace);
}
BENCHMARK(BM_BitsetKernelAnd_Dispatched)->Arg(64)->Arg(512);

// Self-timed kernel comparison feeding BENCH_micro.json: CI gates the
// dual-count intersection at >= 2x over scalar whenever a vector variant
// dispatched (kernel_simd_active == 1). Timed here rather than scraped
// from the google-benchmark output so the JSON stays one self-contained
// artifact.
double TimeKernelNs(const simd::Kernels& k, size_t words, int iters,
                    uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    const uint64_t* mask) {
  uint64_t sink = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    simd::DualCount c = k.intersect_into_dual(dst, a, b, mask, words);
    sink += c.total + c.in_mask;
  }
  auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

void EmitKernelMetrics() {
  constexpr size_t kWords = 64;  // one 4096-bit adjacency row
  constexpr int kIters = 400000;
  std::vector<uint64_t> a = KernelWords(kWords, 11);
  std::vector<uint64_t> b = KernelWords(kWords, 12);
  std::vector<uint64_t> mask = KernelWords(kWords, 13);
  std::vector<uint64_t> dst(kWords, 0);

  const simd::Kernels& scalar = simd::Scalar();
  const simd::Kernels& active = simd::Active();
  // Warm both paths, then take the best of three to shed scheduler noise.
  TimeKernelNs(scalar, kWords, kIters / 10, dst.data(), a.data(), b.data(),
               mask.data());
  TimeKernelNs(active, kWords, kIters / 10, dst.data(), a.data(), b.data(),
               mask.data());
  double scalar_ns = 1e30, active_ns = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    scalar_ns = std::min(
        scalar_ns, TimeKernelNs(scalar, kWords, kIters, dst.data(), a.data(),
                                b.data(), mask.data()));
    active_ns = std::min(
        active_ns, TimeKernelNs(active, kWords, kIters, dst.data(), a.data(),
                                b.data(), mask.data()));
  }
  bool simd_active = std::string(active.name) != "scalar";
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("kernel_simd_active", simd_active ? 1.0 : 0.0);
  metrics.emplace_back("dual_kernel_scalar_ns", scalar_ns);
  metrics.emplace_back("dual_kernel_dispatched_ns", active_ns);
  metrics.emplace_back("dual_kernel_speedup",
                       active_ns > 0 ? scalar_ns / active_ns : 0.0);
  bench::EmitBenchJson("micro", metrics);
  std::printf("kernel %s: dual %zu-word intersect %.1f ns scalar / %.1f ns "
              "dispatched (%.2fx)\n",
              active.name, kWords, scalar_ns, active_ns,
              scalar_ns / active_ns);
}

void BM_HeurRFC(benchmark::State& state) {
  AttributedGraph g = MakeBenchGraph(state.range(0), 12.0);
  for (auto _ : state) {
    HeuristicResult r = HeurRFC(g, {{3, 2}, 1});
    benchmark::DoNotOptimize(r.clique.size());
  }
}
BENCHMARK(BM_HeurRFC)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace fairclique

int main(int argc, char** argv) {
  fairclique::SetLogLevel(fairclique::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fairclique::EmitKernelMetrics();
  return 0;
}
