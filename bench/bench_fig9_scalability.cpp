// Reproduces Fig. 9: scalability of the three algorithm families on random
// 20%-100% vertex-induced (vary n) and edge-induced (vary m) subgraphs of
// the Flixster stand-in, at the dataset defaults (k=3, delta=3).

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "graph/generators.h"

namespace fairclique {
namespace {

void RunSeries(const AttributedGraph& g, bool vary_vertices,
               const DatasetSpec& spec) {
  std::printf("-- vary %s (k=%d delta=%d), times in µs --\n",
              vary_vertices ? "n" : "m", spec.default_k, spec.default_delta);
  std::printf("%-6s %10s %10s %14s %14s %20s\n", "frac", "|V|", "|E|",
              "MaxRFC", "MaxRFC+ub", "MaxRFC+ub+HeurRFC");
  ExtraBound best = bench::BestBoundFor(spec.name);
  for (int pct = 20; pct <= 100; pct += 20) {
    // A fixed seed per fraction keeps rows reproducible run to run.
    Rng rng(0x5CA1E + pct);
    AttributedGraph sample =
        vary_vertices ? SampleVertices(g, pct / 100.0, rng)
                      : SampleEdges(g, pct / 100.0, rng);
    SearchResult base = bench::TimedSearch(
        sample, BaselineOptions(spec.default_k, spec.default_delta));
    SearchResult ub = bench::TimedSearch(
        sample, BoundedOptions(spec.default_k, spec.default_delta, best));
    SearchResult full = bench::TimedSearch(
        sample, FullOptions(spec.default_k, spec.default_delta, best));
    std::printf("%-6d %10u %10u %14s %14s %20s\n", pct, sample.num_vertices(),
                sample.num_edges(), bench::TimeCell(base).c_str(),
                bench::TimeCell(ub).c_str(), bench::TimeCell(full).c_str());
  }
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== Fig. 9: scalability on flixster-s subsamples ===\n\n");
  DatasetSpec spec = DatasetByName("flixster-s");
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  RunSeries(g, /*vary_vertices=*/false, spec);
  std::printf("\n");
  RunSeries(g, /*vary_vertices=*/true, spec);
  return 0;
}
