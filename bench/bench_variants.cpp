// Extension bench (not a paper exhibit): cost and answer sizes across the
// fairness-model family on every stand-in dataset —
//   plain maximum clique        (no fairness; the classical baseline)
//   weak fair    (counts >= k)
//   relative fair (counts >= k, diff <= delta; the paper's model)
//   strong fair  (counts equal, >= k)
//   alternating Branch          (the paper's Algorithm 3 as printed;
//                                fast but incomplete — see DESIGN.md §2.2)
// Quantifies what each fairness constraint costs on top of the previous one
// and how often the printed branching loses optimality.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/alternating_search.h"
#include "core/fair_variants.h"
#include "core/max_clique.h"

namespace fairclique {
namespace {

void RunDataset(const DatasetSpec& spec) {
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  const int k = spec.default_k;
  const int delta = spec.default_delta;
  ExtraBound best = bench::BestBoundFor(spec.name);
  std::printf("## %s (|V|=%u |E|=%u, k=%d delta=%d)\n", spec.name.c_str(),
              g.num_vertices(), g.num_edges(), k, delta);
  std::printf("%-26s %8s %8s %8s %12s\n", "model", "size", "cnt(a)", "cnt(b)",
              "micros");

  {
    WallTimer t;
    MaxCliqueResult mc = FindMaximumClique(g, /*node_limit=*/50'000'000);
    AttrCounts cnt;
    for (VertexId v : mc.clique) cnt[g.attribute(v)]++;
    std::printf("%-26s %8zu %8lld %8lld %12lld%s\n", "maximum clique",
                mc.clique.size(), static_cast<long long>(cnt.a()),
                static_cast<long long>(cnt.b()),
                static_cast<long long>(t.ElapsedMicros()),
                mc.completed ? "" : " (INF)");
  }
  {
    SearchResult r = FindMaximumWeakFairClique(g, k, best);
    std::printf("%-26s %8zu %8lld %8lld %12lld\n", "weak fair", r.clique.size(),
                static_cast<long long>(r.clique.attr_counts.a()),
                static_cast<long long>(r.clique.attr_counts.b()),
                static_cast<long long>(r.stats.total_micros));
  }
  {
    SearchResult r = bench::TimedSearch(g, FullOptions(k, delta, best));
    std::printf("%-26s %8zu %8lld %8lld %12s\n", "relative fair",
                r.clique.size(),
                static_cast<long long>(r.clique.attr_counts.a()),
                static_cast<long long>(r.clique.attr_counts.b()),
                bench::TimeCell(r).c_str());
  }
  {
    SearchResult r = FindMaximumStrongFairClique(g, k, best);
    std::printf("%-26s %8zu %8lld %8lld %12lld\n", "strong fair",
                r.clique.size(),
                static_cast<long long>(r.clique.attr_counts.a()),
                static_cast<long long>(r.clique.attr_counts.b()),
                static_cast<long long>(r.stats.total_micros));
  }
  {
    // Run after reductions, as Algorithm 2 does. Size 0 means the printed
    // alternation + order filter could not realize any fair clique under
    // the CalColorOD order — the incompleteness DESIGN.md §2.2 analyzes,
    // observed in the wild.
    WallTimer t;
    ReductionPipelineResult reduced =
        ReduceForFairClique(g, k, ReductionOptions{});
    AlternatingSearchResult r = AlternatingMaxFairClique(
        reduced.reduced, {k, delta}, /*node_limit=*/5'000'000);
    std::printf("%-26s %8zu %8lld %8lld %12lld%s\n",
                "alternating (as printed)", r.clique.size(),
                static_cast<long long>(r.clique.attr_counts.a()),
                static_cast<long long>(r.clique.attr_counts.b()),
                static_cast<long long>(t.ElapsedMicros()),
                r.completed ? "" : " (INF)");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== Fairness-model family: sizes and costs ===\n\n");
  for (const DatasetSpec& spec : StandardDatasets()) {
    RunDataset(spec);
  }
  return 0;
}
