// bench_storage: the durable storage subsystem (src/storage).
//
// Part 1 — load formats. The same graph saved three ways (text edge list +
// attribute file, FCG1 edge-array binary, FCG2 mmap CSR container), loaded
// back repeatedly (best of N to shed fs-cache noise):
//   - text parse tokenizes, normalizes and sorts everything;
//   - FCG1 skips tokenizing but still rebuilds the CSR arrays;
//   - FCG2 is mmap + checksum verify + zero-copy adopt.
//
// Part 2 — kill/recover. A StorageManager-backed service persists a graph,
// streams WAL-logged update batches (left uncompacted), serves and persists
// a verified answer — then everything is dropped without any shutdown
// handshake (exactly what SIGKILL leaves behind: the fsync'd files) and the
// clock runs on Open + RecoverAll + warm-cache restore until the same
// query is served warm again.
//
// Part 3 — concurrent update throughput. 8 writer threads stream update
// batches into ONE graph's WAL twice: once with fsync-per-batch (the
// single-writer fallback: every record pays its own open+write+fsync+close,
// and the chain ordering serializes them) and once with group commit
// (records enqueue in chain order under the ordering lock, then wait
// outside it, so a leader fsyncs many batches at once). Both runs end with
// a SIGKILL-style drop + RecoverAll proving every acknowledged batch
// survived at its exact fingerprint.
//
// Asserts (exit non-zero otherwise):
//   - all three formats load the same graph (fingerprint-checked for the
//     binary formats);
//   - mmap-CSR (FCG2) load is >= 5x faster than the text parse;
//   - the recovered service serves the identical verified clique at the
//     identical epoch, from cache (no search);
//   - group commit sustains >= 3x the fsync-per-batch update throughput,
//     with kill/recover equivalence holding in both modes.
//
// Env: FAIRCLIQUE_BENCH_SCALE, FAIRCLIQUE_BENCH_TIMEOUT,
// FAIRCLIQUE_BENCH_JSON_DIR (BENCH_storage.json).

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/fairclique.h"

namespace fairclique {
namespace {

using bench::BenchScale;
using bench::BenchTimeout;
using bench::BestBoundFor;

bool Check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

/// Best-of-reps wall time of `fn` in milliseconds.
template <typename Fn>
double BestMs(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    double ms = timer.ElapsedMicros() / 1000.0;
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

/// Outcome of one Part-3 run (one WAL-append mode).
struct UpdateRunResult {
  double updates_per_sec = 0.0;
  uint64_t acked_batches = 0;
  uint64_t group_commits = 0;  // fsync groups issued (== batches when serial)
  bool ok = false;
};

/// Streams `writers x batches_per_writer` single-op update batches into one
/// graph's WAL with `group_commit` on or off, timing the durable-ack
/// throughput; then drops the manager SIGKILL-style (no Replace — the WAL
/// is the only durability) and proves RecoverAll rebuilds exactly the last
/// acknowledged fingerprint with every acknowledged batch replayed.
UpdateRunResult RunConcurrentUpdates(const std::string& data_dir,
                                     bool group_commit, int writers,
                                     int batches_per_writer,
                                     int64_t group_window_micros) {
  UpdateRunResult out;
  // A small, SIZE-STABLE graph keeps DynamicGraph::Apply (full snapshot +
  // fingerprint per batch, O(n+m)) far below fsync cost, so the WAL path is
  // what is measured: each writer toggles its own dedicated non-edge
  // (add, remove, add, ...) instead of growing the graph.
  Rng rng(0xBEEF);
  AttributedGraph base =
      AssignAttributesBernoulli(ErdosRenyi(32, 0.1, rng), 0.5, rng);
  std::vector<Edge> toggles =
      SampleNonEdges(base, static_cast<size_t>(writers), rng);
  if (toggles.size() != static_cast<size_t>(writers)) return out;

  std::mutex order_mu;   // holds (Apply, AppendUpdateAsync) pairs together
  std::mutex ack_mu;
  std::map<uint64_t, uint64_t> acked;  // version -> fingerprint
  std::atomic<int> errors{0};
  double elapsed_seconds = 0.0;
  uint64_t group_commits = 0;

  {
    storage::StorageManager::Options options;
    options.wal_compaction_threshold = 1u << 20;  // keep the WAL whole
    options.group_commit = group_commit;
    options.group_window_micros = group_window_micros;
    std::unique_ptr<storage::StorageManager> manager;
    if (!storage::StorageManager::Open(data_dir, options, &manager).ok()) {
      return out;
    }
    if (!manager
             ->PersistGraph("hot", base, 0, GraphFingerprint(base), "bench")
             .ok()) {
      return out;
    }
    DynamicGraph dyn(base);

    WallTimer timer;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        const Edge toggle = toggles[static_cast<size_t>(w)];
        for (int b = 0; b < batches_per_writer; ++b) {
          std::vector<UpdateOp> batch = {
              b % 2 == 0 ? AddEdgeOp(toggle.u, toggle.v)
                         : RemoveEdgeOp(toggle.u, toggle.v)};
          UpdateSummary summary;
          storage::StorageManager::AppendTicket ticket;
          Status status;
          {
            std::lock_guard<std::mutex> lock(order_mu);
            status = dyn.Apply(batch, &summary);
            if (status.ok()) {
              status =
                  manager->AppendUpdateAsync("hot", summary, batch, &ticket);
            }
          }
          if (status.ok()) status = ticket.Wait();  // durability ack
          if (!status.ok()) {
            errors.fetch_add(1);
            return;
          }
          std::lock_guard<std::mutex> lock(ack_mu);
          acked[summary.version] = summary.fingerprint;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    elapsed_seconds = timer.ElapsedSeconds();
    storage::StorageCounters counters = manager->counters();
    group_commits = group_commit ? counters.wal_group_commits
                                 : counters.wal_records_appended;
    // SIGKILL: scope exit, no OnReplace, no handshake.
  }

  if (errors.load() != 0 || acked.empty()) return out;
  std::unique_ptr<storage::StorageManager> reopened;
  if (!storage::StorageManager::Open(
           data_dir, storage::StorageManager::Options{}, &reopened)
           .ok()) {
    return out;
  }
  std::vector<storage::RecoveredGraph> recovered;
  if (!reopened->RecoverAll(&recovered).ok() || recovered.size() != 1) {
    return out;
  }
  const auto [last_version, last_fp] = *acked.rbegin();
  if (recovered[0].version != last_version ||
      recovered[0].fingerprint != last_fp ||
      recovered[0].wal_records_replayed != acked.size() ||
      GraphFingerprint(*recovered[0].graph) != last_fp) {
    std::fprintf(stderr,
                 "FAIL: recovery after %s run lost acknowledged batches "
                 "(recovered v%llu, acked v%llu)\n",
                 group_commit ? "group-commit" : "fsync-per-batch",
                 static_cast<unsigned long long>(recovered[0].version),
                 static_cast<unsigned long long>(last_version));
    return out;
  }

  out.acked_batches = acked.size();
  out.group_commits = group_commits;
  out.updates_per_sec =
      elapsed_seconds > 0 ? static_cast<double>(acked.size()) / elapsed_seconds
                          : 0.0;
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  const std::string dataset = "dblp-s";
  const int kLoadReps = 5;
  SearchOptions options = FullOptions(3, 1, BestBoundFor(dataset));
  options.time_limit_seconds = BenchTimeout();

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("fairclique_bench_storage_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto path = [&dir](const std::string& name) {
    return (dir / name).string();
  };

  AttributedGraph g = LoadDataset(dataset, BenchScale());
  const uint64_t fp = GraphFingerprint(g);
  std::printf("bench_storage: %s (%u vertices, %u edges)\n", dataset.c_str(),
              g.num_vertices(), g.num_edges());

  bool ok = true;

  // ---- Part 1: text vs FCG1 vs mmap-CSR FCG2 load. -----------------------
  ok &= Check(SaveEdgeList(g, path("g.txt")).ok() &&
                  SaveAttributes(g, path("g.attrs")).ok() &&
                  SaveBinaryGraph(g, path("g.fcg")).ok() &&
                  storage::SaveFcg2(g, path("g.fcg2")).ok(),
              "saving the three formats failed");

  EdgeListOptions text_options;
  text_options.remap_ids = false;  // keep labels identical to the saver's
  AttributedGraph text_loaded, fcg1_loaded, fcg2_loaded;
  double text_ms = BestMs(kLoadReps, [&] {
    ok &= LoadAttributedGraph(path("g.txt"), path("g.attrs"), text_options,
                              &text_loaded)
              .ok();
  });
  double fcg1_ms = BestMs(kLoadReps, [&] {
    ok &= LoadBinaryGraph(path("g.fcg"), &fcg1_loaded).ok();
  });
  double fcg2_ms = BestMs(kLoadReps, [&] {
    ok &= storage::LoadFcg2(path("g.fcg2"), &fcg2_loaded).ok();
  });
  ok &= Check(ok, "a load failed");
  ok &= Check(text_loaded.num_vertices() == g.num_vertices() &&
                  text_loaded.num_edges() == g.num_edges(),
              "text round trip changed the graph");
  ok &= Check(GraphFingerprint(fcg1_loaded) == fp,
              "FCG1 round trip changed the fingerprint");
  ok &= Check(GraphFingerprint(fcg2_loaded) == fp,
              "FCG2 round trip changed the fingerprint");

  double fcg1_speedup = fcg1_ms > 0 ? text_ms / fcg1_ms : 0.0;
  double fcg2_speedup = fcg2_ms > 0 ? text_ms / fcg2_ms : 0.0;
  std::printf("  load: text %.2f ms | FCG1 %.2f ms (%.1fx) | FCG2 mmap %.3f "
              "ms (%.1fx)\n",
              text_ms, fcg1_ms, fcg1_speedup, fcg2_ms, fcg2_speedup);
  ok &= Check(fcg2_speedup >= 5.0, "FCG2 mmap load < 5x faster than text");

  // ---- Part 2: kill/recover. ---------------------------------------------
  const std::string data_dir = path("data");
  const int kBatches = 6;
  const size_t kOpsPerBatch = 4;
  size_t clique_before = 0;
  std::vector<VertexId> witness_before;
  uint64_t version_before = 0;

  {
    std::unique_ptr<storage::StorageManager> manager;
    storage::StorageManager::Options sopts;
    sopts.wal_compaction_threshold = 1000;  // keep the tail uncompacted
    ok &= Check(
        storage::StorageManager::Open(data_dir, sopts, &manager).ok(),
        "storage open failed");

    GraphRegistry registry;
    ResultCache cache(128);
    registry.AttachCache(&cache);
    registry.AttachStorage(manager.get());
    QueryExecutor executor(ExecutorOptions{1, 64}, &cache);
    ok &= Check(registry.Add(dataset, g, "dataset:" + dataset).ok(),
                "registry add failed");

    DynamicGraph dyn(*registry.Get(dataset)->graph);
    Rng rng(20260728);
    for (int b = 0; b < kBatches; ++b) {
      std::vector<UpdateOp> batch;
      for (const Edge& e : SampleNonEdges(*dyn.snapshot(), kOpsPerBatch, rng)) {
        batch.push_back(AddEdgeOp(e.u, e.v));
      }
      UpdateSummary summary;
      ok &= Check(dyn.Apply(batch, &summary).ok(), "apply failed");
      ok &= Check(manager->AppendUpdate(dataset, summary, batch).ok(),
                  "WAL append failed");
      ok &= Check(registry.Replace(dataset, dyn.snapshot(), summary.version,
                                   &summary)
                      .ok(),
                  "replace failed");
    }
    version_before = registry.Get(dataset)->version;

    QueryRequest request;
    request.graph = registry.Get(dataset);
    request.options = options;
    QueryResponse response = executor.Run(request);
    ok &= Check(response.status.ok() && response.result != nullptr,
                "pre-crash query failed");
    if (response.result != nullptr) {
      clique_before = response.result->clique.size();
      witness_before = response.result->clique.vertices;
    }
    ok &= Check(manager->SaveWarmEntries(cache.ExportWarmEntries()).ok(),
                "warm save failed");
    // No shutdown handshake happens here on purpose: every durable write
    // already fsync'd, which is exactly the state a SIGKILL leaves.
  }

  WallTimer recover_timer;
  size_t clique_after = 0;
  bool served_from_cache = false;
  uint64_t version_after = 0;
  uint64_t wal_replayed = 0;
  {
    std::unique_ptr<storage::StorageManager> manager;
    ok &= Check(storage::StorageManager::Open(
                    data_dir, storage::StorageManager::Options{}, &manager)
                    .ok(),
                "storage reopen failed");
    std::vector<storage::RecoveredGraph> recovered;
    ok &= Check(manager->RecoverAll(&recovered).ok() && recovered.size() == 1,
                "recover failed");

    GraphRegistry registry;
    ResultCache cache(128);
    registry.AttachCache(&cache);
    QueryExecutor executor(ExecutorOptions{1, 64}, &cache);
    for (storage::RecoveredGraph& r : recovered) {
      wal_replayed += r.wal_records_replayed;
      ok &= Check(registry.Restore(r.name, r.graph, r.version, r.source).ok(),
                  "registry restore failed");
    }
    std::vector<storage::WarmEntry> warm;
    ok &= Check(manager->LoadWarmEntries(&warm).ok(), "warm load failed");
    WarmRestoreOutcome warm_outcome =
        RestoreWarmEntries(registry, &cache, std::move(warm));
    ok &= Check(warm_outcome.restored > 0, "no warm entries restored");

    QueryRequest request;
    request.graph = registry.Get(dataset);
    request.options = options;
    QueryResponse response = executor.Run(request);
    ok &= Check(response.status.ok() && response.result != nullptr,
                "post-recovery query failed");
    if (response.result != nullptr) {
      clique_after = response.result->clique.size();
      served_from_cache = response.cache_hit;
      ok &= Check(response.result->clique.vertices == witness_before,
                  "recovered witness differs from pre-crash answer");
      ok &= Check(VerifyFairClique(*registry.Get(dataset)->graph,
                                   response.result->clique.vertices,
                                   options.params)
                      .ok(),
                  "recovered clique failed verification");
    }
    version_after = registry.Get(dataset)->version;
  }
  double recover_ms = recover_timer.ElapsedMicros() / 1000.0;

  // ---- Part 3: concurrent updates, group commit vs fsync-per-batch. ------
  const int kWriters = 8;
  const int kBatchesPerWriter = 40;
  UpdateRunResult serial =
      RunConcurrentUpdates(path("upd-serial"), /*group_commit=*/false,
                           kWriters, kBatchesPerWriter, 0);
  // Window the leader at ~half the measured per-batch fsync cost: enough
  // for all writers to join the group on disks where the fsync is the
  // bottleneck, negligible where it is not (tmpfs-style fsyncs).
  int64_t window_micros = 0;
  if (serial.ok && serial.updates_per_sec > 0) {
    window_micros = static_cast<int64_t>(
        std::min(500.0, 0.5 * 1e6 / serial.updates_per_sec));
  }
  UpdateRunResult grouped =
      RunConcurrentUpdates(path("upd-group"), /*group_commit=*/true, kWriters,
                           kBatchesPerWriter, window_micros);
  ok &= Check(serial.ok, "fsync-per-batch run failed kill/recover proof");
  ok &= Check(grouped.ok, "group-commit run failed kill/recover proof");
  double group_speedup = serial.updates_per_sec > 0
                             ? grouped.updates_per_sec / serial.updates_per_sec
                             : 0.0;
  double batches_per_fsync =
      grouped.group_commits > 0
          ? static_cast<double>(grouped.acked_batches) /
                static_cast<double>(grouped.group_commits)
          : 0.0;
  std::printf(
      "  updates (%d writers, one graph): fsync-per-batch %.0f/s (%llu "
      "fsyncs) | group commit %.0f/s (%llu fsyncs, %.1f batches/fsync, "
      "window %lld us) -> %.1fx\n",
      kWriters, serial.updates_per_sec,
      static_cast<unsigned long long>(serial.group_commits),
      grouped.updates_per_sec,
      static_cast<unsigned long long>(grouped.group_commits),
      batches_per_fsync, static_cast<long long>(window_micros),
      group_speedup);
  ok &= Check(group_speedup >= 3.0,
              "group commit < 3x faster than fsync-per-batch");

  ok &= Check(clique_after == clique_before && clique_before > 0,
              "answer size changed across recovery");
  ok &= Check(served_from_cache, "recovered answer was not served warm");
  ok &= Check(version_after == version_before,
              "epoch changed across recovery");
  ok &= Check(wal_replayed == static_cast<uint64_t>(kBatches),
              "WAL tail not fully replayed");
  std::printf(
      "  kill/recover: %.2f ms to reopen + replay %llu WAL batches + serve "
      "the same verified size-%zu answer warm at epoch %llu\n",
      recover_ms, static_cast<unsigned long long>(wal_replayed), clique_after,
      static_cast<unsigned long long>(version_after));

  bench::EmitBenchJson(
      "storage",
      {{"text_load_ms", text_ms},
       {"fcg1_load_ms", fcg1_ms},
       {"fcg2_load_ms", fcg2_ms},
       {"fcg1_vs_text_speedup", fcg1_speedup},
       {"fcg2_vs_text_speedup", fcg2_speedup},
       {"recover_ms", recover_ms},
       {"wal_records_replayed", static_cast<double>(wal_replayed)},
       {"serial_updates_per_sec", serial.updates_per_sec},
       {"group_updates_per_sec", grouped.updates_per_sec},
       {"group_commit_speedup", group_speedup},
       {"group_batches_per_fsync", batches_per_fsync}});

  std::filesystem::remove_all(dir);
  std::printf("\nmmap-CSR vs text parse: %.1fx (need >= 5x)\n", fcg2_speedup);
  std::printf("group-commit vs fsync-per-batch: %.1fx (need >= 3x)\n",
              group_speedup);
  std::printf("recovery equivalence verified: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
