// bench_dynamic: the dynamic-graph subsystem (src/dynamic) against the
// evict+reload baseline it replaces.
//
// Measures, on the dblp-s stand-in:
//   - update throughput: Apply+Replace ops/second for streamed edge batches;
//   - re-query latency after a small insert-only batch (cache migration
//     hands the executor an exact_chain warm hint; the incremental re-query
//     searches only the added edges' neighborhoods);
//   - re-query latency after a large insert-only batch (too many outstanding
//     edges — falls back to a warm-started full search);
//   - the old workflow: evict + reload from scratch + cold search.
//
// Asserts (exit non-zero otherwise):
//   - every re-query answer equals a from-scratch sequential search on the
//     updated snapshot;
//   - small-batch re-query is >= 5x faster than evict+reload+cold-search.
//
// Env: FAIRCLIQUE_BENCH_SCALE, FAIRCLIQUE_BENCH_TIMEOUT,
// FAIRCLIQUE_BENCH_JSON_DIR (BENCH_dynamic.json).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "datasets/datasets.h"
#include "dynamic/dynamic_graph.h"
#include "graph/generators.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"

namespace fairclique {
namespace {

using bench::BenchScale;
using bench::BenchTimeout;
using bench::BestBoundFor;

/// Samples `count` distinct non-edges of the current dynamic graph as an
/// insert-only batch.
std::vector<UpdateOp> RandomInsertBatch(const DynamicGraph& dyn, size_t count,
                                        Rng& rng) {
  std::vector<UpdateOp> batch;
  for (const Edge& e : SampleNonEdges(*dyn.snapshot(), count, rng)) {
    batch.push_back(AddEdgeOp(e.u, e.v));
  }
  return batch;
}

bool Check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  const std::string dataset = "dblp-s";
  SearchOptions options = FullOptions(3, 1, BestBoundFor(dataset));
  options.time_limit_seconds = BenchTimeout();

  GraphRegistry registry;
  ResultCache cache(256);
  registry.AttachCache(&cache);
  QueryExecutor executor(ExecutorOptions{1, 64}, &cache);

  AttributedGraph base = LoadDataset(dataset, BenchScale());
  std::printf("bench_dynamic: %s (%u vertices, %u edges)\n", dataset.c_str(),
              base.num_vertices(), base.num_edges());
  Status status = registry.Add(dataset, std::move(base), "dataset:" + dataset);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  auto run_query = [&](bool bypass) {
    QueryRequest request;
    request.graph = registry.Get(dataset);
    request.options = options;
    request.bypass_cache = bypass;
    return executor.Run(request);
  };

  bool ok = true;

  // Cold search cost (and cache fill for the dynamic epochs below).
  WallTimer cold_timer;
  QueryResponse cold = run_query(/*bypass=*/true);
  double cold_ms = cold_timer.ElapsedMicros() / 1000.0;
  ok &= Check(cold.status.ok() && cold.result != nullptr, "cold query failed");
  size_t base_size = cold.result != nullptr ? cold.result->clique.size() : 0;
  std::printf("  cold search: size %zu in %.2f ms\n", base_size, cold_ms);

  // Old workflow: evict (drops cached results), reload from scratch, cold
  // search. This is what an update used to cost.
  WallTimer reload_timer;
  registry.Evict(dataset);
  status = registry.Add(dataset, LoadDataset(dataset, BenchScale()),
                        "dataset:" + dataset);
  QueryResponse reload = run_query(/*bypass=*/false);
  double reload_ms = reload_timer.ElapsedMicros() / 1000.0;
  ok &= Check(status.ok() && reload.status.ok() && !reload.cache_hit,
              "reload path failed");
  std::printf("  evict+reload+cold search: %.2f ms\n", reload_ms);

  // The cache now holds the exact answer for the current fingerprint.
  DynamicGraph dyn(*registry.Get(dataset)->graph);
  Rng rng(20260728);

  // --- Small insert-only batch: Apply + Replace + re-query. -------------
  const size_t kSmallBatch = 8;
  std::vector<UpdateOp> small = RandomInsertBatch(dyn, kSmallBatch, rng);
  WallTimer small_timer;
  UpdateSummary summary;
  ok &= Check(dyn.Apply(small, &summary).ok(), "small Apply failed");
  ok &= Check(
      registry.Replace(dataset, dyn.snapshot(), summary.version, &summary)
          .ok(),
      "small Replace failed");
  QueryResponse small_requery = run_query(/*bypass=*/false);
  double small_ms = small_timer.ElapsedMicros() / 1000.0;
  ok &= Check(small_requery.status.ok(), "small re-query failed");
  ok &= Check(small_requery.incremental || small_requery.cache_hit,
              "small re-query did not use the migrated cache");
  SearchResult small_truth = FindMaximumFairClique(*dyn.snapshot(), options);
  ok &= Check(small_requery.result != nullptr &&
                  small_requery.result->clique.size() ==
                      small_truth.clique.size(),
              "small re-query size != from-scratch search");
  std::printf(
      "  +%zu edges: apply+replace+re-query %.2f ms (incremental=%d, "
      "size %zu)\n",
      kSmallBatch, small_ms, small_requery.incremental ? 1 : 0,
      small_requery.result != nullptr ? small_requery.result->clique.size()
                                      : 0);

  // --- Large insert-only batch: falls back to warm-started full search. --
  const size_t kLargeBatch = 2000;
  std::vector<UpdateOp> large = RandomInsertBatch(dyn, kLargeBatch, rng);
  WallTimer large_timer;
  ok &= Check(dyn.Apply(large, &summary).ok(), "large Apply failed");
  ok &= Check(
      registry.Replace(dataset, dyn.snapshot(), summary.version, &summary)
          .ok(),
      "large Replace failed");
  QueryResponse large_requery = run_query(/*bypass=*/false);
  double large_ms = large_timer.ElapsedMicros() / 1000.0;
  ok &= Check(large_requery.status.ok(), "large re-query failed");
  SearchResult large_truth = FindMaximumFairClique(*dyn.snapshot(), options);
  ok &= Check(large_requery.result != nullptr &&
                  large_requery.result->clique.size() ==
                      large_truth.clique.size(),
              "large re-query size != from-scratch search");
  std::printf(
      "  +%zu edges: apply+replace+re-query %.2f ms (warm_start=%d, "
      "size %zu)\n",
      kLargeBatch, large_ms, large_requery.warm_start ? 1 : 0,
      large_requery.result != nullptr ? large_requery.result->clique.size()
                                      : 0);

  // --- Update throughput: streamed batches of mixed inserts. -------------
  const int kStreamBatches = 40;
  const size_t kStreamOps = 10;
  WallTimer stream_timer;
  for (int i = 0; i < kStreamBatches; ++i) {
    std::vector<UpdateOp> batch = RandomInsertBatch(dyn, kStreamOps, rng);
    UpdateSummary s;
    if (!dyn.Apply(batch, &s).ok() ||
        !registry.Replace(dataset, dyn.snapshot(), s.version, &s).ok()) {
      ok = false;
      break;
    }
  }
  double stream_seconds = stream_timer.ElapsedSeconds();
  double updates_per_s =
      stream_seconds > 0
          ? static_cast<double>(kStreamBatches * kStreamOps) / stream_seconds
          : 0.0;
  std::printf("  update stream: %.0f updates/s (%d batches of %zu)\n",
              updates_per_s, kStreamBatches, kStreamOps);

  double speedup = small_ms > 0 ? reload_ms / small_ms : 0.0;
  std::printf("\nsmall-batch re-query vs evict+reload: %.1fx (need >= 5x)\n",
              speedup);
  ok &= Check(speedup >= 5.0, "re-query speedup < 5x");

  bench::EmitBenchJson(
      "dynamic",
      {{"cold_ms", cold_ms},
       {"reload_ms", reload_ms},
       {"small_requery_ms", small_ms},
       {"large_requery_ms", large_ms},
       {"updates_per_s", updates_per_s},
       {"small_speedup_vs_reload", speedup}});
  std::printf("verified equal to from-scratch search: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
