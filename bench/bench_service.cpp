// bench_service: throughput of the concurrent query service (src/service)
// on a dataset graph, cold (every query searches) vs. cached (repeat
// queries hit the LRU), at 1/4/8 executor workers — plus the staged-plan
// win: a delta/bound sweep on one (graph, k) through the PreparedGraphCache
// reduces once instead of per query.
//
// Also differentially checks the service against the library: every
// response size must equal the sequential FindMaximumFairClique answer for
// the same options. Exits non-zero when sizes mismatch, when the
// result-cached speedup falls below 10x, or when the prepared-plan
// delta-sweep speedup falls below 3x, so CI can assert both serving wins.
//
// Emits BENCH_service.json with throughput plus p50/p95/p99/mean latency
// for the three serving tiers: cold (reduce + branch), prepared-cache hit
// (branch only), result-cache hit (lookup only).
//
// Env: FAIRCLIQUE_BENCH_SCALE (dataset scale), FAIRCLIQUE_BENCH_TIMEOUT
// (per-search budget, default 5 s).

#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bitset_simd.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "core/prepared_graph.h"
#include "datasets/datasets.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "service/graph_registry.h"
#include "service/prepared_graph_cache.h"
#include "service/query_executor.h"
#include "service/result_cache.h"

namespace fairclique {
namespace {

using bench::AppendLatencyMetrics;
using bench::BenchScale;
using bench::BenchTimeout;
using bench::ComputePercentiles;
using bench::LatencyPercentiles;

struct QuerySpec {
  std::string label;
  SearchOptions options;
};

std::vector<QuerySpec> QueryMix() {
  std::vector<QuerySpec> mix;
  auto add = [&mix](std::string label, SearchOptions options) {
    options.time_limit_seconds = BenchTimeout();
    mix.push_back({std::move(label), options});
  };
  add("baseline k=2 d=2", BaselineOptions(2, 2));
  add("baseline k=3 d=1", BaselineOptions(3, 1));
  add("bounded  k=3 d=2", BoundedOptions(3, 2, ExtraBound::kColorfulPath));
  add("bounded  k=4 d=2", BoundedOptions(4, 2, ExtraBound::kColorfulDegeneracy));
  add("full     k=3 d=1", FullOptions(3, 1, ExtraBound::kColorfulPath));
  add("full     k=4 d=3", FullOptions(4, 3, ExtraBound::kColorfulPath));
  return mix;
}

/// The delta-sweep workload: >= 8 distinct delta/bound option sets on one
/// (graph, k), so every query shares a single PreparedGraph. Same shape as
/// a user exploring the fairness/size trade-off on a fixed population.
std::vector<QuerySpec> DeltaSweepMix() {
  std::vector<QuerySpec> mix;
  auto add = [&mix](std::string label, SearchOptions options) {
    options.time_limit_seconds = BenchTimeout();
    mix.push_back({std::move(label), options});
  };
  for (int delta = 0; delta <= 4; ++delta) {
    add("bounded k=3 d=" + std::to_string(delta) + " cp",
        BoundedOptions(3, delta, ExtraBound::kColorfulPath));
  }
  add("bounded k=3 d=2 cd", BoundedOptions(3, 2, ExtraBound::kColorfulDegeneracy));
  add("baseline k=3 d=3", BaselineOptions(3, 3));
  add("full k=3 d=1 cp", FullOptions(3, 1, ExtraBound::kColorfulPath));
  return mix;
}

/// Submits `rounds` copies of the mix and returns queries/second; appends
/// each response's run_micros to `latencies_us` when non-null.
double RunRounds(QueryExecutor& executor,
                 const std::shared_ptr<const RegisteredGraph>& graph,
                 const std::vector<QuerySpec>& mix, int rounds,
                 bool bypass_cache,
                 const std::vector<size_t>& expected_sizes,
                 bool* sizes_match,
                 std::vector<double>* latencies_us = nullptr) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(mix.size() * static_cast<size_t>(rounds));
  WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    for (const QuerySpec& spec : mix) {
      QueryRequest request;
      request.graph = graph;
      request.options = spec.options;
      request.bypass_cache = bypass_cache;
      futures.push_back(executor.Submit(std::move(request)));
    }
  }
  size_t i = 0;
  for (auto& future : futures) {
    QueryResponse response = future.get();
    const size_t expected = expected_sizes[i++ % mix.size()];
    if (!response.status.ok() || response.result == nullptr ||
        response.result->clique.size() != expected) {
      *sizes_match = false;
    }
    // The latency collector feeds the "result-cache-hit" tier: guard on
    // cache_hit so a stray miss (eviction, race) cannot put a
    // millisecond-scale full search into a microsecond-scale tail.
    if (latencies_us != nullptr && response.status.ok() &&
        response.cache_hit) {
      latencies_us->push_back(static_cast<double>(response.run_micros));
    }
  }
  double seconds = timer.ElapsedSeconds();
  return seconds > 0 ? static_cast<double>(futures.size()) / seconds : 0.0;
}

/// Runs the sweep synchronously (one executor.Run per spec), verifying each
/// answer against `expected_sizes`; returns total micros and collects
/// per-query latencies. With `hit_latencies_only` the query that cold-built
/// the plan stays out of the sample: it is a build, and one build among 8
/// samples would otherwise BE the reported p95/p99 of the "hit" tier.
int64_t RunSweep(QueryExecutor& executor,
                 const std::shared_ptr<const RegisteredGraph>& graph,
                 const std::vector<QuerySpec>& mix, bool fully_cold,
                 const std::vector<size_t>& expected_sizes, bool* sizes_match,
                 std::vector<double>* latencies_us, bool hit_latencies_only,
                 size_t* prepared_hits) {
  WallTimer timer;
  for (size_t i = 0; i < mix.size(); ++i) {
    QueryRequest request;
    request.graph = graph;
    request.options = mix[i].options;
    request.bypass_cache = true;  // measure the Branch stage, not the LRU
    request.bypass_prepared_cache = fully_cold;
    QueryResponse response = executor.Run(request);
    if (!response.status.ok() || response.result == nullptr ||
        response.result->clique.size() != expected_sizes[i]) {
      *sizes_match = false;
    }
    if (latencies_us != nullptr && response.status.ok() &&
        (!hit_latencies_only || response.prepared_hit)) {
      latencies_us->push_back(static_cast<double>(response.run_micros));
    }
    if (prepared_hits != nullptr && response.prepared_hit) ++*prepared_hits;
  }
  return timer.ElapsedMicros();
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  const std::string dataset = "dblp-s";
  GraphRegistry registry;
  Status status = registry.Add(dataset, LoadDataset(dataset, BenchScale()),
                               "dataset:" + dataset);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto graph = registry.Get(dataset);
  std::vector<QuerySpec> mix = QueryMix();

  std::printf("bench_service: %s (%u vertices, %u edges), %zu-query mix\n",
              dataset.c_str(), graph->graph->num_vertices(),
              graph->graph->num_edges(), mix.size());

  // Sequential ground truth, once per distinct query.
  std::vector<size_t> expected_sizes;
  for (const QuerySpec& spec : mix) {
    SearchResult r = FindMaximumFairClique(*graph->graph, spec.options);
    expected_sizes.push_back(r.clique.size());
    std::printf("  %s -> size %zu (%.1f ms sequential)\n", spec.label.c_str(),
                r.clique.size(),
                static_cast<double>(r.stats.total_micros) / 1000.0);
  }

  const int kColdRounds = 3;
  const int kWarmRounds = 50;
  bool sizes_match = true;
  bool speedup_ok = false;
  std::vector<std::pair<std::string, double>> json_metrics;
  std::vector<double> result_hit_latencies;

  std::printf("\n%8s %14s %14s %10s\n", "workers", "cold q/s", "cached q/s",
              "speedup");
  for (int workers : {1, 4, 8}) {
    ResultCache cache(128);
    QueryExecutor executor(ExecutorOptions{workers, 4096}, &cache);
    double cold_qps = RunRounds(executor, graph, mix, kColdRounds,
                                /*bypass_cache=*/true, expected_sizes,
                                &sizes_match);
    // Prime the cache, then measure pure repeat-query throughput.
    RunRounds(executor, graph, mix, 1, /*bypass_cache=*/false, expected_sizes,
              &sizes_match);
    double warm_qps = RunRounds(executor, graph, mix, kWarmRounds,
                                /*bypass_cache=*/false, expected_sizes,
                                &sizes_match, &result_hit_latencies);
    double speedup = cold_qps > 0 ? warm_qps / cold_qps : 0.0;
    if (speedup >= 10.0) speedup_ok = true;
    std::printf("%8d %14.1f %14.1f %9.1fx\n", workers, cold_qps, warm_qps,
                speedup);
    std::string suffix = "_w" + std::to_string(workers);
    json_metrics.emplace_back("cold_qps" + suffix, cold_qps);
    json_metrics.emplace_back("cached_qps" + suffix, warm_qps);
    json_metrics.emplace_back("speedup" + suffix, speedup);
    ExecutorMetrics m = executor.metrics();
    std::printf("         served=%llu cache_hits=%llu rejected=%llu "
                "peak_queue=%zu\n",
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.cache_hits),
                static_cast<unsigned long long>(m.rejected),
                m.peak_queue_depth);
  }

  // ------------------------------------------- instrumentation overhead
  // The telemetry hot-path cost on the cheapest serving tier (result-cache
  // hits): cached q/s with recording globally disabled vs. enabled. The
  // synchronous Run() path exercises the identical PreSearch +
  // RecordTelemetry instrumentation without the worker-pool handoff, whose
  // context switches on a loaded (or single-core CI) machine add far more
  // jitter than the few dozen nanoseconds being measured. Interleaved
  // within each trial so clock drift and cache warmth hit both sides
  // equally, best-of-5 per side; the bench is its own control (the repo
  // carries no committed baseline numbers).
  double best_obs_on = 0.0, best_obs_off = 0.0;
  {
    ResultCache obs_cache(128);
    QueryExecutor obs_executor(ExecutorOptions{1, 64}, &obs_cache);
    auto run_hits = [&](int iters) {
      WallTimer obs_timer;
      size_t served_hits = 0;
      for (int i = 0; i < iters; ++i) {
        for (size_t q = 0; q < mix.size(); ++q) {
          QueryRequest request;
          request.graph = graph;
          request.options = mix[q].options;
          QueryResponse response = obs_executor.Run(request);
          if (!response.status.ok() || response.result == nullptr ||
              response.result->clique.size() != expected_sizes[q]) {
            sizes_match = false;
          }
          served_hits += response.cache_hit ? 1 : 0;
        }
      }
      double seconds = obs_timer.ElapsedSeconds();
      return seconds > 0 ? static_cast<double>(served_hits) / seconds : 0.0;
    };
    run_hits(1);  // prime the cache (these are misses, excluded from qps)
    for (int trial = 0; trial < 5; ++trial) {
      obs::SetEnabled(false);
      double off = run_hits(10000);
      obs::SetEnabled(true);
      double on = run_hits(10000);
      if (off > best_obs_off) best_obs_off = off;
      if (on > best_obs_on) best_obs_on = on;
    }
  }
  double overhead_pct =
      best_obs_off > 0 ? (1.0 - best_obs_on / best_obs_off) * 100.0 : 0.0;
  bool overhead_ok = best_obs_on >= 0.95 * best_obs_off;
  std::printf("\ninstrumentation overhead on cached hits:\n");
  std::printf("  telemetry off: %10.1f q/s\n", best_obs_off);
  std::printf("  telemetry on:  %10.1f q/s (%.2f%% overhead, < 5%% required)\n",
              best_obs_on, overhead_pct);
  json_metrics.emplace_back("cached_qps_obs_off", best_obs_off);
  json_metrics.emplace_back("cached_qps_obs_on", best_obs_on);
  json_metrics.emplace_back("instrumentation_overhead_pct", overhead_pct);
  // The cached-hit path records exactly one journal event per serve, so
  // this also documents how much ring the overhead run chews through.
  json_metrics.emplace_back(
      "journal_events_recorded",
      static_cast<double>(obs::EventJournal::Default().recorded()));

  // ---------------------------------------------- progress-hook overhead
  // The live-progress hooks ride the branch kernels' existing 1024-node
  // deadline-check cadence (one relaxed fetch_add per kilonode). Measure a
  // prepared Branch stage with a QueryProgress attached vs. without, best
  // of 3 interleaved trials. Reported for trend-watching, not gated: a
  // single branch run's jitter sits orders of magnitude above the hook
  // cost, so a hard assertion here would only flake.
  {
    SearchOptions hook_options = mix[0].options;
    std::shared_ptr<const PreparedGraph> hook_plan = PrepareGraph(
        *graph->graph, hook_options.params.k, hook_options.reductions);
    obs::QueryProgress hook_progress(1, graph->name, "",
                                     hook_plan->components.size());
    double best_plain_s = 0.0, best_hooked_s = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      hook_options.progress = nullptr;
      WallTimer plain_timer;
      SearchPreparedGraph(*graph->graph, *hook_plan, hook_options);
      double plain = plain_timer.ElapsedSeconds();
      hook_options.progress = &hook_progress;
      WallTimer hooked_timer;
      SearchPreparedGraph(*graph->graph, *hook_plan, hook_options);
      double hooked = hooked_timer.ElapsedSeconds();
      if (trial == 0 || plain < best_plain_s) best_plain_s = plain;
      if (trial == 0 || hooked < best_hooked_s) best_hooked_s = hooked;
    }
    double progress_pct =
        best_plain_s > 0 ? (best_hooked_s / best_plain_s - 1.0) * 100.0 : 0.0;
    std::printf("\nprogress-hook overhead on a prepared branch stage:\n");
    std::printf("  hooks off: %8.1f ms    hooks on: %8.1f ms (%+.2f%%)\n",
                best_plain_s * 1e3, best_hooked_s * 1e3, progress_pct);
    json_metrics.emplace_back("progress_hook_overhead_pct", progress_pct);
  }

  // ------------------------------------------- SIMD branch-kernel speedup
  // The cold serving tier is the branch stage; since PR 8 its bitset engine
  // runs on runtime-dispatched SIMD kernels. Self-controlled comparison:
  // the same prepared Branch stage with the kernel pinned to scalar vs.
  // dispatched, interleaved best-of-3. Gated only when a vector variant
  // actually dispatched (kernel_simd_active), so force-scalar CI legs and
  // machines without AVX2/NEON still pass.
  double kernel_speedup = 1.0;
  bool kernel_simd_active = std::string(simd::ActiveName()) != "scalar";
  bool kernel_ok = true;
  {
    std::vector<std::shared_ptr<const PreparedGraph>> kernel_plans;
    std::vector<SearchOptions> kernel_opts;
    for (const QuerySpec& spec : mix) {
      SearchOptions o = spec.options;
      o.engine = SearchEngine::kBitset;  // the kernel under test
      kernel_opts.push_back(o);
      kernel_plans.push_back(
          PrepareGraph(*graph->graph, o.params.k, o.reductions));
    }
    auto run_branches = [&](const char* kernel) {
      simd::SetKernelOverride(kernel);
      WallTimer t;
      for (size_t q = 0; q < kernel_opts.size(); ++q) {
        SearchResult r = SearchPreparedGraph(*graph->graph, *kernel_plans[q],
                                             kernel_opts[q]);
        if (r.clique.size() != expected_sizes[q]) sizes_match = false;
      }
      double micros = static_cast<double>(t.ElapsedMicros());
      simd::SetKernelOverride(nullptr);
      return micros;
    };
    run_branches("scalar");  // warm plans and pages for both sides
    run_branches(nullptr);
    double best_scalar = 0.0, best_simd = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      double s = run_branches("scalar");
      double d = run_branches(nullptr);
      if (trial == 0 || s < best_scalar) best_scalar = s;
      if (trial == 0 || d < best_simd) best_simd = d;
    }
    kernel_speedup = best_simd > 0 ? best_scalar / best_simd : 0.0;
    kernel_ok = !kernel_simd_active || kernel_speedup >= 1.10;
    std::printf("\ncold branch stage, scalar vs dispatched kernels (%s):\n",
                simd::ActiveName());
    std::printf("  scalar:     %8.1f ms\n", best_scalar / 1000.0);
    std::printf("  dispatched: %8.1f ms (%.2fx%s)\n", best_simd / 1000.0,
                kernel_speedup,
                kernel_simd_active ? ", >= 1.10x required" : ", not gated");
    json_metrics.emplace_back("kernel_simd_active",
                              kernel_simd_active ? 1.0 : 0.0);
    json_metrics.emplace_back("cold_branch_scalar_micros", best_scalar);
    json_metrics.emplace_back("cold_branch_simd_micros", best_simd);
    json_metrics.emplace_back("cold_kernel_speedup", kernel_speedup);
  }

  // ------------------------------------------------------------ delta sweep
  // Same graph and k, 8 distinct delta/bound option sets. Cold pays the
  // reduction pipeline per query; through the PreparedGraphCache the sweep
  // reduces once and every query branches on the shared plan.
  std::vector<QuerySpec> sweep = DeltaSweepMix();
  std::vector<size_t> sweep_expected;
  for (const QuerySpec& spec : sweep) {
    sweep_expected.push_back(
        FindMaximumFairClique(*graph->graph, spec.options).clique.size());
  }

  std::vector<double> cold_latencies;
  std::vector<double> prepared_latencies;
  size_t prepared_hits = 0;
  PreparedGraphCache prepared_cache(8);
  QueryExecutor sweep_executor(ExecutorOptions{1, 64}, nullptr,
                               &prepared_cache);
  int64_t cold_micros =
      RunSweep(sweep_executor, graph, sweep, /*fully_cold=*/true,
               sweep_expected, &sizes_match, &cold_latencies,
               /*hit_latencies_only=*/false, nullptr);
  int64_t prepared_micros =
      RunSweep(sweep_executor, graph, sweep, /*fully_cold=*/false,
               sweep_expected, &sizes_match, &prepared_latencies,
               /*hit_latencies_only=*/true, &prepared_hits);
  double sweep_speedup =
      prepared_micros > 0
          ? static_cast<double>(cold_micros) / static_cast<double>(prepared_micros)
          : 0.0;
  // The first prepared-mode query builds and publishes the plan; the other
  // |sweep|-1 must hit it.
  bool prepared_hits_ok = prepared_hits >= sweep.size() - 1;
  bool sweep_ok = sweep_speedup >= 3.0;

  std::printf("\ndelta sweep (%zu option sets, same graph and k):\n",
              sweep.size());
  std::printf("  cold (reduce per query):   %8.1f ms total\n",
              static_cast<double>(cold_micros) / 1000.0);
  std::printf("  prepared-cache (1 reduce): %8.1f ms total (%zu plan hits)\n",
              static_cast<double>(prepared_micros) / 1000.0, prepared_hits);
  std::printf("  sweep speedup: %.1fx (>= 3x required)\n", sweep_speedup);

  LatencyPercentiles cold_p = ComputePercentiles(cold_latencies);
  LatencyPercentiles prep_p = ComputePercentiles(prepared_latencies);
  LatencyPercentiles hit_p = ComputePercentiles(result_hit_latencies);
  std::printf("\nlatency (us)        %10s %10s %10s %10s\n", "p50", "p95",
              "p99", "mean");
  std::printf("  cold              %10.0f %10.0f %10.0f %10.0f\n", cold_p.p50,
              cold_p.p95, cold_p.p99, cold_p.mean);
  std::printf("  prepared-hit      %10.0f %10.0f %10.0f %10.0f\n", prep_p.p50,
              prep_p.p95, prep_p.p99, prep_p.mean);
  std::printf("  result-cache-hit  %10.0f %10.0f %10.0f %10.0f\n", hit_p.p50,
              hit_p.p95, hit_p.p99, hit_p.mean);

  json_metrics.emplace_back("sweep_cold_micros",
                            static_cast<double>(cold_micros));
  json_metrics.emplace_back("sweep_prepared_micros",
                            static_cast<double>(prepared_micros));
  json_metrics.emplace_back("sweep_speedup", sweep_speedup);
  AppendLatencyMetrics(&json_metrics, "cold", cold_p);
  AppendLatencyMetrics(&json_metrics, "prepared_hit", prep_p);
  AppendLatencyMetrics(&json_metrics, "result_hit", hit_p);

  std::printf("\nconcurrent sizes match sequential: %s\n",
              sizes_match ? "yes" : "NO");
  std::printf("cached speedup >= 10x: %s\n", speedup_ok ? "yes" : "NO");
  std::printf("prepared delta-sweep speedup >= 3x: %s\n",
              sweep_ok ? "yes" : "NO");
  std::printf("prepared plan reused across sweep: %s\n",
              prepared_hits_ok ? "yes" : "NO");
  std::printf("instrumentation overhead < 5%%: %s\n",
              overhead_ok ? "yes" : "NO");
  std::printf("SIMD kernel speeds up cold branch stage: %s\n",
              kernel_ok ? "yes" : "NO");
  bench::EmitBenchJson("service", json_metrics);
  return (sizes_match && speedup_ok && sweep_ok && prepared_hits_ok &&
          overhead_ok && kernel_ok)
             ? 0
             : 1;
}
