// bench_service: throughput of the concurrent query service (src/service)
// on a dataset graph, cold (every query searches) vs. cached (repeat
// queries hit the LRU), at 1/4/8 executor workers.
//
// Also differentially checks the service against the library: every
// response size must equal the sequential FindMaximumFairClique answer for
// the same options. Exits non-zero when sizes mismatch or the cached
// speedup falls below 10x, so CI can assert the serving win.
//
// Env: FAIRCLIQUE_BENCH_SCALE (dataset scale), FAIRCLIQUE_BENCH_TIMEOUT
// (per-search budget, default 5 s).

#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "datasets/datasets.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"

namespace fairclique {
namespace {

using bench::BenchScale;
using bench::BenchTimeout;

struct QuerySpec {
  std::string label;
  SearchOptions options;
};

std::vector<QuerySpec> QueryMix() {
  std::vector<QuerySpec> mix;
  auto add = [&mix](std::string label, SearchOptions options) {
    options.time_limit_seconds = BenchTimeout();
    mix.push_back({std::move(label), options});
  };
  add("baseline k=2 d=2", BaselineOptions(2, 2));
  add("baseline k=3 d=1", BaselineOptions(3, 1));
  add("bounded  k=3 d=2", BoundedOptions(3, 2, ExtraBound::kColorfulPath));
  add("bounded  k=4 d=2", BoundedOptions(4, 2, ExtraBound::kColorfulDegeneracy));
  add("full     k=3 d=1", FullOptions(3, 1, ExtraBound::kColorfulPath));
  add("full     k=4 d=3", FullOptions(4, 3, ExtraBound::kColorfulPath));
  return mix;
}

/// Submits `rounds` copies of the mix and returns queries/second.
double RunRounds(QueryExecutor& executor,
                 const std::shared_ptr<const RegisteredGraph>& graph,
                 const std::vector<QuerySpec>& mix, int rounds,
                 bool bypass_cache,
                 const std::vector<size_t>& expected_sizes,
                 bool* sizes_match) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(mix.size() * static_cast<size_t>(rounds));
  WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    for (const QuerySpec& spec : mix) {
      QueryRequest request;
      request.graph = graph;
      request.options = spec.options;
      request.bypass_cache = bypass_cache;
      futures.push_back(executor.Submit(std::move(request)));
    }
  }
  size_t i = 0;
  for (auto& future : futures) {
    QueryResponse response = future.get();
    const size_t expected = expected_sizes[i++ % mix.size()];
    if (!response.status.ok() || response.result == nullptr ||
        response.result->clique.size() != expected) {
      *sizes_match = false;
    }
  }
  double seconds = timer.ElapsedSeconds();
  return seconds > 0 ? static_cast<double>(futures.size()) / seconds : 0.0;
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  const std::string dataset = "dblp-s";
  GraphRegistry registry;
  Status status = registry.Add(dataset, LoadDataset(dataset, BenchScale()),
                               "dataset:" + dataset);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto graph = registry.Get(dataset);
  std::vector<QuerySpec> mix = QueryMix();

  std::printf("bench_service: %s (%u vertices, %u edges), %zu-query mix\n",
              dataset.c_str(), graph->graph->num_vertices(),
              graph->graph->num_edges(), mix.size());

  // Sequential ground truth, once per distinct query.
  std::vector<size_t> expected_sizes;
  for (const QuerySpec& spec : mix) {
    SearchResult r = FindMaximumFairClique(*graph->graph, spec.options);
    expected_sizes.push_back(r.clique.size());
    std::printf("  %s -> size %zu (%.1f ms sequential)\n", spec.label.c_str(),
                r.clique.size(),
                static_cast<double>(r.stats.total_micros) / 1000.0);
  }

  const int kColdRounds = 3;
  const int kWarmRounds = 50;
  bool sizes_match = true;
  bool speedup_ok = false;
  std::vector<std::pair<std::string, double>> json_metrics;

  std::printf("\n%8s %14s %14s %10s\n", "workers", "cold q/s", "cached q/s",
              "speedup");
  for (int workers : {1, 4, 8}) {
    ResultCache cache(128);
    QueryExecutor executor(ExecutorOptions{workers, 4096}, &cache);
    double cold_qps = RunRounds(executor, graph, mix, kColdRounds,
                                /*bypass_cache=*/true, expected_sizes,
                                &sizes_match);
    // Prime the cache, then measure pure repeat-query throughput.
    RunRounds(executor, graph, mix, 1, /*bypass_cache=*/false, expected_sizes,
              &sizes_match);
    double warm_qps = RunRounds(executor, graph, mix, kWarmRounds,
                                /*bypass_cache=*/false, expected_sizes,
                                &sizes_match);
    double speedup = cold_qps > 0 ? warm_qps / cold_qps : 0.0;
    if (speedup >= 10.0) speedup_ok = true;
    std::printf("%8d %14.1f %14.1f %9.1fx\n", workers, cold_qps, warm_qps,
                speedup);
    std::string suffix = "_w" + std::to_string(workers);
    json_metrics.emplace_back("cold_qps" + suffix, cold_qps);
    json_metrics.emplace_back("cached_qps" + suffix, warm_qps);
    json_metrics.emplace_back("speedup" + suffix, speedup);
    ExecutorMetrics m = executor.metrics();
    std::printf("         served=%llu cache_hits=%llu rejected=%llu "
                "peak_queue=%zu\n",
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.cache_hits),
                static_cast<unsigned long long>(m.rejected),
                m.peak_queue_depth);
  }

  std::printf("\nconcurrent sizes match sequential: %s\n",
              sizes_match ? "yes" : "NO");
  std::printf("cached speedup >= 10x: %s\n", speedup_ok ? "yes" : "NO");
  bench::EmitBenchJson("service", json_metrics);
  return (sizes_match && speedup_ok) ? 0 : 1;
}
