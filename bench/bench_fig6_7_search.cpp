// Reproduces Fig. 6 and Fig. 7: running time of the three algorithm
// families — MaxRFC (baseline, reductions + trivial size prune only),
// MaxRFC+ub (best upper bound per dataset, as in the paper), and
// MaxRFC+ub+HeurRFC — varying k and varying delta, per dataset.
// Fig. 6 covers the five synthetic-attribute stand-ins; Fig. 7 is aminer-s.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"

namespace fairclique {
namespace {

void RunRow(const AttributedGraph& g, const char* label, int k, int delta,
            ExtraBound best) {
  SearchResult base = bench::TimedSearch(g, BaselineOptions(k, delta));
  SearchResult ub = bench::TimedSearch(g, BoundedOptions(k, delta, best));
  SearchResult full = bench::TimedSearch(g, FullOptions(k, delta, best));
  std::printf("%-6s %14s %14s %20s  %8zu %12llu %12llu %12llu\n", label,
              bench::TimeCell(base).c_str(), bench::TimeCell(ub).c_str(),
              bench::TimeCell(full).c_str(), full.clique.size(),
              static_cast<unsigned long long>(base.stats.nodes),
              static_cast<unsigned long long>(ub.stats.nodes),
              static_cast<unsigned long long>(full.stats.nodes));
}

void PrintHeader() {
  std::printf("%-6s %14s %14s %20s  %8s %12s %12s %12s\n", "param", "MaxRFC",
              "MaxRFC+ub", "MaxRFC+ub+HeurRFC", "|MRFC|", "nodes", "nodes+ub",
              "nodes+full");
}

void RunDataset(const DatasetSpec& spec) {
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  ExtraBound best = bench::BestBoundFor(spec.name);
  std::printf("## %s  (|V|=%u |E|=%u, best bound %s)\n", spec.name.c_str(),
              g.num_vertices(), g.num_edges(), ExtraBoundName(best).c_str());
  std::printf("-- vary k (delta=%d), times in µs --\n", spec.default_delta);
  PrintHeader();
  char label[32];
  for (int k : spec.k_range) {
    std::snprintf(label, sizeof(label), "k=%d", k);
    RunRow(g, label, k, spec.default_delta, best);
  }
  std::printf("-- vary delta (k=%d), times in µs --\n", spec.default_k);
  PrintHeader();
  for (int delta = 1; delta <= 5; ++delta) {
    std::snprintf(label, sizeof(label), "d=%d", delta);
    RunRow(g, label, spec.default_k, delta, best);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf(
      "=== Fig. 6 / Fig. 7: MaxRFC vs MaxRFC+ub vs MaxRFC+ub+HeurRFC ===\n\n");
  for (const DatasetSpec& spec : StandardDatasets()) {
    RunDataset(spec);
  }
  return 0;
}
