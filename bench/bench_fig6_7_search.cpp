// Reproduces Fig. 6 and Fig. 7: running time of the three algorithm
// families — MaxRFC (baseline, reductions + trivial size prune only),
// MaxRFC+ub (best upper bound per dataset, as in the paper), and
// MaxRFC+ub+HeurRFC — varying k and varying delta, per dataset.
// Fig. 6 covers the five synthetic-attribute stand-ins; Fig. 7 is aminer-s.
//
// Also records per-kernel cold branch latency percentiles (scalar vs the
// dispatched SIMD variant, per component-size bucket) into
// BENCH_fig6_7_search.json, so the SIMD speedup is a trend CI archives per
// PR rather than a one-time gate. FAIRCLIQUE_BENCH_SECTION=kernel runs only
// that section (the figure tables are the expensive part).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/bitset_simd.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/prepared_graph.h"

namespace fairclique {
namespace {

void RunRow(const AttributedGraph& g, const char* label, int k, int delta,
            ExtraBound best) {
  SearchResult base = bench::TimedSearch(g, BaselineOptions(k, delta));
  SearchResult ub = bench::TimedSearch(g, BoundedOptions(k, delta, best));
  SearchResult full = bench::TimedSearch(g, FullOptions(k, delta, best));
  std::printf("%-6s %14s %14s %20s  %8zu %12llu %12llu %12llu\n", label,
              bench::TimeCell(base).c_str(), bench::TimeCell(ub).c_str(),
              bench::TimeCell(full).c_str(), full.clique.size(),
              static_cast<unsigned long long>(base.stats.nodes),
              static_cast<unsigned long long>(ub.stats.nodes),
              static_cast<unsigned long long>(full.stats.nodes));
}

void PrintHeader() {
  std::printf("%-6s %14s %14s %20s  %8s %12s %12s %12s\n", "param", "MaxRFC",
              "MaxRFC+ub", "MaxRFC+ub+HeurRFC", "|MRFC|", "nodes", "nodes+ub",
              "nodes+full");
}

void RunDataset(const DatasetSpec& spec) {
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  ExtraBound best = bench::BestBoundFor(spec.name);
  std::printf("## %s  (|V|=%u |E|=%u, best bound %s)\n", spec.name.c_str(),
              g.num_vertices(), g.num_edges(), ExtraBoundName(best).c_str());
  std::printf("-- vary k (delta=%d), times in µs --\n", spec.default_delta);
  PrintHeader();
  char label[32];
  for (int k : spec.k_range) {
    std::snprintf(label, sizeof(label), "k=%d", k);
    RunRow(g, label, k, spec.default_delta, best);
  }
  std::printf("-- vary delta (k=%d), times in µs --\n", spec.default_k);
  PrintHeader();
  for (int delta = 1; delta <= 5; ++delta) {
    std::snprintf(label, sizeof(label), "d=%d", delta);
    RunRow(g, label, spec.default_k, delta, best);
  }
  std::printf("\n");
}

// Component-size buckets for the per-kernel latency breakdown. The SIMD win
// grows with row width, so the trend is only readable split by size.
const char* BucketOf(VertexId n) {
  if (n <= 128) return "small";    // rows fit in 1-2 cache lines
  if (n <= 512) return "medium";
  return "large";
}

// Cold-branches every prepared component of every standard dataset once per
// kernel variant (bitset engine forced, interleaved scalar/dispatched) and
// emits p50/p95/p99/mean per (kernel, size bucket).
void RunKernelLatencySection() {
  struct Sample {
    VertexId vertices;
    double scalar_us = 0.0;
    double simd_us = 0.0;
  };
  std::vector<Sample> samples;
  SearchOptions options = BaselineOptions(2, 2);
  options.engine = SearchEngine::kBitset;
  options.time_limit_seconds = bench::BenchTimeout();
  Deadline deadline;  // per-component budget rides time_limit_seconds
  for (const DatasetSpec& spec : StandardDatasets()) {
    AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
    auto plan = PrepareGraph(g, options.params.k, options.reductions);
    for (size_t c = 0; c < plan->components.size(); ++c) {
      Sample s;
      s.vertices = plan->components[c]->graph.num_vertices();
      // Warm orderings and pages once so both timed runs are equally cold
      // w.r.t. the branch work and equally warm w.r.t. the plan.
      BranchComponent(*plan, c, options, deadline, nullptr);
      simd::SetKernelOverride("scalar");
      WallTimer ts;
      BranchComponent(*plan, c, options, deadline, nullptr);
      s.scalar_us = static_cast<double>(ts.ElapsedMicros());
      simd::SetKernelOverride(nullptr);
      WallTimer td;
      BranchComponent(*plan, c, options, deadline, nullptr);
      s.simd_us = static_cast<double>(td.ElapsedMicros());
      samples.push_back(s);
    }
  }
  simd::SetKernelOverride(nullptr);

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back(
      "kernel_simd_active",
      std::strcmp(simd::ActiveName(), "scalar") != 0 ? 1.0 : 0.0);
  std::printf("== per-kernel cold BranchComponent latency (%s dispatched) ==\n",
              simd::ActiveName());
  std::printf("%-8s %8s | %10s %10s %10s | %10s %10s %10s\n", "bucket", "n",
              "scal p50", "scal p95", "scal mean", "simd p50", "simd p95",
              "simd mean");
  for (const char* bucket : {"small", "medium", "large"}) {
    std::vector<double> scalar_us, simd_us;
    for (const Sample& s : samples) {
      if (std::strcmp(BucketOf(s.vertices), bucket) != 0) continue;
      scalar_us.push_back(s.scalar_us);
      simd_us.push_back(s.simd_us);
    }
    bench::LatencyPercentiles sp = bench::ComputePercentiles(scalar_us);
    bench::LatencyPercentiles dp = bench::ComputePercentiles(simd_us);
    std::string prefix = std::string("branch_") + bucket;
    metrics.emplace_back(prefix + "_components",
                         static_cast<double>(scalar_us.size()));
    bench::AppendLatencyMetrics(&metrics, prefix + "_scalar", sp);
    bench::AppendLatencyMetrics(&metrics, prefix + "_simd", dp);
    std::printf("%-8s %8zu | %10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f\n",
                bucket, scalar_us.size(), sp.p50, sp.p95, sp.mean, dp.p50,
                dp.p95, dp.mean);
  }
  bench::EmitBenchJson("fig6_7_search", metrics);
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  const char* section = std::getenv("FAIRCLIQUE_BENCH_SECTION");
  if (section == nullptr || std::strcmp(section, "kernel") != 0) {
    std::printf(
        "=== Fig. 6 / Fig. 7: MaxRFC vs MaxRFC+ub vs MaxRFC+ub+HeurRFC "
        "===\n\n");
    for (const DatasetSpec& spec : StandardDatasets()) {
      RunDataset(spec);
    }
  }
  RunKernelLatencySection();
  return 0;
}
