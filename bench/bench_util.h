#ifndef FAIRCLIQUE_BENCH_BENCH_UTIL_H_
#define FAIRCLIQUE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/max_fair_clique.h"
#include "datasets/datasets.h"

namespace fairclique {
namespace bench {

/// Dataset scale factor, overridable via FAIRCLIQUE_BENCH_SCALE (default 1.0)
/// so the same binaries serve quick CI runs and longer experiments.
inline double BenchScale() {
  const char* env = std::getenv("FAIRCLIQUE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Per-search wall-clock budget in seconds (FAIRCLIQUE_BENCH_TIMEOUT,
/// default 5). Searches exceeding it report "INF", mirroring the paper's
/// 12-hour convention at reproduction scale.
inline double BenchTimeout() {
  const char* env = std::getenv("FAIRCLIQUE_BENCH_TIMEOUT");
  if (env == nullptr) return 5.0;
  double v = std::atof(env);
  return v > 0 ? v : 5.0;
}

/// Runs one search with the bench timeout applied; returns stats.
inline SearchResult TimedSearch(const AttributedGraph& g,
                                SearchOptions options) {
  options.time_limit_seconds = BenchTimeout();
  return FindMaximumFairClique(g, options);
}

/// Formats a runtime cell: microseconds, or "INF" for incomplete runs.
inline std::string TimeCell(const SearchResult& r) {
  if (!r.stats.completed) return "INF";
  return std::to_string(r.stats.total_micros);
}

/// The best extra bound per dataset, as selected in the paper's Section VI
/// ("for Themarker, Google and Pokec, MaxRFC uses ubAD+ubcp ... for the
/// other datasets ubAD+ubcd").
inline ExtraBound BestBoundFor(const std::string& dataset) {
  if (dataset == "themarker-s" || dataset == "google-s" ||
      dataset == "pokec-s") {
    return ExtraBound::kColorfulPath;
  }
  return ExtraBound::kColorfulDegeneracy;
}

/// Latency distribution of one batch of samples (all in the same unit).
struct LatencyPercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

/// Nearest-rank percentiles (p-th percentile = the ceil(p/100 * N)-th
/// smallest sample), so every reported value is an actually observed
/// latency. Empty input yields all zeros.
inline LatencyPercentiles ComputePercentiles(std::vector<double> samples) {
  LatencyPercentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&samples](double q) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank > 0) --rank;  // 1-based nearest rank -> 0-based index
    if (rank >= samples.size()) rank = samples.size() - 1;
    return samples[rank];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  return out;
}

/// Appends `<prefix>_p50/p95/p99/mean_us` metrics for one latency tier.
inline void AppendLatencyMetrics(
    std::vector<std::pair<std::string, double>>* metrics,
    const std::string& prefix, const LatencyPercentiles& p) {
  metrics->emplace_back(prefix + "_p50_us", p.p50);
  metrics->emplace_back(prefix + "_p95_us", p.p95);
  metrics->emplace_back(prefix + "_p99_us", p.p99);
  metrics->emplace_back(prefix + "_mean_us", p.mean);
}

/// Writes machine-readable benchmark metrics to
/// $FAIRCLIQUE_BENCH_JSON_DIR/BENCH_<bench>.json (default: current
/// directory) so CI can archive the perf trajectory. Format:
///   {"bench":"service","scale":1.0,"metrics":{"cold_qps":25.1,...}}
/// Returns false (with a warning) when the file cannot be written; benches
/// treat that as non-fatal.
inline bool EmitBenchJson(
    const std::string& bench,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const char* dir = std::getenv("FAIRCLIQUE_BENCH_JSON_DIR");
  std::string path =
      std::string(dir != nullptr ? dir : ".") + "/BENCH_" + bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"bench\":\"%s\",\"scale\":%.17g,\"metrics\":{",
               bench.c_str(), BenchScale());
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "%s\"%s\":%.17g", i > 0 ? "," : "",
                 metrics[i].first.c_str(), metrics[i].second);
  }
  std::fprintf(f, "}}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace fairclique

#endif  // FAIRCLIQUE_BENCH_BENCH_UTIL_H_
