// Ablation study (DESIGN.md §5, extra): isolates the contribution of each
// design choice the paper stacks into MaxRFC —
//   (a) reduction stages: none / EnColorfulCore only / +ColorfulSup /
//       +EnColorfulSup (the full pipeline);
//   (b) upper-bound depth: bounds applied at the component root only vs
//       also after the first vertex choice;
//   (c) heuristic starts: HeurRFC quality with 1 vs 4 vs 16 greedy starts;
//   (d) one support decomposition vs repeated per-k peeling (multi-query
//       break-even);
//   (e) branch kernel: sorted-vector vs bitset candidate sets.
// Run at each dataset's default (k, delta).

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/heuristics.h"
#include "graph/coloring.h"
#include "reduction/colorful_support.h"
#include "reduction/support_decomposition.h"

namespace fairclique {
namespace {

// Prevents the optimizer from discarding measured work.
volatile uint64_t benchmark_sink_ = 0;

void ReductionAblation(const AttributedGraph& g, const DatasetSpec& spec) {
  struct Row {
    const char* name;
    ReductionOptions reductions;
  };
  const Row rows[] = {
      {"no reductions", {false, false, false}},
      {"EnColorfulCore", {true, false, false}},
      {"+ColorfulSup", {true, true, false}},
      {"+EnColorfulSup (full)", {true, true, true}},
  };
  std::printf("-- (a) reduction stages, k=%d delta=%d --\n", spec.default_k,
              spec.default_delta);
  std::printf("%-24s %14s %12s %10s %10s\n", "pipeline", "time(µs)", "nodes",
              "red|V|", "red|E|");
  for (const Row& row : rows) {
    SearchOptions options = BoundedOptions(spec.default_k, spec.default_delta,
                                           bench::BestBoundFor(spec.name));
    options.reductions = row.reductions;
    SearchResult r = bench::TimedSearch(g, options);
    VertexId rv = g.num_vertices();
    EdgeId re = g.num_edges();
    if (!r.stats.reduction_stages.empty()) {
      rv = r.stats.reduction_stages.back().vertices_left;
      re = r.stats.reduction_stages.back().edges_left;
    }
    std::printf("%-24s %14s %12llu %10u %10u\n", row.name,
                bench::TimeCell(r).c_str(),
                static_cast<unsigned long long>(r.stats.nodes), rv, re);
  }
}

void BoundDepthAblation(const AttributedGraph& g, const DatasetSpec& spec) {
  std::printf("-- (b) bound application depth, k=%d delta=%d --\n",
              spec.default_k, spec.default_delta);
  std::printf("%-24s %14s %12s %12s\n", "depth", "time(µs)", "nodes",
              "bound_prunes");
  for (int depth : {0, 1, 2, 4}) {
    SearchOptions options = BoundedOptions(spec.default_k, spec.default_delta,
                                           bench::BestBoundFor(spec.name));
    options.bound_depth = depth;
    SearchResult r = bench::TimedSearch(g, options);
    std::printf("depth<%-18d %14s %12llu %12llu\n", depth,
                bench::TimeCell(r).c_str(),
                static_cast<unsigned long long>(r.stats.nodes),
                static_cast<unsigned long long>(r.stats.bound_prunes));
  }
}

void DecompositionAblation(const AttributedGraph& g, const DatasetSpec& spec) {
  // One support decomposition vs repeated per-k peeling: the break-even for
  // multi-query workloads (same graph, many (k, delta) settings).
  std::printf("-- (d) per-k peeling vs one decomposition --\n");
  Coloring coloring = GreedyColoring(g);
  WallTimer per_k_timer;
  for (int k : spec.k_range) {
    EdgeReductionResult r = ColorfulSupReduction(g, coloring, k);
    benchmark_sink_ = benchmark_sink_ + r.edges_left;
  }
  int64_t per_k_us = per_k_timer.ElapsedMicros();
  WallTimer decomp_timer;
  SupportDecomposition d = ComputeColorfulSupportNumbers(g, coloring);
  int64_t decomp_us = decomp_timer.ElapsedMicros();
  WallTimer query_timer;
  for (int k : spec.k_range) {
    benchmark_sink_ = benchmark_sink_ + EdgeAliveAtK(d, k).size();
  }
  int64_t query_us = query_timer.ElapsedMicros();
  std::printf("%zu per-k peels: %lld us;  decomposition (max_k=%d): %lld us "
              "+ %lld us for the same %zu queries\n",
              spec.k_range.size(), static_cast<long long>(per_k_us), d.max_k,
              static_cast<long long>(decomp_us),
              static_cast<long long>(query_us), spec.k_range.size());
}

void EngineAblation(const AttributedGraph& g, const DatasetSpec& spec) {
  std::printf("-- (e) branch kernel: vector vs bitset --\n");
  std::printf("%-24s %14s %12s\n", "engine", "time(µs)", "nodes");
  for (SearchEngine engine : {SearchEngine::kVector, SearchEngine::kBitset}) {
    SearchOptions options = BoundedOptions(spec.default_k, spec.default_delta,
                                           bench::BestBoundFor(spec.name));
    options.engine = engine;
    SearchResult r = bench::TimedSearch(g, options);
    std::printf("%-24s %14s %12llu\n",
                engine == SearchEngine::kVector ? "vector" : "bitset",
                bench::TimeCell(r).c_str(),
                static_cast<unsigned long long>(r.stats.nodes));
  }
}

void HeuristicStartsAblation(const AttributedGraph& g,
                             const DatasetSpec& spec) {
  std::printf("-- (c) HeurRFC greedy starts / local search, k=%d delta=%d --\n",
              spec.default_k, spec.default_delta);
  std::printf("%-24s %10s %14s\n", "variant", "|clique|", "time(µs)");
  for (int starts : {1, 4, 16}) {
    WallTimer timer;
    HeuristicResult heur =
        HeurRFC(g, {{spec.default_k, spec.default_delta}, starts, false});
    std::printf("starts=%-17d %10zu %14lld\n", starts, heur.clique.size(),
                static_cast<long long>(timer.ElapsedMicros()));
  }
  {
    WallTimer timer;
    HeuristicResult heur =
        HeurRFC(g, {{spec.default_k, spec.default_delta}, 1, true});
    std::printf("%-24s %10zu %14lld\n", "starts=1 + local search",
                heur.clique.size(),
                static_cast<long long>(timer.ElapsedMicros()));
  }
}

void OrderingAblation(const AttributedGraph& g, const DatasetSpec& spec) {
  std::printf("-- (f) branch ordering, k=%d delta=%d --\n", spec.default_k,
              spec.default_delta);
  std::printf("%-24s %14s %12s\n", "ordering", "time(µs)", "nodes");
  struct Row {
    const char* name;
    BranchOrder order;
  };
  for (const Row& row : {Row{"colorful core (paper)",
                             BranchOrder::kColorfulCore},
                         Row{"degeneracy", BranchOrder::kDegeneracy},
                         Row{"ascending degree", BranchOrder::kDegree}}) {
    SearchOptions options = BoundedOptions(spec.default_k, spec.default_delta,
                                           bench::BestBoundFor(spec.name));
    options.order = row.order;
    SearchResult r = bench::TimedSearch(g, options);
    std::printf("%-24s %14s %12llu\n", row.name, bench::TimeCell(r).c_str(),
                static_cast<unsigned long long>(r.stats.nodes));
  }
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== Ablation: reductions, bound depth, heuristic starts ===\n\n");
  for (const char* name : {"themarker-s", "dblp-s", "aminer-s"}) {
    DatasetSpec spec = DatasetByName(name);
    AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
    std::printf("## %s (|V|=%u |E|=%u)\n", spec.name.c_str(), g.num_vertices(),
                g.num_edges());
    ReductionAblation(g, spec);
    BoundDepthAblation(g, spec);
    HeuristicStartsAblation(g, spec);
    DecompositionAblation(g, spec);
    EngineAblation(g, spec);
    OrderingAblation(g, spec);
    std::printf("\n");
  }
  return 0;
}
