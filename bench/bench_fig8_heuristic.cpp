// Reproduces Fig. 8: size of the fair clique found by the linear-time
// HeurRFC heuristic vs the exact maximum (MRFC) per dataset, at the
// per-dataset default (k, delta). The paper reports gaps of at most 6, with
// an exact match on DBLP.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "core/heuristics.h"

namespace fairclique {
namespace {

void RunDataset(const DatasetSpec& spec) {
  AttributedGraph g = LoadDataset(spec.name, bench::BenchScale());
  FairnessParams params{spec.default_k, spec.default_delta};
  HeuristicResult heur = HeurRFC(g, {params, 1});
  SearchResult exact = bench::TimedSearch(
      g, FullOptions(params.k, params.delta, bench::BestBoundFor(spec.name)));
  std::printf("%-14s k=%d d=%d  HeurRFC=%3zu  MRFC=%3zu  gap=%2zd  %s\n",
              spec.name.c_str(), params.k, params.delta, heur.clique.size(),
              exact.clique.size(),
              static_cast<ssize_t>(exact.clique.size()) -
                  static_cast<ssize_t>(heur.clique.size()),
              exact.stats.completed ? "" : "(exact search INF)");
}

}  // namespace
}  // namespace fairclique

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);
  std::printf(
      "=== Fig. 8: fair clique sizes, HeurRFC vs exact maximum ===\n\n");
  for (const DatasetSpec& spec : StandardDatasets()) {
    RunDataset(spec);
  }
  return 0;
}
