// fairclique_cli: a command-line front end to the library, for downstream
// users who want the algorithms without writing C++.
//
// Subcommands:
//   stats    <graph> [attrs]                       graph summary
//   reduce   <graph> [attrs] --k K                 reduction funnel
//   search   <graph> [attrs] --k K --delta D       maximum relative fair clique
//   weak     <graph> [attrs] --k K                 maximum weak fair clique
//   strong   <graph> [attrs] --k K                 maximum strong fair clique
//   enum     <graph> [attrs] --k K --delta D [--limit N]
//                                                  maximal relative fair cliques
//   multi    <graph> <labels> --k K --delta D     d-ary attribute search
//   generate <dataset> <edge_out> <attr_out>       write a stand-in dataset
//
// <graph> is either a built-in stand-in name (see `generate` list) or an
// edge-list file; attributes default to Bernoulli(1/2) when no file given.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/fair_variants.h"
#include "core/fairclique.h"
#include "datasets/datasets.h"
#include "multiattr/multi_fair_clique.h"

#include <fstream>

namespace {

using namespace fairclique;

struct Args {
  std::string command;
  std::string graph;
  std::string attrs;
  int k = 2;
  int delta = 2;
  uint64_t limit = 20;
};

int Usage() {
  std::fprintf(stderr,
               "usage: fairclique_cli <stats|reduce|search|weak|strong|enum|multi> "
               "<graph> [attrs] [--k K] [--delta D] [--limit N]\n"
               "       fairclique_cli generate <dataset> <edge_out> "
               "<attr_out>\n"
               "built-in datasets:");
  for (const DatasetSpec& spec : StandardDatasets()) {
    std::fprintf(stderr, " %s", spec.name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 3) return false;
  out->command = argv[1];
  out->graph = argv[2];
  int i = 3;
  if (i < argc && argv[i][0] != '-') out->attrs = argv[i++];
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      out->k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
      out->delta = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      out->limit = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return false;
    }
  }
  return out->k >= 1 && out->delta >= 0;
}

bool IsBuiltin(const std::string& name) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) return true;
  }
  return false;
}

bool LoadGraph(const Args& args, AttributedGraph* g) {
  if (IsBuiltin(args.graph)) {
    *g = LoadDataset(args.graph);
    return true;
  }
  Status st = LoadAttributedGraph(args.graph, args.attrs, {}, g);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return false;
  }
  if (args.attrs.empty()) {
    Rng rng(7);
    *g = AssignAttributesBernoulli(*g, 0.5, rng);
  }
  return true;
}

void PrintClique(const AttributedGraph& g, const CliqueResult& c) {
  if (c.empty()) {
    std::printf("no fair clique exists for these parameters\n");
    return;
  }
  std::printf("size %zu (%lld a / %lld b):", c.size(),
              static_cast<long long>(c.attr_counts.a()),
              static_cast<long long>(c.attr_counts.b()));
  for (VertexId v : c.vertices) {
    std::printf(" %u%c", v, g.attribute(v) == Attribute::kA ? 'a' : 'b');
  }
  std::printf("\n");
}

int RunStats(const Args& args) {
  AttributedGraph g;
  if (!LoadGraph(args, &g)) return 1;
  std::printf("%s", FormatGraphStats(ComputeGraphStats(g)).c_str());
  Coloring coloring = GreedyColoring(g);
  std::printf("greedy colors:       %d\n", coloring.num_colors);
  return 0;
}

// `multi`: d-ary attribute search. Labels come from a file with lines
// "vertex label" (labels 0..d-1); d is inferred as max label + 1.
int RunMulti(const Args& args) {
  if (args.attrs.empty()) {
    std::fprintf(stderr, "multi requires a label file (vertex label lines)\n");
    return 2;
  }
  AttributedGraph g;
  Args graph_only = args;
  graph_only.attrs.clear();
  if (!LoadGraph(graph_only, &g)) return 1;

  std::ifstream in(args.attrs);
  if (!in) {
    std::fprintf(stderr, "cannot open label file %s\n", args.attrs.c_str());
    return 1;
  }
  std::vector<uint8_t> labels(g.num_vertices(), 0);
  int num_labels = 1;
  uint64_t v, l;
  while (in >> v >> l) {
    if (v >= g.num_vertices() || l > 255) {
      std::fprintf(stderr, "label line out of range: %llu %llu\n",
                   static_cast<unsigned long long>(v),
                   static_cast<unsigned long long>(l));
      return 1;
    }
    labels[v] = static_cast<uint8_t>(l);
    num_labels = std::max(num_labels, static_cast<int>(l) + 1);
  }
  MultiAttrGraph mg(g, labels, num_labels);
  MultiFairnessParams params{args.k, args.delta};
  MultiSearchResult r = FindMaximumMultiFairClique(mg, params);
  if (r.clique.empty()) {
    std::printf("no multi-fair clique for k=%d delta=%d over %d labels\n",
                args.k, args.delta, num_labels);
    return 0;
  }
  std::printf("size %zu, per-label counts:", r.clique.size());
  for (int i = 0; i < num_labels; ++i) {
    std::printf(" %lld", static_cast<long long>(r.label_counts[i]));
  }
  std::printf("\nmembers:");
  for (VertexId m : r.clique) std::printf(" %u", m);
  std::printf("\nverified: %s\n",
              IsMultiFairClique(mg, r.clique, params) ? "OK" : "FAILED");
  return 0;
}

int RunReduce(const Args& args) {
  AttributedGraph g;
  if (!LoadGraph(args, &g)) return 1;
  ReductionPipelineResult r =
      ReduceForFairClique(g, args.k, ReductionOptions{});
  std::printf("%-16s %12s %12s %10s\n", "stage", "|V|", "|E|", "micros");
  std::printf("%-16s %12u %12u %10s\n", "(input)", g.num_vertices(),
              g.num_edges(), "-");
  for (const ReductionStageStats& s : r.stages) {
    std::printf("%-16s %12u %12u %10lld\n", s.name.c_str(), s.vertices_left,
                s.edges_left, static_cast<long long>(s.micros));
  }
  return 0;
}

int RunSearch(const Args& args, const char* mode) {
  AttributedGraph g;
  if (!LoadGraph(args, &g)) return 1;
  SearchResult r;
  FairnessParams check{args.k, args.delta};
  if (std::strcmp(mode, "weak") == 0) {
    r = FindMaximumWeakFairClique(g, args.k, ExtraBound::kColorfulDegeneracy);
    check.delta = static_cast<int>(g.num_vertices()) + 1;
  } else if (std::strcmp(mode, "strong") == 0) {
    r = FindMaximumStrongFairClique(g, args.k,
                                    ExtraBound::kColorfulDegeneracy);
    check.delta = 0;
  } else {
    r = FindMaximumFairClique(
        g, FullOptions(args.k, args.delta, ExtraBound::kColorfulDegeneracy));
  }
  PrintClique(g, r.clique);
  if (!r.clique.empty()) {
    Status st = VerifyFairClique(g, r.clique.vertices, check);
    std::printf("verified: %s\n", st.ToString().c_str());
  }
  std::printf("nodes: %llu  time: %lld us%s\n",
              static_cast<unsigned long long>(r.stats.nodes),
              static_cast<long long>(r.stats.total_micros),
              r.stats.completed ? "" : "  (INCOMPLETE: limit hit)");
  return 0;
}

int RunEnum(const Args& args) {
  AttributedGraph g;
  if (!LoadGraph(args, &g)) return 1;
  if (g.num_vertices() > 2000) {
    std::fprintf(stderr,
                 "enum is exhaustive and intended for graphs up to ~2000 "
                 "vertices (got %u)\n",
                 g.num_vertices());
    return 1;
  }
  uint64_t count = EnumerateRelativeFairCliques(
      g, {args.k, args.delta},
      [&](const std::vector<VertexId>& c) {
        CliqueResult res;
        res.vertices = c;
        res.attr_counts = CountAttributes(g, c);
        PrintClique(g, res);
      },
      args.limit);
  std::printf("%llu maximal relative fair clique(s)%s\n",
              static_cast<unsigned long long>(count),
              count >= args.limit && args.limit != 0 ? " (limit reached)" : "");
  return 0;
}

int RunGenerate(int argc, char** argv) {
  if (argc != 5) return Usage();
  std::string name = argv[2];
  if (!IsBuiltin(name)) {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    return 2;
  }
  AttributedGraph g = LoadDataset(name);
  Status st = SaveEdgeList(g, argv[3]);
  if (st.ok()) st = SaveAttributes(g, argv[4]);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%u vertices, %u edges) to %s / %s\n", name.c_str(),
              g.num_vertices(), g.num_edges(), argv[3], argv[4]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(argc, argv);
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "stats") return RunStats(args);
  if (args.command == "reduce") return RunReduce(args);
  if (args.command == "search") return RunSearch(args, "relative");
  if (args.command == "weak") return RunSearch(args, "weak");
  if (args.command == "strong") return RunSearch(args, "strong");
  if (args.command == "enum") return RunEnum(args);
  if (args.command == "multi") return RunMulti(args);
  return Usage();
}
