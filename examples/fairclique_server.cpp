// fairclique_server: a JSON-lines front end to the concurrent query service
// (src/service). One command object per input line, one JSON response per
// line on stdout, so batch workloads can be driven from a file or a pipe:
//
//   ./fairclique_server < workload.jsonl
//   ./fairclique_server --workers 4 --cache 256 workload.jsonl
//   ./fairclique_server --data-dir /var/lib/fairclique < workload.jsonl
//
// With --data-dir the service is durable: every load writes an FCG2
// snapshot through src/storage, every update batch is WAL-logged (fsync'd)
// before its epoch is published, and startup automatically recovers all
// registered graphs (snapshot + WAL replay, fingerprint-verified) plus the
// persisted result-cache entries (verifier-checked) — so a SIGKILL'd server
// restarts to the same verified answers at the same epochs. WAL appends are
// group-committed (concurrent batches share one fsync; see
// storage/group_commit.h); --wal-group-window N makes a commit leader
// linger N microseconds for more batches before syncing (larger groups,
// higher per-batch latency; default 0).
//
// Commands:
//   {"cmd":"load","name":"g","dataset":"dblp-s","scale":1.0}
//   {"cmd":"load","name":"g","path":"edges.txt","attrs":"attr.txt"}
//   {"cmd":"load","name":"g","path":"graph.fcg","format":"binary"}
//   {"cmd":"load","name":"g","path":"graph.fcg2","format":"fcg2"}
//   {"cmd":"load","name":"g","path":"graph.metis","format":"metis"}
//   {"cmd":"query","graph":"g","k":3,"delta":1}             synchronous
//   {"cmd":"query","graph":"g","k":3,"delta":1,"preset":"baseline",
//    "extra":"cp","deadline":5.0,"threads":2,"async":true}  queued
//   {"cmd":"drain"}      print pending async responses in submission order
//   {"cmd":"stats"}      registry + caches + executor counters
//   {"cmd":"evict","graph":"g"}      drop one graph (+ its cached artifacts)
//   {"cmd":"evict","cache":true}     clear the result + prepared caches
//   {"cmd":"update","graph":"g","add_edges":"0-5,3-7",
//    "remove_edges":"1-2","add_vertices":"a,b","set_attrs":"4:b"}
//                        apply one batch, advance the epoch, migrate caches
//   {"cmd":"snapshot","graph":"g"}             report the current epoch
//   {"cmd":"snapshot","graph":"g","path":"g.fcg"}  also save FCG1 binary
//   {"cmd":"snapshot","graph":"g","path":"g.fcg2","format":"fcg2"}
//   {"cmd":"persist"}    write the result-cache warm file to the data dir
//   {"cmd":"restore"}    recover data-dir graphs not currently registered
//   {"cmd":"metrics"}    alias of stats (includes storage counters)
//   {"cmd":"metrics","format":"prometheus"}
//                        Prometheus text exposition of every counter and
//                        latency histogram; multi-line, ends with "# EOF"
//   {"cmd":"slowlog","limit":10}   slowest retained traces, one JSON line
//                                  each (span tree included), then an ack
//   {"cmd":"slowlog","trace_id":42}  only that trace (structured error when
//                                    it is not retained)
//   {"cmd":"trace","trace_id":42}  one retained trace by id (the id every
//                                  query response echoes as trace_id)
//   {"cmd":"ps"}         live progress of in-flight searches, one JSON line
//                        per query (nodes, incumbent vs upper bound,
//                        components done/total), then an ack
//   {"cmd":"health"}     ok/degraded verdict with reasons (stalled query,
//                        stalled admission queue, high deadline-miss rate),
//                        uptime, build identity, watchdog stats
//   {"cmd":"journal","limit":64}  newest structured events from the
//                                 in-memory event journal, as one JSON line
//   {"cmd":"profile","action":"start","hz":200}  sampling profiler on
//   {"cmd":"profile","action":"stop"}
//   {"cmd":"profile","action":"dump"}  folded stacks ("frame;frame count"),
//                                      flamegraph.pl-ready, then an ack
//   {"cmd":"profile","action":"reset"}
//   {"cmd":"quit"}
//
// query fields: preset = baseline|bounded|full (default full), extra = none|
// degeneracy|hindex|cd|ch|cp (default cp), deadline in seconds (0 = none),
// threads = accepted for compatibility but superseded: every server query
// (sync or async) goes through the executor, which schedules component
// tasks onto the shared worker pool (--workers), "bypass_cache":true for
// cold result-cache runs, "bypass_prepared":true to also re-run the
// reduction pipeline, "explain":true to attach an EXPLAIN plan (reduction
// stages, component engines, prune breakdown, cache decisions) to the
// response under "plan".
//
// update fields (all optional, applied as ONE atomic batch): add_vertices is
// a comma list of attributes ("a,b"); add_edges / remove_edges are comma
// lists of "u-v" pairs; set_attrs is a comma list of "v:attr". The response
// reports the new epoch (version, fingerprint), how the result cache was
// migrated (invalidated / republished / hints) and how the prepared-plan
// cache was (invalidated / forwarded).
//
// The wire-format building blocks (JSON parsing, escaping, token parsing,
// response serialization) live in src/service/wire.h with their own unit
// tests; this file is only the command loop.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/fairclique.h"
#include "datasets/datasets.h"
#include "obs/crash_handler.h"
#include "obs/event_journal.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "service/telemetry.h"
#include "service/wire.h"

namespace {

using namespace fairclique;

using wire::GetBool;
using wire::GetNumber;
using wire::GetString;
using wire::JsonObject;
using wire::JsonWriter;

void PrintError(uint64_t id, const std::string& message) {
  std::printf("%s\n", wire::ErrorJson(id, message).c_str());
}

void PrintLine(const JsonWriter& w) {
  std::printf("%s\n", w.str().c_str());
}

void PrintQueryResponse(uint64_t id, const std::string& graph,
                        const QueryResponse& r) {
  std::printf("%s\n", wire::QueryResponseJson(id, graph, r).c_str());
}

struct Server {
  GraphRegistry registry;
  ResultCache cache;
  PreparedGraphCache prepared;
  QueryExecutor executor;
  /// Durable backing (null without --data-dir). Owned here; the registry
  /// only borrows it for write-through.
  std::unique_ptr<storage::StorageManager> storage;
  /// Mutable shadow of updated graphs; created lazily on the first update
  /// of a name, dropped on evict. The registry always serves the latest
  /// materialized snapshot.
  std::map<std::string, std::unique_ptr<DynamicGraph>> dynamics;
  uint64_t next_id = 1;
  std::vector<std::tuple<uint64_t, std::string, std::future<QueryResponse>>>
      pending;
  /// Liveness watchdog; declared after `executor` so it stops (joining its
  /// sweep thread, which samples the executor) before the executor
  /// destructs. Created in main once the flags are parsed.
  std::unique_ptr<obs::Watchdog> watchdog;

  Server(int workers, size_t cache_capacity, size_t prepared_capacity,
         size_t queue_capacity)
      : cache(cache_capacity),
        prepared(prepared_capacity),
        executor(ExecutorOptions{workers, queue_capacity}, &cache, &prepared) {
    registry.AttachCache(&cache);
    registry.AttachPreparedCache(&prepared);
  }

  ~Server() {
    // The registry borrows `storage`; make sure no write-through can run
    // while members destruct (executor drains before registry in reverse
    // member order, so detach first).
    registry.AttachStorage(nullptr);
  }

  /// Opens the data dir and recovers its graphs + warm cache. Called before
  /// the command loop; failures are fatal (a durable server that cannot
  /// persist is worse than a crash — it would silently lose updates).
  Status EnableStorage(const std::string& data_dir,
                       size_t wal_compaction_threshold,
                       int64_t wal_group_window_micros) {
    storage::StorageManager::Options options;
    options.wal_compaction_threshold = wal_compaction_threshold;
    options.group_window_micros = wal_group_window_micros;
    FAIRCLIQUE_RETURN_NOT_OK(
        storage::StorageManager::Open(data_dir, options, &storage));
    size_t graphs = 0, warm = 0;
    FAIRCLIQUE_RETURN_NOT_OK(RecoverFromStorage(&graphs, &warm));
    // Attach write-through only after recovery: Restore must not
    // re-snapshot what is already on disk.
    registry.AttachStorage(storage.get());
    std::fprintf(stderr,
                 "fairclique_server: data dir %s (%zu graphs recovered, %zu "
                 "warm results)\n",
                 data_dir.c_str(), graphs, warm);
    return Status::OK();
  }

  /// Registers every storage graph not currently in the registry (already-
  /// registered names are skipped inside RecoverAll, so a `restore` on a
  /// running server does not re-read their snapshots or re-count them),
  /// then restores verifier-checked warm cache entries (see
  /// RestoreWarmEntries for the admission rule and its limits).
  Status RecoverFromStorage(size_t* graphs_out, size_t* warm_out) {
    std::set<std::string> registered;
    for (const auto& entry : registry.List()) registered.insert(entry->name);
    const bool initial = registered.empty();
    std::vector<storage::RecoveredGraph> recovered;
    FAIRCLIQUE_RETURN_NOT_OK(storage->RecoverAll(&recovered, &registered));
    size_t graphs = 0;
    for (storage::RecoveredGraph& r : recovered) {
      Status status =
          registry.Restore(r.name, r.graph, r.version, r.source);
      if (!status.ok()) return status;
      ++graphs;
    }
    // Warm entries only make sense for newly registered content; re-running
    // the verifier over an already-warm cache on a no-op `restore` would
    // just inflate the counters and churn the LRU order.
    size_t warm = (initial || graphs > 0) ? RestoreWarmCache() : 0;
    if (graphs_out != nullptr) *graphs_out = graphs;
    if (warm_out != nullptr) *warm_out = warm;
    return Status::OK();
  }

  size_t RestoreWarmCache() {
    std::vector<storage::WarmEntry> entries;
    Status status = storage->LoadWarmEntries(&entries);
    if (!status.ok()) {
      std::fprintf(stderr, "warm cache not restored: %s\n",
                   status.ToString().c_str());
      return 0;
    }
    WarmRestoreOutcome outcome =
        RestoreWarmEntries(registry, &cache, std::move(entries));
    storage->NoteWarmRestore(outcome.restored, outcome.rejected);
    return outcome.restored;
  }

  void HandleLoad(uint64_t id, const JsonObject& obj) {
    std::string name = GetString(obj, "name");
    if (name.empty()) return PrintError(id, "load: missing 'name'");
    Status status;
    if (obj.count("dataset") > 0) {
      // Validate before LoadDataset: unknown names and non-positive scales
      // are assertion failures in the library, not recoverable statuses.
      std::string dataset = GetString(obj, "dataset");
      double scale = GetNumber(obj, "scale", 1.0);
      bool known = false;
      for (const DatasetSpec& spec : StandardDatasets()) {
        if (spec.name == dataset) known = true;
      }
      if (!known) return PrintError(id, "load: unknown dataset " + dataset);
      if (scale <= 0) return PrintError(id, "load: scale must be > 0");
      status = registry.Add(name, LoadDataset(dataset, scale),
                            "dataset:" + dataset);
    } else {
      std::string path = GetString(obj, "path");
      if (path.empty()) return PrintError(id, "load: need 'path' or 'dataset'");
      std::string fmt = GetString(obj, "format", "auto");
      GraphFormat format = GraphFormat::kAuto;
      if (fmt == "edgelist") format = GraphFormat::kEdgeList;
      else if (fmt == "binary") format = GraphFormat::kBinary;
      else if (fmt == "fcg2") format = GraphFormat::kBinaryV2;
      else if (fmt == "metis") format = GraphFormat::kMetis;
      else if (fmt != "auto") return PrintError(id, "load: bad format " + fmt);
      status = registry.Load(name, path, GetString(obj, "attrs"), format);
    }
    if (!status.ok()) return PrintError(id, status.ToString());
    auto entry = registry.Get(name);
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("name", name)
        .Field("vertices", entry->graph->num_vertices())
        .Field("edges", entry->graph->num_edges())
        .Field("fingerprint", FingerprintHex(entry->fingerprint))
        .EndObject();
    PrintLine(w);
  }

  void HandleQuery(uint64_t id, const JsonObject& obj) {
    std::string name = GetString(obj, "graph");
    auto entry = registry.Get(name);
    if (entry == nullptr) {
      return PrintError(id, "query: graph '" + name + "' not loaded");
    }
    int k = static_cast<int>(GetNumber(obj, "k", 2));
    int delta = static_cast<int>(GetNumber(obj, "delta", 2));
    // The search asserts (aborts) on these; reject at the protocol boundary
    // so one bad query cannot take the server down.
    if (k < 1) return PrintError(id, "query: k must be >= 1");
    if (delta < 0) return PrintError(id, "query: delta must be >= 0");
    ExtraBound extra;
    if (!wire::ParseExtraBound(GetString(obj, "extra", "cp"), &extra)) {
      return PrintError(id, "query: bad 'extra'");
    }
    std::string preset = GetString(obj, "preset", "full");
    SearchOptions options;
    if (preset == "baseline") options = BaselineOptions(k, delta);
    else if (preset == "bounded") options = BoundedOptions(k, delta, extra);
    else if (preset == "full") options = FullOptions(k, delta, extra);
    else return PrintError(id, "query: bad preset " + preset);
    options.num_threads = static_cast<int>(GetNumber(obj, "threads", 1));

    QueryRequest request;
    request.graph = std::move(entry);
    request.options = options;
    request.deadline_seconds = GetNumber(obj, "deadline", 0.0);
    request.bypass_cache = GetBool(obj, "bypass_cache", false);
    request.bypass_prepared_cache = GetBool(obj, "bypass_prepared", false);
    request.explain = GetBool(obj, "explain", false);

    std::future<QueryResponse> future = executor.Submit(std::move(request));
    if (GetBool(obj, "async", false)) {
      pending.emplace_back(id, name, std::move(future));
      JsonWriter w;
      w.BeginObject()
          .Field("ok", true)
          .Field("id", static_cast<unsigned long long>(id))
          .Field("queued", true)
          .EndObject();
      PrintLine(w);
    } else {
      PrintQueryResponse(id, name, future.get());
    }
  }

  void HandleDrain() {
    for (auto& [id, graph, future] : pending) {
      PrintQueryResponse(id, graph, future.get());
    }
    pending.clear();
  }

  ServiceTelemetry GatherTelemetry() {
    ServiceTelemetry t;
    t.graphs = registry.List();
    t.registry = registry.Stats();
    t.cache = cache.Stats();
    t.prepared = prepared.Stats();
    t.executor = executor.metrics();
    if (storage != nullptr) {
      t.storage = storage->counters();
      t.has_storage = true;
    }
    if (watchdog != nullptr) {
      t.watchdog = watchdog->stats();
      t.has_watchdog = true;
    }
    return t;
  }

  void StartWatchdog(const obs::WatchdogOptions& options) {
    watchdog = std::make_unique<obs::Watchdog>(options);
    watchdog->SetExecutorSampler([this] {
      ExecutorMetrics m = executor.metrics();
      obs::WatchdogExecutorSample sample;
      sample.served = m.served;
      sample.deadline_misses = m.deadline_misses;
      sample.queue_depth = m.queue_depth;
      return sample;
    });
    watchdog->Start();
  }

  void HandleHealth(uint64_t id) {
    std::printf("%s\n", HealthJson(id, GatherTelemetry()).c_str());
  }

  void HandleJournal(uint64_t id, const JsonObject& obj) {
    size_t limit = static_cast<size_t>(GetNumber(obj, "limit", 64));
    obs::EventJournal& journal = obs::EventJournal::Default();
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("recorded",
               static_cast<unsigned long long>(journal.recorded()));
    w.Key("events").Raw(journal.Json(limit));
    w.EndObject();
    PrintLine(w);
  }

  /// Deliberate crash, for exercising the crash handler end to end (the CI
  /// crash-forensics smoke). Gated on FAIRCLIQUE_CRASH_TEST=1 so a stray
  /// command in a production workload cannot take the server down.
  /// wait_inflight polls until at least one query is mid-Branch (<= 10 s),
  /// so the postmortem provably captures an in-flight query.
  void HandleCrash(uint64_t id, const JsonObject& obj) {
    const char* enabled = std::getenv("FAIRCLIQUE_CRASH_TEST");
    if (enabled == nullptr || std::string(enabled) != "1") {
      return PrintError(id, "crash: set FAIRCLIQUE_CRASH_TEST=1 to enable");
    }
    if (GetBool(obj, "wait_inflight", false)) {
      for (int i = 0; i < 1000; ++i) {
        if (obs::ProgressRegistry::Default().size() > 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    std::fflush(stdout);
    std::raise(SIGSEGV);
  }

  void HandleStats(uint64_t id) {
    std::printf("%s\n", StatsJson(id, GatherTelemetry()).c_str());
  }

  void HandleMetrics(uint64_t id, const JsonObject& obj) {
    if (GetString(obj, "format") != "prometheus") return HandleStats(id);
    // Raw multi-line exposition; the trailing "# EOF" line marks the end
    // for line-oriented consumers sharing the stream with JSON responses.
    std::fputs(PrometheusText(GatherTelemetry()).c_str(), stdout);
  }

  void HandleSlowlog(uint64_t id, const JsonObject& obj) {
    if (obj.count("trace_id") > 0) {
      // Filtered form: behave like `trace` (including its structured miss),
      // so clients can use one command for both listing and lookup.
      return HandleTrace(id, obj);
    }
    size_t limit = static_cast<size_t>(GetNumber(obj, "limit", 0));
    auto traces = obs::Slowlog::Default().Slowest(limit);
    for (const auto& trace : traces) {
      std::printf("%s\n", TraceJson(*trace).c_str());
    }
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("traces", traces.size())
        .EndObject();
    PrintLine(w);
  }

  void HandleTrace(uint64_t id, const JsonObject& obj) {
    uint64_t trace_id = static_cast<uint64_t>(GetNumber(obj, "trace_id", 0));
    auto trace = obs::Slowlog::Default().Find(trace_id);
    if (trace == nullptr) {
      // Structured miss: echoes the requested id and a machine-readable
      // reason, so retention misses are distinguishable from bad requests.
      std::printf("%s\n", wire::TraceNotFoundJson(id, trace_id).c_str());
      return;
    }
    std::printf("%s\n", TraceJson(*trace).c_str());
  }

  void HandlePs(uint64_t id) {
    auto inflight = obs::ProgressRegistry::Default().List();
    for (const auto& snapshot : inflight) {
      std::printf("%s\n", ProgressJson(snapshot).c_str());
    }
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("inflight", inflight.size())
        .EndObject();
    PrintLine(w);
  }

  void HandleProfile(uint64_t id, const JsonObject& obj) {
    obs::Profiler& profiler = obs::Profiler::Default();
    std::string action = GetString(obj, "action", "dump");
    if (action == "start") {
      int hz = static_cast<int>(GetNumber(obj, "hz", 99));
      if (hz < 1) return PrintError(id, "profile: hz must be >= 1");
      if (!profiler.Start(hz)) {
        return PrintError(id, "profile: already running (or SIGPROF "
                              "unavailable on this platform)");
      }
    } else if (action == "stop") {
      if (!profiler.Stop()) return PrintError(id, "profile: not running");
    } else if (action == "reset") {
      if (!profiler.Reset()) {
        return PrintError(id, "profile: stop before reset");
      }
    } else if (action == "dump") {
      // Folded stacks first ("frame;frame count" — feed them straight to
      // flamegraph.pl), then the JSON ack that terminates the dump.
      std::fputs(profiler.DumpFolded().c_str(), stdout);
    } else {
      return PrintError(id, "profile: bad action '" + action + "'");
    }
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("action", action)
        .Field("running", profiler.running())
        .Field("hz", profiler.hz())
        .Field("samples", static_cast<unsigned long long>(profiler.samples()))
        .Field("dropped", static_cast<unsigned long long>(profiler.dropped()))
        .Field("stacks", profiler.stacks())
        .EndObject();
    PrintLine(w);
  }

  void HandlePersist(uint64_t id) {
    if (storage == nullptr) {
      return PrintError(id, "persist: server started without --data-dir");
    }
    std::vector<storage::WarmEntry> entries = cache.ExportWarmEntries();
    Status status = storage->SaveWarmEntries(entries);
    if (!status.ok()) return PrintError(id, status.ToString());
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("warm_entries", entries.size())
        .EndObject();
    PrintLine(w);
  }

  void HandleRestore(uint64_t id) {
    if (storage == nullptr) {
      return PrintError(id, "restore: server started without --data-dir");
    }
    size_t graphs = 0, warm = 0;
    Status status = RecoverFromStorage(&graphs, &warm);
    if (!status.ok()) return PrintError(id, status.ToString());
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("graphs_restored", graphs)
        .Field("warm_restored", warm)
        .EndObject();
    PrintLine(w);
  }

  void HandleUpdate(uint64_t id, const JsonObject& obj) {
    std::string name = GetString(obj, "graph");
    auto entry = registry.Get(name);
    if (entry == nullptr) {
      return PrintError(id, "update: graph '" + name + "' not loaded");
    }

    std::vector<UpdateOp> batch;
    for (const std::string& token :
         wire::SplitList(GetString(obj, "add_vertices"))) {
      Attribute attr;
      if (!wire::ParseAttrToken(token, &attr)) {
        return PrintError(id, "update: bad attribute '" + token + "'");
      }
      batch.push_back(AddVertexOp(attr));
    }
    for (const std::string& token :
         wire::SplitList(GetString(obj, "add_edges"))) {
      VertexId u, v;
      if (!wire::ParseVertexPair(token, '-', &u, &v)) {
        return PrintError(id, "update: bad edge '" + token + "'");
      }
      batch.push_back(AddEdgeOp(u, v));
    }
    for (const std::string& token :
         wire::SplitList(GetString(obj, "remove_edges"))) {
      VertexId u, v;
      if (!wire::ParseVertexPair(token, '-', &u, &v)) {
        return PrintError(id, "update: bad edge '" + token + "'");
      }
      batch.push_back(RemoveEdgeOp(u, v));
    }
    for (const std::string& token :
         wire::SplitList(GetString(obj, "set_attrs"))) {
      size_t colon = token.find(':');
      Attribute attr;
      VertexId v;
      if (colon == std::string::npos || colon == 0 ||
          !wire::ParseAttrToken(token.substr(colon + 1), &attr) ||
          !wire::ParseVertexId(token.c_str(), token.c_str() + colon, &v)) {
        return PrintError(id, "update: bad set_attrs token '" + token + "'");
      }
      batch.push_back(SetAttributeOp(v, attr));
    }
    if (batch.empty()) {
      return PrintError(id, "update: empty batch (nothing to apply)");
    }

    auto [it, created] = dynamics.try_emplace(name);
    if (created) {
      // Seed at the entry's registered version so epochs continue across a
      // restart (a recovered graph re-enters at its persisted epoch, not 0).
      it->second =
          std::make_unique<DynamicGraph>(*entry->graph, entry->version);
    }
    DynamicGraph& dyn = *it->second;

    UpdateSummary summary;
    Status status = dyn.Apply(batch, &summary);
    if (!status.ok()) return PrintError(id, status.ToString());
    if (storage != nullptr) {
      // Write-ahead: the batch is fsync'd into the WAL before Replace
      // publishes the epoch. A failed append is survivable — the registry's
      // write-through then persists a fresh snapshot instead — so it is
      // reported on stderr, not to the client.
      status = storage->AppendUpdate(name, summary, batch);
      if (!status.ok()) {
        std::fprintf(stderr, "WAL append for '%s' failed (%s); snapshot "
                             "write-through will cover the epoch\n",
                     name.c_str(), status.ToString().c_str());
      }
    }
    ReplaceReport report;
    status = registry.Replace(name, dyn.snapshot(), summary.version, &summary,
                              &report);
    if (!status.ok()) return PrintError(id, status.ToString());

    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("graph", name)
        .Field("version", static_cast<unsigned long long>(summary.version))
        .Field("fingerprint", FingerprintHex(summary.fingerprint))
        .Field("vertices", dyn.num_vertices())
        .Field("edges", dyn.num_edges())
        .Field("vertices_added", summary.vertices_added)
        .Field("edges_added", summary.edges_added)
        .Field("edges_removed", summary.edges_removed)
        .Field("attrs_changed", summary.attributes_changed)
        .Field("insert_only", summary.insert_only());
    w.Key("cache")
        .BeginObject()
        .Field("invalidated", report.cache.invalidated)
        .Field("republished", report.cache.republished)
        .Field("hints", report.cache.hints)
        .EndObject();
    w.Key("prepared")
        .BeginObject()
        .Field("invalidated", report.prepared.invalidated)
        .Field("forwarded", report.prepared.forwarded)
        .EndObject();
    w.EndObject();
    PrintLine(w);
  }

  void HandleSnapshot(uint64_t id, const JsonObject& obj) {
    std::string name = GetString(obj, "graph");
    auto entry = registry.Get(name);
    if (entry == nullptr) {
      return PrintError(id, "snapshot: graph '" + name + "' not loaded");
    }
    std::string path = GetString(obj, "path");
    if (!path.empty()) {
      std::string fmt = GetString(obj, "format", "binary");
      Status status;
      if (fmt == "binary") status = SaveBinaryGraph(*entry->graph, path);
      else if (fmt == "fcg2") status = storage::SaveFcg2(*entry->graph, path);
      else return PrintError(id, "snapshot: bad format " + fmt);
      // An unwritable path is the client's error to hear about: both savers
      // write atomically (tmp + rename), so a failure here means nothing
      // was saved — report it instead of answering ok with no file.
      if (!status.ok()) return PrintError(id, status.ToString());
    }
    JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("graph", name)
        .Field("version", static_cast<unsigned long long>(entry->version))
        .Field("fingerprint", FingerprintHex(entry->fingerprint))
        .Field("vertices", entry->graph->num_vertices())
        .Field("edges", entry->graph->num_edges())
        .Field("source", entry->source);
    if (!path.empty()) w.Field("saved", path);
    w.EndObject();
    PrintLine(w);
  }

  void HandleEvict(uint64_t id, const JsonObject& obj) {
    if (GetBool(obj, "cache", false)) {
      cache.Clear();
      prepared.Clear();
      JsonWriter w;
      w.BeginObject()
          .Field("ok", true)
          .Field("id", static_cast<unsigned long long>(id))
          .Field("cleared", "cache")
          .EndObject();
      PrintLine(w);
      return;
    }
    std::string name = GetString(obj, "graph");
    if (name.empty()) return PrintError(id, "evict: need 'graph' or 'cache'");
    bool evicted = registry.Evict(name);
    dynamics.erase(name);
    JsonWriter w;
    w.BeginObject()
        .Field("ok", evicted)
        .Field("id", static_cast<unsigned long long>(id))
        .Field("evicted", name)
        .EndObject();
    PrintLine(w);
  }

  /// Returns false when the session should end.
  bool HandleLine(const std::string& line) {
    std::string trimmed = line;
    size_t start = trimmed.find_first_not_of(" \t\r");
    if (start == std::string::npos || trimmed[start] == '#') return true;
    uint64_t id = next_id++;
    JsonObject obj;
    std::string error;
    if (!wire::ParseJsonObject(line, &obj, &error)) {
      PrintError(id, "parse error: " + error);
      return true;
    }
    std::string cmd = GetString(obj, "cmd");
    if (obj.count("id") > 0) {
      // Accept only ids that survive a double -> uint64 round trip; a
      // negative or huge value would be UB to cast, so fall back to the
      // auto-assigned id instead.
      double requested = GetNumber(obj, "id", 0);
      if (requested >= 0 && requested <= 9007199254740992.0) {
        id = static_cast<uint64_t>(requested);
      }
    }
    if (cmd == "load") HandleLoad(id, obj);
    else if (cmd == "query") HandleQuery(id, obj);
    else if (cmd == "update") HandleUpdate(id, obj);
    else if (cmd == "snapshot") HandleSnapshot(id, obj);
    else if (cmd == "persist") HandlePersist(id);
    else if (cmd == "restore") HandleRestore(id);
    else if (cmd == "drain") HandleDrain();
    else if (cmd == "stats") HandleStats(id);
    else if (cmd == "metrics") HandleMetrics(id, obj);
    else if (cmd == "slowlog") HandleSlowlog(id, obj);
    else if (cmd == "trace") HandleTrace(id, obj);
    else if (cmd == "ps") HandlePs(id);
    else if (cmd == "health") HandleHealth(id);
    else if (cmd == "journal") HandleJournal(id, obj);
    else if (cmd == "crash") HandleCrash(id, obj);
    else if (cmd == "profile") HandleProfile(id, obj);
    else if (cmd == "evict") HandleEvict(id, obj);
    else if (cmd == "quit") return false;
    else PrintError(id, "unknown cmd '" + cmd + "'");
    std::fflush(stdout);
    return true;
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: fairclique_server [--workers N] [--cache N] "
               "[--prepared N] [--queue N]\n"
               "                         [--data-dir PATH] [--wal-compact N] "
               "[--wal-group-window USEC]\n"
               "                         [--slowlog N] [--journal N] "
               "[--log-level LEVEL]\n"
               "                         [--watchdog-interval-ms N] "
               "[--watchdog-stall-ms N]\n"
               "                         [--no-watchdog] [commands.jsonl]\n"
               "reads JSON-lines commands from the file or stdin; with "
               "--data-dir the service\n"
               "is durable (FCG2 snapshots + group-committed update WAL), "
               "recovers its state\n"
               "on startup, and installs a crash handler that writes a "
               "postmortem (crash-<pid>.json)\n"
               "into the data dir on a fatal signal; --journal sizes the "
               "per-thread event rings;\n"
               "--log-level is debug|info|warning|error (default warning)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  int workers = 2;
  size_t cache_capacity = 128;
  size_t prepared_capacity = 16;
  size_t queue_capacity = 256;
  size_t wal_compact = 64;
  int64_t wal_group_window = 0;
  obs::WatchdogOptions watchdog_options;
  bool watchdog_enabled = true;
  std::string data_dir;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) workers = std::atoi(argv[++i]);
    else if (arg == "--cache" && i + 1 < argc) {
      cache_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--prepared" && i + 1 < argc) {
      prepared_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--queue" && i + 1 < argc) {
      queue_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--wal-compact" && i + 1 < argc) {
      wal_compact = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--wal-group-window" && i + 1 < argc) {
      wal_group_window = std::atoll(argv[++i]);
    } else if (arg == "--slowlog" && i + 1 < argc) {
      // Re-caps the process-wide slowlog before any query runs.
      obs::Slowlog::Default().Reset(
          static_cast<size_t>(std::atoll(argv[++i])));
    } else if (arg == "--journal" && i + 1 < argc) {
      // Re-sizes the per-thread event rings before anything records.
      obs::EventJournal::Default().ResizeForStartup(
          static_cast<size_t>(std::atoll(argv[++i])));
    } else if (arg == "--log-level" && i + 1 < argc) {
      LogLevel level;
      if (!ParseLogLevel(argv[++i], &level)) {
        std::fprintf(stderr, "bad --log-level '%s' (want debug|info|"
                             "warning|error)\n", argv[i]);
        return Usage();
      }
      SetLogLevel(level);
    } else if (arg == "--watchdog-interval-ms" && i + 1 < argc) {
      watchdog_options.interval_micros = std::atoll(argv[++i]) * 1000;
    } else if (arg == "--watchdog-stall-ms" && i + 1 < argc) {
      watchdog_options.stall_after_micros = std::atoll(argv[++i]) * 1000;
    } else if (arg == "--no-watchdog") {
      watchdog_enabled = false;
    } else if (arg == "--help" || arg == "-h" || arg[0] == '-') {
      return Usage();
    } else {
      script = arg;
    }
  }

  Server server(workers, cache_capacity, prepared_capacity, queue_capacity);
  if (!data_dir.empty()) {
    Status status =
        server.EnableStorage(data_dir, wal_compact, wal_group_window);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot enable storage: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    // Crash forensics need somewhere durable to write; the data dir is the
    // natural home (postmortems sit next to the state they describe).
    obs::CrashHandlerOptions crash_options;
    crash_options.dir = data_dir;
    if (!obs::InstallCrashHandler(crash_options)) {
      std::fprintf(stderr, "crash handler not installed (cannot open %s)\n",
                   data_dir.c_str());
    }
  }
  if (watchdog_enabled) server.StartWatchdog(watchdog_options);
  std::ifstream file;
  if (!script.empty()) {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script.c_str());
      return 1;
    }
  }
  std::istream& in = script.empty() ? std::cin : file;
  std::string line;
  while (std::getline(in, line)) {
    if (!server.HandleLine(line)) break;
  }
  server.HandleDrain();  // flush async queries left at EOF
  return 0;
}
