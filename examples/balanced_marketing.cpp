// Balanced influencer-group discovery on a social network (the paper's NBA
// case study / product-marketing motivation): find the largest tightly-knit
// group containing both local (a) and overseas (b) members, and show how the
// linear-time heuristic compares with the exact search.
//
//   $ ./build/examples/balanced_marketing

#include <cstdio>

#include "core/fairclique.h"
#include "datasets/datasets.h"

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  // A social network with strong nationality homophily (players cluster by
  // league/country) and a few cross-cutting star cliques.
  Rng rng(42);
  AttributedGraph g = ChungLuPowerLaw(1200, 12.0, 2.3, rng);
  g = AssignAttributesHomophily(g, 0.6, 0.7, rng);
  for (uint32_t size : {10u, 12u, 14u}) {
    g = PlantClique(g, size, /*balanced=*/true, rng, nullptr);
  }
  std::printf("social network: %u members, %u ties; %lld local, %lld overseas\n\n",
              g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.attribute_counts().a()),
              static_cast<long long>(g.attribute_counts().b()));

  const int k = 5;      // At least 5 local and 5 overseas stars.
  const int delta = 3;  // Allow a gap of at most 3 between the groups.
  FairnessParams params{k, delta};

  // Fast path: the linear-time heuristic (HeurRFC).
  WallTimer heur_timer;
  HeuristicResult heur = HeurRFC(g, {params, 1});
  int64_t heur_us = heur_timer.ElapsedMicros();

  // Exact path: full MaxRFC with bounds and heuristic priming.
  SearchResult exact =
      FindMaximumFairClique(g, FullOptions(k, delta, ExtraBound::kColorfulPath));

  std::printf("%-34s %8s %8s %8s %12s\n", "method", "group", "local",
              "overseas", "micros");
  std::printf("%-34s %8zu %8lld %8lld %12lld\n", "HeurRFC (linear time)",
              heur.clique.size(),
              static_cast<long long>(heur.clique.attr_counts.a()),
              static_cast<long long>(heur.clique.attr_counts.b()),
              static_cast<long long>(heur_us));
  std::printf("%-34s %8zu %8lld %8lld %12lld\n",
              "MaxRFC+ub+HeurRFC (exact)", exact.clique.size(),
              static_cast<long long>(exact.clique.attr_counts.a()),
              static_cast<long long>(exact.clique.attr_counts.b()),
              static_cast<long long>(exact.stats.total_micros));
  std::printf("\nheuristic color-count upper bound: %lld (exact answer %zu)\n",
              static_cast<long long>(heur.color_upper_bound),
              exact.clique.size());

  // Sanity: both results are verified fair cliques; heuristic <= exact.
  bool ok = exact.clique.size() >= heur.clique.size() &&
            VerifyFairClique(g, exact.clique.vertices, params).ok() &&
            (heur.clique.empty() ||
             VerifyFairClique(g, heur.clique.vertices, params).ok());
  std::printf("consistency checks: %s\n", ok ? "passed" : "FAILED");
  return ok ? 0 : 1;
}
