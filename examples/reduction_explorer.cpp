// Reduction explorer: a small CLI that loads a graph — either one of the
// built-in dataset stand-ins or an edge-list file — and reports, per k, how
// much of the graph each reduction stage eliminates, plus the upper bounds
// on the maximum fair clique size of what remains. Demonstrates the IO API
// and the diagnostic surface of the library.
//
//   $ ./build/examples/reduction_explorer                      # dblp-s, k=2..6
//   $ ./build/examples/reduction_explorer aminer-s 4 8
//   $ ./build/examples/reduction_explorer path/to/edges.txt 2 5 [attrs.txt]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fairclique.h"
#include "datasets/datasets.h"

namespace {

bool IsBuiltinDataset(const std::string& name) {
  for (const auto& spec : fairclique::StandardDatasets()) {
    if (spec.name == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  std::string source = argc > 1 ? argv[1] : "dblp-s";
  int k_lo = argc > 2 ? std::atoi(argv[2]) : 2;
  int k_hi = argc > 3 ? std::atoi(argv[3]) : 6;
  std::string attr_path = argc > 4 ? argv[4] : "";
  if (k_lo < 1 || k_hi < k_lo) {
    std::fprintf(stderr, "invalid k range [%d, %d]\n", k_lo, k_hi);
    return 2;
  }

  AttributedGraph g;
  if (IsBuiltinDataset(source)) {
    g = LoadDataset(source);
  } else {
    Status st = LoadAttributedGraph(source, attr_path, {}, &g);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", source.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    if (attr_path.empty()) {
      // No attribute file: assign Bernoulli(1/2) attributes, as the paper
      // does for non-attributed datasets.
      Rng rng(7);
      g = AssignAttributesBernoulli(g, 0.5, rng);
    }
  }

  std::printf("graph %s: %u vertices, %u edges, %lld a / %lld b\n\n",
              source.c_str(), g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.attribute_counts().a()),
              static_cast<long long>(g.attribute_counts().b()));
  std::printf("%-4s | %22s | %22s | %22s | %8s %8s\n", "k",
              "EnColorfulCore V/E", "ColorfulSup V/E", "EnColorfulSup V/E",
              "ubAD", "ubcp");

  for (int k = k_lo; k <= k_hi; ++k) {
    ReductionPipelineResult r = ReduceForFairClique(g, k, ReductionOptions{});
    char s0[32], s1[32], s2[32];
    std::snprintf(s0, sizeof(s0), "%u / %u", r.stages[0].vertices_left,
                  r.stages[0].edges_left);
    std::snprintf(s1, sizeof(s1), "%u / %u", r.stages[1].vertices_left,
                  r.stages[1].edges_left);
    std::snprintf(s2, sizeof(s2), "%u / %u", r.stages[2].vertices_left,
                  r.stages[2].edges_left);
    int64_t ad = ComputeUpperBound(
        r.reduced, /*delta=*/3, {.use_advanced = true, .extra = ExtraBound::kNone});
    int64_t cp = ComputeUpperBound(
        r.reduced, /*delta=*/3,
        {.use_advanced = true, .extra = ExtraBound::kColorfulPath});
    std::printf("%-4d | %22s | %22s | %22s | %8lld %8lld\n", k, s0, s1, s2,
                static_cast<long long>(ad), static_cast<long long>(cp));
  }
  return 0;
}
