// Team formation on a collaboration network (the paper's DBAI / Aminer case
// studies, Section VI-C): find the largest well-connected team whose members
// balance two research areas (or genders), sweeping the fairness knobs.
//
// The collaboration network is a synthetic DBLP-style graph with a planted
// interdisciplinary group serving as ground truth: a 14-author clique with
// 7 "database" (a) and 7 "AI" (b) members.
//
//   $ ./build/examples/team_formation

#include <cstdio>
#include <vector>

#include "core/fairclique.h"
#include "datasets/datasets.h"

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  // A DBLP-like stand-in: many small author cliques over a sparse backbone.
  Rng rng(2024);
  PlantedCliqueOptions opts;
  opts.num_vertices = 2000;
  opts.background_edge_prob = 0.001;
  opts.num_cliques = 150;
  opts.min_clique_size = 3;
  opts.max_clique_size = 9;
  AttributedGraph g = PlantedCliqueGraph(opts, rng);
  g = AssignAttributesBernoulli(g, 0.5, rng);

  // Plant the interdisciplinary team we hope to recover.
  std::vector<VertexId> team;
  g = PlantClique(g, 14, /*balanced=*/true, rng, &team);
  std::printf("collaboration network: %u authors, %u coauthor edges\n",
              g.num_vertices(), g.num_edges());
  std::printf("planted interdisciplinary team: %zu members\n\n", team.size());

  // Sweep k: the minimum representation required from each research area.
  std::printf("%-28s %8s %6s %6s %10s\n", "requirement", "team", "DB", "AI",
              "micros");
  for (int k = 3; k <= 7; ++k) {
    const int delta = 2;
    SearchResult r = FindMaximumFairClique(
        g, FullOptions(k, delta, ExtraBound::kColorfulDegeneracy));
    std::printf(">=%d of each area, |diff|<=%d  %8zu %6lld %6lld %10lld\n", k,
                delta, r.clique.size(),
                static_cast<long long>(r.clique.attr_counts.a()),
                static_cast<long long>(r.clique.attr_counts.b()),
                static_cast<long long>(r.stats.total_micros));
  }

  // Tighten delta at k = 5: stricter balance can only shrink the team.
  std::printf("\n%-28s %8s %6s %6s\n", "balance tolerance", "team", "DB", "AI");
  for (int delta = 0; delta <= 4; ++delta) {
    SearchResult r = FindMaximumFairClique(
        g, FullOptions(5, delta, ExtraBound::kColorfulDegeneracy));
    std::printf("delta = %-20d %8zu %6lld %6lld\n", delta, r.clique.size(),
                static_cast<long long>(r.clique.attr_counts.a()),
                static_cast<long long>(r.clique.attr_counts.b()));
  }

  // Did we recover the planted team?
  SearchResult r = FindMaximumFairClique(
      g, FullOptions(5, 2, ExtraBound::kColorfulDegeneracy));
  bool planted_recovered = r.clique.size() >= team.size();
  std::printf("\nmaximum fair team has %zu members (planted had %zu): %s\n",
              r.clique.size(), team.size(),
              planted_recovered ? "planted team recovered or beaten"
                                : "planted team NOT recovered");
  return planted_recovered ? 0 : 1;
}
