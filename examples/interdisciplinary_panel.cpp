// Interdisciplinary panel selection with more than two attribute values —
// the d-ary generalization of the paper's model (src/multiattr/). Scenario:
// assemble the largest fully-connected review panel drawing at least k
// members from each of three research areas (databases, machine learning,
// systems) with the per-area head-counts spread by at most delta.
//
//   $ ./build/examples/interdisciplinary_panel

#include <cstdio>

#include "core/fairclique.h"
#include "multiattr/multi_fair_clique.h"

int main() {
  using namespace fairclique;
  SetLogLevel(LogLevel::kWarning);

  // Collaboration network with planted cross-area groups.
  Rng rng(7);
  PlantedCliqueOptions opts;
  opts.num_vertices = 1500;
  opts.background_edge_prob = 0.0015;
  opts.num_cliques = 120;
  opts.min_clique_size = 3;
  opts.max_clique_size = 8;
  AttributedGraph base = PlantedCliqueGraph(opts, rng);
  MultiAttrGraph network = AssignLabelsUniform(base, /*num_labels=*/3, rng);
  std::vector<VertexId> planted;
  network = PlantBalancedMultiClique(network, 15, rng, &planted);

  const char* kAreaNames[3] = {"databases", "ML", "systems"};
  std::printf("network: %u researchers, %u collaboration edges\n",
              network.graph().num_vertices(), network.graph().num_edges());
  std::printf("area sizes:");
  for (int l = 0; l < 3; ++l) {
    std::printf(" %s=%lld", kAreaNames[l],
                static_cast<long long>(network.label_counts()[l]));
  }
  std::printf("\nplanted cross-area panel: %zu members (5/5/5)\n\n",
              planted.size());

  std::printf("%-34s %6s %6s %6s %6s\n", "requirement", "panel", "DB", "ML",
              "SYS");
  for (int k = 2; k <= 5; ++k) {
    MultiFairnessParams params{k, 1};
    MultiSearchResult r = FindMaximumMultiFairClique(network, params);
    std::printf(">=%d per area, spread<=1 %12zu %6lld %6lld %6lld\n", k,
                r.clique.size(), static_cast<long long>(r.label_counts[0]),
                static_cast<long long>(r.label_counts[1]),
                static_cast<long long>(r.label_counts[2]));
  }

  MultiFairnessParams params{5, 1};
  MultiSearchResult r = FindMaximumMultiFairClique(network, params);
  bool ok = r.clique.size() >= planted.size() &&
            IsMultiFairClique(network, r.clique, params);
  std::printf("\nbest panel at k=5: %zu members — %s\n", r.clique.size(),
              ok ? "planted panel recovered or beaten, fairness verified"
                 : "FAILED to recover the planted panel");
  return ok ? 0 : 1;
}
