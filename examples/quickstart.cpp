// Quickstart: build a small attributed graph, search for the maximum
// relative fair clique, and inspect the result.
//
//   $ ./build/examples/quickstart
//
// Uses the paper's running example (Fig. 1): 15 vertices, attributes a/b,
// parameters k = 3 and delta = 1. The expected answer has 7 vertices.

#include <cstdio>

#include "core/fairclique.h"

int main() {
  using namespace fairclique;

  // 1. Build a graph. PaperFigure1Graph() wires the paper's example; your
  //    own graphs go through GraphBuilder:
  //
  //      GraphBuilder builder(num_vertices);
  //      builder.SetAttribute(v, Attribute::kA);
  //      builder.AddEdge(u, v);
  //      AttributedGraph g = builder.Build();
  //
  AttributedGraph g = PaperFigure1Graph();
  std::printf("graph: %u vertices, %u edges (%lld with attribute a, %lld b)\n",
              g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.attribute_counts().a()),
              static_cast<long long>(g.attribute_counts().b()));

  // 2. Configure the search. FullOptions enables the reduction pipeline,
  //    the ubAD bound group + one advanced bound, and HeurRFC priming —
  //    the strongest configuration from the paper.
  const int k = 3;
  const int delta = 1;
  SearchOptions options = FullOptions(k, delta, ExtraBound::kColorfulPath);

  // 3. Run it.
  SearchResult result = FindMaximumFairClique(g, options);

  // 4. Inspect the answer.
  if (result.clique.empty()) {
    std::printf("no (%d, %d)-relative fair clique exists\n", k, delta);
    return 0;
  }
  std::printf("maximum (%d, %d)-relative fair clique: %zu vertices "
              "(%lld a, %lld b)\n  members:",
              k, delta, result.clique.size(),
              static_cast<long long>(result.clique.attr_counts.a()),
              static_cast<long long>(result.clique.attr_counts.b()));
  for (VertexId v : result.clique.vertices) {
    // Print 1-based ids to match the paper's figure labels v1..v15.
    std::printf(" v%u(%c)", v + 1, g.attribute(v) == Attribute::kA ? 'a' : 'b');
  }
  std::printf("\n");

  // 5. Results can be independently re-verified.
  Status st = VerifyFairClique(g, result.clique.vertices, options.params);
  std::printf("verification: %s\n", st.ToString().c_str());
  std::printf("search explored %llu branch nodes in %lld us\n",
              static_cast<unsigned long long>(result.stats.nodes),
              static_cast<long long>(result.stats.total_micros));
  return st.ok() ? 0 : 1;
}
