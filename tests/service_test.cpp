#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/options_key.h"
#include "datasets/datasets.h"
#include "graph/binary_io.h"
#include "graph/fingerprint.h"
#include "graph/io.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- fingerprint

TEST(FingerprintTest, InsertionOrderIndependent) {
  GraphBuilder b1(4), b2(4);
  b1.AddEdge(0, 1);
  b1.AddEdge(1, 2);
  b1.AddEdge(2, 3);
  b2.AddEdge(2, 3);
  b2.AddEdge(0, 1);
  b2.AddEdge(2, 1);  // same undirected edge, reversed
  b1.SetAttribute(0, Attribute::kB);
  b2.SetAttribute(0, Attribute::kB);
  EXPECT_EQ(GraphFingerprint(b1.Build()), GraphFingerprint(b2.Build()));
}

TEST(FingerprintTest, SensitiveToContent) {
  AttributedGraph base = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}});
  AttributedGraph extra_edge = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  AttributedGraph attr_flip = MakeGraph("babb", {{0, 1}, {1, 2}, {2, 3}});
  uint64_t fp = GraphFingerprint(base);
  EXPECT_NE(fp, GraphFingerprint(extra_edge));
  EXPECT_NE(fp, GraphFingerprint(attr_flip));
  EXPECT_EQ(FingerprintHex(fp).size(), 16u);
}

TEST(FingerprintTest, BinaryRoundTripPreservesFingerprint) {
  // FCG1 stores exact ids and attributes, so the reloaded graph is
  // bit-identical content and must fingerprint identically. (Text edge
  // lists may remap ids on load; the fingerprint is label-sensitive by
  // design, because results report vertex ids.)
  AttributedGraph g = RandomAttributedGraph(60, 0.15, 0xF00D);
  std::string bin_path = TempPath("fc_fp_graph.fcg");
  ASSERT_TRUE(SaveBinaryGraph(g, bin_path).ok());
  AttributedGraph from_bin;
  ASSERT_TRUE(LoadBinaryGraph(bin_path, &from_bin).ok());
  EXPECT_EQ(GraphFingerprint(g), GraphFingerprint(from_bin));
  std::remove(bin_path.c_str());
}

// ---------------------------------------------------------------- options key

TEST(OptionsKeyTest, PresetsBuiltTwiceCollide) {
  EXPECT_EQ(CanonicalOptionsKey(BaselineOptions(3, 1)),
            CanonicalOptionsKey(BaselineOptions(3, 1)));
  EXPECT_EQ(CanonicalOptionsKey(BoundedOptions(3, 1, ExtraBound::kColorfulPath)),
            CanonicalOptionsKey(BoundedOptions(3, 1, ExtraBound::kColorfulPath)));
  EXPECT_EQ(CanonicalOptionsKey(FullOptions(2, 2, ExtraBound::kHIndex)),
            CanonicalOptionsKey(FullOptions(2, 2, ExtraBound::kHIndex)));
}

TEST(OptionsKeyTest, HandRolledOptionsEqualToPresetCollide) {
  // BoundedOptions is BaselineOptions + advanced bounds; building the same
  // struct by hand must produce the same key.
  SearchOptions by_hand = BaselineOptions(3, 1);
  by_hand.bounds = {.use_advanced = true, .extra = ExtraBound::kColorfulPath};
  EXPECT_EQ(CanonicalOptionsKey(by_hand),
            CanonicalOptionsKey(BoundedOptions(3, 1, ExtraBound::kColorfulPath)));
}

TEST(OptionsKeyTest, AnswerIrrelevantFieldsCanonicalizedAway) {
  SearchOptions base = FullOptions(3, 1, ExtraBound::kColorfulPath);
  SearchOptions threaded = base;
  threaded.num_threads = 8;
  SearchOptions bitset = base;
  bitset.engine = SearchEngine::kBitset;
  SearchOptions vec = base;
  vec.engine = SearchEngine::kVector;
  EXPECT_EQ(CanonicalOptionsKey(base), CanonicalOptionsKey(threaded));
  EXPECT_EQ(CanonicalOptionsKey(base), CanonicalOptionsKey(bitset));
  EXPECT_EQ(CanonicalOptionsKey(base), CanonicalOptionsKey(vec));
}

TEST(OptionsKeyTest, SemanticFieldsDistinguish) {
  SearchOptions base = FullOptions(3, 1, ExtraBound::kColorfulPath);
  std::vector<SearchOptions> variants(7, base);
  variants[0].params.k = 4;
  variants[1].params.delta = 2;
  variants[2].bounds.extra = ExtraBound::kNone;
  variants[3].use_heuristic = false;
  variants[4].reductions.use_colorful_sup = false;
  variants[5].node_limit = 1000;
  variants[6].time_limit_seconds = 1.5;
  std::string base_key = CanonicalOptionsKey(base);
  for (const SearchOptions& v : variants) {
    EXPECT_NE(base_key, CanonicalOptionsKey(v));
  }
}

// ------------------------------------------------------------------ registry

TEST(GraphRegistryTest, AddGetEvictLifecycle) {
  GraphRegistry registry;
  AttributedGraph g = MakeGraph("aabb", {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  uint64_t fp = GraphFingerprint(g);
  ASSERT_TRUE(registry.Add("g", std::move(g)).ok());
  EXPECT_EQ(registry.size(), 1u);

  auto entry = registry.Get("g");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->fingerprint, fp);
  EXPECT_EQ(entry->graph->num_vertices(), 4u);
  EXPECT_EQ(registry.Get("missing"), nullptr);

  EXPECT_TRUE(registry.Evict("g"));
  EXPECT_FALSE(registry.Evict("g"));
  EXPECT_EQ(registry.Get("g"), nullptr);
  // The handed-out entry outlives eviction.
  EXPECT_EQ(entry->graph->num_vertices(), 4u);
}

TEST(GraphRegistryTest, DoubleLoadRejectedUntilEvicted) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", MakeGraph("ab", {{0, 1}})).ok());
  Status dup = registry.Add("g", MakeGraph("ab", {{0, 1}}));
  EXPECT_TRUE(dup.IsInvalidArgument());
  EXPECT_TRUE(registry.Evict("g"));
  EXPECT_TRUE(registry.Add("g", MakeGraph("ab", {{0, 1}})).ok());
}

TEST(GraphRegistryTest, LoadsTextAndBinaryWithAutoDetection) {
  AttributedGraph g = RandomAttributedGraph(40, 0.2, 0xBEEF);
  std::string edge_path = TempPath("fc_reg_edges.txt");
  std::string attr_path = TempPath("fc_reg_attrs.txt");
  std::string bin_path = TempPath("fc_reg_graph.fcg");
  ASSERT_TRUE(SaveEdgeList(g, edge_path).ok());
  ASSERT_TRUE(SaveAttributes(g, attr_path).ok());
  ASSERT_TRUE(SaveBinaryGraph(g, bin_path).ok());

  GraphRegistry registry;
  ASSERT_TRUE(registry.Load("text", edge_path, attr_path).ok());
  ASSERT_TRUE(registry.Load("text2", edge_path, attr_path).ok());
  ASSERT_TRUE(registry.Load("bin", bin_path).ok());
  EXPECT_TRUE(registry.Load("missing", TempPath("fc_reg_nope.txt"))
                  .IsIOError());

  // Binary loads preserve ids exactly; text loads are deterministic, so
  // re-registering the same files under another name shares the
  // fingerprint (and hence cached results).
  EXPECT_EQ(registry.Get("bin")->fingerprint, GraphFingerprint(g));
  EXPECT_EQ(registry.Get("text")->fingerprint,
            registry.Get("text2")->fingerprint);
  EXPECT_EQ(registry.Get("text")->graph->num_edges(), g.num_edges());

  auto listed = registry.List();
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0]->name, "bin");
  EXPECT_EQ(listed[1]->name, "text");
  EXPECT_EQ(listed[2]->name, "text2");
  std::remove(edge_path.c_str());
  std::remove(attr_path.c_str());
  std::remove(bin_path.c_str());
}

// --------------------------------------------------------------------- cache

std::shared_ptr<const SearchResult> FakeResult(size_t clique_size) {
  auto r = std::make_shared<SearchResult>();
  r->clique.vertices.resize(clique_size);
  return r;
}

TEST(ResultCacheTest, LruEvictionOrderAndCounters) {
  ResultCache cache(2);
  cache.Put("a", FakeResult(1));
  cache.Put("b", FakeResult(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // refreshes "a"; "b" is now LRU
  cache.Put("c", FakeResult(3));       // evicts "b"
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  ASSERT_NE(cache.Get("c"), nullptr);

  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);

  cache.Clear();
  stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Put("a", FakeResult(1));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(ResultCacheTest, EquivalentOptionsShareOneEntry) {
  // The canonicalization promise end to end: a key built from an 8-thread
  // bitset query finds the entry stored by a 1-thread vector query.
  ResultCache cache(8);
  SearchOptions stored = FullOptions(3, 1, ExtraBound::kColorfulPath);
  cache.Put(ResultCache::MakeKey(42, stored), FakeResult(7));

  SearchOptions probe = FullOptions(3, 1, ExtraBound::kColorfulPath);
  probe.num_threads = 8;
  probe.engine = SearchEngine::kBitset;
  auto hit = cache.Get(ResultCache::MakeKey(42, probe));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->clique.size(), 7u);

  // Different fingerprint or different semantics -> different entry.
  EXPECT_EQ(cache.Get(ResultCache::MakeKey(43, probe)), nullptr);
  EXPECT_EQ(cache.Get(ResultCache::MakeKey(42, BaselineOptions(3, 1))),
            nullptr);
}

// ------------------------------------------------------------------ executor

std::shared_ptr<const RegisteredGraph> RegisterGraph(GraphRegistry& registry,
                                                     const std::string& name,
                                                     AttributedGraph g) {
  EXPECT_TRUE(registry.Add(name, std::move(g)).ok());
  return registry.Get(name);
}

TEST(QueryExecutorTest, ServesAndCachesQueries) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "g", RandomAttributedGraph(120, 0.12, 0xCAFE));
  ResultCache cache(16);
  QueryExecutor executor(ExecutorOptions{2, 32}, &cache);

  QueryRequest request;
  request.graph = graph;
  request.options = FullOptions(2, 2, ExtraBound::kColorfulPath);

  QueryResponse cold = executor.Submit(request).get();
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  QueryResponse warm = executor.Submit(request).get();
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  // A hit returns the identical result object, not a copy.
  EXPECT_EQ(warm.result.get(), cold.result.get());

  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.served, 2u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.rejected, 0u);
}

TEST(QueryExecutorTest, RejectsWhenQueueDisabled) {
  // queue_capacity = 0 deterministically exercises the backpressure path.
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "g", MakeGraph("ab", {{0, 1}}));
  QueryExecutor executor(ExecutorOptions{1, 0}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 0);
  QueryResponse response = executor.Submit(request).get();
  EXPECT_TRUE(response.status.IsAborted());
  EXPECT_EQ(response.result, nullptr);
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.accepted, 0u);
}

TEST(QueryExecutorTest, InvalidRequestReported) {
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  QueryResponse response = executor.Submit(QueryRequest{}).get();
  EXPECT_TRUE(response.status.IsInvalidArgument());
}

TEST(QueryExecutorTest, DeadlineMapsOntoSafetyValveAndSkipsCache) {
  // A dense 150-vertex graph with k=1, delta large is a hard max-clique
  // instance; a 50 ms budget (comfortably longer than the idle-queue wait
  // even under sanitizer slowdowns, far shorter than the search) reliably
  // truncates mid-search.
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x5EED));
  ResultCache cache(16);
  QueryExecutor executor(ExecutorOptions{1, 8}, &cache);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.deadline_seconds = 5e-2;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.deadline_missed);
  EXPECT_FALSE(response.result->stats.completed);
  // Truncated results must not be cached: a repeat of the same request may
  // not hit (it would replay the truncation to a future looser deadline).
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_EQ(executor.metrics().deadline_misses, 1u);
}

TEST(QueryExecutorTest, DeadlineAnchoredAtSubmitExpiresQueuedRequests) {
  // The deadline clock starts at Submit, so a request that burned its whole
  // budget waiting behind another query is expired when popped — no search,
  // no cache probe, null result — instead of being granted a fresh budget
  // at admission (the old bug: a 100 ms client could wait seconds in the
  // queue and still get 100 ms of compute afterwards).
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x5EED));
  ResultCache cache(16);
  QueryExecutor executor(ExecutorOptions{1, 8}, &cache);

  // Blocker: occupies the single worker for ~its own deadline (100 ms).
  QueryRequest blocker;
  blocker.graph = graph;
  blocker.options = BaselineOptions(1, 100);
  blocker.deadline_seconds = 0.1;
  std::future<QueryResponse> blocked = executor.Submit(blocker);

  // Probe: a 1 µs budget cannot survive a ~100 ms queue wait.
  QueryRequest probe;
  probe.graph = graph;
  probe.options = BaselineOptions(1, 100);
  probe.deadline_seconds = 1e-6;
  QueryResponse response = executor.Submit(probe).get();
  EXPECT_TRUE(response.status.IsAborted());
  EXPECT_TRUE(response.deadline_missed);
  EXPECT_EQ(response.result, nullptr);
  QueryResponse blocker_response = blocked.get();
  EXPECT_TRUE(blocker_response.deadline_missed);
  // Both the blocker and the expired probe count as misses; the expired
  // probe must not have touched the cache. (On a machine slow enough that
  // even the BLOCKER expired in-queue — sanitizer runs — it never probed
  // the cache either, so only assert the blocker's miss when it ran.)
  EXPECT_EQ(executor.metrics().deadline_misses, 2u);
  EXPECT_EQ(cache.Stats().insertions, 0u);
  if (blocker_response.result != nullptr) {
    EXPECT_EQ(cache.Stats().misses, 1u);  // only the blocker probed
  }
}

TEST(QueryExecutorTest, QueueDepthCountsComponentTasks) {
  // Saturation must be visible even when it lives entirely in the component
  // queue: a disconnected graph expands one query into several Branch
  // tasks, and the combined depth (and its peak) must count them.
  AttributedGraph block = RandomAttributedGraph(25, 0.2, 0xB10C);
  std::vector<Edge> edges;
  std::vector<Attribute> attrs;
  const int kBlocks = 3;
  for (int b = 0; b < kBlocks; ++b) {
    VertexId offset = static_cast<VertexId>(b) * block.num_vertices();
    for (const Edge& e : block.edges()) {
      edges.push_back(Edge{e.u + offset, e.v + offset});
    }
    for (VertexId v = 0; v < block.num_vertices(); ++v) {
      attrs.push_back(block.attribute(v));
    }
  }
  AttributedGraph g = BuildGraph(
      static_cast<VertexId>(kBlocks * block.num_vertices()), edges, attrs);

  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "blocks", std::move(g));
  QueryExecutor executor(ExecutorOptions{1, 8}, nullptr);
  QueryRequest request;
  request.graph = graph;
  // Baseline: no reductions, so the prepared components are exactly the
  // three 25-vertex blocks and selection keeps them all.
  request.options = BaselineOptions(1, 2);
  ASSERT_TRUE(executor.Submit(request).get().status.ok());
  executor.Drain();

  ExecutorMetrics m = executor.metrics();
  // All three identical blocks survive selection; their tasks were pushed
  // (and the peak bumped) under one lock hold before the single worker
  // could pop any, so the combined peak must count every one of them.
  EXPECT_GE(m.component_tasks, 2u);
  EXPECT_GE(m.peak_queue_depth, m.component_tasks);
  EXPECT_EQ(m.admission_queue_depth, 0u);
  EXPECT_EQ(m.component_queue_depth, 0u);
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST(QueryExecutorTest, DrainWaitsForAllAccepted) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "g", RandomAttributedGraph(100, 0.15, 0xD1CE));
  ResultCache cache(16);
  QueryExecutor executor(ExecutorOptions{2, 64}, &cache);

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    QueryRequest request;
    request.graph = graph;
    request.options = BaselineOptions(2, 2);
    request.bypass_cache = true;
    futures.push_back(executor.Submit(std::move(request)));
  }
  executor.Drain();
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.served, m.accepted);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
}

// Satellite regression: num_threads <= 0 must clamp to the component count
// instead of spawning hardware_concurrency idle workers; the answer is the
// single-thread answer.
TEST(QueryExecutorTest, AutoThreadsMatchesSingleThreadAnswer) {
  AttributedGraph g = RandomAttributedGraph(150, 0.08, 0xACE);
  SearchOptions single = FullOptions(2, 2, ExtraBound::kColorfulPath);
  single.num_threads = 1;
  SearchOptions autothreads = single;
  autothreads.num_threads = 0;  // hardware concurrency, clamped to components
  SearchResult a = FindMaximumFairClique(g, single);
  SearchResult b = FindMaximumFairClique(g, autothreads);
  EXPECT_EQ(a.clique.size(), b.clique.size());
}

// -------------------------------------------------------- concurrent clients

TEST(ServiceStressTest, ConcurrentClientsMatchSequentialAnswers) {
  GraphRegistry registry;
  auto g1 = RegisterGraph(registry, "dblp",
                          LoadDataset("dblp-s", /*scale=*/0.5));
  auto g2 = RegisterGraph(registry, "rand",
                          RandomAttributedGraph(200, 0.1, 0xFA18));
  std::vector<std::shared_ptr<const RegisteredGraph>> graphs = {g1, g2};

  std::vector<SearchOptions> mix = {
      BaselineOptions(2, 2),
      BoundedOptions(3, 1, ExtraBound::kColorfulPath),
      FullOptions(2, 3, ExtraBound::kColorfulDegeneracy),
      FullOptions(3, 2, ExtraBound::kColorfulPath),
  };

  // Sequential ground truth per (graph, options).
  std::vector<std::vector<size_t>> expected(graphs.size());
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    for (const SearchOptions& options : mix) {
      expected[gi].push_back(
          FindMaximumFairClique(*graphs[gi]->graph, options).clique.size());
    }
  }

  ResultCache cache(64);
  QueryExecutor executor(ExecutorOptions{4, 1024}, &cache);

  // 4 client threads x 12 queries each, striding through the mix so cache
  // hits and misses interleave.
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 12;
  std::vector<std::thread> clients;
  std::vector<std::string> failures[kClients];
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<std::pair<size_t, size_t>,
                            std::future<QueryResponse>>> futures;
      for (int q = 0; q < kQueriesPerClient; ++q) {
        size_t gi = static_cast<size_t>(c + q) % graphs.size();
        size_t mi = static_cast<size_t>(q) % mix.size();
        QueryRequest request;
        request.graph = graphs[gi];
        request.options = mix[mi];
        futures.emplace_back(std::make_pair(gi, mi),
                             executor.Submit(std::move(request)));
      }
      for (auto& [key, future] : futures) {
        QueryResponse response = future.get();
        if (!response.status.ok()) {
          failures[c].push_back("rejected: " + response.status.ToString());
          continue;
        }
        size_t want = expected[key.first][key.second];
        if (response.result->clique.size() != want) {
          failures[c].push_back(
              "size mismatch: got " +
              std::to_string(response.result->clique.size()) + " want " +
              std::to_string(want));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& failure : failures[c]) {
      ADD_FAILURE() << "client " << c << ": " << failure;
    }
  }

  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.served, static_cast<uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(m.rejected, 0u);
  // 8 distinct (graph, options) pairs -> at most 8 misses can be cold; with
  // 48 queries the cache must have been hit. (Concurrent duplicate misses
  // may compute redundantly, so we can't assert an exact count.)
  EXPECT_GT(m.cache_hits, 0u);
  EXPECT_LE(cache.Stats().entries, 8u);
}

TEST(RegistryCacheTest, EvictDropsOrphanedCacheEntries) {
  // Regression: Evict used to leave the evicted graph's cached results in
  // the ResultCache until LRU pressure pushed them out. With an attached
  // cache they must be dropped as soon as no registered name references the
  // fingerprint.
  GraphRegistry registry;
  ResultCache cache(16);
  registry.AttachCache(&cache);
  QueryExecutor executor(ExecutorOptions{1, 8}, &cache);

  AttributedGraph g = RandomAttributedGraph(30, 0.3, 77);
  ASSERT_TRUE(registry.Add("g", g).ok());
  QueryRequest request;
  request.graph = registry.Get("g");
  request.options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  ASSERT_TRUE(executor.Run(request).status.ok());
  EXPECT_EQ(cache.Stats().entries, 1u);

  ASSERT_TRUE(registry.Evict("g"));
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidated, 1u);

  // Re-registering the same content must now miss (cold) again.
  ASSERT_TRUE(registry.Add("g2", g).ok());
  request.graph = registry.Get("g2");
  QueryResponse response = executor.Run(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.cache_hit);
}

TEST(RegistryCacheTest, EvictKeepsEntriesSharedByAnotherName) {
  GraphRegistry registry;
  ResultCache cache(16);
  registry.AttachCache(&cache);
  QueryExecutor executor(ExecutorOptions{1, 8}, &cache);

  AttributedGraph g = RandomAttributedGraph(30, 0.3, 78);
  ASSERT_TRUE(registry.Add("one", g).ok());
  ASSERT_TRUE(registry.Add("two", g).ok());  // same content, same fingerprint

  QueryRequest request;
  request.graph = registry.Get("one");
  request.options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  ASSERT_TRUE(executor.Run(request).status.ok());

  // "two" still serves this fingerprint: the entry must survive the evict.
  ASSERT_TRUE(registry.Evict("one"));
  EXPECT_EQ(cache.Stats().entries, 1u);
  request.graph = registry.Get("two");
  EXPECT_TRUE(executor.Run(request).cache_hit);

  // Evicting the last reference drops it.
  ASSERT_TRUE(registry.Evict("two"));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

}  // namespace
}  // namespace fairclique
