#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/max_fair_clique.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "service/telemetry.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

std::shared_ptr<const RegisteredGraph> RegisterGraph(GraphRegistry& registry,
                                                     const std::string& name,
                                                     AttributedGraph g) {
  EXPECT_TRUE(registry.Add(name, std::move(g)).ok());
  return registry.Get(name);
}

ServiceTelemetry Gather(const GraphRegistry& registry,
                        const QueryExecutor& executor,
                        const ResultCache* cache) {
  ServiceTelemetry t;
  t.graphs = registry.List();
  t.registry = registry.Stats();
  if (cache != nullptr) t.cache = cache->Stats();
  t.executor = executor.metrics();
  return t;
}

/// Structural validator for Prometheus text exposition 0.0.4: every sample
/// line parses as `name[{labels}] value`, every TYPE is known, histogram
/// bucket series are cumulative and end at le="+Inf" == the family _count.
::testing::AssertionResult ValidExposition(const std::string& text) {
  if (text.empty() || text.back() != '\n') {
    return ::testing::AssertionFailure() << "must end with a newline";
  }
  std::istringstream in(text);
  std::string line;
  std::string cur_hist;       // histogram family currently being walked
  long long prev_bucket = -1; // last cumulative bucket count seen
  long long inf_count = -1;   // the family's +Inf bucket
  bool saw_eof = false;
  while (std::getline(in, line)) {
    if (line.empty()) return ::testing::AssertionFailure() << "blank line";
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.rfind(' ');
      const std::string type = line.substr(sp + 1);
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return ::testing::AssertionFailure() << "unknown type: " << line;
      }
      if (type == "histogram") {
        cur_hist = line.substr(7, sp - 7);
        prev_bucket = -1;
        inf_count = -1;
      }
      continue;
    }
    if (line[0] == '#') continue;  // HELP
    // Sample line: name or name{label="..."} then one space then the value.
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) {
      return ::testing::AssertionFailure() << "unparsable sample: " << line;
    }
    char* end = nullptr;
    const std::string value = line.substr(sp + 1);
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return ::testing::AssertionFailure() << "bad value in: " << line;
    }
    if (!cur_hist.empty() && line.rfind(cur_hist + "_bucket{le=\"", 0) == 0) {
      const long long count = std::atoll(value.c_str());
      if (count < prev_bucket) {
        return ::testing::AssertionFailure()
               << "buckets not cumulative at: " << line;
      }
      prev_bucket = count;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_count = count;
    } else if (!cur_hist.empty() && line.rfind(cur_hist + "_count ", 0) == 0) {
      if (inf_count < 0 || std::atoll(value.c_str()) != inf_count) {
        return ::testing::AssertionFailure()
               << cur_hist << "_count disagrees with its +Inf bucket";
      }
    }
  }
  if (!saw_eof) return ::testing::AssertionFailure() << "missing # EOF";
  return ::testing::AssertionSuccess();
}

TEST(TelemetryExportTest, StatsJsonLineIsWellFormedJson) {
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "g", MakeGraph("ab", {{0, 1}}));
  ResultCache cache(8);
  QueryExecutor executor(ExecutorOptions{1, 4}, &cache);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 0);
  ASSERT_TRUE(executor.Submit(request).get().status.ok());

  std::string json = StatsJson(7, Gather(registry, executor, &cache));
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"graphs\":[{\"name\":\"g\""), std::string::npos);
  EXPECT_NE(json.find("\"registry\":{\"loads\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cache\":{"), std::string::npos);
  EXPECT_NE(json.find("\"executor\":{"), std::string::npos);
  EXPECT_NE(json.find("\"expired_in_queue\":0"), std::string::npos);
  EXPECT_NE(json.find("\"slowlog\":{"), std::string::npos);
  // No storage attached -> no storage object.
  EXPECT_EQ(json.find("\"storage\""), std::string::npos);
  // Balanced braces, single line.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(TelemetryExportTest, PrometheusPageValidatesAndCoversFamilies) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "g", RandomAttributedGraph(80, 0.15, 0x0B5));
  ResultCache cache(8);
  QueryExecutor executor(ExecutorOptions{2, 8}, &cache);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(2, 1);
  ASSERT_TRUE(executor.Submit(request).get().status.ok());
  ASSERT_TRUE(executor.Submit(request).get().status.ok());  // cache hit

  std::string text = PrometheusText(Gather(registry, executor, &cache));
  EXPECT_TRUE(ValidExposition(text)) << text;

  // The three required latency histograms are present as histogram families
  // even if some have not recorded yet (interned before rendering).
  EXPECT_NE(text.find("# TYPE fc_query_queue_wait_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_query_run_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_wal_fsync_micros histogram"),
            std::string::npos);
  // Executor / cache / registry counter families.
  EXPECT_NE(text.find("fc_executor_served_total 2"), std::string::npos);
  EXPECT_NE(text.find("fc_executor_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("fc_result_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("fc_registry_loads_total 1"), std::string::npos);
  EXPECT_NE(text.find("fc_registry_graphs 1"), std::string::npos);
  EXPECT_NE(text.find("fc_slowlog_capacity"), std::string::npos);
  // Both served queries ran (one search + one hit); the run histogram is
  // process-wide, so earlier tests may have contributed samples too.
  const size_t count_pos = text.find("fc_query_run_micros_count ");
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_GE(std::atoll(text.c_str() + count_pos +
                       sizeof("fc_query_run_micros_count ") - 1),
            2);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(TelemetryExecutorTest, MetricsStayMonotonicUnderQueryStorm) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "g", RandomAttributedGraph(70, 0.15, 0xF00D));
  ResultCache cache(16);
  QueryExecutor executor(ExecutorOptions{3, 64}, &cache);

  std::atomic<bool> done{false};
  std::atomic<bool> violated{false};
  std::thread sampler([&] {
    ExecutorMetrics prev;
    while (!done.load(std::memory_order_acquire)) {
      ExecutorMetrics m = executor.metrics();
      if (m.submitted < prev.submitted || m.accepted < prev.accepted ||
          m.rejected < prev.rejected || m.served < prev.served ||
          m.cache_hits < prev.cache_hits ||
          m.deadline_misses < prev.deadline_misses ||
          m.expired_in_queue < prev.expired_in_queue ||
          m.component_tasks < prev.component_tasks ||
          m.peak_queue_depth < prev.peak_queue_depth ||
          m.submitted < m.accepted + m.rejected ||
          m.served > m.accepted) {
        violated.store(true, std::memory_order_release);
        return;
      }
      prev = m;
      std::this_thread::yield();
    }
  });

  constexpr int kClients = 4;
  constexpr int kPerClient = 20;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        QueryRequest request;
        request.graph = graph;
        // Alternate two option keys so both miss and hit paths run.
        request.options = BaselineOptions(1 + (i % 2), 1);
        request.bypass_cache = (c == 0 && i % 4 == 0);
        executor.Submit(request).get();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  done.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_FALSE(violated.load()) << "metrics regressed mid-storm";
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(m.served + m.rejected, m.submitted);
  EXPECT_GT(m.cache_hits, 0u);
}

TEST(TelemetryTraceTest, SlowQueryEntersSlowlogWithTiledSpans) {
  obs::Slowlog::Default().Reset();  // empty log admits everything
  GraphRegistry registry;
  // Dense graph + permissive fairness is a hard instance; a 100 ms deadline
  // caps the search at a deterministic-enough "slow" duration well above
  // the 1 ms floor the 10% tiling check needs to be meaningful.
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x51));
  QueryExecutor executor(ExecutorOptions{2, 8}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.deadline_seconds = 0.1;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.trace_id, 0u);
  ASSERT_GE(response.run_micros, 1000) << "instance finished too fast";

  std::shared_ptr<const obs::Trace> trace =
      obs::Slowlog::Default().Find(response.trace_id);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->run_micros, response.run_micros);
  // The trace's queue time is stamped at admission; the response's is
  // derived at completion (total - run), so they differ by the completion
  // bookkeeping — microseconds, not milliseconds.
  EXPECT_NEAR(static_cast<double>(trace->queue_micros),
              static_cast<double>(response.queue_micros), 5000.0);
  ASSERT_FALSE(trace->spans.empty());

  // Top-level spans after the queue span tile admission..completion, so
  // their durations must sum to within 10% of the reported run time.
  int64_t top_sum = 0;
  bool saw_queue = false;
  for (const obs::TraceSpan& span : trace->spans) {
    EXPECT_GE(span.duration_micros, 0);
    if (span.parent >= 0) {
      ASSERT_LT(static_cast<size_t>(span.parent), trace->spans.size());
      continue;
    }
    if (std::string(span.name) == "queue") {
      saw_queue = true;
      continue;
    }
    top_sum += span.duration_micros;
  }
  EXPECT_TRUE(saw_queue) << "queued request must carry a queue span";
  const double run = static_cast<double>(response.run_micros);
  EXPECT_GE(top_sum, run * 0.9) << "top-level spans under-cover the run";
  EXPECT_LE(top_sum, run * 1.1 + 1000.0)
      << "top-level spans over-cover the run";

  // The trace renders as one JSON line naming its spans.
  std::string json = TraceJson(*trace);
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"graph\":\"hard\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(TelemetryTraceTest, ExpiredInQueueCountedAndTraced) {
  obs::Slowlog::Default().Reset();
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x52));
  QueryExecutor executor(ExecutorOptions{1, 8}, nullptr);

  // Blocker occupies the single worker for ~100 ms.
  QueryRequest blocker;
  blocker.graph = graph;
  blocker.options = BaselineOptions(1, 100);
  blocker.deadline_seconds = 0.1;
  std::future<QueryResponse> blocked = executor.Submit(blocker);

  // Probe's 1 µs budget cannot survive the queue wait: it must expire
  // before any search starts, and be counted in the dedicated counter.
  QueryRequest probe;
  probe.graph = graph;
  probe.options = BaselineOptions(1, 100);
  probe.deadline_seconds = 1e-6;
  QueryResponse response = executor.Submit(probe).get();
  blocked.get();
  EXPECT_TRUE(response.status.IsAborted());
  EXPECT_TRUE(response.deadline_missed);

  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.expired_in_queue, 1u);
  EXPECT_EQ(m.deadline_misses, 2u);  // truncated blocker + expired probe
}

TEST(TelemetryExportTest, StatsAndPrometheusCarryStopAndWorkerFamilies) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x53));
  QueryExecutor executor(ExecutorOptions{2, 8}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.options.node_limit = 64;
  ASSERT_TRUE(executor.Submit(request).get().status.ok());

  std::string json = StatsJson(1, Gather(registry, executor, nullptr));
  EXPECT_NE(json.find("\"stopped_node_limit\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stopped_time_limit\":0"), std::string::npos);
  EXPECT_NE(json.find("\"stopped_deadline\":0"), std::string::npos);
  EXPECT_NE(json.find("\"num_workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"active_workers\":"), std::string::npos);

  std::string text = PrometheusText(Gather(registry, executor, nullptr));
  EXPECT_TRUE(ValidExposition(text)) << text;
  EXPECT_NE(text.find("fc_executor_stopped_node_limit_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fc_executor_stopped_time_limit_total 0"),
            std::string::npos);
  EXPECT_NE(text.find("fc_executor_stopped_deadline_total 0"),
            std::string::npos);
  EXPECT_NE(text.find("fc_executor_workers 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_executor_active_workers gauge"),
            std::string::npos);
  // Queue congestion is scrapable, not just stats-JSON-visible.
  EXPECT_NE(text.find("# TYPE fc_executor_admission_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_executor_component_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_executor_peak_queue_depth gauge"),
            std::string::npos);
  // Nothing in flight at scrape time: both live-search gauges read 0.
  // (Other suites' queries are drained; the registry is process-wide.)
  EXPECT_NE(text.find("# TYPE fc_queries_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_search_incumbent_gap gauge"),
            std::string::npos);
}

TEST(TelemetryExportTest, InflightGaugesReflectTheProgressRegistry) {
  // Feed the process-wide registry directly (no executor) and scrape: the
  // gauges must mirror ProgressRegistry::Default() at render time.
  auto rec = obs::ProgressRegistry::Default().Register(
      0xFEED, "gauge_probe", "", 1);
  rec->NoteIncumbent(4);
  rec->SetUpperBound(11);
  GraphRegistry registry;
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  std::string text = PrometheusText(Gather(registry, executor, nullptr));
  obs::ProgressRegistry::Default().Unregister(0xFEED);

  EXPECT_TRUE(ValidExposition(text)) << text;
  EXPECT_NE(text.find("fc_queries_inflight 1"), std::string::npos) << text;
  EXPECT_NE(text.find("fc_search_incumbent_gap 7"), std::string::npos) << text;
}

TEST(TelemetryExportTest, ProgressJsonSerializesEveryField) {
  obs::QueryProgress progress(9, "dblp", "k=2;delta=1", 4);
  progress.AddNodes(2048);
  progress.NoteIncumbent(6);
  progress.SetUpperBound(19);
  progress.NoteComponentDone();
  std::string json = ProgressJson(progress.Snapshot());
  EXPECT_NE(json.find("\"trace_id\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"graph\":\"dblp\""), std::string::npos);
  EXPECT_NE(json.find("\"options\":\"k=2;delta=1\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":2048"), std::string::npos);
  EXPECT_NE(json.find("\"incumbent_size\":6"), std::string::npos);
  EXPECT_NE(json.find("\"upper_bound\":19"), std::string::npos);
  EXPECT_NE(json.find("\"components_done\":1"), std::string::npos);
  EXPECT_NE(json.find("\"components_total\":4"), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_micros\":"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(TelemetryTraceTest, BypassPreparedCachePathCarriesPrepareSpan) {
  // A fully cold query (bypassing both caches) must still produce a span
  // timeline whose prepare span covers the from-scratch reduction — the
  // bypass path shares RecordTelemetry with the normal path.
  obs::Slowlog::Default().Reset();
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x54));
  QueryExecutor executor(ExecutorOptions{2, 8}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.bypass_cache = true;
  request.bypass_prepared_cache = true;
  request.deadline_seconds = 0.1;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.trace_id, 0u);
  EXPECT_FALSE(response.prepared_hit);

  std::shared_ptr<const obs::Trace> trace =
      obs::Slowlog::Default().Find(response.trace_id);
  ASSERT_NE(trace, nullptr);
  bool saw_prepare = false;
  bool saw_branch = false;
  for (const obs::TraceSpan& span : trace->spans) {
    if (std::string(span.name) == "prepare") {
      saw_prepare = true;
      EXPECT_GT(span.duration_micros, 0)
          << "bypassed prepared cache means a real reduction ran";
    }
    if (std::string(span.name) == "branch") saw_branch = true;
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_branch);
  EXPECT_STREQ(trace->stop_reason, "deadline");
  std::string json = TraceJson(*trace);
  EXPECT_NE(json.find("\"stop_reason\":\"deadline\""), std::string::npos)
      << json;
}

TEST(TelemetryTraceTest, TraceJsonCarriesStopReasonAndPlan) {
  obs::Trace trace;
  trace.id = 5;
  trace.graph = "g";
  trace.stop_reason = "node_limit";
  trace.explain_json = "{\"prepare\":{\"prepared_hit\":false}}";
  std::string json = TraceJson(trace);
  EXPECT_NE(json.find("\"stop_reason\":\"node_limit\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"plan\":{\"prepare\":{\"prepared_hit\":false}}"),
            std::string::npos)
      << json;
  // Without a plan, the field is omitted entirely.
  trace.explain_json.clear();
  EXPECT_EQ(TraceJson(trace).find("\"plan\""), std::string::npos);
}

TEST(TelemetryTraceTest, TraceJsonSerializesFlagsAndSpanTree) {
  obs::Trace trace;
  trace.id = 42;
  trace.graph = "g";
  trace.options = "k=2;delta=1";
  trace.queue_micros = 5;
  trace.run_micros = 100;
  trace.total_micros = 107;
  trace.ok = true;
  trace.cache_hit = true;
  trace.spans.push_back({"queue", -1, 0, 5});
  trace.spans.push_back({"result_cache_probe", -1, 5, 100});
  std::string json = TraceJson(trace);
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"options\":\"k=2;delta=1\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_missed\":false"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"queue\",\"parent\":-1,\"start_micros\":0,"
                      "\"duration_micros\":5}"),
            std::string::npos);
}

TEST(TelemetryHealthTest, HealthyServiceReportsOkWithContext) {
  GraphRegistry registry;
  RegisterGraph(registry, "g", MakeGraph("ab", {{0, 1}}));
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);

  ServiceTelemetry t = Gather(registry, executor, nullptr);
  std::string json = HealthJson(3, t);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"id\":3"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"reasons\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"build\":{\"version\":"), std::string::npos);
  EXPECT_NE(json.find("\"graphs\":1"), std::string::npos);
  // No watchdog attached -> no watchdog object.
  EXPECT_EQ(json.find("\"watchdog\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(TelemetryHealthTest, WatchdogFindingsDegradeTheVerdict) {
  GraphRegistry registry;
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  ServiceTelemetry t = Gather(registry, executor, nullptr);
  t.has_watchdog = true;
  t.watchdog.running = true;
  t.watchdog.currently_stuck = 2;
  t.watchdog.queue_stalled_now = true;
  t.watchdog.deadline_miss_rate = 0.75;

  std::string json = HealthJson(4, t);
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled_query\""), std::string::npos);
  EXPECT_NE(json.find("\"admission_queue_stalled\""), std::string::npos);
  EXPECT_NE(json.find("\"high_deadline_miss_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"watchdog\":{\"running\":true"), std::string::npos);
  EXPECT_NE(json.find("\"currently_stuck\":2"), std::string::npos);

  // A healthy watchdog keeps the verdict ok.
  t.watchdog = obs::WatchdogStats{};
  json = HealthJson(5, t);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"reasons\":[]"), std::string::npos);
}

TEST(TelemetryExportTest, StatsCarriesUptimeAndBuildIdentity) {
  GraphRegistry registry;
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  std::string json = StatsJson(1, Gather(registry, executor, nullptr));
  EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"build\":{\"version\":"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(json.find("\"compiler\":"), std::string::npos);
}

TEST(TelemetryExportTest, PrometheusCarriesBuildInfoAndWatchdogFamilies) {
  GraphRegistry registry;
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  // Constructing a watchdog interns its fc_watchdog_* instruments.
  obs::Watchdog dog(obs::WatchdogOptions{});

  std::string text = PrometheusText(Gather(registry, executor, nullptr));
  EXPECT_TRUE(ValidExposition(text)) << text;
  EXPECT_NE(text.find("fc_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("build_type=\""), std::string::npos);
  EXPECT_NE(text.find("simd=\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_uptime_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("fc_journal_events_recorded"), std::string::npos);
  EXPECT_NE(text.find("fc_watchdog_sweeps_total"), std::string::npos);
  EXPECT_NE(text.find("fc_watchdog_stuck_queries"), std::string::npos);
}

}  // namespace
}  // namespace fairclique
