#include <gtest/gtest.h>

#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;

TEST(VerifierTest, EmptySetIsACliqueButNotFair) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  std::vector<VertexId> empty;
  EXPECT_TRUE(IsClique(g, empty));
  EXPECT_FALSE(IsFairClique(g, empty, {1, 0}));
}

TEST(VerifierTest, SingletonIsAClique) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  std::vector<VertexId> one{0};
  EXPECT_TRUE(IsClique(g, one));
}

TEST(VerifierTest, DetectsMissingEdge) {
  AttributedGraph g = MakeGraph("aab", {{0, 1}, {1, 2}});
  std::vector<VertexId> path{0, 1, 2};
  EXPECT_FALSE(IsClique(g, path));
  Status s = VerifyFairClique(g, path, {1, 1});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("missing edge"), std::string::npos);
}

TEST(VerifierTest, CountAttributes) {
  AttributedGraph g = MakeGraph("aabb", {{0, 1}, {2, 3}});
  std::vector<VertexId> all{0, 1, 2, 3};
  AttrCounts cnt = CountAttributes(g, all);
  EXPECT_EQ(cnt.a(), 2);
  EXPECT_EQ(cnt.b(), 2);
}

TEST(VerifierTest, FairnessEdgeCases) {
  AttributedGraph g =
      MakeGraph("aabb", {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  std::vector<VertexId> all{0, 1, 2, 3};
  EXPECT_TRUE(IsFairClique(g, all, {2, 0}));
  EXPECT_TRUE(IsFairClique(g, all, {1, 0}));
  EXPECT_FALSE(IsFairClique(g, all, {3, 0}));  // k too large
  std::vector<VertexId> three{0, 1, 2};
  EXPECT_FALSE(IsFairClique(g, three, {2, 1}));  // cnt(b)=1 < 2
  EXPECT_TRUE(IsFairClique(g, three, {1, 1}));
  EXPECT_FALSE(IsFairClique(g, three, {1, 0}));  // diff 1 > 0
}

TEST(VerifierTest, VerifyRejectsOutOfRangeVertex) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  std::vector<VertexId> bad{0, 7};
  EXPECT_TRUE(VerifyFairClique(g, bad, {1, 1}).IsOutOfRange());
}

TEST(VerifierTest, VerifyRejectsDuplicates) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  std::vector<VertexId> dup{0, 0, 1};
  EXPECT_TRUE(VerifyFairClique(g, dup, {1, 1}).IsInvalidArgument());
}

TEST(VerifierTest, VerifyReportsFairnessViolations) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  std::vector<VertexId> pair{0, 1};
  EXPECT_TRUE(VerifyFairClique(g, pair, {1, 0}).ok());
  Status below_k = VerifyFairClique(g, pair, {2, 0});
  EXPECT_TRUE(below_k.IsInvalidArgument());
  EXPECT_NE(below_k.message().find("below k"), std::string::npos);
}

}  // namespace
}  // namespace fairclique
