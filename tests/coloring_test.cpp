#include <gtest/gtest.h>

#include <set>

#include "graph/coloring.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(GreedyColoringTest, EmptyAndSingleton) {
  AttributedGraph empty = MakeGraph("", {});
  Coloring c0 = GreedyColoring(empty);
  EXPECT_EQ(c0.num_colors, 0);
  AttributedGraph one = MakeGraph("a", {});
  Coloring c1 = GreedyColoring(one);
  EXPECT_EQ(c1.num_colors, 1);
  EXPECT_EQ(c1.color[0], 0);
}

TEST(GreedyColoringTest, TriangleNeedsThreeColors) {
  AttributedGraph g = MakeGraph("aab", {{0, 1}, {1, 2}, {0, 2}});
  Coloring c = GreedyColoring(g);
  EXPECT_EQ(c.num_colors, 3);
  EXPECT_TRUE(IsProperColoring(g, c));
}

TEST(GreedyColoringTest, BipartiteUsesTwoColors) {
  // Even cycle: 2-colorable; greedy on cycles may use 3, but degree order on
  // C4 yields 2. Use a star, which every greedy colors with 2.
  AttributedGraph star = MakeGraph("aaaab", {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Coloring c = GreedyColoring(star);
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(IsProperColoring(star, c));
}

// Property sweep: proper coloring and the dmax+1 guarantee across generators
// and orderings.
struct ColoringCase {
  uint64_t seed;
  ColoringOrder order;
};

class ColoringPropertyTest : public ::testing::TestWithParam<ColoringCase> {};

TEST_P(ColoringPropertyTest, ProperAndBounded) {
  const ColoringCase param = GetParam();
  AttributedGraph g = RandomAttributedGraph(120, 0.08, param.seed);
  Coloring c = GreedyColoring(g, param.order);
  EXPECT_TRUE(IsProperColoring(g, c));
  EXPECT_LE(c.num_colors, static_cast<int>(g.max_degree()) + 1);
  // Colors must be exactly the dense range [0, num_colors).
  std::set<ColorId> used(c.color.begin(), c.color.end());
  EXPECT_EQ(static_cast<int>(used.size()), c.num_colors);
  EXPECT_EQ(*used.begin(), 0);
  EXPECT_EQ(*used.rbegin(), c.num_colors - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColoringPropertyTest,
    ::testing::Values(ColoringCase{1, ColoringOrder::kDegreeDescending},
                      ColoringCase{2, ColoringOrder::kDegreeDescending},
                      ColoringCase{3, ColoringOrder::kDegeneracy},
                      ColoringCase{4, ColoringOrder::kDegeneracy},
                      ColoringCase{5, ColoringOrder::kNatural},
                      ColoringCase{6, ColoringOrder::kNatural}));

TEST(ColorfulDegreesTest, ManualExample) {
  // Star center 0 with leaves 1(a), 2(a), 3(b); leaves are pairwise
  // non-adjacent so they may share colors.
  AttributedGraph g = MakeGraph("aaab", {{0, 1}, {0, 2}, {0, 3}});
  Coloring c = GreedyColoring(g);
  std::vector<AttrCounts> d = ColorfulDegrees(g, c);
  // All leaves get the same non-center color under any greedy order here.
  EXPECT_EQ(d[0][Attribute::kA], 1);  // 1 distinct color among a-leaves
  EXPECT_EQ(d[0][Attribute::kB], 1);
  EXPECT_EQ(d[1][Attribute::kA], 1);  // Neighbor 0 has attribute a
  EXPECT_EQ(d[1][Attribute::kB], 0);
}

TEST(ColorfulDegreesTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed : {10u, 20u, 30u}) {
    AttributedGraph g = RandomAttributedGraph(60, 0.15, seed);
    Coloring c = GreedyColoring(g);
    std::vector<AttrCounts> d = ColorfulDegrees(g, c);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::set<ColorId> colors_a, colors_b;
      for (VertexId w : g.neighbors(v)) {
        (g.attribute(w) == Attribute::kA ? colors_a : colors_b)
            .insert(c.color[w]);
      }
      EXPECT_EQ(d[v][Attribute::kA], static_cast<int64_t>(colors_a.size()));
      EXPECT_EQ(d[v][Attribute::kB], static_cast<int64_t>(colors_b.size()));
    }
  }
}

TEST(BalancedAssignMinTest, KnownValues) {
  // No mixed colors: plain min.
  EXPECT_EQ(BalancedAssignMin(3, 5, 0), 3);
  // Mixed colors absorbed by the smaller side.
  EXPECT_EQ(BalancedAssignMin(3, 5, 1), 4);
  EXPECT_EQ(BalancedAssignMin(3, 5, 2), 5);
  // Beyond equalization they split evenly.
  EXPECT_EQ(BalancedAssignMin(3, 5, 4), 6);
  EXPECT_EQ(BalancedAssignMin(3, 5, 5), 6);  // floor((3+5+5)/2) = 6
  EXPECT_EQ(BalancedAssignMin(0, 0, 7), 3);
}

TEST(BalancedAssignMinTest, MatchesExhaustiveSplit) {
  for (int64_t ca = 0; ca <= 6; ++ca) {
    for (int64_t cb = 0; cb <= 6; ++cb) {
      for (int64_t cm = 0; cm <= 6; ++cm) {
        int64_t best = 0;
        for (int64_t x = 0; x <= cm; ++x) {
          best = std::max(best, std::min(ca + x, cb + cm - x));
        }
        EXPECT_EQ(BalancedAssignMin(ca, cb, cm), best)
            << ca << " " << cb << " " << cm;
      }
    }
  }
}

TEST(EnhancedColorfulDegreesTest, MatchesBruteForce) {
  for (uint64_t seed : {40u, 50u}) {
    AttributedGraph g = RandomAttributedGraph(50, 0.2, seed);
    Coloring c = GreedyColoring(g);
    std::vector<int64_t> ed = EnhancedColorfulDegrees(g, c);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::set<ColorId> colors_a, colors_b;
      for (VertexId w : g.neighbors(v)) {
        (g.attribute(w) == Attribute::kA ? colors_a : colors_b)
            .insert(c.color[w]);
      }
      int64_t ca = 0, cb = 0, cm = 0;
      for (ColorId col : colors_a) {
        if (colors_b.count(col)) {
          ++cm;
        } else {
          ++ca;
        }
      }
      for (ColorId col : colors_b) {
        if (!colors_a.count(col)) ++cb;
      }
      EXPECT_EQ(ed[v], BalancedAssignMin(ca, cb, cm)) << "vertex " << v;
    }
  }
}

TEST(EnhancedColorfulDegreesTest, NeverExceedsColorfulMin) {
  // ED assigns each color to one attribute, so ED(u) <= min(Da, Db) + mixed
  // correction; in particular ED(u) <= min over the plain colorful degrees
  // is false in general, but ED(u) <= max(Da, Db) and
  // ED(u) <= (Da + Db) always hold. Check the documented inequality
  // ED(u) <= min(Da, Db) ... which is the true containment: each a-assigned
  // color is a distinct a-color, so #a-colors <= Da; ED = min side <= Da and
  // <= Db.
  AttributedGraph g = RandomAttributedGraph(80, 0.15, 60);
  Coloring c = GreedyColoring(g);
  std::vector<AttrCounts> d = ColorfulDegrees(g, c);
  std::vector<int64_t> ed = EnhancedColorfulDegrees(g, c);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(ed[v], d[v].Min()) << "vertex " << v;
  }
}

}  // namespace
}  // namespace fairclique
