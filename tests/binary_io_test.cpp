#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "graph/binary_io.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fairclique_bin_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string WriteRaw(const std::string& name, const std::string& bytes) {
    std::string path = Path(name);
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(BinaryIoTest, RoundTripPreservesEverything) {
  AttributedGraph g = RandomAttributedGraph(120, 0.08, 42);
  std::string path = Path("g.fcg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  AttributedGraph loaded;
  ASSERT_TRUE(LoadBinaryGraph(path, &loaded).ok());
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(testing_util::EdgesOf(loaded), testing_util::EdgesOf(g));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded.attribute(v), g.attribute(v));
  }
  EXPECT_TRUE(loaded.Validate().ok());
}

TEST_F(BinaryIoTest, RoundTripEmptyGraph) {
  GraphBuilder builder(0);
  AttributedGraph g = builder.Build();
  std::string path = Path("empty.fcg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  AttributedGraph loaded;
  ASSERT_TRUE(LoadBinaryGraph(path, &loaded).ok());
  EXPECT_EQ(loaded.num_vertices(), 0u);
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  AttributedGraph g;
  EXPECT_TRUE(LoadBinaryGraph(Path("nope.fcg"), &g).IsIOError());
}

TEST_F(BinaryIoTest, BadMagicIsCorruption) {
  std::string path = WriteRaw("bad.fcg", "XXXX\0\0\0\0\0\0\0\0");
  AttributedGraph g;
  EXPECT_TRUE(LoadBinaryGraph(path, &g).IsCorruption());
}

TEST_F(BinaryIoTest, TruncatedFileIsCorruption) {
  AttributedGraph g = RandomAttributedGraph(20, 0.3, 1);
  std::string path = Path("trunc.fcg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  // Chop the last 5 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  WriteRaw("trunc.fcg", bytes.substr(0, bytes.size() - 5));
  AttributedGraph loaded;
  EXPECT_TRUE(LoadBinaryGraph(path, &loaded).IsCorruption());
}

TEST_F(BinaryIoTest, OutOfRangeEndpointIsCorruption) {
  // Hand-craft: n=2, m=1, edge (0, 9).
  std::string bytes = "FCG1";
  auto put = [&bytes](uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  put(2);
  put(1);
  put(0);
  put(9);
  bytes.push_back(0);
  bytes.push_back(1);
  std::string path = WriteRaw("range.fcg", bytes);
  AttributedGraph g;
  EXPECT_TRUE(LoadBinaryGraph(path, &g).IsCorruption());
}

TEST_F(BinaryIoTest, BadAttributeByteIsCorruption) {
  std::string bytes = "FCG1";
  auto put = [&bytes](uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  put(2);
  put(1);
  put(0);
  put(1);
  bytes.push_back(0);
  bytes.push_back(7);  // invalid attribute
  std::string path = WriteRaw("attr.fcg", bytes);
  AttributedGraph g;
  EXPECT_TRUE(LoadBinaryGraph(path, &g).IsCorruption());
}

TEST_F(BinaryIoTest, TrailingGarbageIsCorruption) {
  AttributedGraph g = RandomAttributedGraph(20, 0.3, 2);
  std::string path = Path("garbage.fcg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  WriteRaw("garbage.fcg", bytes + "extra");
  AttributedGraph loaded;
  Status status = LoadBinaryGraph(path, &loaded);
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("trailing garbage"), std::string::npos);
}

TEST_F(BinaryIoTest, RejectsUnsortedOrDenormalizedEdges) {
  auto make = [](std::initializer_list<std::pair<uint32_t, uint32_t>> edges) {
    std::string bytes = "FCG1";
    auto put = [&bytes](uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        bytes.push_back(static_cast<char>(v >> (8 * i)));
      }
    };
    put(4);
    put(static_cast<uint32_t>(edges.size()));
    for (auto [u, v] : edges) {
      put(u);
      put(v);
    }
    for (int i = 0; i < 4; ++i) bytes.push_back(0);
    return bytes;
  };
  AttributedGraph g;
  // u >= v.
  EXPECT_TRUE(
      LoadBinaryGraph(WriteRaw("swap.fcg", make({{2, 1}})), &g).IsCorruption());
  // Out of order.
  EXPECT_TRUE(LoadBinaryGraph(WriteRaw("order.fcg", make({{1, 2}, {0, 1}})), &g)
                  .IsCorruption());
  // Duplicate (not strictly sorted).
  EXPECT_TRUE(LoadBinaryGraph(WriteRaw("dup.fcg", make({{0, 1}, {0, 1}})), &g)
                  .IsCorruption());
  // A well-formed file with the same helper still loads.
  EXPECT_TRUE(
      LoadBinaryGraph(WriteRaw("ok.fcg", make({{0, 1}, {1, 2}})), &g).ok());
}

// Every strict prefix of a valid file must be rejected cleanly (no crash,
// no out-of-bounds read — the ASan job would flag one) and no prefix may
// ever load as a *different* graph.
TEST_F(BinaryIoTest, TruncationSweepRejectsEveryPrefix) {
  AttributedGraph g = RandomAttributedGraph(30, 0.2, 3);
  std::string path = Path("sweep.fcg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 12u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string prefix_path = WriteRaw("prefix.fcg", bytes.substr(0, len));
    AttributedGraph loaded;
    Status status = LoadBinaryGraph(prefix_path, &loaded);
    EXPECT_TRUE(status.IsCorruption()) << "prefix of length " << len
                                       << " was not rejected: "
                                       << status.ToString();
  }
}

// ----------------------------------------------------------------- METIS --

TEST_F(BinaryIoTest, MetisBasicTriangle) {
  // 3 vertices, 3 edges; 1-based adjacency lines.
  std::string path = WriteRaw("tri.metis", "3 3\n2 3\n1 3\n1 2\n");
  AttributedGraph g;
  ASSERT_TRUE(LoadMetisGraph(path, &g).ok());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
}

TEST_F(BinaryIoTest, MetisSkipsCommentLines) {
  std::string path =
      WriteRaw("c.metis", "% a comment\n2 1\n% another\n2\n1\n");
  AttributedGraph g;
  ASSERT_TRUE(LoadMetisGraph(path, &g).ok());
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(BinaryIoTest, MetisIsolatedVertexLine) {
  // Vertex 2 has no neighbors: empty line.
  std::string path = WriteRaw("iso.metis", "3 1\n3\n\n1\n");
  AttributedGraph g;
  ASSERT_TRUE(LoadMetisGraph(path, &g).ok());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST_F(BinaryIoTest, MetisRejectsWeightedFormat) {
  std::string path = WriteRaw("w.metis", "2 1 1\n2 5\n1 5\n");
  AttributedGraph g;
  EXPECT_TRUE(LoadMetisGraph(path, &g).IsInvalidArgument());
}

TEST_F(BinaryIoTest, MetisRejectsOutOfRangeNeighbor) {
  std::string path = WriteRaw("r.metis", "2 1\n5\n1\n");
  AttributedGraph g;
  EXPECT_TRUE(LoadMetisGraph(path, &g).IsOutOfRange());
}

TEST_F(BinaryIoTest, MetisRejectsTruncatedFile) {
  std::string path = WriteRaw("t.metis", "3 2\n2\n");
  AttributedGraph g;
  EXPECT_TRUE(LoadMetisGraph(path, &g).IsCorruption());
}

TEST_F(BinaryIoTest, MetisRejectsNonNumericToken) {
  std::string path = WriteRaw("n.metis", "2 1\n2 x\n1\n");
  AttributedGraph g;
  EXPECT_TRUE(LoadMetisGraph(path, &g).IsInvalidArgument());
}

}  // namespace
}  // namespace fairclique
