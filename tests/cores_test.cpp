#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cores.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Brute-force core numbers: repeatedly strip vertices of minimum degree.
std::vector<uint32_t> BruteForceCores(const AttributedGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> core(n, 0);
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);
  uint32_t level = 0;
  for (VertexId step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && (best == kInvalidVertex || deg[v] < deg[best])) best = v;
    }
    level = std::max(level, deg[best]);
    core[best] = level;
    alive[best] = 0;
    for (VertexId w : g.neighbors(best)) {
      if (alive[w]) deg[w]--;
    }
  }
  return core;
}

TEST(CoresTest, EmptyGraph) {
  AttributedGraph g = MakeGraph("", {});
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 0u);
  EXPECT_TRUE(d.peel_order.empty());
}

TEST(CoresTest, CliqueCoreNumbers) {
  // K5: every vertex has core number 4.
  GraphBuilder b(5);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  AttributedGraph g = b.Build();
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 4u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d.core[v], 4u);
}

TEST(CoresTest, PathGraphIsDegenerate1) {
  AttributedGraph g = MakeGraph("aaaa", {{0, 1}, {1, 2}, {2, 3}});
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 1u);
}

TEST(CoresTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    AttributedGraph g = RandomAttributedGraph(70, 0.08, seed);
    CoreDecomposition fast = ComputeCores(g);
    std::vector<uint32_t> brute = BruteForceCores(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(fast.core[v], brute[v]) << "vertex " << v << " seed " << seed;
    }
  }
}

TEST(CoresTest, PeelOrderIsValidDegeneracyOrder) {
  AttributedGraph g = RandomAttributedGraph(80, 0.1, 9);
  CoreDecomposition d = ComputeCores(g);
  ASSERT_EQ(d.peel_order.size(), g.num_vertices());
  // position is the inverse permutation.
  for (uint32_t i = 0; i < d.peel_order.size(); ++i) {
    EXPECT_EQ(d.position[d.peel_order[i]], i);
  }
  // Each vertex has <= degeneracy neighbors later in the order.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint32_t later = 0;
    for (VertexId w : g.neighbors(v)) {
      if (d.position[w] > d.position[v]) ++later;
    }
    EXPECT_LE(later, d.degeneracy);
  }
}

TEST(KCoreAliveFlagsTest, AgreesWithDecomposition) {
  AttributedGraph g = RandomAttributedGraph(60, 0.12, 11);
  CoreDecomposition d = ComputeCores(g);
  for (uint32_t k = 0; k <= d.degeneracy + 1; ++k) {
    std::vector<uint8_t> alive = KCoreAliveFlags(g, k);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(alive[v] != 0, d.core[v] >= k)
          << "k=" << k << " vertex " << v;
    }
  }
}

TEST(KCoreAliveFlagsTest, SurvivorsHaveEnoughDegree) {
  AttributedGraph g = RandomAttributedGraph(100, 0.06, 13);
  for (uint32_t k : {1u, 2u, 3u}) {
    std::vector<uint8_t> alive = KCoreAliveFlags(g, k);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!alive[v]) continue;
      uint32_t alive_deg = 0;
      for (VertexId w : g.neighbors(v)) {
        if (alive[w]) ++alive_deg;
      }
      EXPECT_GE(alive_deg, k) << "k=" << k << " vertex " << v;
    }
  }
}

TEST(HIndexTest, KnownSequences) {
  EXPECT_EQ(HIndexOfValues({}), 0u);
  EXPECT_EQ(HIndexOfValues({0, 0, 0}), 0u);
  EXPECT_EQ(HIndexOfValues({5}), 1u);
  EXPECT_EQ(HIndexOfValues({1, 2, 3, 4, 5}), 3u);
  EXPECT_EQ(HIndexOfValues({10, 10, 10}), 3u);
  EXPECT_EQ(HIndexOfValues({-3, 2, 2}), 2u);
}

TEST(HIndexTest, GraphHIndexAtLeastDegeneracy) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    AttributedGraph g = RandomAttributedGraph(80, 0.1, seed);
    CoreDecomposition d = ComputeCores(g);
    // h-index of the degree sequence upper-bounds the degeneracy.
    EXPECT_GE(GraphHIndex(g), d.degeneracy);
  }
}

TEST(HIndexTest, GraphHIndexMatchesNaive) {
  AttributedGraph g = RandomAttributedGraph(50, 0.15, 31);
  uint32_t naive = 0;
  for (uint32_t h = 1; h <= g.num_vertices(); ++h) {
    uint32_t cnt = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.degree(v) >= h) ++cnt;
    }
    if (cnt >= h) naive = h;
  }
  EXPECT_EQ(GraphHIndex(g), naive);
}

}  // namespace
}  // namespace fairclique
