// Differential coverage of the runtime-dispatched bitset kernels: every
// variant the build+CPU supports must be bit-exact against the scalar
// reference on word arrays straddling word and vector-lane boundaries, the
// Bitset wrapper must preserve the tail-clean invariant through every
// mutator, and the bitset search engine must return identical answers and
// node counts no matter which kernel variant it runs on.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "common/bitset.h"
#include "common/bitset_simd.h"
#include "core/max_fair_clique.h"
#include "core/prepared_graph.h"
#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

// Restores automatic kernel selection when a test scope ends, so an
// override never leaks into other tests in the binary.
struct KernelOverrideGuard {
  explicit KernelOverrideGuard(const char* name) {
    ok = simd::SetKernelOverride(name);
  }
  ~KernelOverrideGuard() { simd::SetKernelOverride(nullptr); }
  bool ok = false;
};

// Word counts straddling every interesting boundary: single word, the
// 64-bit word edge, the 256-bit AVX2 lane edge (4 words), the 128-bit NEON
// lane edge (2 words), and sizes far past kDispatchMinWords.
const size_t kWordCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 65};

std::vector<uint64_t> RandomWords(std::mt19937_64& rng, size_t n) {
  std::vector<uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

TEST(BitsetKernelTest, AllVariantsMatchScalarReference) {
  const simd::Kernels& ref = simd::Scalar();
  for (const std::string& name : simd::SupportedKernels()) {
    KernelOverrideGuard guard(name.c_str());
    ASSERT_TRUE(guard.ok) << name;
    const simd::Kernels& k = simd::Active();
    ASSERT_STREQ(k.name, name.c_str());
    std::mt19937_64 rng(0xfa17c11e);
    for (size_t n : kWordCounts) {
      for (int round = 0; round < 8; ++round) {
        std::vector<uint64_t> a = RandomWords(rng, n);
        std::vector<uint64_t> b = RandomWords(rng, n);
        std::vector<uint64_t> mask = RandomWords(rng, n);

        EXPECT_EQ(k.popcount(a.data(), n), ref.popcount(a.data(), n));
        EXPECT_EQ(k.intersect_count(a.data(), b.data(), n),
                  ref.intersect_count(a.data(), b.data(), n));
        EXPECT_EQ(k.any(a.data(), n), ref.any(a.data(), n));

        std::vector<uint64_t> x = a, y = a;
        k.and_inplace(x.data(), b.data(), n);
        ref.and_inplace(y.data(), b.data(), n);
        EXPECT_EQ(x, y) << name << " and n=" << n;

        x = a; y = a;
        k.andnot_inplace(x.data(), b.data(), n);
        ref.andnot_inplace(y.data(), b.data(), n);
        EXPECT_EQ(x, y) << name << " andnot n=" << n;

        x = a; y = a;
        k.or_inplace(x.data(), b.data(), n);
        ref.or_inplace(y.data(), b.data(), n);
        EXPECT_EQ(x, y) << name << " or n=" << n;

        std::vector<uint64_t> d1(n, 0), d2(n, 0);
        simd::DualCount c1 =
            k.intersect_into_dual(d1.data(), a.data(), b.data(), mask.data(), n);
        simd::DualCount c2 = ref.intersect_into_dual(d2.data(), a.data(),
                                                     b.data(), mask.data(), n);
        EXPECT_EQ(d1, d2) << name << " dual dst n=" << n;
        EXPECT_EQ(c1.total, c2.total) << name << " dual total n=" << n;
        EXPECT_EQ(c1.in_mask, c2.in_mask) << name << " dual mask n=" << n;

        // dst aliasing a is part of the contract (the engine intersects
        // into the caller's scratch, which may be the accumulator).
        x = a;
        simd::DualCount c3 = k.intersect_into_dual(x.data(), x.data(),
                                                   b.data(), mask.data(), n);
        EXPECT_EQ(x, d2) << name << " aliased dual n=" << n;
        EXPECT_EQ(c3.total, c2.total);
        EXPECT_EQ(c3.in_mask, c2.in_mask);
      }
    }
  }
}

TEST(BitsetKernelTest, ZerosAndOnesEdgeCases) {
  for (const std::string& name : simd::SupportedKernels()) {
    KernelOverrideGuard guard(name.c_str());
    const simd::Kernels& k = simd::Active();
    for (size_t n : kWordCounts) {
      std::vector<uint64_t> zeros(n, 0), ones(n, ~0ULL);
      EXPECT_EQ(k.popcount(zeros.data(), n), 0u);
      EXPECT_EQ(k.popcount(ones.data(), n), 64 * n);
      EXPECT_FALSE(k.any(zeros.data(), n));
      EXPECT_TRUE(k.any(ones.data(), n));
      EXPECT_EQ(k.intersect_count(ones.data(), ones.data(), n), 64 * n);
      EXPECT_EQ(k.intersect_count(ones.data(), zeros.data(), n), 0u);
    }
  }
}

// Bit-level differential over the Bitset wrapper at sizes straddling the
// 63/64/65 and 255/256/257 boundaries, for every variant.
TEST(BitsetKernelTest, BitsetOpsMatchAcrossVariants) {
  const size_t kBitSizes[] = {1,   63,  64,  65,  127, 128, 129,
                              255, 256, 257, 511, 512, 513, 1000};
  for (size_t bits : kBitSizes) {
    std::mt19937_64 rng(bits * 2654435761u);
    // Build identical random bitsets, apply the same op chain under each
    // variant, and require identical results everywhere.
    std::vector<size_t> a_bits, b_bits;
    for (size_t i = 0; i < bits; ++i) {
      if (rng() & 1) a_bits.push_back(i);
      if (rng() & 1) b_bits.push_back(i);
    }
    size_t ref_count = 0, ref_icount = 0, ref_next = 0;
    bool first = true;
    for (const std::string& name : simd::SupportedKernels()) {
      KernelOverrideGuard guard(name.c_str());
      Bitset a(bits), b(bits);
      for (size_t i : a_bits) a.Set(i);
      for (size_t i : b_bits) b.Set(i);
      size_t icount = a.IntersectCount(b);
      Bitset t = a;
      t &= b;
      EXPECT_EQ(t.Count(), icount) << name << " bits=" << bits;
      t = a;
      t -= b;
      EXPECT_EQ(t.Count() + icount, a.Count()) << name << " bits=" << bits;
      t = a;
      t |= b;
      EXPECT_EQ(t.Count(), a.Count() + b.Count() - icount)
          << name << " bits=" << bits;
      EXPECT_TRUE(t.TailClean());
      size_t next = a.NextSetBit(bits / 2);
      if (first) {
        ref_count = a.Count();
        ref_icount = icount;
        ref_next = next;
        first = false;
      } else {
        EXPECT_EQ(a.Count(), ref_count) << name;
        EXPECT_EQ(icount, ref_icount) << name;
        EXPECT_EQ(next, ref_next) << name;
      }
    }
  }
}

TEST(BitsetKernelTest, SetAllKeepsTailClean) {
  for (size_t bits : {1u, 63u, 64u, 65u, 127u, 129u, 255u, 257u}) {
    Bitset b(bits);
    b.SetAll();
    EXPECT_TRUE(b.TailClean());
    EXPECT_EQ(b.Count(), bits);
    b.SetAll();
    Bitset other(bits);
    other.SetAll();
    b |= other;
    EXPECT_TRUE(b.TailClean());
    EXPECT_EQ(b.Count(), bits);
  }
}

TEST(BitsetKernelTest, NextSetBitMasksFinalWordExplicitly) {
  // Plant garbage beyond size() through the raw word view: NextSetBit must
  // not surface phantom positions even when the invariant is violated
  // mid-mutation (its contract is exactness regardless of tail state).
  Bitset b(65);
  ASSERT_EQ(b.num_words(), 2u);
  b.words()[1] = ~1ULL;  // bit 64 clear, bits 65..127 stale
  EXPECT_EQ(b.NextSetBit(0), 65u);   // == size(): nothing valid is set
  EXPECT_EQ(b.NextSetBit(64), 65u);
  b.words()[1] |= 1ULL;  // now bit 64 (valid) is set too
  EXPECT_EQ(b.NextSetBit(0), 64u);
  EXPECT_EQ(b.NextSetBit(65), 65u);  // from >= size
}

TEST(BitsetKernelTest, SearchAnswersIdenticalUnderEveryVariant) {
  struct Case {
    uint64_t seed;
    VertexId n;
    double density;
    int k, delta;
  };
  const Case cases[] = {{21, 40, 0.35, 2, 1},
                        {22, 60, 0.25, 2, 0},
                        {23, 80, 0.20, 3, 2},
                        {24, 120, 0.12, 2, 1}};
  for (const Case& c : cases) {
    AttributedGraph g = RandomAttributedGraph(c.n, c.density, c.seed);
    SearchOptions opts;
    opts.params = {c.k, c.delta};
    opts.engine = SearchEngine::kBitset;
    size_t ref_size = 0;
    uint64_t ref_nodes = 0;
    bool first = true;
    for (const std::string& name : simd::SupportedKernels()) {
      KernelOverrideGuard guard(name.c_str());
      ASSERT_TRUE(guard.ok);
      SearchResult r = FindMaximumFairClique(g, opts);
      if (!r.clique.empty()) {
        EXPECT_TRUE(
            VerifyFairClique(g, r.clique.vertices, opts.params).ok());
      }
      if (first) {
        ref_size = r.clique.size();
        ref_nodes = r.stats.nodes;
        first = false;
      } else {
        // Kernels differ only in instruction selection, so the whole
        // search trace — not just the answer — must be identical.
        EXPECT_EQ(r.clique.size(), ref_size) << name << " seed=" << c.seed;
        EXPECT_EQ(r.stats.nodes, ref_nodes) << name << " seed=" << c.seed;
      }
    }
    // And the vector engine agrees with all of them.
    opts.engine = SearchEngine::kVector;
    SearchResult rv = FindMaximumFairClique(g, opts);
    EXPECT_EQ(rv.clique.size(), ref_size) << "vector seed=" << c.seed;
    EXPECT_EQ(rv.stats.nodes, ref_nodes) << "vector seed=" << c.seed;
  }
}

TEST(BitsetKernelTest, EngineDecisionIsMemoryAware) {
  // Explicit choices pass through, with observability fields still filled.
  EngineDecision forced = ResolveEngineDecision(SearchEngine::kVector, 100);
  EXPECT_EQ(forced.engine, SearchEngine::kVector);
  EXPECT_GT(forced.arena_bytes, 0u);
  EXPECT_GT(forced.budget_bytes, 0u);

  // The budget floor (2 MiB) keeps everything the old fixed 4096-vertex
  // threshold accepted on the bitset engine: 4096 rows x 64 words x 8 bytes
  // is exactly 2 MiB.
  EngineDecision at_old_threshold =
      ResolveEngineDecision(SearchEngine::kAuto, 4096);
  EXPECT_EQ(at_old_threshold.arena_bytes, uint64_t{2} * 1024 * 1024);
  EXPECT_EQ(at_old_threshold.engine, SearchEngine::kBitset);
  EXPECT_GE(at_old_threshold.budget_bytes, uint64_t{2} * 1024 * 1024);

  // Far past any plausible budget (a 200k-vertex arena is ~5 GB), kAuto
  // must fall back to the vector engine.
  EngineDecision huge = ResolveEngineDecision(SearchEngine::kAuto, 200000);
  EXPECT_EQ(huge.engine, SearchEngine::kVector);
  EXPECT_GT(huge.arena_bytes, huge.budget_bytes);

  // Monotone: arena bytes never shrink with component size.
  uint64_t prev = 0;
  for (VertexId n : {16, 64, 65, 1024, 4096, 4097, 10000}) {
    EngineDecision d = ResolveEngineDecision(SearchEngine::kAuto, n);
    EXPECT_GE(d.arena_bytes, prev) << n;
    prev = d.arena_bytes;
  }
}

TEST(BitsetKernelTest, ArenaRowsAreAlignedAndPadded) {
  BitsetArena arena(37, 100);
  EXPECT_EQ(arena.rows(), 37u);
  EXPECT_EQ(arena.bits(), 100u);
  // 100 bits -> 2 words -> padded to a full cache line (8 words).
  EXPECT_EQ(arena.words_per_row(), 8u);
  EXPECT_EQ(arena.bytes(), 37u * 64u);
  for (size_t r = 0; r < arena.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.row(r)) % 64, 0u) << r;
    for (size_t w = 0; w < arena.words_per_row(); ++w) {
      EXPECT_EQ(arena.row(r)[w], 0u);
    }
  }
  arena.SetBit(3, 99);
  EXPECT_TRUE(arena.TestBit(3, 99));
  EXPECT_FALSE(arena.TestBit(3, 98));
  arena.PrefetchRow(4);   // smoke: must be safe on any row
  arena.PrefetchRow(40);  // and out of range
}

// Exercised in the TSan job: concurrent readers race an override flip on
// the dispatch pointer; the only synchronization is the atomic pointer.
TEST(BitsetKernelTest, ConcurrentDispatchAndOverrideAreRaceFree) {
  constexpr size_t kWords = 64;
  std::vector<uint64_t> a(kWords, 0x5555555555555555ULL);
  std::vector<uint64_t> b(kWords, 0x3333333333333333ULL);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // 0x...5 & 0x...3 = 0x...1 -> one bit per nibble.
        if (simd::IntersectCount(a.data(), b.data(), kWords) != 16 * kWords) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::string> names = simd::SupportedKernels();
  for (int i = 0; i < 200; ++i) {
    simd::SetKernelOverride(names[i % names.size()].c_str());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  simd::SetKernelOverride(nullptr);
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace fairclique
