#include <gtest/gtest.h>

#include "core/enumeration.h"
#include "core/heuristics.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(LocalSearchTest, EmptyAndInvalidSeedsPassThrough) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  CliqueResult empty;
  EXPECT_TRUE(LocalSearchImprove(g, empty, {1, 0}).empty());
  // A seed that is not fair is returned untouched.
  CliqueResult unfair;
  unfair.vertices = {0};
  unfair.attr_counts[Attribute::kA] = 1;
  EXPECT_EQ(LocalSearchImprove(g, unfair, {1, 0}).size(), 1u);
}

TEST(LocalSearchTest, AddMoveCompletesACliqueGreedyMissed) {
  // K4 (2a/2b); seed with a fair sub-pair, local search must extend to 4.
  AttributedGraph g =
      MakeGraph("aabb", {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  CliqueResult seed;
  seed.vertices = {0, 2};
  seed.attr_counts[Attribute::kA] = 1;
  seed.attr_counts[Attribute::kB] = 1;
  CliqueResult improved = LocalSearchImprove(g, seed, {1, 1});
  EXPECT_EQ(improved.size(), 4u);
  EXPECT_TRUE(IsFairClique(g, improved.vertices, {1, 1}));
}

TEST(LocalSearchTest, SwapEscapesLocalOptimum) {
  // Cliques {0,1,2} and {0,2,3,4,5} sharing the edge {0,2}. Seeded with the
  // small clique, ADD cannot help (nothing is adjacent to 1), but dropping 1
  // and adding two of {3,4,5} grows the clique; follow-up ADDs reach 5.
  GraphBuilder b(6);
  auto clique = [&b](std::vector<VertexId> vs) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) b.AddEdge(vs[i], vs[j]);
    }
  };
  clique({0, 1, 2});
  clique({0, 2, 3, 4, 5});
  b.SetAttribute(0, Attribute::kA);
  b.SetAttribute(1, Attribute::kB);
  b.SetAttribute(2, Attribute::kB);
  b.SetAttribute(3, Attribute::kB);
  b.SetAttribute(4, Attribute::kA);
  b.SetAttribute(5, Attribute::kB);
  AttributedGraph g = b.Build();
  CliqueResult seed;
  seed.vertices = {0, 1, 2};
  seed.attr_counts = CountAttributes(g, seed.vertices);
  ASSERT_TRUE(IsFairClique(g, seed.vertices, {1, 2}));
  CliqueResult improved = LocalSearchImprove(g, seed, {1, 2});
  EXPECT_GE(improved.size(), 5u);
  EXPECT_TRUE(IsFairClique(g, improved.vertices, {1, 2}));
}

TEST(LocalSearchTest, NeverShrinksNeverBreaksFairnessNeverBeatsExact) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    AttributedGraph g = RandomAttributedGraph(35, 0.3, seed);
    FairnessParams params{2, 1};
    HeuristicResult heur = HeurRFC(g, {params, 1, false});
    if (heur.clique.empty()) continue;
    CliqueResult improved = LocalSearchImprove(g, heur.clique, params);
    EXPECT_GE(improved.size(), heur.clique.size()) << "seed " << seed;
    EXPECT_TRUE(IsFairClique(g, improved.vertices, params)) << "seed " << seed;
    CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
    EXPECT_LE(improved.size(), exact.size()) << "seed " << seed;
  }
}

TEST(LocalSearchTest, HeurRFCOptionWiresItIn) {
  for (uint64_t seed = 21; seed <= 28; ++seed) {
    AttributedGraph g = RandomAttributedGraph(50, 0.25, seed);
    FairnessParams params{2, 2};
    HeuristicResult plain = HeurRFC(g, {params, 1, false});
    HeuristicResult with_ls = HeurRFC(g, {params, 1, true});
    EXPECT_GE(with_ls.clique.size(), plain.clique.size()) << "seed " << seed;
    if (!with_ls.clique.empty()) {
      EXPECT_TRUE(IsFairClique(g, with_ls.clique.vertices, params));
    }
  }
}

// Branch-order ablation correctness: all orderings are exact.
TEST(BranchOrderTest, AllOrderingsAgreeWithOracle) {
  for (uint64_t seed : {31u, 32u, 33u, 34u}) {
    AttributedGraph g = RandomAttributedGraph(30, 0.35, seed);
    FairnessParams params{2, 1};
    CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);
    for (BranchOrder order : {BranchOrder::kColorfulCore,
                              BranchOrder::kDegeneracy, BranchOrder::kDegree}) {
      for (SearchEngine engine :
           {SearchEngine::kVector, SearchEngine::kBitset}) {
        SearchOptions opts = BoundedOptions(2, 1, ExtraBound::kColorfulPath);
        opts.order = order;
        opts.engine = engine;
        SearchResult r = FindMaximumFairClique(g, opts);
        EXPECT_EQ(r.clique.size(), oracle.size())
            << "seed=" << seed << " order=" << static_cast<int>(order)
            << " engine=" << static_cast<int>(engine);
      }
    }
  }
}

}  // namespace
}  // namespace fairclique
