#include "service/wire.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace fairclique {
namespace {

using wire::GetBool;
using wire::GetNumber;
using wire::GetString;
using wire::JsonObject;

// ----------------------------------------------------------------- parsing

TEST(WireJsonTest, ParsesFlatObject) {
  JsonObject obj;
  std::string error;
  ASSERT_TRUE(wire::ParseJsonObject(
      R"({"cmd":"query","graph":"g","k":3,"delta":1.5,"async":true,"cold":false})",
      &obj, &error))
      << error;
  EXPECT_EQ(GetString(obj, "cmd"), "query");
  EXPECT_EQ(GetString(obj, "graph"), "g");
  EXPECT_EQ(GetNumber(obj, "k", 0), 3.0);
  EXPECT_EQ(GetNumber(obj, "delta", 0), 1.5);
  EXPECT_TRUE(GetBool(obj, "async", false));
  EXPECT_FALSE(GetBool(obj, "cold", true));
}

TEST(WireJsonTest, ParsesEmptyObjectAndWhitespace) {
  JsonObject obj;
  std::string error;
  EXPECT_TRUE(wire::ParseJsonObject("  { }  ", &obj, &error));
  EXPECT_TRUE(obj.empty());
  EXPECT_TRUE(wire::ParseJsonObject("{ \"a\" : \"b\" }", &obj, &error));
  EXPECT_EQ(GetString(obj, "a"), "b");
}

TEST(WireJsonTest, DecodesEscapes) {
  JsonObject obj;
  std::string error;
  ASSERT_TRUE(wire::ParseJsonObject(
      R"({"path":"a\\b","quote":"say \"hi\"","nl":"x\ny"})", &obj, &error))
      << error;
  EXPECT_EQ(GetString(obj, "path"), "a\\b");
  EXPECT_EQ(GetString(obj, "quote"), "say \"hi\"");
  EXPECT_EQ(GetString(obj, "nl"), "x\ny");
}

TEST(WireJsonTest, RejectsMalformedInput) {
  JsonObject obj;
  std::string error;
  EXPECT_FALSE(wire::ParseJsonObject("", &obj, &error));
  EXPECT_FALSE(wire::ParseJsonObject("not json", &obj, &error));
  EXPECT_FALSE(wire::ParseJsonObject("{\"a\":}", &obj, &error));
  EXPECT_FALSE(wire::ParseJsonObject("{\"a\":1", &obj, &error));
  EXPECT_FALSE(wire::ParseJsonObject("{\"a\" 1}", &obj, &error));
  EXPECT_FALSE(wire::ParseJsonObject("{a:1}", &obj, &error));
  EXPECT_FALSE(wire::ParseJsonObject("{\"a\":\"unterminated}", &obj, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WireJsonTest, TypedAccessorsFallBackOnWrongType) {
  JsonObject obj;
  std::string error;
  ASSERT_TRUE(wire::ParseJsonObject(R"({"s":"x","n":5,"b":true})", &obj,
                                    &error));
  // Wrong-type and missing lookups both yield the fallback.
  EXPECT_EQ(GetString(obj, "n", "fb"), "fb");
  EXPECT_EQ(GetNumber(obj, "s", -1.0), -1.0);
  EXPECT_FALSE(GetBool(obj, "n", false));
  EXPECT_EQ(GetString(obj, "missing", "fb"), "fb");
  EXPECT_EQ(GetNumber(obj, "missing", 7.0), 7.0);
  EXPECT_TRUE(GetBool(obj, "missing", true));
}

// ------------------------------------------------------------ serialization

TEST(WireJsonTest, EscapesControlCharacters) {
  EXPECT_EQ(wire::JsonEscape("plain"), "plain");
  EXPECT_EQ(wire::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(wire::JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(wire::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(WireJsonTest, ErrorJsonShape) {
  EXPECT_EQ(wire::ErrorJson(7, "boom"),
            "{\"ok\":false,\"id\":7,\"error\":\"boom\"}");
  // The message is escaped.
  EXPECT_EQ(wire::ErrorJson(1, "a\"b"),
            "{\"ok\":false,\"id\":1,\"error\":\"a\\\"b\"}");
}

TEST(WireJsonTest, QueryResponseJsonRoundTripsThroughParser) {
  auto result = std::make_shared<SearchResult>();
  result->clique.vertices = {3, 8, 11};
  result->clique.attr_counts[Attribute::kA] = 2;
  result->clique.attr_counts[Attribute::kB] = 1;
  QueryResponse response;
  response.result = result;
  response.prepared_hit = true;
  response.run_micros = 42;

  std::string line = wire::QueryResponseJson(5, "g", response);
  // The emitted vertices array keeps this test honest about the layout.
  EXPECT_NE(line.find("\"vertices\":[3,8,11]"), std::string::npos);
  EXPECT_NE(line.find("\"counts\":[2,1]"), std::string::npos);

  // Scalar fields parse back with the flat parser (it skips past the two
  // bracketed arrays only if they appear as values, so check via substring
  // first and then a reduced object).
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"id\":5"), std::string::npos);
  EXPECT_NE(line.find("\"graph\":\"g\""), std::string::npos);
  EXPECT_NE(line.find("\"size\":3"), std::string::npos);
  EXPECT_NE(line.find("\"prepared_hit\":true"), std::string::npos);
  EXPECT_NE(line.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(line.find("\"run_micros\":42"), std::string::npos);
}

TEST(WireJsonTest, QueryResponseJsonAppendsStopReasonAndPlanLast) {
  // External scrapers (and the CI crash-recovery smoke) pattern-match on
  // the original field order, so the newer fields must stay appended after
  // run_micros: stop_reason always, the spliced plan only when present.
  auto result = std::make_shared<SearchResult>();
  result->stats.completed = false;
  QueryResponse response;
  response.result = result;
  response.run_micros = 7;
  response.stop_reason = "deadline";

  std::string line = wire::QueryResponseJson(1, "g", response);
  EXPECT_NE(line.find("\"run_micros\":7,\"stop_reason\":\"deadline\"}"),
            std::string::npos)
      << line;
  EXPECT_EQ(line.find("\"plan\""), std::string::npos) << line;

  response.stop_reason = "";
  response.plan_json = "{\"prepare\":{}}";
  line = wire::QueryResponseJson(1, "g", response);
  EXPECT_NE(
      line.find("\"stop_reason\":\"\",\"plan\":{\"prepare\":{}}}"),
      std::string::npos)
      << line;
}

TEST(WireJsonTest, RawSplicesVerbatimWithCommaHandling) {
  wire::JsonWriter w;
  w.BeginObject()
      .Field("a", 1)
      .Key("plan")
      .Raw("{\"x\":[1,2]}")
      .Field("b", 2)
      .EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"plan\":{\"x\":[1,2]},\"b\":2}");
}

TEST(WireJsonTest, TraceNotFoundJsonIsStructured) {
  // `trace <id>` / `slowlog` misses answer with a machine-readable reason,
  // not a bare error string: evicted traces are expected operation, and
  // clients retrying with a fresh id need to tell the cases apart.
  EXPECT_EQ(wire::TraceNotFoundJson(4, 123),
            "{\"ok\":false,\"id\":4,\"error\":\"trace 123 not retained\","
            "\"trace_id\":123,\"reason\":\"not_retained\"}");
}

TEST(WireJsonTest, QueryResponseJsonErrorsSerializeAsErrorJson) {
  QueryResponse response;
  response.status = Status::Aborted("queue full");
  std::string line = wire::QueryResponseJson(9, "g", response);
  EXPECT_EQ(line.find("{\"ok\":false,\"id\":9,"), 0u);
  EXPECT_NE(line.find("queue full"), std::string::npos);
}

// ---------------------------------------------------------- token parsing

TEST(WireTokenTest, SplitListDropsEmptySegments) {
  EXPECT_TRUE(wire::SplitList("").empty());
  EXPECT_EQ(wire::SplitList("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(wire::SplitList("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(wire::SplitList(",a,,b,"), (std::vector<std::string>{"a", "b"}));
}

TEST(WireTokenTest, ParseAttrToken) {
  Attribute attr;
  EXPECT_TRUE(wire::ParseAttrToken("a", &attr));
  EXPECT_EQ(attr, Attribute::kA);
  EXPECT_TRUE(wire::ParseAttrToken("1", &attr));
  EXPECT_EQ(attr, Attribute::kB);
  EXPECT_FALSE(wire::ParseAttrToken("c", &attr));
  EXPECT_FALSE(wire::ParseAttrToken("", &attr));
}

TEST(WireTokenTest, ParseVertexPairAcceptsOnlyFullTokens) {
  VertexId u = 0, v = 0;
  EXPECT_TRUE(wire::ParseVertexPair("0-5", '-', &u, &v));
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(v, 5u);
  EXPECT_TRUE(wire::ParseVertexPair("12:34", ':', &u, &v));
  EXPECT_EQ(u, 12u);
  EXPECT_EQ(v, 34u);
  EXPECT_FALSE(wire::ParseVertexPair("-5", '-', &u, &v));
  EXPECT_FALSE(wire::ParseVertexPair("5-", '-', &u, &v));
  EXPECT_FALSE(wire::ParseVertexPair("5", '-', &u, &v));
  EXPECT_FALSE(wire::ParseVertexPair("a-b", '-', &u, &v));
  EXPECT_FALSE(wire::ParseVertexPair("1-2x", '-', &u, &v));
}

TEST(WireTokenTest, ParseVertexIdRejectsOverflow) {
  // 2^32 does not fit VertexId; silently narrowing would target vertex 0.
  std::string big = "4294967296";
  VertexId v = 7;
  EXPECT_FALSE(
      wire::ParseVertexId(big.c_str(), big.c_str() + big.size(), &v));
  std::string max_ok = "4294967295";
  EXPECT_TRUE(wire::ParseVertexId(max_ok.c_str(),
                                  max_ok.c_str() + max_ok.size(), &v));
  EXPECT_EQ(v, 0xffffffffu);
}

TEST(WireTokenTest, ParseExtraBoundNames) {
  ExtraBound extra;
  EXPECT_TRUE(wire::ParseExtraBound("", &extra));
  EXPECT_EQ(extra, ExtraBound::kNone);
  EXPECT_TRUE(wire::ParseExtraBound("none", &extra));
  EXPECT_EQ(extra, ExtraBound::kNone);
  EXPECT_TRUE(wire::ParseExtraBound("cp", &extra));
  EXPECT_EQ(extra, ExtraBound::kColorfulPath);
  EXPECT_TRUE(wire::ParseExtraBound("cd", &extra));
  EXPECT_EQ(extra, ExtraBound::kColorfulDegeneracy);
  EXPECT_TRUE(wire::ParseExtraBound("hindex", &extra));
  EXPECT_EQ(extra, ExtraBound::kHIndex);
  EXPECT_TRUE(wire::ParseExtraBound("d", &extra));
  EXPECT_EQ(extra, ExtraBound::kDegeneracy);
  EXPECT_FALSE(wire::ParseExtraBound("bogus", &extra));
}

}  // namespace
}  // namespace fairclique
