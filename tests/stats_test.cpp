#include <gtest/gtest.h>

#include "graph/stats.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(GraphStatsTest, EmptyGraph) {
  AttributedGraph g = MakeGraph("", {});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
  EXPECT_EQ(s.triangle_count, 0u);
}

TEST(GraphStatsTest, TriangleHasClusteringOne) {
  AttributedGraph g = MakeGraph("aab", {{0, 1}, {1, 2}, {0, 2}});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.triangle_count, 1u);
  EXPECT_DOUBLE_EQ(s.global_clustering, 1.0);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
}

TEST(GraphStatsTest, StarHasClusteringZero) {
  AttributedGraph g = MakeGraph("aaaab", {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.triangle_count, 0u);
  EXPECT_DOUBLE_EQ(s.global_clustering, 0.0);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.degree_p50, 1u);
}

TEST(GraphStatsTest, PerfectlyAssortativeGraph) {
  // Two disjoint same-attribute triangles: assortativity 1.
  AttributedGraph g =
      MakeGraph("aaabbb", {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_DOUBLE_EQ(s.same_attribute_edge_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.attribute_assortativity, 1.0);
  EXPECT_EQ(s.num_components, 2u);
}

TEST(GraphStatsTest, PerfectlyDisassortativeGraph) {
  // Complete bipartite K2,2 across attributes: assortativity -1.
  AttributedGraph g = MakeGraph("aabb", {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_DOUBLE_EQ(s.same_attribute_edge_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.attribute_assortativity, -1.0);
}

TEST(GraphStatsTest, IndependentLabelsNearZeroAssortativity) {
  AttributedGraph g = RandomAttributedGraph(500, 0.05, 9);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_NEAR(s.attribute_assortativity, 0.0, 0.05);
  EXPECT_NEAR(s.same_attribute_edge_fraction, 0.5, 0.05);
}

TEST(GraphStatsTest, PercentilesOrdered) {
  AttributedGraph g = RandomAttributedGraph(200, 0.05, 11);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_LE(s.degree_p50, s.degree_p90);
  EXPECT_LE(s.degree_p90, s.degree_p99);
  EXPECT_LE(s.degree_p99, s.max_degree);
}

TEST(GraphStatsTest, FormatContainsKeyLines) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  std::string text = FormatGraphStats(ComputeGraphStats(g));
  EXPECT_NE(text.find("vertices:"), std::string::npos);
  EXPECT_NE(text.find("assortativity:"), std::string::npos);
  EXPECT_NE(text.find("triangles:"), std::string::npos);
}

}  // namespace
}  // namespace fairclique
