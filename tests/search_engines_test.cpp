#include <gtest/gtest.h>

#include "common/bitset.h"
#include "core/enumeration.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

TEST(BitsetResetBelowTest, ClearsExactPrefix) {
  for (size_t n : {1u, 63u, 64u, 65u, 130u}) {
    for (size_t cut : {0u, 1u, 63u, 64u, 65u, 129u, 200u}) {
      Bitset bs(n);
      bs.SetAll();
      bs.ResetBelow(cut);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bs.Test(i), i >= cut) << "n=" << n << " cut=" << cut;
      }
    }
  }
}

// Differential sweep: both kernels are exact, so they must agree with each
// other and the oracle on every instance, with every prune configuration.
struct EngineCase {
  uint64_t seed;
  VertexId n;
  double density;
  int k;
  int delta;
};

class EngineAgreementTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineAgreementTest, VectorAndBitsetKernelsAgree) {
  const EngineCase p = GetParam();
  AttributedGraph g = RandomAttributedGraph(p.n, p.density, p.seed);
  CliqueResult oracle = MaxFairCliqueByEnumeration(g, {p.k, p.delta});

  for (ExtraBound extra : {ExtraBound::kNone, ExtraBound::kColorfulPath}) {
    SearchOptions vec = FullOptions(p.k, p.delta, extra);
    vec.engine = SearchEngine::kVector;
    SearchOptions bit = vec;
    bit.engine = SearchEngine::kBitset;

    SearchResult rv = FindMaximumFairClique(g, vec);
    SearchResult rb = FindMaximumFairClique(g, bit);
    EXPECT_EQ(rv.clique.size(), oracle.size()) << "vector engine";
    EXPECT_EQ(rb.clique.size(), oracle.size()) << "bitset engine";
    // Same pruning rules -> identical node counts.
    EXPECT_EQ(rv.stats.nodes, rb.stats.nodes);
    if (!rb.clique.empty()) {
      EXPECT_TRUE(
          VerifyFairClique(g, rb.clique.vertices, {p.k, p.delta}).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, EngineAgreementTest,
    ::testing::Values(EngineCase{1, 25, 0.35, 2, 1},
                      EngineCase{2, 30, 0.30, 2, 0},
                      EngineCase{3, 35, 0.30, 3, 2},
                      EngineCase{4, 40, 0.25, 2, 2},
                      EngineCase{5, 45, 0.35, 3, 1},
                      EngineCase{6, 50, 0.20, 2, 3},
                      EngineCase{7, 60, 0.15, 2, 1},
                      EngineCase{8, 70, 0.50, 3, 0}));

TEST(EngineSelectionTest, AutoPicksBitsetForSmallComponents) {
  AttributedGraph g = RandomAttributedGraph(60, 0.3, 10);
  SearchOptions opts = BaselineOptions(2, 1);
  opts.engine = SearchEngine::kAuto;
  SearchResult r_auto = FindMaximumFairClique(g, opts);
  opts.engine = SearchEngine::kBitset;
  SearchResult r_bitset = FindMaximumFairClique(g, opts);
  EXPECT_EQ(r_auto.clique.size(), r_bitset.clique.size());
  EXPECT_EQ(r_auto.stats.nodes, r_bitset.stats.nodes);
}

TEST(EngineSelectionTest, VectorEngineHandlesLargeSparseGraphs) {
  AttributedGraph g = RandomAttributedGraph(400, 0.02, 11);
  SearchOptions opts = BaselineOptions(1, 2);
  opts.engine = SearchEngine::kVector;
  SearchResult r = FindMaximumFairClique(g, opts);
  CliqueResult oracle = MaxFairCliqueByEnumeration(g, {1, 2});
  EXPECT_EQ(r.clique.size(), oracle.size());
}

}  // namespace
}  // namespace fairclique
