#include <gtest/gtest.h>

#include <set>

#include "core/enumeration.h"
#include "graph/coloring.h"
#include "reduction/colorful_core.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Brute-force colorful k-core: repeatedly delete any vertex with
// min(Da, Db) < k until stable.
std::vector<uint8_t> BruteColorfulCore(const AttributedGraph& g,
                                       const Coloring& c, int k) {
  const VertexId n = g.num_vertices();
  std::vector<uint8_t> alive(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      std::set<ColorId> ca, cb;
      for (VertexId w : g.neighbors(v)) {
        if (!alive[w]) continue;
        (g.attribute(w) == Attribute::kA ? ca : cb).insert(c.color[w]);
      }
      if (static_cast<int>(std::min(ca.size(), cb.size())) < k) {
        alive[v] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

// Brute-force enhanced colorful k-core using the balanced assignment.
std::vector<uint8_t> BruteEnColorfulCore(const AttributedGraph& g,
                                         const Coloring& c, int k) {
  const VertexId n = g.num_vertices();
  std::vector<uint8_t> alive(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      std::set<ColorId> ca, cb;
      for (VertexId w : g.neighbors(v)) {
        if (!alive[w]) continue;
        (g.attribute(w) == Attribute::kA ? ca : cb).insert(c.color[w]);
      }
      int64_t only_a = 0, only_b = 0, mixed = 0;
      for (ColorId col : ca) {
        if (cb.count(col)) {
          ++mixed;
        } else {
          ++only_a;
        }
      }
      for (ColorId col : cb) {
        if (!ca.count(col)) ++only_b;
      }
      if (BalancedAssignMin(only_a, only_b, mixed) < k) {
        alive[v] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

TEST(ColorfulCoreTest, KZeroKeepsEverything) {
  AttributedGraph g = RandomAttributedGraph(30, 0.2, 1);
  Coloring c = GreedyColoring(g);
  VertexReductionResult r = ColorfulCore(g, c, 0);
  EXPECT_EQ(r.vertices_left, g.num_vertices());
  EXPECT_EQ(r.edges_left, g.num_edges());
}

TEST(ColorfulCoreTest, MatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    AttributedGraph g = RandomAttributedGraph(60, 0.15, seed);
    Coloring c = GreedyColoring(g);
    for (int k = 1; k <= 4; ++k) {
      VertexReductionResult fast = ColorfulCore(g, c, k);
      std::vector<uint8_t> brute = BruteColorfulCore(g, c, k);
      EXPECT_EQ(fast.alive, brute) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(ColorfulCoreTest, SurvivorsSatisfyDegreeInvariant) {
  AttributedGraph g = RandomAttributedGraph(100, 0.1, 7);
  Coloring c = GreedyColoring(g);
  const int k = 2;
  VertexReductionResult r = ColorfulCore(g, c, k);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!r.alive[v]) continue;
    std::set<ColorId> ca, cb;
    for (VertexId w : g.neighbors(v)) {
      if (!r.alive[w]) continue;
      (g.attribute(w) == Attribute::kA ? ca : cb).insert(c.color[w]);
    }
    EXPECT_GE(static_cast<int>(std::min(ca.size(), cb.size())), k);
  }
}

TEST(EnColorfulCoreTest, MatchesBruteForce) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    AttributedGraph g = RandomAttributedGraph(60, 0.15, seed);
    Coloring c = GreedyColoring(g);
    for (int k = 1; k <= 4; ++k) {
      VertexReductionResult fast = EnColorfulCore(g, c, k);
      std::vector<uint8_t> brute = BruteEnColorfulCore(g, c, k);
      EXPECT_EQ(fast.alive, brute) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(EnColorfulCoreTest, StrongerThanColorfulCore) {
  // ED(u) <= Dmin(u), so the enhanced core is contained in the plain core.
  for (uint64_t seed : {21u, 22u, 23u}) {
    AttributedGraph g = RandomAttributedGraph(80, 0.12, seed);
    Coloring c = GreedyColoring(g);
    for (int k = 1; k <= 3; ++k) {
      VertexReductionResult plain = ColorfulCore(g, c, k);
      VertexReductionResult enhanced = EnColorfulCore(g, c, k);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (enhanced.alive[v]) {
          EXPECT_TRUE(plain.alive[v]) << "vertex " << v;
        }
      }
    }
  }
}

TEST(EnColorfulCoreTest, FairCliquesSurvive) {
  // Lemma 2: every (k, delta) fair clique is inside the enhanced colorful
  // (k-1)-core. Verify on random graphs using the oracle's maximal cliques.
  for (uint64_t seed : {31u, 32u, 33u}) {
    AttributedGraph g = RandomAttributedGraph(40, 0.3, seed);
    Coloring c = GreedyColoring(g);
    const int k = 2;
    VertexReductionResult core = EnColorfulCore(g, c, k - 1);
    EnumerateMaximalCliques(g, [&](const std::vector<VertexId>& m) {
      AttrCounts cnt;
      for (VertexId v : m) cnt[g.attribute(v)]++;
      if (cnt.a() >= k && cnt.b() >= k) {
        // This maximal clique contains a fair clique touching all of m's
        // balanced subsets; in particular every vertex participating in a
        // fair sub-clique must survive. Conservatively check: if a fair
        // subset of size 2k exists, the minority-side vertices survive.
        // Simplest sound check: every vertex of m that belongs to some
        // (k,*) fair sub-clique survives; a vertex v in m belongs to one
        // iff m has >= k vertices of each attribute counting v's side
        // appropriately — true here, so all of m must survive when both
        // counts >= k... only vertices needed: all of m qualify since any
        // k a's + k b's containing v can be chosen when cnt >= k on both
        // sides (v included in its side's selection).
        for (VertexId v : m) {
          EXPECT_TRUE(core.alive[v])
              << "vertex " << v << " of a fair-feasible maximal clique was "
              << "removed (seed " << seed << ")";
        }
      }
    });
  }
}

TEST(ColorfulCoreDecompositionTest, CcoreConsistentWithThresholdCores) {
  for (uint64_t seed : {41u, 42u}) {
    AttributedGraph g = RandomAttributedGraph(50, 0.2, seed);
    Coloring c = GreedyColoring(g);
    ColorfulCoreDecomposition dec = ComputeColorfulCores(g, c);
    uint32_t max_ccore = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      max_ccore = std::max(max_ccore, dec.ccore[v]);
    }
    EXPECT_EQ(dec.colorful_degeneracy, max_ccore);
    for (uint32_t k = 1; k <= dec.colorful_degeneracy; ++k) {
      VertexReductionResult core = ColorfulCore(g, c, static_cast<int>(k));
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(core.alive[v] != 0, dec.ccore[v] >= k)
            << "seed=" << seed << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(ColorfulCoreDecompositionTest, PeelOrderIsPermutation) {
  AttributedGraph g = RandomAttributedGraph(70, 0.1, 51);
  Coloring c = GreedyColoring(g);
  ColorfulCoreDecomposition dec = ComputeColorfulCores(g, c);
  ASSERT_EQ(dec.peel_order.size(), g.num_vertices());
  std::set<VertexId> seen(dec.peel_order.begin(), dec.peel_order.end());
  EXPECT_EQ(seen.size(), g.num_vertices());
  for (uint32_t i = 0; i < dec.peel_order.size(); ++i) {
    EXPECT_EQ(dec.position[dec.peel_order[i]], i);
  }
}

TEST(ColorfulCoreDecompositionTest, EmptyGraph) {
  AttributedGraph g = MakeGraph("", {});
  Coloring c = GreedyColoring(g);
  ColorfulCoreDecomposition dec = ComputeColorfulCores(g, c);
  EXPECT_EQ(dec.colorful_degeneracy, 0u);
  EXPECT_TRUE(dec.peel_order.empty());
}

}  // namespace
}  // namespace fairclique
