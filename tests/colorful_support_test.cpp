#include <gtest/gtest.h>

#include <set>

#include "core/enumeration.h"
#include "graph/coloring.h"
#include "reduction/colorful_support.h"
#include "reduction/reduce.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Brute-force colorful supports from the definition.
std::vector<AttrCounts> BruteSupports(const AttributedGraph& g,
                                      const Coloring& c) {
  std::vector<AttrCounts> sup(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edges()[e];
    std::set<ColorId> ca, cb;
    for (VertexId w = 0; w < g.num_vertices(); ++w) {
      if (w == edge.u || w == edge.v) continue;
      if (g.HasEdge(edge.u, w) && g.HasEdge(edge.v, w)) {
        (g.attribute(w) == Attribute::kA ? ca : cb).insert(c.color[w]);
      }
    }
    sup[e][Attribute::kA] = static_cast<int64_t>(ca.size());
    sup[e][Attribute::kB] = static_cast<int64_t>(cb.size());
  }
  return sup;
}

// Brute-force fixpoint of the ColorfulSup conditions: repeatedly drop any
// edge violating Lemma 3 in the current subgraph.
std::vector<uint8_t> BruteColorfulSupFixpoint(const AttributedGraph& g,
                                              const Coloring& c, int k) {
  std::vector<uint8_t> alive(g.num_edges(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!alive[e]) continue;
      const Edge& edge = g.edges()[e];
      std::set<ColorId> ca, cb;
      for (VertexId w = 0; w < g.num_vertices(); ++w) {
        if (w == edge.u || w == edge.v) continue;
        EdgeId e1 = g.FindEdge(edge.u, w);
        EdgeId e2 = g.FindEdge(edge.v, w);
        if (e1 == kInvalidEdge || e2 == kInvalidEdge) continue;
        if (!alive[e1] || !alive[e2]) continue;
        (g.attribute(w) == Attribute::kA ? ca : cb).insert(c.color[w]);
      }
      int64_t ta, tb;
      SupportThresholds(g.attribute(edge.u), g.attribute(edge.v), k, &ta, &tb);
      if (static_cast<int64_t>(ca.size()) < ta ||
          static_cast<int64_t>(cb.size()) < tb) {
        alive[e] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

// Brute-force fixpoint of the EnColorfulSup feasibility condition.
std::vector<uint8_t> BruteEnColorfulSupFixpoint(const AttributedGraph& g,
                                                const Coloring& c, int k) {
  std::vector<uint8_t> alive(g.num_edges(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!alive[e]) continue;
      const Edge& edge = g.edges()[e];
      std::set<ColorId> ca, cb;
      for (VertexId w = 0; w < g.num_vertices(); ++w) {
        if (w == edge.u || w == edge.v) continue;
        EdgeId e1 = g.FindEdge(edge.u, w);
        EdgeId e2 = g.FindEdge(edge.v, w);
        if (e1 == kInvalidEdge || e2 == kInvalidEdge) continue;
        if (!alive[e1] || !alive[e2]) continue;
        (g.attribute(w) == Attribute::kA ? ca : cb).insert(c.color[w]);
      }
      int64_t only_a = 0, only_b = 0, mixed = 0;
      for (ColorId col : ca) {
        if (cb.count(col)) {
          ++mixed;
        } else {
          ++only_a;
        }
      }
      for (ColorId col : cb) {
        if (!ca.count(col)) ++only_b;
      }
      int64_t ta, tb;
      SupportThresholds(g.attribute(edge.u), g.attribute(edge.v), k, &ta, &tb);
      int64_t need_a = std::max<int64_t>(0, ta - only_a);
      int64_t need_b = std::max<int64_t>(0, tb - only_b);
      if (need_a + need_b > mixed) {
        alive[e] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

TEST(ColorfulSupportTest, SupportsMatchBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    AttributedGraph g = RandomAttributedGraph(40, 0.25, seed);
    Coloring c = GreedyColoring(g);
    std::vector<AttrCounts> fast = ComputeColorfulSupports(g, c);
    std::vector<AttrCounts> brute = BruteSupports(g, c);
    ASSERT_EQ(fast.size(), brute.size());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(fast[e], brute[e]) << "edge " << e << " seed " << seed;
    }
  }
}

TEST(ColorfulSupportTest, PaperExample2) {
  // Example 2: supa(v2, v5) = 2, supb(v2, v5) = 1; the edge violates the
  // mixed-attribute condition for k = 3 (needs supb >= 2).
  AttributedGraph g = PaperFigure1Graph();
  Coloring c = GreedyColoring(g);
  std::vector<AttrCounts> sup = ComputeColorfulSupports(g, c);
  EdgeId e = g.FindEdge(1, 4);  // (v2, v5)
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(sup[e][Attribute::kA], 2);
  EXPECT_EQ(sup[e][Attribute::kB], 1);
  EdgeReductionResult r = ColorfulSupReduction(g, c, 3);
  EXPECT_FALSE(r.edge_alive[e]);
}

TEST(ColorfulSupReductionTest, ReachesExactFixpoint) {
  for (uint64_t seed : {4u, 5u, 6u, 7u}) {
    AttributedGraph g = RandomAttributedGraph(35, 0.3, seed);
    Coloring c = GreedyColoring(g);
    for (int k = 2; k <= 4; ++k) {
      EdgeReductionResult fast = ColorfulSupReduction(g, c, k);
      std::vector<uint8_t> brute = BruteColorfulSupFixpoint(g, c, k);
      EXPECT_EQ(fast.edge_alive, brute) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(EnColorfulSupReductionTest, ReachesExactFixpoint) {
  for (uint64_t seed : {8u, 9u, 10u, 11u}) {
    AttributedGraph g = RandomAttributedGraph(35, 0.3, seed);
    Coloring c = GreedyColoring(g);
    for (int k = 2; k <= 4; ++k) {
      EdgeReductionResult fast = EnColorfulSupReduction(g, c, k);
      std::vector<uint8_t> brute = BruteEnColorfulSupFixpoint(g, c, k);
      EXPECT_EQ(fast.edge_alive, brute) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(EnColorfulSupReductionTest, StrongerThanColorfulSup) {
  for (uint64_t seed : {12u, 13u, 14u}) {
    AttributedGraph g = RandomAttributedGraph(50, 0.25, seed);
    Coloring c = GreedyColoring(g);
    for (int k = 2; k <= 3; ++k) {
      EdgeReductionResult plain = ColorfulSupReduction(g, c, k);
      EdgeReductionResult enhanced = EnColorfulSupReduction(g, c, k);
      EXPECT_LE(enhanced.edges_left, plain.edges_left);
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (enhanced.edge_alive[e]) {
          EXPECT_TRUE(plain.edge_alive[e]) << "edge " << e;
        }
      }
    }
  }
}

TEST(GreedyEnhancedSupportTest, PaperExample3) {
  // Fig. 2: ca=1, cb=2, cm=2, endpoints both 'a', k=4 -> thresholds (2, 4).
  // Greedy: gamma_a = min(2-1, 2) = 1 -> gsup_a = 2; rest = 1;
  // gamma_b = min(4-2, 1) = 1 -> gsup_b = 3. Edge violates gsup_b >= 4.
  AttrCounts gsup = GreedyEnhancedSupport(1, 2, 2, 2, 4);
  EXPECT_EQ(gsup[Attribute::kA], 2);
  EXPECT_EQ(gsup[Attribute::kB], 3);
}

TEST(GreedyEnhancedSupportTest, FeasibilityEquivalence) {
  // The greedy assignment meets both thresholds iff the deficit condition
  // max(0,ta-ca) + max(0,tb-cb) <= cm holds.
  for (int64_t ca = 0; ca <= 4; ++ca) {
    for (int64_t cb = 0; cb <= 4; ++cb) {
      for (int64_t cm = 0; cm <= 4; ++cm) {
        for (int64_t ta = 0; ta <= 4; ++ta) {
          for (int64_t tb = 0; tb <= 4; ++tb) {
            AttrCounts gsup = GreedyEnhancedSupport(ca, cb, cm, ta, tb);
            bool greedy_ok = gsup[Attribute::kA] >= ta &&
                             gsup[Attribute::kB] >= tb;
            bool feasible = std::max<int64_t>(0, ta - ca) +
                                std::max<int64_t>(0, tb - cb) <=
                            cm;
            EXPECT_EQ(greedy_ok, feasible)
                << ca << "," << cb << "," << cm << "," << ta << "," << tb;
          }
        }
      }
    }
  }
}

TEST(ReductionSoundnessTest, FairCliquesAlwaysSurviveAllStages) {
  // The flagship soundness property (Lemmas 2-4): run the full pipeline and
  // verify the exact maximum fair clique value is unchanged.
  for (uint64_t seed : {20u, 21u, 22u, 23u, 24u}) {
    AttributedGraph g = RandomAttributedGraph(45, 0.3, seed);
    for (int k = 2; k <= 3; ++k) {
      for (int delta = 0; delta <= 2; ++delta) {
        FairnessParams params{k, delta};
        CliqueResult before = MaxFairCliqueByEnumeration(g, params);
        ReductionPipelineResult reduced =
            ReduceForFairClique(g, k, ReductionOptions{});
        CliqueResult after =
            MaxFairCliqueByEnumeration(reduced.reduced, params);
        EXPECT_EQ(before.size(), after.size())
            << "reduction lost the optimum: seed=" << seed << " k=" << k
            << " delta=" << delta;
      }
    }
  }
}

TEST(ReductionPipelineTest, StagesMonotonicallyShrink) {
  AttributedGraph g = RandomAttributedGraph(80, 0.15, 30);
  ReductionPipelineResult r = ReduceForFairClique(g, 3, ReductionOptions{});
  ASSERT_EQ(r.stages.size(), 3u);
  EXPECT_LE(r.stages[0].vertices_left, g.num_vertices());
  for (size_t i = 1; i < r.stages.size(); ++i) {
    EXPECT_LE(r.stages[i].vertices_left, r.stages[i - 1].vertices_left);
    EXPECT_LE(r.stages[i].edges_left, r.stages[i - 1].edges_left);
  }
  EXPECT_EQ(r.reduced.num_vertices(), r.stages.back().vertices_left);
  // original_ids maps back into the input graph with matching attributes.
  for (VertexId v = 0; v < r.reduced.num_vertices(); ++v) {
    EXPECT_EQ(r.reduced.attribute(v), g.attribute(r.original_ids[v]));
  }
}

TEST(ReductionPipelineTest, DisabledStagesAreSkipped) {
  AttributedGraph g = RandomAttributedGraph(40, 0.2, 31);
  ReductionOptions opts;
  opts.use_colorful_sup = false;
  ReductionPipelineResult r = ReduceForFairClique(g, 2, opts);
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_EQ(r.stages[0].name, "EnColorfulCore");
  EXPECT_EQ(r.stages[1].name, "EnColorfulSup");
}

TEST(ReductionPipelineTest, EmptyAndTinyGraphs) {
  AttributedGraph empty = MakeGraph("", {});
  ReductionPipelineResult r0 = ReduceForFairClique(empty, 2, {});
  EXPECT_EQ(r0.reduced.num_vertices(), 0u);
  AttributedGraph tiny = MakeGraph("ab", {{0, 1}});
  ReductionPipelineResult r1 = ReduceForFairClique(tiny, 2, {});
  // A (2,*) fair clique needs 4 vertices; everything dies.
  EXPECT_EQ(r1.reduced.num_edges(), 0u);
}

}  // namespace
}  // namespace fairclique
