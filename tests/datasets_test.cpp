#include <gtest/gtest.h>

#include "core/heuristics.h"
#include "datasets/datasets.h"
#include "graph/cores.h"
#include "test_util.h"

namespace fairclique {
namespace {

TEST(DatasetsTest, RegistryListsSixStandIns) {
  std::vector<DatasetSpec> specs = StandardDatasets();
  ASSERT_EQ(specs.size(), 6u);
  for (const DatasetSpec& spec : specs) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.k_range.empty());
    EXPECT_GE(spec.default_k, 1);
    EXPECT_GE(spec.default_delta, 0);
    // The default k must lie in the sweep range.
    EXPECT_NE(std::find(spec.k_range.begin(), spec.k_range.end(),
                        spec.default_k),
              spec.k_range.end());
  }
}

TEST(DatasetsTest, DatasetByNameRoundTrips) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    EXPECT_EQ(DatasetByName(spec.name).name, spec.name);
  }
}

class DatasetLoadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetLoadTest, LoadsValidDeterministicGraph) {
  const std::string name = GetParam();
  AttributedGraph g = LoadDataset(name);
  EXPECT_GT(g.num_vertices(), 500u);
  EXPECT_GT(g.num_edges(), 2000u);
  EXPECT_TRUE(g.Validate().ok());
  // Both attributes present in meaningful numbers.
  AttrCounts cnt = g.attribute_counts();
  EXPECT_GT(cnt.Min(), static_cast<int64_t>(g.num_vertices()) / 10);
  // Deterministic: loading twice yields the identical graph.
  AttributedGraph again = LoadDataset(name);
  EXPECT_EQ(testing_util::EdgesOf(g), testing_util::EdgesOf(again));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.attribute(v), again.attribute(v));
  }
}

TEST_P(DatasetLoadTest, ContainsFairCliqueAtDefaultParameters) {
  const std::string name = GetParam();
  DatasetSpec spec = DatasetByName(name);
  AttributedGraph g = LoadDataset(name);
  // The planted balanced cliques guarantee a fair clique across the sweep
  // range; the linear-time heuristic should find one at the defaults.
  HeuristicResult heur = HeurRFC(g, {{spec.default_k, spec.default_delta}, 4});
  EXPECT_GE(heur.clique.size(), 2u * static_cast<size_t>(spec.default_k))
      << name;
}

TEST_P(DatasetLoadTest, ScaleChangesSize) {
  const std::string name = GetParam();
  AttributedGraph small = LoadDataset(name, 0.5);
  AttributedGraph full = LoadDataset(name, 1.0);
  EXPECT_LT(small.num_vertices(), full.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetLoadTest,
                         ::testing::Values("themarker-s", "google-s", "dblp-s",
                                           "flixster-s", "pokec-s",
                                           "aminer-s"));

TEST(DatasetsTest, AminerAttributesAreAssortative) {
  AttributedGraph g = LoadDataset("aminer-s");
  uint64_t same = 0;
  for (const Edge& e : g.edges()) {
    if (g.attribute(e.u) == g.attribute(e.v)) ++same;
  }
  double frac = static_cast<double>(same) / g.num_edges();
  // Correlated attributes: clearly above the independent-label baseline.
  EXPECT_GT(frac, 0.6);
}

TEST(DatasetsTest, DegreeSkewOnSocialStandIns) {
  for (const char* name : {"themarker-s", "pokec-s"}) {
    AttributedGraph g = LoadDataset(name);
    double avg = 2.0 * g.num_edges() / g.num_vertices();
    EXPECT_GT(g.max_degree(), 3 * avg) << name;
  }
}

}  // namespace
}  // namespace fairclique
