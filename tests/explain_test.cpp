#include "service/explain.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/prepared_graph.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Every integer value of `key` in document order. The needle includes the
// opening quote, so e.g. "search_micros" does not also match
// "component_search_micros".
std::vector<long long> ExtractAll(const std::string& json,
                                  const std::string& key) {
  std::vector<long long> out;
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::stoll(json.substr(pos)));
  }
  return out;
}

long long Sum(const std::vector<long long>& v, size_t drop_last = 0) {
  return std::accumulate(v.begin(), v.end() - drop_last, 0LL);
}

// Two disjoint fair cliques of different sizes: vertices 0-5 ("aabbab") and
// 6-9 ("abab"). Decomposes into two prepared components, so plans have a
// real component table.
AttributedGraph TwoComponentGraph() {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j) edges.push_back({i, j});
  for (int i = 6; i < 10; ++i)
    for (int j = i + 1; j < 10; ++j) edges.push_back({i, j});
  return MakeGraph("aabbabab" "ab", edges);
}

std::shared_ptr<const RegisteredGraph> RegisterGraph(GraphRegistry& registry,
                                                     const std::string& name,
                                                     AttributedGraph g) {
  EXPECT_TRUE(registry.Add(name, std::move(g)).ok());
  return registry.Get(name);
}

TEST(ExplainJsonTest, SerializesEveryPlanSection) {
  ExplainPlan plan;
  plan.prepared_hit = true;
  plan.source_vertices = 10;
  plan.source_edges = 21;
  plan.stages.push_back({"EnColorfulCore", 8, 15, 120});
  plan.reduced_vertices = 8;
  plan.reduced_edges = 15;
  plan.result_cache_probed = true;
  plan.seed_size = 4;
  ExplainComponent comp;
  comp.index = 0;
  comp.vertices = 8;
  comp.edges = 15;
  comp.searched = true;
  comp.engine = "bitset";
  comp.stats.nodes = 99;
  comp.stats.search_micros = 7;
  comp.best_size = 6;
  plan.components.push_back(comp);
  plan.totals.nodes = 99;
  plan.totals.component_search_micros = 7;
  plan.stop_reason = "node_limit";
  plan.totals.completed = false;

  std::string json = ExplainPlanJson(plan);
  EXPECT_NE(json.find("\"prepare\":{\"prepared_hit\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"stages\":[{\"name\":\"EnColorfulCore\","
                      "\"vertices_left\":8,\"edges_left\":15,\"micros\":120}]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"result_cache\":{\"probed\":true,\"hit\":false}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"seed_size\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine\":\"bitset\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\":false,\"stop_reason\":\"node_limit\"}"),
            std::string::npos)
      << json;
}

TEST(ExplainJsonTest, UnsearchedComponentsCarryNoStats) {
  ExplainPlan plan;
  ExplainComponent skipped;
  skipped.index = 1;
  skipped.vertices = 3;
  skipped.edges = 3;
  skipped.searched = false;
  plan.components.push_back(skipped);
  std::string json = ExplainPlanJson(plan);
  EXPECT_NE(json.find("\"components\":[{\"index\":1,\"vertices\":3,"
                      "\"edges\":3,\"searched\":false}]"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"engine\""), std::string::npos) << json;
}

TEST(ExplainTest, QueuedPlanIsInternallyConsistent) {
  // The acceptance check from the issue: per-component stage micros and
  // node counts in the plan must sum exactly to the totals the response
  // carries — the plan is assembled from the same ComponentBranchResults
  // the aggregate folded, so any drift is a bug.
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "two", TwoComponentGraph());
  QueryExecutor executor(ExecutorOptions{2, 8}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 2);
  request.explain = true;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  ASSERT_FALSE(response.plan_json.empty());
  const std::string& plan = response.plan_json;
  const SearchStats& stats = response.result->stats;

  // Both components are listed; the plan carries the reduction stages.
  EXPECT_EQ(ExtractAll(plan, "index").size(), 2u) << plan;
  EXPECT_NE(plan.find("\"stages\":["), std::string::npos) << plan;
  EXPECT_NE(plan.find("\"engine\":\""), std::string::npos) << plan;

  // nodes: per-component rows followed by the totals object — the totals
  // value equals the response stats, and the rows sum to it.
  std::vector<long long> nodes = ExtractAll(plan, "nodes");
  ASSERT_GE(nodes.size(), 2u);
  EXPECT_EQ(nodes.back(), static_cast<long long>(stats.nodes));
  EXPECT_EQ(Sum(nodes, 1), nodes.back());

  // search_micros: per-component values sum to component_search_micros
  // (the last "search_micros" is the totals' wall clock, excluded).
  std::vector<long long> micros = ExtractAll(plan, "search_micros");
  std::vector<long long> comp_total =
      ExtractAll(plan, "component_search_micros");
  ASSERT_EQ(comp_total.size(), 1u);
  EXPECT_EQ(comp_total[0], static_cast<long long>(stats.component_search_micros));
  ASSERT_GE(micros.size(), 1u);
  EXPECT_EQ(Sum(micros, 1), comp_total[0]);

  // Prune counters sum component-wise to the totals as well.
  for (const char* key : {"bound_prunes", "size_prunes", "attr_prunes",
                          "cap_removals"}) {
    std::vector<long long> vals = ExtractAll(plan, key);
    ASSERT_GE(vals.size(), 1u) << key;
    EXPECT_EQ(Sum(vals, 1), vals.back()) << key;
  }

  // A completed search explains with an empty stop reason.
  EXPECT_STREQ(response.stop_reason, "");
  EXPECT_NE(plan.find("\"completed\":true,\"stop_reason\":\"\""),
            std::string::npos)
      << plan;
}

TEST(ExplainTest, SynchronousRunMatchesQueuedPlanShape) {
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "two", TwoComponentGraph());
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 2);
  request.explain = true;
  QueryResponse response = executor.Run(request);
  ASSERT_TRUE(response.status.ok());
  ASSERT_FALSE(response.plan_json.empty());

  std::vector<long long> nodes = ExtractAll(response.plan_json, "nodes");
  ASSERT_GE(nodes.size(), 2u);
  EXPECT_EQ(Sum(nodes, 1), nodes.back());
  EXPECT_EQ(nodes.back(),
            static_cast<long long>(response.result->stats.nodes));
}

TEST(ExplainTest, CacheHitPlanRecordsTheDecisionOnly) {
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "two", TwoComponentGraph());
  ResultCache cache(16);
  QueryExecutor executor(ExecutorOptions{2, 8}, &cache);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 2);
  request.explain = true;
  QueryResponse cold = executor.Submit(request).get();
  ASSERT_TRUE(cold.status.ok());
  EXPECT_NE(cold.plan_json.find("\"probed\":true,\"hit\":false"),
            std::string::npos)
      << cold.plan_json;

  QueryResponse warm = executor.Submit(request).get();
  ASSERT_TRUE(warm.status.ok());
  ASSERT_TRUE(warm.cache_hit);
  ASSERT_FALSE(warm.plan_json.empty());
  // A hit never searched: the plan records the cache decision and an empty
  // component table.
  EXPECT_NE(warm.plan_json.find("\"result_cache\":{\"probed\":true,"
                                "\"hit\":true}"),
            std::string::npos)
      << warm.plan_json;
  EXPECT_NE(warm.plan_json.find("\"components\":[]"), std::string::npos)
      << warm.plan_json;
}

TEST(ExplainTest, PlanOmittedWhenNotRequested) {
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "two", TwoComponentGraph());
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 2);
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.plan_json.empty());
}

// ------------------------------------------------------------- stop reasons

TEST(StopReasonTest, NamesAndPrecedence) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "");
  EXPECT_STREQ(StopReasonName(StopReason::kNodeLimit), "node_limit");
  EXPECT_STREQ(StopReasonName(StopReason::kTimeLimit), "time_limit");
  // Aggregation takes the max, so a time-limit stop in any component
  // dominates node-limit stops in others.
  EXPECT_EQ(std::max(StopReason::kNodeLimit, StopReason::kTimeLimit),
            StopReason::kTimeLimit);
  EXPECT_EQ(std::max(StopReason::kNone, StopReason::kNodeLimit),
            StopReason::kNodeLimit);
}

TEST(StopReasonTest, NodeLimitAttributedAndCounted) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x5EED));
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.options.node_limit = 64;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.result->stats.completed);
  EXPECT_EQ(response.result->stats.stop_reason, StopReason::kNodeLimit);
  EXPECT_STREQ(response.stop_reason, "node_limit");
  // deadline_missed keeps its legacy any-valve meaning ("a safety valve
  // stopped the search"); stop_reason is what distinguishes which one.
  EXPECT_TRUE(response.deadline_missed);
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.stopped_node_limit, 1u);
  EXPECT_EQ(m.stopped_time_limit, 0u);
  EXPECT_EQ(m.stopped_deadline, 0u);
}

TEST(StopReasonTest, OwnTimeLimitAttributedAsTimeLimitNotDeadline) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x5EED));
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.options.time_limit_seconds = 5e-2;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.result->stats.completed);
  EXPECT_EQ(response.result->stats.stop_reason, StopReason::kTimeLimit);
  // The request's own valve fired, not the per-query deadline.
  EXPECT_STREQ(response.stop_reason, "time_limit");
  EXPECT_EQ(executor.metrics().stopped_time_limit, 1u);
  EXPECT_EQ(executor.metrics().stopped_deadline, 0u);
}

TEST(StopReasonTest, DeadlineTighteningReattributesTheTimeLimit) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "hard", RandomAttributedGraph(150, 0.9, 0x5EED));
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 100);
  request.deadline_seconds = 5e-2;  // tighter than the (absent) time limit
  request.explain = true;
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.deadline_missed);
  EXPECT_STREQ(response.stop_reason, "deadline");
  EXPECT_EQ(executor.metrics().stopped_deadline, 1u);
  // The truncated plan still reports consistent totals and the reason.
  ASSERT_FALSE(response.plan_json.empty());
  EXPECT_NE(response.plan_json.find("\"stop_reason\":\"deadline\""),
            std::string::npos)
      << response.plan_json;
}

TEST(StopReasonTest, CompletedSearchReportsEmptyReason) {
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "easy", MakeGraph("ab", {{0, 1}}));
  QueryExecutor executor(ExecutorOptions{1, 4}, nullptr);
  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(1, 1);
  QueryResponse response = executor.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.result->stats.completed);
  EXPECT_EQ(response.result->stats.stop_reason, StopReason::kNone);
  EXPECT_STREQ(response.stop_reason, "");
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.stopped_node_limit + m.stopped_time_limit + m.stopped_deadline,
            0u);
}

}  // namespace
}  // namespace fairclique
