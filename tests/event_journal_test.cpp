#include "obs/event_journal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace fairclique {
namespace obs {
namespace {

TEST(EventJournalTest, RecordsAndDrainsInOrder) {
  EventJournal journal(64);
  journal.Record(EventType::kQueryAdmit, 1, 0, 0, "g");
  journal.Record(EventType::kQueryStart, 7, 3, 2, "g");
  journal.Record(EventType::kQueryFinish, 7, 12, 4500);

  std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::kQueryAdmit);
  EXPECT_EQ(events[1].type, EventType::kQueryStart);
  EXPECT_EQ(events[2].type, EventType::kQueryFinish);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[1].a, 7u);
  EXPECT_EQ(events[1].b, 3u);
  EXPECT_EQ(events[1].c, 2u);
  EXPECT_STREQ(events[0].label, "g");
  EXPECT_EQ(journal.recorded(), 3u);
}

TEST(EventJournalTest, LastNReturnsNewest) {
  EventJournal journal(64);
  for (uint64_t i = 0; i < 10; ++i) {
    journal.Record(EventType::kWalAppend, i);
  }
  std::vector<Event> tail = journal.Snapshot(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].a, 7u);
  EXPECT_EQ(tail[2].a, 9u);
}

TEST(EventJournalTest, LongLabelsTruncateSafely) {
  EventJournal journal(8);
  std::string longname(200, 'x');
  journal.Record(EventType::kGraphLoad, 1, 2, 3, longname.c_str());
  std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].label), EventJournal::kLabelBytes - 1);
}

TEST(EventJournalTest, RingOverwriteKeepsNewest) {
  // One thread -> one shard of capacity 8: after 20 records only the 8
  // newest survive, still in order.
  EventJournal journal(8);
  for (uint64_t i = 0; i < 20; ++i) {
    journal.Record(EventType::kCacheEvict, i);
  }
  std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().a, 12u);
  EXPECT_EQ(events.back().a, 19u);
  EXPECT_EQ(journal.recorded(), 20u);
}

TEST(EventJournalTest, JsonIsWellFormedAndEscaped) {
  EventJournal journal(8);
  journal.Record(EventType::kGraphLoad, 1, 2, 3, "g\"quote\\slash");
  std::string json = journal.Json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"type\":\"graph_load\""), std::string::npos);
  EXPECT_NE(json.find("g\\\"quote\\\\slash"), std::string::npos);
}

TEST(EventJournalTest, ConcurrentRecordersKeepExactCountsAndOrder) {
  // The tentpole's concurrency contract: N threads record while a drainer
  // snapshots mid-flight; after the join the journal holds every event
  // exactly once (fewer events than capacity, so nothing is overwritten)
  // and each thread's events appear in its program order.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 500;  // 8 * 500 < 16 shards * 1024 slots
  EventJournal journal(1024);

  std::atomic<bool> go{false};
  std::atomic<bool> stop_drainer{false};
  std::thread drainer([&] {
    // Race the recorders on purpose; every snapshot must be internally
    // consistent (no torn events — checked via the payload invariant).
    while (!stop_drainer.load(std::memory_order_relaxed)) {
      for (const Event& e : journal.Snapshot()) {
        EXPECT_EQ(e.type, EventType::kTaskBegin);
        EXPECT_EQ(e.a * 1000 + e.b, e.c) << "torn event observed";
      }
    }
  });

  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Payload invariant c == a*1000 + b lets the racing drainer (and
        // the final check) detect torn slots.
        journal.Record(EventType::kTaskBegin, static_cast<uint64_t>(t), i,
                       static_cast<uint64_t>(t) * 1000 + i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& th : recorders) th.join();
  stop_drainer.store(true, std::memory_order_relaxed);
  drainer.join();

  std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  EXPECT_EQ(journal.recorded(), kThreads * kPerThread);

  // Global order: seqs strictly increase and are gapless 1..N.
  std::set<uint64_t> seqs;
  std::map<uint64_t, uint64_t> next_index_for_thread;
  for (const Event& e : events) {
    seqs.insert(e.seq);
    EXPECT_EQ(e.a * 1000 + e.b, e.c);
    // Per-thread program order: thread t's events surface with b = 0,1,2...
    // in seq order (seq is handed out inside Record, so a thread's own
    // events are sequenced in the order it recorded them).
    uint64_t& expected = next_index_for_thread[e.a];
    EXPECT_EQ(e.b, expected) << "thread " << e.a << " events out of order";
    ++expected;
  }
  EXPECT_EQ(seqs.size(), kThreads * kPerThread);
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), kThreads * kPerThread);
  for (const auto& [thread, count] : next_index_for_thread) {
    EXPECT_EQ(count, kPerThread) << "thread " << thread << " lost events";
  }
}

TEST(EventJournalTest, RenderLastToMatchesJsonShape) {
  EventJournal journal(16);
  journal.Record(EventType::kWalFsync, 120, 4096);
  journal.Record(EventType::kCrashSignal, 11);
  char buf[4096];
  size_t n = journal.RenderLastTo(buf, sizeof(buf), 8);
  ASSERT_GT(n, 0u);
  std::string rendered(buf, n);
  EXPECT_EQ(rendered.front(), '[');
  EXPECT_EQ(rendered.back(), ']');
  EXPECT_NE(rendered.find("\"wal_fsync\""), std::string::npos);
  EXPECT_NE(rendered.find("\"crash_signal\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace fairclique
