// MUST FAIL -Wthread-safety: acquires the raw capability and returns
// without releasing it.
#include "common/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void Leak() {
    mu_.Lock();
    balance_ = 0;
    // missing mu_.Unlock()
  }

 private:
  fc::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
