// MUST FAIL -Wthread-safety: calls a REQUIRES(mu_) method without the
// lock.
#include "common/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void AuditLocked() REQUIRES(mu_) { ++audits_; }

  void Audit() {
    AuditLocked();  // mu_ not held
  }

 private:
  fc::Mutex mu_;
  int audits_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
