// Positive control: correctly annotated code that MUST pass
// -Wthread-safety. If this fixture ever fails, the driver's failures on
// the negative fixtures prove nothing.
#include "common/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void Deposit(int amount) {
    fc::MutexLock lock(mu_);
    balance_ += amount;
  }

  int Balance() const {
    fc::MutexLock lock(mu_);
    return balance_;
  }

  void AuditLocked() REQUIRES(mu_) { ++audits_; }

  void Audit() {
    fc::MutexLock lock(mu_);
    AuditLocked();
  }

 private:
  mutable fc::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
  int audits_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
