// MUST FAIL -Wthread-safety: writes a GUARDED_BY member without holding
// its mutex.
#include "common/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // no lock held
  }

 private:
  fc::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
