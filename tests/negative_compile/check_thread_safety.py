#!/usr/bin/env python3
"""Negative-compile driver for the clang thread-safety annotations.

Compiles each fixture in this directory with
`clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror`:

  - ts_ok.cc is the positive control and MUST compile clean;
  - every other ts_*.cc seeds one thread-safety bug and MUST fail with a
    thread-safety diagnostic (any other failure -- a plain syntax error,
    say -- does not count: the fixture has to fail for the right reason).

gcc has no thread-safety analysis, so on machines without a suitable
clang this script exits 77 (the CTest SKIP_RETURN_CODE): the annotations
still compiled away under gcc via the regular build, and the clang leg of
CI enforces the analysis itself.
"""

import glob
import os
import shutil
import subprocess
import sys

SKIP = 77
FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Wthread-safety-beta", "-Werror"]


def find_clang():
    """A clang++ that understands -Wthread-safety, or None."""
    candidates = ["clang++"] + [f"clang++-{v}" for v in range(20, 11, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path is None:
            continue
        probe = subprocess.run(
            [path, *FLAGS, "-x", "c++", "-"],
            input="int main() { return 0; }",
            capture_output=True, text=True)
        if probe.returncode == 0:
            return path
    return None


def main():
    # --skip-ok: report "skipped" as success (for the `lint` make target,
    # where exit 77 would read as a failure; CTest keeps the real 77).
    skip_ok = "--skip-ok" in sys.argv
    here = os.path.dirname(os.path.abspath(__file__))
    src_dir = os.path.normpath(os.path.join(here, "..", "..", "src"))
    clang = find_clang()
    if clang is None:
        print("no clang++ with -Wthread-safety found; skipping "
              "(the clang CI job runs this analysis)")
        return 0 if skip_ok else SKIP

    failures = 0
    for path in sorted(glob.glob(os.path.join(here, "ts_*.cc"))):
        name = os.path.basename(path)
        expect_fail = name != "ts_ok.cc"
        result = subprocess.run([clang, *FLAGS, "-I", src_dir, path],
                                capture_output=True, text=True)
        if not expect_fail:
            if result.returncode != 0:
                failures += 1
                print(f"FAIL {name}: positive control did not compile:\n"
                      f"{result.stderr}")
            else:
                print(f"ok   {name}: compiles clean (positive control)")
            continue
        if result.returncode == 0:
            failures += 1
            print(f"FAIL {name}: expected a thread-safety error, "
                  "compiled clean")
        elif "-Wthread-safety" not in result.stderr:
            failures += 1
            print(f"FAIL {name}: failed, but not with a thread-safety "
                  f"diagnostic:\n{result.stderr}")
        else:
            first = next((l for l in result.stderr.splitlines()
                          if "error:" in l), "").strip()
            print(f"ok   {name}: rejected as expected ({first})")

    if failures:
        print(f"negative-compile: {failures} fixture(s) misbehaved")
        return 1
    print("negative-compile: all fixtures behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
