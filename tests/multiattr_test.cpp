#include <gtest/gtest.h>

#include "core/max_fair_clique.h"
#include "graph/generators.h"
#include "multiattr/multi_fair_clique.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

MultiAttrGraph RandomMultiGraph(VertexId n, double p, int d, uint64_t seed) {
  Rng rng(seed);
  AttributedGraph g = ErdosRenyi(n, p, rng);
  return AssignLabelsUniform(g, d, rng);
}

TEST(MultiFairnessParamsTest, SatisfiedConditions) {
  MultiFairnessParams p{2, 1};
  EXPECT_TRUE(p.Satisfied({2, 3, 2}));
  EXPECT_FALSE(p.Satisfied({1, 3, 2}));  // below k
  EXPECT_FALSE(p.Satisfied({2, 4, 2}));  // spread 2 > delta
}

TEST(MultiFairnessParamsTest, BestFairSubsetSizeClosedForm) {
  MultiFairnessParams p{2, 1};
  // min = 2; every label capped at min + delta = 3: 2 + 3 + 3 = 8.
  EXPECT_EQ(p.BestFairSubsetSize({2, 5, 9}), 8);
  EXPECT_EQ(p.BestFairSubsetSize({1, 5, 9}), 0);  // infeasible
  EXPECT_EQ(p.BestFairSubsetSize({4, 4, 4}), 12);
}

TEST(MultiFairnessParamsTest, ClosedFormMatchesBruteForce) {
  MultiFairnessParams p{1, 2};
  for (int64_t c0 = 0; c0 <= 4; ++c0) {
    for (int64_t c1 = 0; c1 <= 4; ++c1) {
      for (int64_t c2 = 0; c2 <= 4; ++c2) {
        int64_t brute = 0;
        for (int64_t n0 = 0; n0 <= c0; ++n0) {
          for (int64_t n1 = 0; n1 <= c1; ++n1) {
            for (int64_t n2 = 0; n2 <= c2; ++n2) {
              std::vector<int64_t> counts{n0, n1, n2};
              if (p.Satisfied(counts)) {
                brute = std::max(brute, n0 + n1 + n2);
              }
            }
          }
        }
        EXPECT_EQ(p.BestFairSubsetSize({c0, c1, c2}), brute)
            << c0 << "," << c1 << "," << c2;
      }
    }
  }
}

TEST(MultiAttrGraphTest, LabelBookkeeping) {
  MultiAttrGraph mg = RandomMultiGraph(50, 0.2, 4, 1);
  int64_t total = 0;
  for (int64_t c : mg.label_counts()) total += c;
  EXPECT_EQ(total, 50);
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_LT(mg.label(v), 4);
  }
}

TEST(MultiFairCliqueTest, MatchesOracleAcrossArities) {
  for (int d : {2, 3, 4}) {
    for (uint64_t seed : {1u, 2u, 3u, 4u}) {
      MultiAttrGraph mg = RandomMultiGraph(28, 0.45, d, seed * 10 + d);
      for (int k = 1; k <= 2; ++k) {
        for (int delta = 0; delta <= 2; ++delta) {
          MultiFairnessParams params{k, delta};
          int64_t oracle = MaxMultiFairCliqueSizeByEnumeration(mg, params);
          MultiSearchResult r = FindMaximumMultiFairClique(mg, params);
          EXPECT_EQ(static_cast<int64_t>(r.clique.size()), oracle)
              << "d=" << d << " seed=" << seed << " k=" << k
              << " delta=" << delta;
          if (!r.clique.empty()) {
            EXPECT_TRUE(IsMultiFairClique(mg, r.clique, params));
          }
          EXPECT_TRUE(r.completed);
        }
      }
    }
  }
}

TEST(MultiFairCliqueTest, BinaryCaseAgreesWithMainEngine) {
  // For d = 2 the generalized model must coincide with the paper's model.
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    AttributedGraph g = RandomAttributedGraph(30, 0.35, seed);
    std::vector<uint8_t> labels(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      labels[v] = static_cast<uint8_t>(AttrIndex(g.attribute(v)));
    }
    MultiAttrGraph mg(g, labels, 2);
    for (int k = 1; k <= 2; ++k) {
      for (int delta = 0; delta <= 2; ++delta) {
        SearchResult binary =
            FindMaximumFairClique(g, BaselineOptions(k, delta));
        MultiSearchResult multi =
            FindMaximumMultiFairClique(mg, {k, delta});
        EXPECT_EQ(binary.clique.size(), multi.clique.size())
            << "seed=" << seed << " k=" << k << " delta=" << delta;
      }
    }
  }
}

TEST(MultiFairCliqueTest, PlantedTriLabelCliqueIsFound) {
  Rng rng(77);
  AttributedGraph base = ChungLuPowerLaw(300, 6.0, 2.5, rng);
  MultiAttrGraph mg = AssignLabelsUniform(base, 3, rng);
  std::vector<VertexId> members;
  mg = PlantBalancedMultiClique(mg, 12, rng, &members);
  MultiFairnessParams params{4, 1};
  MultiSearchResult r = FindMaximumMultiFairClique(mg, params);
  EXPECT_GE(r.clique.size(), 12u);
  EXPECT_TRUE(IsMultiFairClique(mg, r.clique, params));
}

TEST(MultiFairCliqueTest, MissingLabelMeansNoFairClique) {
  // Three labels requested but only two present in the graph.
  Rng rng(5);
  AttributedGraph g = ErdosRenyi(20, 0.6, rng);
  std::vector<uint8_t> labels(20);
  for (VertexId v = 0; v < 20; ++v) labels[v] = v % 2;
  MultiAttrGraph mg(g, labels, 3);
  MultiSearchResult r = FindMaximumMultiFairClique(mg, {1, 5});
  EXPECT_TRUE(r.clique.empty());
}

TEST(MultiFairCliqueTest, NodeLimitMarksIncomplete) {
  MultiAttrGraph mg = RandomMultiGraph(50, 0.5, 3, 21);
  MultiSearchResult r = FindMaximumMultiFairClique(mg, {1, 3}, 2);
  EXPECT_FALSE(r.completed);
}

TEST(MultiFairCliqueTest, EmptyGraph) {
  GraphBuilder b(0);
  MultiAttrGraph mg(b.Build(), {}, 2);
  MultiSearchResult r = FindMaximumMultiFairClique(mg, {1, 1});
  EXPECT_TRUE(r.clique.empty());
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace fairclique
