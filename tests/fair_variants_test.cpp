#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/enumeration.h"
#include "core/fair_variants.h"
#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;
using testing_util::Sorted;

TEST(WeakFairCliqueTest, IgnoresBalance) {
  // K5 with 1 a and 4 b: weak fair for k=1 takes everything; relative with
  // delta=1 cannot.
  GraphBuilder b(5);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  b.SetAttribute(0, Attribute::kA);
  for (VertexId v = 1; v < 5; ++v) b.SetAttribute(v, Attribute::kB);
  AttributedGraph g = b.Build();
  SearchResult weak = FindMaximumWeakFairClique(g, 1);
  EXPECT_EQ(weak.clique.size(), 5u);
  SearchResult relative = FindMaximumFairClique(g, BaselineOptions(1, 1));
  EXPECT_EQ(relative.clique.size(), 3u);  // 1 a + 2 b.
}

TEST(WeakFairCliqueTest, MatchesOracleWithUnboundedDelta) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    AttributedGraph g = RandomAttributedGraph(30, 0.35, seed);
    for (int k = 1; k <= 3; ++k) {
      FairnessParams unbounded{k, static_cast<int>(g.num_vertices()) + 1};
      CliqueResult oracle = MaxFairCliqueByEnumeration(g, unbounded);
      SearchResult weak = FindMaximumWeakFairClique(g, k);
      EXPECT_EQ(weak.clique.size(), oracle.size())
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(StrongFairCliqueTest, ResultIsExactlyBalanced) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    AttributedGraph g = RandomAttributedGraph(30, 0.35, seed);
    SearchResult strong = FindMaximumStrongFairClique(g, 2);
    if (!strong.clique.empty()) {
      EXPECT_EQ(strong.clique.attr_counts.a(), strong.clique.attr_counts.b());
      EXPECT_GE(strong.clique.attr_counts.a(), 2);
      EXPECT_EQ(strong.clique.size() % 2, 0u);
    }
  }
}

TEST(StrongFairCliqueTest, NeverLargerThanRelativeOrWeak) {
  for (uint64_t seed : {8u, 9u, 10u}) {
    AttributedGraph g = RandomAttributedGraph(30, 0.35, seed);
    const int k = 2;
    SearchResult strong = FindMaximumStrongFairClique(g, k);
    SearchResult relative = FindMaximumFairClique(g, BaselineOptions(k, 2));
    SearchResult weak = FindMaximumWeakFairClique(g, k);
    EXPECT_LE(strong.clique.size(), relative.clique.size());
    EXPECT_LE(relative.clique.size(), weak.clique.size());
  }
}

TEST(WeakFairEnumerationTest, FiltersMaximalCliquesByCounts) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    AttributedGraph g = RandomAttributedGraph(20, 0.4, seed);
    const int k = 2;
    std::set<std::vector<VertexId>> weak_cliques;
    EnumerateWeakFairCliques(g, k, [&](const std::vector<VertexId>& m) {
      weak_cliques.insert(Sorted(m));
    });
    std::set<std::vector<VertexId>> expected;
    EnumerateMaximalCliques(g, [&](const std::vector<VertexId>& m) {
      AttrCounts cnt = CountAttributes(g, m);
      if (cnt.a() >= k && cnt.b() >= k) expected.insert(Sorted(m));
    });
    EXPECT_EQ(weak_cliques, expected) << "seed " << seed;
  }
}

TEST(WeakFairEnumerationTest, MaxResultsStopsEarly) {
  AttributedGraph g = RandomAttributedGraph(25, 0.5, 14);
  uint64_t total = EnumerateWeakFairCliques(
      g, 1, [](const std::vector<VertexId>&) {});
  if (total >= 2) {
    uint64_t capped = EnumerateWeakFairCliques(
        g, 1, [](const std::vector<VertexId>&) {}, 2);
    EXPECT_EQ(capped, 2u);
  }
}

// Brute-force maximal relative fair cliques by subset enumeration.
std::set<std::vector<VertexId>> BruteRelativeFairCliques(
    const AttributedGraph& g, const FairnessParams& params) {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> fair;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) verts.push_back(v);
    }
    if (IsFairClique(g, verts, params)) fair.push_back(verts);
  }
  // Keep only those with no fair proper superset.
  std::set<std::vector<VertexId>> maximal;
  for (const auto& c : fair) {
    bool is_maximal = true;
    for (const auto& other : fair) {
      if (other.size() <= c.size()) continue;
      if (std::includes(other.begin(), other.end(), c.begin(), c.end())) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.insert(c);
  }
  return maximal;
}

TEST(RelativeFairEnumerationTest, MatchesBruteForceOnTinyGraphs) {
  for (uint64_t seed : {15u, 16u, 17u, 18u, 19u}) {
    AttributedGraph g = RandomAttributedGraph(11, 0.5, seed);
    for (int k = 1; k <= 2; ++k) {
      for (int delta = 0; delta <= 1; ++delta) {
        FairnessParams params{k, delta};
        std::set<std::vector<VertexId>> expected =
            BruteRelativeFairCliques(g, params);
        std::set<std::vector<VertexId>> found;
        uint64_t count = EnumerateRelativeFairCliques(
            g, params,
            [&](const std::vector<VertexId>& c) { found.insert(Sorted(c)); });
        EXPECT_EQ(count, expected.size())
            << "seed=" << seed << " k=" << k << " delta=" << delta;
        EXPECT_EQ(found, expected)
            << "seed=" << seed << " k=" << k << " delta=" << delta;
      }
    }
  }
}

TEST(RelativeFairEnumerationTest, PaperExample1Answers) {
  // Fig. 1, k=3, delta=1: Example 1 lists S - v11 ... S - v15 as maximum
  // answers; all five must appear among the maximal relative fair cliques.
  AttributedGraph g = PaperFigure1Graph();
  std::set<std::vector<VertexId>> found;
  EnumerateRelativeFairCliques(
      g, {3, 1}, [&](const std::vector<VertexId>& c) { found.insert(Sorted(c)); });
  std::vector<VertexId> s{6, 7, 9, 10, 11, 12, 13, 14};  // v7,v8,v10..v15
  for (VertexId drop : {10u, 11u, 12u, 13u, 14u}) {      // v11..v15
    std::vector<VertexId> expected;
    for (VertexId v : s) {
      if (v != drop) expected.push_back(v);
    }
    EXPECT_TRUE(found.count(expected)) << "missing S - v" << drop + 1;
  }
}

TEST(RelativeFairEnumerationTest, EveryResultIsMaximalFair) {
  AttributedGraph g = RandomAttributedGraph(16, 0.45, 20);
  FairnessParams params{1, 1};
  EnumerateRelativeFairCliques(g, params, [&](const std::vector<VertexId>& c) {
    EXPECT_TRUE(IsFairClique(g, c, params));
    // No single vertex extends it into a fair clique... and more generally
    // the brute check below.
    std::set<std::vector<VertexId>> all = BruteRelativeFairCliques(g, params);
    EXPECT_TRUE(all.count(Sorted(c)));
  });
}

}  // namespace
}  // namespace fairclique
