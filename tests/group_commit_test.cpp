// Tests of the group-commit WAL writer (storage/group_commit.h): frame
// ordering, leader-election batching, durability acknowledgement, and the
// sticky-error contract. The on-disk framing is the plain WAL format, so
// every test round-trips through ReadWal.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/group_commit.h"
#include "storage/wal.h"

namespace fairclique {
namespace {

using storage::GroupCommitStats;
using storage::GroupCommitWal;
using storage::ReadWal;
using storage::SerializeWalFrame;
using storage::WalRecord;

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fairclique_group_commit_test_" + std::to_string(::getpid()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// A chain record: version v, base v-1's fingerprint, one op.
  static WalRecord Record(uint64_t v) {
    WalRecord r;
    r.base_fingerprint = 1000 + v - 1;
    r.fingerprint = 1000 + v;
    r.version = v;
    r.ops = {AddEdgeOp(static_cast<VertexId>(v), static_cast<VertexId>(v + 1))};
    return r;
  }

  std::filesystem::path dir_;
};

TEST_F(GroupCommitTest, AppendProducesReadableFramesInOrder) {
  GroupCommitWal wal(Path("a.wal"));
  for (uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(wal.Append(SerializeWalFrame(Record(v))).ok());
  }
  std::vector<WalRecord> records;
  bool torn = true;
  ASSERT_TRUE(ReadWal(Path("a.wal"), &records, &torn).ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 3u);
  for (uint64_t v = 1; v <= 3; ++v) {
    EXPECT_EQ(records[v - 1].version, v);
    EXPECT_EQ(records[v - 1].fingerprint, 1000 + v);
  }
  GroupCommitStats stats = wal.stats();
  EXPECT_EQ(stats.records, 3u);
  // Sequential appends cannot overlap: every record is its own group.
  EXPECT_EQ(stats.groups, 3u);
}

TEST_F(GroupCommitTest, EnqueueThenWaitDrainsEverythingInOneFsync) {
  // Enqueue never commits, so ten queued frames plus one Wait is exactly
  // one leader draining one ten-frame group — the deterministic proof that
  // grouping amortizes the fsync.
  GroupCommitWal wal(Path("g.wal"));
  std::vector<GroupCommitWal::Ticket> tickets;
  for (uint64_t v = 1; v <= 10; ++v) {
    tickets.push_back(wal.Enqueue(SerializeWalFrame(Record(v))));
  }
  for (GroupCommitWal::Ticket t : tickets) {
    EXPECT_TRUE(wal.Wait(t).ok());
  }
  GroupCommitStats stats = wal.stats();
  EXPECT_EQ(stats.records, 10u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.largest_group, 10u);

  std::vector<WalRecord> records;
  ASSERT_TRUE(ReadWal(Path("g.wal"), &records, nullptr).ok());
  ASSERT_EQ(records.size(), 10u);
  for (uint64_t v = 1; v <= 10; ++v) EXPECT_EQ(records[v - 1].version, v);
}

TEST_F(GroupCommitTest, ConcurrentAppendersAllDurableInEnqueueOrder) {
  GroupCommitWal wal(Path("c.wal"));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::mutex order_mu;
  std::vector<uint64_t> expected;  // fingerprints in enqueue order
  std::atomic<uint64_t> next_version{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        GroupCommitWal::Ticket ticket;
        {
          // The caller-side ordering lock: enqueue under it (so the file
          // order is the recorded order), wait outside it (so commits
          // group across threads).
          std::lock_guard<std::mutex> lock(order_mu);
          uint64_t v = ++next_version;
          expected.push_back(1000 + v);
          ticket = wal.Enqueue(SerializeWalFrame(Record(v)));
        }
        if (!wal.Wait(ticket).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  std::vector<WalRecord> records;
  bool torn = true;
  ASSERT_TRUE(ReadWal(Path("c.wal"), &records, &torn).ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), expected.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].fingerprint, expected[i]) << "position " << i;
  }
  GroupCommitStats stats = wal.stats();
  EXPECT_EQ(stats.records, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(stats.groups, stats.records);
  EXPECT_GE(stats.largest_group, 1u);
}

TEST_F(GroupCommitTest, GroupsCounterAggregatesAcrossWriters) {
  // Shared ownership on purpose: a commit can complete after the counter's
  // original owner (the StorageManager) is gone.
  auto groups = std::make_shared<std::atomic<uint64_t>>(0);
  {
    GroupCommitWal wal(Path("n.wal"), /*group_window_micros=*/0, groups);
    ASSERT_TRUE(wal.Append(SerializeWalFrame(Record(1))).ok());
    ASSERT_TRUE(wal.Append(SerializeWalFrame(Record(2))).ok());
  }
  {
    GroupCommitWal wal(Path("n2.wal"), 0, groups);
    ASSERT_TRUE(wal.Append(SerializeWalFrame(Record(1))).ok());
  }
  EXPECT_EQ(groups->load(), 3u);
}

TEST_F(GroupCommitTest, GroupWindowStillCommitsEveryFrame) {
  // The window only trades latency for group size; durability and order
  // are identical. (The timing itself is not asserted — CI clocks lie.)
  GroupCommitWal wal(Path("w.wal"), /*group_window_micros=*/2000);
  std::vector<std::thread> threads;
  std::mutex order_mu;
  std::atomic<uint64_t> next_version{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        GroupCommitWal::Ticket ticket;
        {
          std::lock_guard<std::mutex> lock(order_mu);
          ticket = wal.Enqueue(SerializeWalFrame(Record(++next_version)));
        }
        EXPECT_TRUE(wal.Wait(ticket).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<WalRecord> records;
  ASSERT_TRUE(ReadWal(Path("w.wal"), &records, nullptr).ok());
  EXPECT_EQ(records.size(), 20u);
}

TEST_F(GroupCommitTest, OpenFailureIsStickyForEveryLaterFrame) {
  // Unwritable path: the first group fails, and every frame from then on
  // must report the error rather than pretend durability (or worse, write
  // after a potentially torn frame).
  GroupCommitWal wal(Path("no-such-dir") + "/x.wal");
  EXPECT_FALSE(wal.Append(SerializeWalFrame(Record(1))).ok());
  std::vector<GroupCommitWal::Ticket> tickets;
  for (uint64_t v = 2; v <= 4; ++v) {
    tickets.push_back(wal.Enqueue(SerializeWalFrame(Record(v))));
  }
  for (GroupCommitWal::Ticket t : tickets) {
    EXPECT_FALSE(wal.Wait(t).ok());
  }
  EXPECT_EQ(wal.stats().groups, 0u);
  EXPECT_EQ(wal.stats().records, 0u);
}

}  // namespace
}  // namespace fairclique
