#include <gtest/gtest.h>

#include "core/enumeration.h"
#include "core/max_clique.h"
#include "core/verifier.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Oracle: maximum clique size via maximal clique enumeration.
size_t OracleMaxClique(const AttributedGraph& g) {
  size_t best = 0;
  EnumerateMaximalCliques(g, [&](const std::vector<VertexId>& m) {
    best = std::max(best, m.size());
  });
  return best;
}

TEST(MaxCliqueTest, EmptyAndTrivialGraphs) {
  AttributedGraph empty = MakeGraph("", {});
  EXPECT_TRUE(FindMaximumClique(empty).clique.empty());
  AttributedGraph one = MakeGraph("a", {});
  EXPECT_EQ(FindMaximumClique(one).clique.size(), 1u);
  AttributedGraph edge = MakeGraph("ab", {{0, 1}});
  EXPECT_EQ(FindMaximumClique(edge).clique.size(), 2u);
}

TEST(MaxCliqueTest, CompleteGraph) {
  GraphBuilder b(7);
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) b.AddEdge(u, v);
  }
  AttributedGraph g = b.Build();
  MaxCliqueResult r = FindMaximumClique(g);
  EXPECT_EQ(r.clique.size(), 7u);
}

TEST(MaxCliqueTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    AttributedGraph g = RandomAttributedGraph(40, 0.3 + 0.02 * seed, seed);
    MaxCliqueResult r = FindMaximumClique(g);
    EXPECT_EQ(r.clique.size(), OracleMaxClique(g)) << "seed " << seed;
    EXPECT_TRUE(IsClique(g, r.clique));
    EXPECT_TRUE(r.completed);
  }
}

TEST(MaxCliqueTest, FindsPlantedClique) {
  Rng rng(5);
  AttributedGraph base = ErdosRenyi(300, 0.05, rng);
  std::vector<VertexId> members;
  AttributedGraph g = PlantClique(base, 15, /*balanced=*/false, rng, &members);
  MaxCliqueResult r = FindMaximumClique(g);
  EXPECT_GE(r.clique.size(), 15u);
}

TEST(MaxCliqueTest, NodeLimitMarksIncomplete) {
  AttributedGraph g = RandomAttributedGraph(80, 0.5, 9);
  MaxCliqueResult r = FindMaximumClique(g, /*node_limit=*/3);
  EXPECT_FALSE(r.completed);
}

TEST(MaxCliqueTest, DominatesMaximumFairClique) {
  // omega(G) upper-bounds any fair clique size.
  for (uint64_t seed : {21u, 22u, 23u}) {
    AttributedGraph g = RandomAttributedGraph(30, 0.4, seed);
    MaxCliqueResult mc = FindMaximumClique(g);
    CliqueResult fair = MaxFairCliqueByEnumeration(g, {1, 2});
    EXPECT_GE(mc.clique.size(), fair.size()) << "seed " << seed;
  }
}

TEST(GreedyCliqueLowerBoundTest, IsACliqueAndNeverExceedsOptimum) {
  for (uint64_t seed = 31; seed <= 40; ++seed) {
    AttributedGraph g = RandomAttributedGraph(50, 0.25, seed);
    std::vector<VertexId> lb = GreedyCliqueLowerBound(g);
    EXPECT_TRUE(IsClique(g, lb));
    EXPECT_LE(lb.size(), FindMaximumClique(g).clique.size());
    EXPECT_GE(lb.size(), 1u);
  }
}

}  // namespace
}  // namespace fairclique
