// End-to-end integration tests: the full pipeline on the stand-in datasets
// and larger synthetic graphs, IO round trips through the search, and
// cross-module consistency at realistic scale (thousands of vertices).

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/fairclique.h"
#include "datasets/datasets.h"

namespace fairclique {
namespace {

TEST(IntegrationTest, FullPipelineOnEveryDataset) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    AttributedGraph g = LoadDataset(spec.name, /*scale=*/0.5);
    FairnessParams params{spec.default_k, spec.default_delta};
    SearchResult r = FindMaximumFairClique(
        g, FullOptions(params.k, params.delta,
                       ExtraBound::kColorfulDegeneracy));
    ASSERT_TRUE(r.stats.completed) << spec.name;
    if (!r.clique.empty()) {
      EXPECT_TRUE(VerifyFairClique(g, r.clique.vertices, params).ok())
          << spec.name;
    }
    // The maximum clique upper-bounds the fair answer.
    MaxCliqueResult mc = FindMaximumClique(g, /*node_limit=*/20'000'000);
    if (mc.completed) {
      EXPECT_GE(mc.clique.size(), r.clique.size()) << spec.name;
    }
  }
}

TEST(IntegrationTest, ReductionTogglesNeverChangeTheAnswer) {
  AttributedGraph g = LoadDataset("dblp-s", 0.4);
  const int k = 5, delta = 2;
  size_t reference = 0;
  bool first = true;
  for (bool core : {true, false}) {
    for (bool sup : {true, false}) {
      for (bool ensup : {true, false}) {
        SearchOptions opts =
            BoundedOptions(k, delta, ExtraBound::kColorfulPath);
        opts.reductions = {core, sup, ensup};
        SearchResult r = FindMaximumFairClique(g, opts);
        ASSERT_TRUE(r.stats.completed);
        if (first) {
          reference = r.clique.size();
          first = false;
        } else {
          EXPECT_EQ(r.clique.size(), reference)
              << "core=" << core << " sup=" << sup << " ensup=" << ensup;
        }
      }
    }
  }
}

TEST(IntegrationTest, EnginesAgreeOnDatasetScaleGraphs) {
  AttributedGraph g = LoadDataset("aminer-s", 0.5);
  SearchOptions vec = FullOptions(4, 2, ExtraBound::kColorfulDegeneracy);
  vec.engine = SearchEngine::kVector;
  SearchOptions bit = vec;
  bit.engine = SearchEngine::kBitset;
  SearchResult rv = FindMaximumFairClique(g, vec);
  SearchResult rb = FindMaximumFairClique(g, bit);
  EXPECT_EQ(rv.clique.size(), rb.clique.size());
  EXPECT_EQ(rv.stats.nodes, rb.stats.nodes);
}

TEST(IntegrationTest, BinaryRoundTripThroughSearch) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("fairclique_integ_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string path = (dir / "graph.fcg").string();

  AttributedGraph g = LoadDataset("flixster-s", 0.3);
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  AttributedGraph loaded;
  ASSERT_TRUE(LoadBinaryGraph(path, &loaded).ok());

  SearchResult orig =
      FindMaximumFairClique(g, FullOptions(3, 2, ExtraBound::kColorfulPath));
  SearchResult round = FindMaximumFairClique(
      loaded, FullOptions(3, 2, ExtraBound::kColorfulPath));
  EXPECT_EQ(orig.clique.vertices, round.clique.vertices);
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, HeuristicsBracketTheExactAnswerEverywhere) {
  for (const char* name : {"themarker-s", "pokec-s"}) {
    DatasetSpec spec = DatasetByName(name);
    AttributedGraph g = LoadDataset(name, 0.5);
    FairnessParams params{spec.default_k, spec.default_delta};
    HeuristicResult heur = HeurRFC(g, {params, 1});
    SearchResult exact = FindMaximumFairClique(
        g, FullOptions(params.k, params.delta, ExtraBound::kColorfulPath));
    ASSERT_TRUE(exact.stats.completed) << name;
    EXPECT_LE(heur.clique.size(), exact.clique.size()) << name;
    if (!exact.clique.empty()) {
      EXPECT_GE(heur.color_upper_bound,
                static_cast<int64_t>(exact.clique.size()))
          << name;
    }
  }
}

TEST(IntegrationTest, StatsAreInternallyConsistentOnDatasets) {
  for (const char* name : {"google-s", "dblp-s"}) {
    AttributedGraph g = LoadDataset(name, 0.5);
    GraphStats s = ComputeGraphStats(g);
    EXPECT_EQ(s.num_vertices, g.num_vertices());
    EXPECT_EQ(s.num_edges, g.num_edges());
    EXPECT_EQ(s.attribute_counts.Total(),
              static_cast<int64_t>(g.num_vertices()));
    EXPECT_LE(s.largest_component, g.num_vertices());
    EXPECT_GE(s.global_clustering, 0.0);
    EXPECT_LE(s.global_clustering, 1.0);
    EXPECT_GE(s.same_attribute_edge_fraction, 0.0);
    EXPECT_LE(s.same_attribute_edge_fraction, 1.0);
  }
}

TEST(IntegrationTest, AlternatingHeuristicAtScale) {
  AttributedGraph g = LoadDataset("themarker-s", 0.5);
  DatasetSpec spec = DatasetByName("themarker-s");
  FairnessParams params{spec.default_k, spec.default_delta};
  // Reduce first (the printed algorithm also runs after reductions).
  ReductionPipelineResult reduced =
      ReduceForFairClique(g, params.k, ReductionOptions{});
  AlternatingSearchResult alt =
      AlternatingMaxFairClique(reduced.reduced, params, 5'000'000);
  SearchResult exact = FindMaximumFairClique(
      g, FullOptions(params.k, params.delta, ExtraBound::kColorfulPath));
  ASSERT_TRUE(exact.stats.completed);
  EXPECT_LE(alt.clique.size(), exact.clique.size());
  if (!alt.clique.empty()) {
    EXPECT_TRUE(
        IsFairClique(reduced.reduced, alt.clique.vertices, params));
  }
}

}  // namespace
}  // namespace fairclique
