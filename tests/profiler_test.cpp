#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "test_util.h"

namespace fairclique {
namespace {

using obs::ProfileScope;
using obs::Profiler;
using testing_util::RandomAttributedGraph;

// The profiler is a process-wide singleton; every test starts from a clean
// stopped-and-reset state and leaves one behind.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Default().Stop();
    ASSERT_TRUE(Profiler::Default().Reset());
  }
  void TearDown() override {
    Profiler::Default().Stop();
    Profiler::Default().Reset();
  }
};

TEST_F(ProfilerTest, FoldedOutputIsSortedSemicolonJoinedCounts) {
  Profiler& p = Profiler::Default();
  p.TestingRecordSample({"PrepareGraph", "EnColorfulCore"});
  p.TestingRecordSample({"BranchComponent"});
  p.TestingRecordSample({"PrepareGraph", "EnColorfulCore"});
  p.TestingRecordSample({"PrepareGraph", "EnColorfulCore"});

  EXPECT_EQ(p.samples(), 4u);
  EXPECT_EQ(p.stacks(), 2u);
  EXPECT_EQ(p.dropped(), 0u);
  // Exact flamegraph collapse format: `frame;frame count\n` per distinct
  // stack, lexically sorted so dumps diff cleanly run to run.
  EXPECT_EQ(p.DumpFolded(),
            "BranchComponent 1\n"
            "PrepareGraph;EnColorfulCore 3\n");
}

TEST_F(ProfilerTest, SampleNowFoldsTheLiveScopeStack) {
  Profiler& p = Profiler::Default();
  ASSERT_TRUE(p.Start(0));  // enabled, no timer: deterministic sampling
  {
    ProfileScope outer("PrepareGraph");
    {
      ProfileScope inner("BranchComponent");
      p.TestingSampleNow();
    }
    p.TestingSampleNow();
  }
  ASSERT_TRUE(p.Stop());

  std::string dump = p.DumpFolded();
  EXPECT_NE(dump.find("PrepareGraph;BranchComponent 1\n"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("PrepareGraph 1\n"), std::string::npos) << dump;
  EXPECT_EQ(p.samples(), 2u);
}

TEST_F(ProfilerTest, SampleOutsideAnyScopeFoldsAsOther) {
  Profiler& p = Profiler::Default();
  ASSERT_TRUE(p.Start(0));
  p.TestingSampleNow();
  ASSERT_TRUE(p.Stop());
  EXPECT_EQ(p.DumpFolded(), "other 1\n");
}

TEST_F(ProfilerTest, ResetRefusedWhileRunningAndStartIsExclusive) {
  Profiler& p = Profiler::Default();
  ASSERT_TRUE(p.Start(0));
  EXPECT_TRUE(p.running());
  EXPECT_FALSE(p.Start(0));   // already running
  EXPECT_FALSE(p.Reset());    // the handler may be mid-record
  ASSERT_TRUE(p.Stop());
  EXPECT_FALSE(p.Stop());     // not running anymore
  EXPECT_TRUE(p.Reset());
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_EQ(p.stacks(), 0u);
  EXPECT_EQ(p.DumpFolded(), "");
}

TEST_F(ProfilerTest, TestHooksRecordEvenWhileStopped) {
  // Only the SIGPROF path is gated on `running`; the explicit test hooks
  // fold unconditionally, so unit tests never need timer plumbing — and
  // ProfileScope maintains the tag stack regardless, so a profiler started
  // mid-flight still sees the scopes already open.
  Profiler& p = Profiler::Default();
  ASSERT_FALSE(p.running());
  {
    ProfileScope scope("BranchComponent");
    p.TestingSampleNow();
  }
  EXPECT_EQ(p.samples(), 1u);
  EXPECT_EQ(p.DumpFolded(), "BranchComponent 1\n");
}

TEST_F(ProfilerTest, ConcurrentScopedSamplersStayDisjointPerThread) {
  // Each thread samples its own tag stack; the folded table merges counts
  // across threads without losing any. Run under TSan in CI.
  Profiler& p = Profiler::Default();
  ASSERT_TRUE(p.Start(0));
  constexpr int kThreads = 4;
  constexpr int kSamplesPerThread = 200;
  static const char* const kTags[kThreads] = {"PrepareGraph",
                                              "BranchComponent",
                                              "EnColorfulCore", "ColorfulSup"};
  std::vector<std::thread> threads;
  std::atomic<int> dumps_seen{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p, t] {
      for (int i = 0; i < kSamplesPerThread; ++i) {
        ProfileScope scope(kTags[t]);
        p.TestingSampleNow();
      }
    });
  }
  // Concurrent reader: DumpFolded is documented safe while running.
  std::thread reader([&p, &dumps_seen] {
    for (int i = 0; i < 50; ++i) {
      dumps_seen += p.DumpFolded().empty() ? 0 : 1;
    }
  });
  for (auto& t : threads) t.join();
  reader.join();
  ASSERT_TRUE(p.Stop());

  EXPECT_EQ(p.samples(), static_cast<uint64_t>(kThreads * kSamplesPerThread));
  std::string dump = p.DumpFolded();
  for (const char* tag : kTags) {
    EXPECT_NE(dump.find(std::string(tag) + " 200\n"), std::string::npos)
        << dump;
  }
}

TEST_F(ProfilerTest, SearchUnderProfilerAttributesStageScopes) {
  // An actual search marks PrepareGraph / reduction stages / BranchComponent
  // via the real instrumentation points; deterministic TestingSampleNow
  // cannot land inside them from this thread, so instead assert that a
  // profiled single-threaded search leaves the profiler consistent and a
  // dump parseable: every line is `frames count` with count >= 1.
  Profiler& p = Profiler::Default();
  ASSERT_TRUE(p.Start(0));
  AttributedGraph g = RandomAttributedGraph(80, 0.3, 0xBEEF);
  FindMaximumFairClique(g, BaselineOptions(1, 2));
  p.TestingRecordSample({"PrepareGraph"});  // ensure a non-empty dump
  ASSERT_TRUE(p.Stop());

  std::istringstream lines(p.DumpFolded());
  std::string line;
  size_t parsed = 0;
  while (std::getline(lines, line)) {
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    EXPECT_GE(std::stoull(line.substr(space + 1)), 1u) << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 1u);
  EXPECT_EQ(parsed, p.stacks());
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(ProfilerTest, TimerSamplesLandInBusyScopes) {
  // Arm the real SIGPROF timer and burn CPU inside a tagged scope; the
  // samples must land there. Generous spin (relative to the 200 Hz period)
  // keeps this robust under sanitizer slowdowns.
  Profiler& p = Profiler::Default();
  ASSERT_TRUE(p.Start(200));
  EXPECT_EQ(p.hz(), 200);
  bool sampled = false;
  {
    ProfileScope scope("BranchComponent");
    volatile uint64_t sink = 0;
    WallTimer bailout;
    while (!(sampled = p.samples() >= 5) && bailout.ElapsedSeconds() < 20.0) {
      for (int i = 0; i < 4096; ++i) sink = sink + i;
    }
  }
  ASSERT_TRUE(p.Stop());
  ASSERT_TRUE(sampled) << "SIGPROF never fired in 20s of CPU burn";
  EXPECT_NE(p.DumpFolded().find("BranchComponent"), std::string::npos)
      << p.DumpFolded();
}
#endif

}  // namespace
}  // namespace fairclique
