#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclique {
namespace obs {
namespace {

/// Restores the global telemetry switch on scope exit so a failing test
/// cannot leave the rest of the binary recording-disabled.
struct EnabledGuard {
  explicit EnabledGuard(bool enabled) { SetEnabled(enabled); }
  ~EnabledGuard() { SetEnabled(true); }
};

// ------------------------------------------------------------------ counters

TEST(ObsMetricsTest, CounterSumsAcrossIncrements) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(ObsMetricsTest, CounterConcurrentIncrementsLoseNothing) {
  // TSan target: 8 threads hammer one counter through the sharded fast
  // path; the final sum must be exact, not merely approximate.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(7);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 5);
}

TEST(ObsMetricsTest, DisabledRecordingIsANoOp) {
  EnabledGuard guard(false);
  Counter c;
  Histogram h;
  c.Increment(100);
  h.Record(100);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
}

// ---------------------------------------------------------------- histograms

TEST(ObsMetricsTest, HistogramBucketsPowersOfTwo) {
  Histogram h;
  h.Record(0);    // bucket le=0
  h.Record(1);    // le=1
  h.Record(5);    // le=7
  h.Record(100);  // le=127
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 106);
  EXPECT_EQ(snap.max, 100);
  uint64_t total = 0;
  for (const auto& bucket : snap.buckets) {
    total += bucket.count;
    if (bucket.count > 0) {
      EXPECT_TRUE(bucket.le == 0 || bucket.le == 1 || bucket.le == 7 ||
                  bucket.le == 127)
          << "unexpected occupied bucket le=" << bucket.le;
    }
  }
  EXPECT_EQ(total, snap.count) << "trailing-trim must not drop samples";
  EXPECT_EQ(snap.buckets.back().le, 127) << "buckets past the max are cut";
}

TEST(ObsMetricsTest, HistogramQuantilesWithinBucketResolution) {
  Histogram h;
  for (int64_t v : {1, 2, 3, 4, 100}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  // Median sample is 3; its bucket's upper bound is exactly 3.
  EXPECT_EQ(snap.Quantile(0.5), 3);
  // p99 rank (nearest-rank on 5 samples) is the 4th sample (4, bucket le 7).
  EXPECT_EQ(snap.Quantile(0.99), 7);
  // The top of the distribution is capped by the exact max, not the
  // bucket's nominal bound.
  EXPECT_EQ(snap.Quantile(1.0), 100);
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0);
}

TEST(ObsMetricsTest, HistogramConcurrentRecordingIsExact) {
  // TSan target: concurrent recorders across shards; count and sum must
  // both be exact after the threads join.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(t + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1) * kPerThread;
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.max, kThreads);
}

// ------------------------------------------------------------------ registry

TEST(ObsMetricsTest, RegistryInternsByName) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("test_counter", "help");
  Counter* b = registry.GetCounter("test_counter");
  EXPECT_EQ(a, b);
  Histogram* h = registry.GetHistogram("test_hist", "hist help");
  EXPECT_EQ(h, registry.GetHistogram("test_hist"));
  a->Increment(3);
  h->Record(9);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "test_counter");
  EXPECT_EQ(snap.metrics[0].counter_value, 3u);
  EXPECT_EQ(snap.metrics[1].name, "test_hist");
  EXPECT_EQ(snap.metrics[1].histogram.count, 1u);
}

TEST(ObsMetricsDeathTest, RegistryRejectsKindMismatch) {
  MetricRegistry registry;
  registry.GetCounter("kinded");
  EXPECT_DEATH(registry.GetGauge("kinded"), "another kind");
}

TEST(ObsMetricsTest, RenderPrometheusFormat) {
  MetricRegistry registry;
  registry.GetCounter("fc_test_total", "a counter")->Increment(5);
  registry.GetGauge("fc_test_depth", "a gauge")->Set(-3);
  Histogram* h = registry.GetHistogram("fc_test_micros", "a histogram");
  h->Record(1);
  h->Record(5);
  h->Record(5);

  std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP fc_test_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_test_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("fc_test_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fc_test_depth -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fc_test_micros histogram\n"),
            std::string::npos);
  // Buckets are cumulative: le="1" holds 1 sample, le="7" all 3.
  EXPECT_NE(text.find("fc_test_micros_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fc_test_micros_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fc_test_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fc_test_micros_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("fc_test_micros_count 3\n"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

// ------------------------------------------------------------------- tracing

TEST(ObsTraceTest, TraceIdsAreUniqueAndIncreasing) {
  uint64_t prev = NextTraceId();
  EXPECT_GT(prev, 0u);
  for (int i = 0; i < 100; ++i) {
    uint64_t next = NextTraceId();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

std::shared_ptr<const Trace> MakeTrace(uint64_t id, int64_t run_micros) {
  auto trace = std::make_shared<Trace>();
  trace->id = id;
  trace->run_micros = run_micros;
  return trace;
}

TEST(ObsSlowlogTest, RetainsSlowestNotNewest) {
  Slowlog log(3);
  log.Record(MakeTrace(1, 30));
  log.Record(MakeTrace(2, 10));
  log.Record(MakeTrace(3, 20));
  EXPECT_EQ(log.size(), 3u);
  // A slower trace evicts the current fastest (id 2), even though id 2 is
  // more recent than id 1.
  log.Record(MakeTrace(4, 25));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.Find(2), nullptr);
  EXPECT_NE(log.Find(1), nullptr);

  // A trace no slower than the floor is dropped, not admitted (ties keep
  // the incumbent: it was slow first).
  log.Record(MakeTrace(5, 20));
  EXPECT_EQ(log.Find(5), nullptr);
  EXPECT_NE(log.Find(3), nullptr);

  std::vector<uint64_t> order;
  for (const auto& trace : log.Slowest()) order.push_back(trace->id);
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 4, 3}));
}

TEST(ObsSlowlogTest, SlowestHonorsLimitAndBreaksTiesById) {
  Slowlog log(4);
  log.Record(MakeTrace(7, 50));
  log.Record(MakeTrace(5, 50));
  log.Record(MakeTrace(6, 80));
  std::vector<uint64_t> top2;
  for (const auto& trace : log.Slowest(2)) top2.push_back(trace->id);
  EXPECT_EQ(top2, (std::vector<uint64_t>{6, 5}));
}

TEST(ObsSlowlogTest, AdmitsEverythingBelowCapacityThenFloors) {
  Slowlog log(2);
  EXPECT_TRUE(log.Admits(0));  // not yet full: everything may enter
  log.Record(MakeTrace(1, 100));
  log.Record(MakeTrace(2, 200));
  EXPECT_FALSE(log.Admits(100)) << "ties lose to the incumbent";
  EXPECT_FALSE(log.Admits(50));
  EXPECT_TRUE(log.Admits(150));
}

TEST(ObsSlowlogTest, ResetClearsAndRecaps) {
  Slowlog log(2);
  log.Record(MakeTrace(1, 10));
  log.Record(MakeTrace(2, 20));
  log.Reset(5);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity(), 5u);
  EXPECT_TRUE(log.Admits(0));
  log.Reset();  // capacity 0: keep the current capacity
  EXPECT_EQ(log.capacity(), 5u);
}

TEST(ObsSlowlogTest, ConcurrentRecordersKeepTheSlowest) {
  // TSan target: concurrent Record/Admits against one log. Afterwards the
  // log must hold exactly the capacity slowest run times.
  Slowlog log(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::atomic<uint64_t> next_id{1};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t id = next_id.fetch_add(1);
        int64_t run = static_cast<int64_t>(id);  // slower ids are later
        if (log.Admits(run)) log.Record(MakeTrace(id, run));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto slowest = log.Slowest();
  ASSERT_EQ(slowest.size(), 8u);
  std::set<int64_t> runs;
  for (const auto& trace : slowest) runs.insert(trace->run_micros);
  // run == id and 1000 traces were offered, so the 8 slowest are 993..1000.
  EXPECT_EQ(*runs.begin(), kThreads * kPerThread - 7);
  EXPECT_EQ(*runs.rbegin(), kThreads * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace fairclique
