#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bitset.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace fairclique {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::IOError("disk gone"); };
  auto outer = [&]() -> Status {
    FAIRCLIQUE_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t x = rng.NextInRange(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    lo_seen |= x == -2;
    hi_seen |= x == 2;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(RngTest, SampleDistinctProducesDistinctInRange) {
  Rng rng(13);
  for (uint64_t n : {10ull, 100ull, 1000ull}) {
    for (uint64_t c : std::vector<uint64_t>{0, 1, n / 2, n}) {
      std::vector<uint64_t> sample = rng.SampleDistinct(n, c);
      EXPECT_EQ(sample.size(), c);
      std::set<uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), c);
      for (uint64_t x : sample) EXPECT_LT(x, n);
    }
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------------- Bitset --

TEST(BitsetTest, SetTestResetRoundTrip) {
  Bitset bs(130);
  EXPECT_EQ(bs.Count(), 0u);
  bs.Set(0);
  bs.Set(64);
  bs.Set(129);
  EXPECT_TRUE(bs.Test(0));
  EXPECT_TRUE(bs.Test(64));
  EXPECT_TRUE(bs.Test(129));
  EXPECT_FALSE(bs.Test(1));
  EXPECT_EQ(bs.Count(), 3u);
  bs.Reset(64);
  EXPECT_FALSE(bs.Test(64));
  EXPECT_EQ(bs.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset bs(70);
  bs.SetAll();
  EXPECT_EQ(bs.Count(), 70u);
}

TEST(BitsetTest, IntersectionAndDifference) {
  Bitset a(128), b(128);
  for (size_t i = 0; i < 128; i += 2) a.Set(i);
  for (size_t i = 0; i < 128; i += 3) b.Set(i);
  Bitset inter = a;
  inter &= b;
  for (size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(inter.Test(i), i % 6 == 0) << i;
  }
  EXPECT_EQ(a.IntersectCount(b), inter.Count());
  Bitset diff = a;
  diff -= b;
  for (size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(diff.Test(i), (i % 2 == 0) && (i % 3 != 0)) << i;
  }
}

TEST(BitsetTest, NextSetBitWalksAllBits) {
  Bitset bs(200);
  std::vector<size_t> set_bits{0, 63, 64, 65, 127, 128, 199};
  for (size_t i : set_bits) bs.Set(i);
  std::vector<size_t> walked;
  for (size_t i = bs.NextSetBit(0); i < bs.size(); i = bs.NextSetBit(i + 1)) {
    walked.push_back(i);
  }
  EXPECT_EQ(walked, set_bits);
}

TEST(BitsetTest, ForEachSetBitMatchesNextSetBit) {
  Bitset bs(97);
  for (size_t i = 1; i < 97; i *= 2) bs.Set(i);
  std::vector<size_t> collected;
  bs.ForEachSetBit([&](size_t i) { collected.push_back(i); });
  std::vector<size_t> expected{1, 2, 4, 8, 16, 32, 64};
  EXPECT_EQ(collected, expected);
}

TEST(BitsetTest, EmptyBitset) {
  Bitset bs;
  EXPECT_EQ(bs.size(), 0u);
  EXPECT_EQ(bs.Count(), 0u);
  EXPECT_FALSE(bs.Any());
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer t;
  int64_t a = t.ElapsedMicros();
  int64_t b = t.ElapsedMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Burn a little time.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_TRUE(d.Expired());
}

}  // namespace
}  // namespace fairclique
