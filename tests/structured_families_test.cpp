// Tests on graph families with analytically known answers: complete
// multipartite graphs, bipartite graphs, cycles, trees, and unions of
// cliques. These pin down exact expected values (not just consistency),
// complementing the randomized differential suites.

#include <gtest/gtest.h>

#include "bounds/upper_bounds.h"
#include "core/max_clique.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "graph/coloring.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;

// Complete multipartite graph with the given part sizes; parts alternate
// attributes (part i has attribute i % 2).
AttributedGraph CompleteMultipartite(const std::vector<int>& parts) {
  int n = 0;
  for (int p : parts) n += p;
  GraphBuilder b(static_cast<VertexId>(n));
  int offset = 0;
  std::vector<std::pair<int, int>> ranges;
  for (size_t i = 0; i < parts.size(); ++i) {
    ranges.push_back({offset, offset + parts[i]});
    for (int v = offset; v < offset + parts[i]; ++v) {
      b.SetAttribute(static_cast<VertexId>(v),
                     i % 2 == 0 ? Attribute::kA : Attribute::kB);
    }
    offset += parts[i];
  }
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      for (int u = ranges[i].first; u < ranges[i].second; ++u) {
        for (int v = ranges[j].first; v < ranges[j].second; ++v) {
          b.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
        }
      }
    }
  }
  return b.Build();
}

TEST(StructuredFamiliesTest, CompleteMultipartiteCliqueNumberIsPartCount) {
  // Max clique takes one vertex per part.
  AttributedGraph g = CompleteMultipartite({3, 3, 3, 3});
  EXPECT_EQ(FindMaximumClique(g).clique.size(), 4u);
  // Parts alternate attributes: 2 a-parts, 2 b-parts -> max fair clique
  // with k=2, delta=0 uses all four parts.
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(2, 0));
  EXPECT_EQ(r.clique.size(), 4u);
}

TEST(StructuredFamiliesTest, CompleteMultipartiteUnbalancedParts) {
  // 5 parts: attributes a,b,a,b,a -> 3 a's and 2 b's available per clique.
  AttributedGraph g = CompleteMultipartite({2, 2, 2, 2, 2});
  // k=2, delta=0: best is 2+2.
  SearchResult strict = FindMaximumFairClique(g, BaselineOptions(2, 0));
  EXPECT_EQ(strict.clique.size(), 4u);
  // k=2, delta=1: 3 a's + 2 b's.
  SearchResult loose = FindMaximumFairClique(g, BaselineOptions(2, 1));
  EXPECT_EQ(loose.clique.size(), 5u);
}

TEST(StructuredFamiliesTest, BipartiteGraphsFairCliqueIsAnEdge) {
  // Complete bipartite with a on one side, b on the other: cliques are
  // edges; the only fair cliques at k=1 are mixed pairs.
  GraphBuilder b(8);
  for (VertexId u = 0; u < 4; ++u) {
    b.SetAttribute(u, Attribute::kA);
    for (VertexId v = 4; v < 8; ++v) b.AddEdge(u, v);
  }
  for (VertexId v = 4; v < 8; ++v) b.SetAttribute(v, Attribute::kB);
  AttributedGraph g = b.Build();
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
  EXPECT_EQ(r.clique.size(), 2u);
  SearchResult r2 = FindMaximumFairClique(g, BaselineOptions(2, 0));
  EXPECT_TRUE(r2.clique.empty());
}

TEST(StructuredFamiliesTest, OddCycleNeedsMixedAdjacentPair) {
  // C5 with attributes a,b,a,b,a: adjacent mixed pairs exist.
  AttributedGraph g =
      MakeGraph("ababa", {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
  EXPECT_EQ(r.clique.size(), 2u);
  // All-same-attribute cycle: nothing.
  AttributedGraph same =
      MakeGraph("aaaaa", {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_TRUE(
      FindMaximumFairClique(same, BaselineOptions(1, 0)).clique.empty());
}

TEST(StructuredFamiliesTest, StarOfCliquesPicksTheBestBalancedOne) {
  // Three cliques sharing vertex 0: sizes 4 (3a+1b), 4 (2a+2b), 5 (1a+4b).
  GraphBuilder b(12);
  auto add_clique = [&b](std::vector<VertexId> vs) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) b.AddEdge(vs[i], vs[j]);
    }
  };
  // Clique 1: {0,1,2,3} attrs a,a,a,b.
  add_clique({0, 1, 2, 3});
  b.SetAttribute(3, Attribute::kB);
  // Clique 2: {0,4,5,6} attrs a,a,b,b.
  add_clique({0, 4, 5, 6});
  b.SetAttribute(5, Attribute::kB);
  b.SetAttribute(6, Attribute::kB);
  // Clique 3: {0,7,8,9,10} attrs a,b,b,b,b.
  add_clique({0, 7, 8, 9, 10});
  for (VertexId v = 7; v <= 10; ++v) b.SetAttribute(v, Attribute::kB);
  AttributedGraph g = b.Build();
  // k=2, delta=0: only clique 2 gives (2,2).
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(2, 0));
  EXPECT_EQ(r.clique.size(), 4u);
  EXPECT_EQ(r.clique.attr_counts.a(), 2);
  // k=1, delta=3: clique 3 gives (1,4) -> 5 vertices.
  SearchResult r2 = FindMaximumFairClique(g, BaselineOptions(1, 3));
  EXPECT_EQ(r2.clique.size(), 5u);
}

TEST(StructuredFamiliesTest, BoundsAreTightOnCompleteMultipartite) {
  // On complete multipartite graphs the coloring bound equals the part
  // count (each part is an independent set = one color under any optimal
  // greedy run on degree order).
  AttributedGraph g = CompleteMultipartite({4, 4, 4});
  Coloring c = GreedyColoring(g);
  EXPECT_EQ(ColorBound(c), 3);
  EXPECT_EQ(DegeneracyBound(g), 9);  // degeneracy 8 (K4,4,4) + 1.
  EXPECT_EQ(ColorfulPathBound(g, c), 3);
}

TEST(StructuredFamiliesTest, TreesHaveNoFairCliquesBeyondEdges) {
  // A balanced binary tree with alternating attributes by depth.
  GraphBuilder b(15);
  for (VertexId v = 1; v < 15; ++v) b.AddEdge(v, (v - 1) / 2);
  for (VertexId v = 0; v < 15; ++v) {
    int depth = 0;
    VertexId x = v;
    while (x > 0) {
      x = (x - 1) / 2;
      ++depth;
    }
    b.SetAttribute(v, depth % 2 == 0 ? Attribute::kA : Attribute::kB);
  }
  AttributedGraph g = b.Build();
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
  EXPECT_EQ(r.clique.size(), 2u);  // Parent-child mixed pair.
  EXPECT_TRUE(FindMaximumFairClique(g, BaselineOptions(2, 2)).clique.empty());
}

TEST(StructuredFamiliesTest, DisjointCliquesPickTheLargestFairOne) {
  // Cliques of sizes 10 (5/5), 12 (2/10), 8 (4/4) in one graph.
  GraphBuilder b(30);
  auto add_range_clique = [&b](VertexId lo, VertexId hi, int num_a) {
    for (VertexId u = lo; u < hi; ++u) {
      b.SetAttribute(u, static_cast<int>(u - lo) < num_a ? Attribute::kA
                                                         : Attribute::kB);
      for (VertexId v = u + 1; v < hi; ++v) b.AddEdge(u, v);
    }
  };
  add_range_clique(0, 10, 5);    // 5a + 5b
  add_range_clique(10, 22, 2);   // 2a + 10b
  add_range_clique(22, 30, 4);   // 4a + 4b
  AttributedGraph g = b.Build();
  // k=2, delta=1: the (5,5) clique -> 10.
  EXPECT_EQ(FindMaximumFairClique(g, BaselineOptions(2, 1)).clique.size(),
            10u);
  // k=2, delta=8: from the 12-clique take (2,10) -> 12.
  EXPECT_EQ(FindMaximumFairClique(g, BaselineOptions(2, 8)).clique.size(),
            12u);
  // k=5, delta=0: only the (5,5) clique qualifies.
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(5, 0));
  EXPECT_EQ(r.clique.size(), 10u);
}

}  // namespace
}  // namespace fairclique
