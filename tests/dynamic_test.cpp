// Tests for the dynamic-graph subsystem (src/dynamic) and its service-layer
// integration: batched updates with atomic validation, epoch snapshots,
// incremental degree/attribute-degree maintenance, exact incremental
// re-query, warm starts, cache migration on Replace, and an
// update-while-querying stress test.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_search.h"
#include "graph/fingerprint.h"
#include "graph/generators.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

/// Fixture graph: a K4 fair clique {0,1,2,3} (attrs aabb) plus a path
/// 4-5-6-7 (attrs aabb). With k=2, delta=1 the unique maximum fair clique
/// is {0,1,2,3}.
AttributedGraph FixtureGraph() {
  return MakeGraph("aabbaabb", {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3},
                                {2, 3}, {4, 5}, {5, 6}, {6, 7}});
}

SearchOptions FixtureOptions() {
  return FullOptions(2, 1, ExtraBound::kColorfulPath);
}

// ------------------------------------------------------------ DynamicGraph

TEST(DynamicGraphTest, ApplyMaintainsSnapshotDegreesAndAttrCounts) {
  DynamicGraph dyn(FixtureGraph());
  EXPECT_EQ(dyn.version(), 0u);
  EXPECT_EQ(dyn.num_vertices(), 8u);
  EXPECT_EQ(dyn.num_edges(), 9u);

  UpdateSummary summary;
  std::vector<UpdateOp> batch = {AddEdgeOp(3, 4), RemoveEdgeOp(6, 7),
                                 SetAttributeOp(7, Attribute::kA)};
  ASSERT_TRUE(dyn.Apply(batch, &summary).ok());

  EXPECT_EQ(dyn.version(), 1u);
  EXPECT_EQ(summary.version, 1u);
  EXPECT_EQ(summary.edges_added, 1u);
  EXPECT_EQ(summary.edges_removed, 1u);
  EXPECT_EQ(summary.attributes_changed, 1u);
  EXPECT_FALSE(summary.insert_only());
  ASSERT_EQ(summary.added_edges.size(), 1u);
  EXPECT_EQ(summary.added_edges[0], (Edge{3, 4}));
  // touched = removal endpoints {6,7} + attr flip {7}.
  EXPECT_EQ(summary.touched, (std::vector<VertexId>{6, 7}));
  // affected additionally includes the added edge's endpoints.
  EXPECT_EQ(summary.affected, (std::vector<VertexId>{3, 4, 6, 7}));

  std::shared_ptr<const AttributedGraph> snap = dyn.snapshot();
  ASSERT_TRUE(snap->Validate().ok());
  EXPECT_TRUE(snap->HasEdge(3, 4));
  EXPECT_FALSE(snap->HasEdge(6, 7));
  EXPECT_EQ(snap->attribute(7), Attribute::kA);
  EXPECT_EQ(summary.fingerprint, GraphFingerprint(*snap));
  EXPECT_EQ(dyn.fingerprint(), summary.fingerprint);
  EXPECT_NE(summary.fingerprint, summary.base_fingerprint);

  // Incrementally maintained counters match the materialized snapshot.
  for (VertexId v = 0; v < snap->num_vertices(); ++v) {
    EXPECT_EQ(dyn.degree(v), snap->degree(v)) << "vertex " << v;
    AttrCounts expected;
    for (VertexId w : snap->neighbors(v)) expected[snap->attribute(w)]++;
    EXPECT_EQ(dyn.attr_neighbor_counts(v), expected) << "vertex " << v;
  }
}

TEST(DynamicGraphTest, AddVertexThenWireItUp) {
  DynamicGraph dyn(FixtureGraph());
  UpdateSummary summary;
  // New vertex 8 (attribute b), immediately connected inside the batch.
  std::vector<UpdateOp> batch = {AddVertexOp(Attribute::kB), AddEdgeOp(8, 0),
                                 AddEdgeOp(8, 1)};
  ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
  EXPECT_EQ(summary.vertices_added, 1u);
  EXPECT_EQ(summary.edges_added, 2u);
  EXPECT_TRUE(summary.insert_only());

  std::shared_ptr<const AttributedGraph> snap = dyn.snapshot();
  EXPECT_EQ(snap->num_vertices(), 9u);
  EXPECT_EQ(snap->attribute(8), Attribute::kB);
  EXPECT_TRUE(snap->HasEdge(8, 0));
  EXPECT_EQ(dyn.degree(8), 2u);
}

TEST(DynamicGraphTest, InvalidOpRejectsWholeBatch) {
  DynamicGraph dyn(FixtureGraph());
  uint64_t fp_before = dyn.fingerprint();

  // Second op is invalid (edge already exists) -> nothing applies.
  std::vector<UpdateOp> batch = {AddEdgeOp(0, 4), AddEdgeOp(1, 2)};
  Status status = dyn.Apply(batch);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("op #1"), std::string::npos);
  EXPECT_EQ(dyn.version(), 0u);
  EXPECT_EQ(dyn.fingerprint(), fp_before);
  EXPECT_FALSE(dyn.snapshot()->HasEdge(0, 4));

  // Other rejection paths.
  EXPECT_TRUE(dyn.Apply({AddEdgeOp(0, 0)}).IsInvalidArgument());
  EXPECT_TRUE(dyn.Apply({AddEdgeOp(0, 99)}).IsInvalidArgument());
  EXPECT_TRUE(dyn.Apply({RemoveEdgeOp(0, 4)}).IsInvalidArgument());
  EXPECT_TRUE(
      dyn.Apply({SetAttributeOp(99, Attribute::kA)}).IsInvalidArgument());
  EXPECT_EQ(dyn.version(), 0u);
}

TEST(DynamicGraphTest, SequentialSemanticsAndNetSummary) {
  DynamicGraph dyn(FixtureGraph());
  uint64_t fp_before = dyn.fingerprint();

  // Add then remove the same edge: legal sequentially, net no-op.
  UpdateSummary summary;
  std::vector<UpdateOp> batch = {AddEdgeOp(0, 7), RemoveEdgeOp(0, 7)};
  ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
  EXPECT_EQ(summary.edges_added, 0u);
  EXPECT_EQ(summary.edges_removed, 0u);
  EXPECT_TRUE(summary.added_edges.empty());
  EXPECT_EQ(dyn.version(), 1u);              // epoch still advances
  EXPECT_EQ(dyn.fingerprint(), fp_before);   // content identical

  // Remove then re-add an existing edge: also net no-op.
  ASSERT_TRUE(dyn.Apply({RemoveEdgeOp(0, 1), AddEdgeOp(0, 1)}, &summary)
                  .ok());
  EXPECT_EQ(summary.edges_added, 0u);
  EXPECT_EQ(summary.edges_removed, 0u);
  EXPECT_EQ(dyn.fingerprint(), fp_before);

  // Setting an attribute to its current value is not a change.
  ASSERT_TRUE(dyn.Apply({SetAttributeOp(0, Attribute::kA)}, &summary).ok());
  EXPECT_EQ(summary.attributes_changed, 0u);
  EXPECT_TRUE(summary.touched.empty());
}

TEST(DynamicGraphTest, SnapshotEquivalenceRandomized) {
  // Random update stream; after every epoch the materialized snapshot must
  // equal a from-scratch rebuild of the reference adjacency (fingerprint
  // equality == content equality here), and searches on both must agree.
  for (uint64_t seed : {1u, 7u, 42u}) {
    AttributedGraph base = RandomAttributedGraph(40, 0.12, seed);
    DynamicGraph dyn(base);

    std::set<Edge> reference(base.edges().begin(), base.edges().end());
    std::vector<Attribute> attrs;
    for (VertexId v = 0; v < base.num_vertices(); ++v) {
      attrs.push_back(base.attribute(v));
    }

    Rng rng(seed * 977 + 3);
    for (int epoch = 0; epoch < 5; ++epoch) {
      const VertexId n = static_cast<VertexId>(attrs.size());
      std::vector<UpdateOp> batch;
      for (int i = 0; i < 6; ++i) {
        VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (u == v) continue;
        Edge e = u < v ? Edge{u, v} : Edge{v, u};
        if (reference.count(e) > 0) {
          batch.push_back(RemoveEdgeOp(e.u, e.v));
          reference.erase(e);
        } else {
          batch.push_back(AddEdgeOp(e.u, e.v));
          reference.insert(e);
        }
      }
      VertexId flip = static_cast<VertexId>(rng.NextBounded(n));
      attrs[flip] = Other(attrs[flip]);
      batch.push_back(SetAttributeOp(flip, attrs[flip]));

      ASSERT_TRUE(dyn.Apply(batch).ok());
      std::shared_ptr<const AttributedGraph> snap = dyn.snapshot();
      ASSERT_TRUE(snap->Validate().ok());

      std::vector<Edge> edges(reference.begin(), reference.end());
      AttributedGraph rebuilt =
          BuildGraph(static_cast<VertexId>(attrs.size()), edges, attrs);
      ASSERT_EQ(GraphFingerprint(*snap), GraphFingerprint(rebuilt))
          << "seed " << seed << " epoch " << epoch;

      SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
      EXPECT_EQ(FindMaximumFairClique(*snap, options).clique.size(),
                FindMaximumFairClique(rebuilt, options).clique.size());
    }
  }
}

// ------------------------------------------------------ IncrementalRequery

TEST(IncrementalRequeryTest, MatchesFromScratchOnRandomInsertions) {
  for (uint64_t seed : {3u, 11u, 29u, 57u}) {
    AttributedGraph base = RandomAttributedGraph(50, 0.15, seed);
    SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
    SearchResult before = FindMaximumFairClique(base, options);

    DynamicGraph dyn(base);
    Rng rng(seed + 1000);
    std::vector<UpdateOp> batch;
    for (const Edge& e : SampleNonEdges(base, 8, rng)) {
      batch.push_back(AddEdgeOp(e.u, e.v));
    }
    UpdateSummary summary;
    ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
    ASSERT_TRUE(summary.insert_only());

    std::shared_ptr<const AttributedGraph> snap = dyn.snapshot();
    SearchResult incremental = IncrementalRequery(
        *snap, summary.added_edges, before.clique, options);
    SearchResult from_scratch = FindMaximumFairClique(*snap, options);

    EXPECT_EQ(incremental.clique.size(), from_scratch.clique.size())
        << "seed " << seed;
    if (!incremental.clique.vertices.empty()) {
      EXPECT_TRUE(VerifyFairClique(*snap, incremental.clique.vertices,
                                   options.params)
                      .ok());
    }
  }
}

TEST(IncrementalRequeryTest, EmptyBaseFindsFirstFairClique) {
  // No fair clique exists (a-a edge only), then an insertion creates one;
  // the empty cached answer plus the added edges is still an exact basis.
  AttributedGraph base = MakeGraph("aab", {{0, 1}});
  SearchOptions options = BaselineOptions(1, 0);
  SearchResult before = FindMaximumFairClique(base, options);
  ASSERT_TRUE(before.clique.empty());

  DynamicGraph dyn(base);
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(0, 2)}, &summary).ok());
  SearchResult incremental = IncrementalRequery(
      *dyn.snapshot(), summary.added_edges, before.clique, options);
  EXPECT_EQ(incremental.clique.size(), 2u);
}

// ---------------------------------------------------------------- WarmStart

TEST(WarmStartTest, PrimesIncumbentWithoutChangingAnswerSize) {
  AttributedGraph g = RandomAttributedGraph(60, 0.15, 5);
  SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  SearchResult cold = FindMaximumFairClique(g, options);

  SearchOptions warm = options;
  warm.warm_start = cold.clique.vertices;
  SearchResult warmed = FindMaximumFairClique(g, warm);
  EXPECT_EQ(warmed.clique.size(), cold.clique.size());
  EXPECT_TRUE(VerifyFairClique(g, warmed.clique.vertices, options.params).ok());

  // An invalid warm start (not a clique / bad ids) is ignored, not trusted.
  SearchOptions bogus = options;
  bogus.warm_start = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  SearchResult still_right = FindMaximumFairClique(g, bogus);
  EXPECT_EQ(still_right.clique.size(), cold.clique.size());
}

// ------------------------------------------------------- Registry::Replace

TEST(ReplaceTest, AtomicallyAdvancesVersions) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", FixtureGraph()).ok());
  std::shared_ptr<const RegisteredGraph> old_entry = registry.Get("g");
  EXPECT_EQ(old_entry->version, 0u);

  DynamicGraph dyn(FixtureGraph());
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(0, 4)}, &summary).ok());
  ASSERT_TRUE(
      registry.Replace("g", dyn.snapshot(), summary.version, &summary).ok());

  std::shared_ptr<const RegisteredGraph> new_entry = registry.Get("g");
  EXPECT_EQ(new_entry->version, 1u);
  EXPECT_EQ(new_entry->fingerprint, summary.fingerprint);
  EXPECT_TRUE(new_entry->graph->HasEdge(0, 4));
  // The old snapshot is untouched for in-flight queries.
  EXPECT_FALSE(old_entry->graph->HasEdge(0, 4));
  EXPECT_EQ(registry.size(), 1u);

  // Version must strictly advance; unknown names are NotFound.
  EXPECT_TRUE(registry.Replace("g", dyn.snapshot(), 1).IsInvalidArgument());
  EXPECT_TRUE(registry.Replace("absent", dyn.snapshot(), 2).IsNotFound());
}

// --------------------------------------------------------- cache migration

struct ServiceHarness {
  GraphRegistry registry;
  ResultCache cache{64};
  QueryExecutor executor{ExecutorOptions{1, 16}, &cache};

  ServiceHarness() { registry.AttachCache(&cache); }

  QueryResponse Query(const std::string& name, const SearchOptions& options) {
    QueryRequest request;
    request.graph = registry.Get(name);
    request.options = options;
    return executor.Run(request);
  }
};

TEST(CacheMigrationTest, InsertOnlyBatchServesIncrementalExactRequery) {
  ServiceHarness h;
  ASSERT_TRUE(h.registry.Add("g", FixtureGraph()).ok());
  SearchOptions options = FixtureOptions();

  QueryResponse first = h.Query("g", options);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.result->clique.size(), 4u);

  DynamicGraph dyn(FixtureGraph());
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(2, 4), AddEdgeOp(3, 4)}, &summary).ok());
  ReplaceReport report;
  ASSERT_TRUE(h.registry
                  .Replace("g", dyn.snapshot(), summary.version, &summary,
                           &report)
                  .ok());
  EXPECT_EQ(report.cache.hints, 1u);
  EXPECT_EQ(report.cache.invalidated, 0u);

  QueryResponse requery = h.Query("g", options);
  ASSERT_TRUE(requery.status.ok());
  EXPECT_TRUE(requery.incremental);
  EXPECT_FALSE(requery.cache_hit);
  EXPECT_EQ(requery.result->clique.size(),
            FindMaximumFairClique(*dyn.snapshot(), options).clique.size());

  // The incremental answer was cached as exact for the new fingerprint.
  QueryResponse repeat = h.Query("g", options);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(h.executor.metrics().incremental_requeries, 1u);
}

TEST(CacheMigrationTest, RemovalTouchingCachedCliqueInvalidates) {
  ServiceHarness h;
  ASSERT_TRUE(h.registry.Add("g", FixtureGraph()).ok());
  SearchOptions options = FixtureOptions();
  ASSERT_TRUE(h.Query("g", options).status.ok());

  DynamicGraph dyn(FixtureGraph());
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({RemoveEdgeOp(0, 1)}, &summary).ok());
  ReplaceReport report;
  ASSERT_TRUE(h.registry
                  .Replace("g", dyn.snapshot(), summary.version, &summary,
                           &report)
                  .ok());
  EXPECT_EQ(report.cache.invalidated, 1u);
  EXPECT_EQ(report.cache.hints, 0u);
  EXPECT_EQ(report.cache.republished, 0u);

  QueryResponse requery = h.Query("g", options);
  ASSERT_TRUE(requery.status.ok());
  EXPECT_FALSE(requery.cache_hit);
  EXPECT_FALSE(requery.incremental);
  EXPECT_FALSE(requery.warm_start);
  EXPECT_EQ(requery.result->clique.size(),
            FindMaximumFairClique(*dyn.snapshot(), options).clique.size());
}

TEST(CacheMigrationTest, RemovalElsewhereRepublishesExactEntry) {
  ServiceHarness h;
  ASSERT_TRUE(h.registry.Add("g", FixtureGraph()).ok());
  SearchOptions options = FixtureOptions();
  ASSERT_TRUE(h.Query("g", options).status.ok());

  DynamicGraph dyn(FixtureGraph());
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({RemoveEdgeOp(5, 6)}, &summary).ok());
  ReplaceReport report;
  ASSERT_TRUE(h.registry
                  .Replace("g", dyn.snapshot(), summary.version, &summary,
                           &report)
                  .ok());
  EXPECT_EQ(report.cache.republished, 1u);

  // Straight cache hit under the new fingerprint, no search at all.
  QueryResponse requery = h.Query("g", options);
  EXPECT_TRUE(requery.cache_hit);
  EXPECT_EQ(requery.result->clique.size(), 4u);
}

TEST(CacheMigrationTest, AttributeFlipElsewhereDowngradesToWarmStart) {
  ServiceHarness h;
  ASSERT_TRUE(h.registry.Add("g", FixtureGraph()).ok());
  SearchOptions options = FixtureOptions();
  ASSERT_TRUE(h.Query("g", options).status.ok());

  DynamicGraph dyn(FixtureGraph());
  UpdateSummary summary;
  ASSERT_TRUE(
      dyn.Apply({SetAttributeOp(4, Attribute::kB)}, &summary).ok());
  ReplaceReport report;
  ASSERT_TRUE(h.registry
                  .Replace("g", dyn.snapshot(), summary.version, &summary,
                           &report)
                  .ok());
  EXPECT_EQ(report.cache.hints, 1u);

  QueryResponse requery = h.Query("g", options);
  ASSERT_TRUE(requery.status.ok());
  EXPECT_TRUE(requery.warm_start);
  EXPECT_FALSE(requery.incremental);
  EXPECT_EQ(requery.result->clique.size(),
            FindMaximumFairClique(*dyn.snapshot(), options).clique.size());
}

TEST(CacheMigrationTest, ChainedInsertBatchesAccumulateEdges) {
  ServiceHarness h;
  ASSERT_TRUE(h.registry.Add("g", FixtureGraph()).ok());
  SearchOptions options = FixtureOptions();
  ASSERT_TRUE(h.Query("g", options).status.ok());

  // Two insert-only epochs before the next query. Epoch 1 attaches vertex 4
  // to the whole K4, creating the new maximum {0,1,2,3,4} (counts (3,2),
  // fair for delta=1). Epoch 2 adds an unrelated edge whose neighborhood
  // cannot contain that clique — so the single incremental re-query is only
  // exact if the hint accumulated epoch 1's edges across the migration.
  DynamicGraph dyn(FixtureGraph());
  UpdateSummary s1, s2;
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(0, 4), AddEdgeOp(1, 4), AddEdgeOp(2, 4),
                         AddEdgeOp(3, 4)},
                        &s1)
                  .ok());
  ASSERT_TRUE(h.registry.Replace("g", dyn.snapshot(), s1.version, &s1).ok());
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(5, 7)}, &s2).ok());
  ASSERT_TRUE(h.registry.Replace("g", dyn.snapshot(), s2.version, &s2).ok());

  QueryResponse requery = h.Query("g", options);
  ASSERT_TRUE(requery.status.ok());
  EXPECT_TRUE(requery.incremental);
  SearchResult truth = FindMaximumFairClique(*dyn.snapshot(), options);
  EXPECT_EQ(truth.clique.size(), 5u);
  EXPECT_EQ(requery.result->clique.size(), 5u);
}

TEST(CacheMigrationTest, SkippedEpochSummaryFallsBackToInvalidation) {
  // Two Apply batches collapsed into one Replace: the summary describes
  // only the second batch's delta, so migrating with it could republish a
  // stale answer as exact. Replace must detect the base-fingerprint
  // mismatch and invalidate instead.
  ServiceHarness h;
  ASSERT_TRUE(h.registry.Add("g", FixtureGraph()).ok());
  SearchOptions options = FixtureOptions();
  ASSERT_TRUE(h.Query("g", options).status.ok());

  DynamicGraph dyn(FixtureGraph());
  UpdateSummary s1, s2;
  // Batch 1 creates the new maximum {0,1,2,3,4}; batch 2 is irrelevant.
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(0, 4), AddEdgeOp(1, 4), AddEdgeOp(2, 4),
                         AddEdgeOp(3, 4)},
                        &s1)
                  .ok());
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(5, 7)}, &s2).ok());
  ReplaceReport report;
  ASSERT_TRUE(
      h.registry.Replace("g", dyn.snapshot(), s2.version, &s2, &report).ok());
  EXPECT_EQ(report.cache.invalidated, 1u);
  EXPECT_EQ(report.cache.republished, 0u);
  EXPECT_EQ(report.cache.hints, 0u);

  // The re-query is cold but correct (size 5, not the stale 4).
  QueryResponse requery = h.Query("g", options);
  ASSERT_TRUE(requery.status.ok());
  EXPECT_FALSE(requery.cache_hit);
  EXPECT_FALSE(requery.incremental);
  EXPECT_FALSE(requery.warm_start);
  EXPECT_EQ(requery.result->clique.size(), 5u);
}

// ------------------------------------------------------------------ stress

TEST(DynamicStressTest, ConcurrentUpdatesAndQueriesStayExact) {
  AttributedGraph base = RandomAttributedGraph(120, 0.08, 17);
  GraphRegistry registry;
  ResultCache cache(64);
  registry.AttachCache(&cache);
  QueryExecutor executor(ExecutorOptions{3, 64}, &cache);
  ASSERT_TRUE(registry.Add("g", base).ok());

  SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  auto dyn = std::make_shared<DynamicGraph>(base);
  std::atomic<bool> failed{false};
  std::atomic<int> epochs_done{0};

  std::thread updater([&] {
    Rng rng(99);
    for (int epoch = 0; epoch < 10; ++epoch) {
      std::vector<UpdateOp> batch;
      for (const Edge& e : SampleNonEdges(*dyn->snapshot(), 3, rng)) {
        batch.push_back(AddEdgeOp(e.u, e.v));
      }
      UpdateSummary summary;
      if (!dyn->Apply(batch, &summary).ok() ||
          !registry.Replace("g", dyn->snapshot(), summary.version, &summary)
               .ok()) {
        failed = true;
        return;
      }
      epochs_done.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        std::shared_ptr<const RegisteredGraph> entry = registry.Get("g");
        QueryRequest request;
        request.graph = entry;
        request.options = options;
        QueryResponse response = executor.Run(request);
        if (!response.status.ok() || response.result == nullptr) {
          failed = true;
          return;
        }
        // The answer must be exact for the snapshot this query ran on.
        SearchResult truth = FindMaximumFairClique(*entry->graph, options);
        if (response.result->clique.size() != truth.clique.size() ||
            (!response.result->clique.vertices.empty() &&
             !VerifyFairClique(*entry->graph,
                               response.result->clique.vertices,
                               options.params)
                  .ok())) {
          failed = true;
          return;
        }
        (void)t;
      }
    });
  }

  updater.join();
  for (std::thread& q : queriers) q.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(epochs_done.load(), 10);
}

}  // namespace
}  // namespace fairclique
