#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/io.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

// Writes `content` into a fresh temp file and returns its path.
class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fairclique_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& content) {
    std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << content;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, LoadsSimpleEdgeList) {
  std::string path = WriteFile("g.txt", "0 1\n1 2\n2 0\n");
  AttributedGraph g;
  EdgeListOptions opts;
  opts.remap_ids = false;
  ASSERT_TRUE(LoadEdgeList(path, opts, &g).ok());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  std::string path = WriteFile(
      "g.txt", "# SNAP style header\n% network-repository style\n\n0 1\n\n1 2\n");
  AttributedGraph g;
  EdgeListOptions opts;
  opts.remap_ids = false;
  ASSERT_TRUE(LoadEdgeList(path, opts, &g).ok());
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, RemapsSparseIds) {
  std::string path = WriteFile("g.txt", "1000000 5\n5 70000\n");
  AttributedGraph g;
  EdgeListOptions opts;  // remap on by default
  ASSERT_TRUE(LoadEdgeList(path, opts, &g).ok());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, DuplicateAndSelfLoopEdgesNormalized) {
  std::string path = WriteFile("g.txt", "0 1\n1 0\n2 2\n0 1\n");
  AttributedGraph g;
  EdgeListOptions opts;
  opts.remap_ids = false;
  ASSERT_TRUE(LoadEdgeList(path, opts, &g).ok());
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(IoTest, MissingFileIsIOError) {
  AttributedGraph g;
  Status s = LoadEdgeList((dir_ / "nope.txt").string(), {}, &g);
  EXPECT_TRUE(s.IsIOError());
}

TEST_F(IoTest, MalformedLineIsInvalidArgument) {
  std::string path = WriteFile("g.txt", "0 1\n2\n");
  AttributedGraph g;
  Status s = LoadEdgeList(path, {}, &g);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find(":2"), std::string::npos) << s.ToString();
}

TEST_F(IoTest, NonNumericTokenIsInvalidArgument) {
  std::string path = WriteFile("g.txt", "0 x\n");
  AttributedGraph g;
  EXPECT_TRUE(LoadEdgeList(path, {}, &g).IsInvalidArgument());
}

TEST_F(IoTest, NegativeIdIsInvalidArgument) {
  std::string path = WriteFile("g.txt", "0 -3\n");
  AttributedGraph g;
  EXPECT_TRUE(LoadEdgeList(path, {}, &g).IsInvalidArgument());
}

TEST_F(IoTest, AttributesParseBothTokenStyles) {
  std::string gpath = WriteFile("g.txt", "0 1\n1 2\n");
  std::string apath = WriteFile("a.txt", "0 a\n1 1\n2 B\n");
  AttributedGraph g;
  EdgeListOptions opts;
  opts.remap_ids = false;
  ASSERT_TRUE(LoadAttributedGraph(gpath, apath, opts, &g).ok());
  EXPECT_EQ(g.attribute(0), Attribute::kA);
  EXPECT_EQ(g.attribute(1), Attribute::kB);
  EXPECT_EQ(g.attribute(2), Attribute::kB);
}

TEST_F(IoTest, AttributeForUnknownVertexIsOutOfRange) {
  std::string apath = WriteFile("a.txt", "7 a\n");
  std::vector<Attribute> attrs;
  EXPECT_TRUE(LoadAttributes(apath, 3, &attrs).IsOutOfRange());
}

TEST_F(IoTest, AttributeBadTokenIsInvalidArgument) {
  std::string apath = WriteFile("a.txt", "0 q\n");
  std::vector<Attribute> attrs;
  EXPECT_TRUE(LoadAttributes(apath, 3, &attrs).IsInvalidArgument());
}

TEST_F(IoTest, MissingAttributesDefaultToA) {
  std::string apath = WriteFile("a.txt", "1 b\n");
  std::vector<Attribute> attrs;
  ASSERT_TRUE(LoadAttributes(apath, 3, &attrs).ok());
  EXPECT_EQ(attrs[0], Attribute::kA);
  EXPECT_EQ(attrs[1], Attribute::kB);
  EXPECT_EQ(attrs[2], Attribute::kA);
}

TEST_F(IoTest, SaveLoadRoundTripPreservesGraph) {
  AttributedGraph g = RandomAttributedGraph(50, 0.1, 42);
  std::string gpath = (dir_ / "round.txt").string();
  std::string apath = (dir_ / "round_attr.txt").string();
  ASSERT_TRUE(SaveEdgeList(g, gpath).ok());
  ASSERT_TRUE(SaveAttributes(g, apath).ok());

  AttributedGraph loaded;
  EdgeListOptions opts;
  opts.remap_ids = false;
  ASSERT_TRUE(LoadAttributedGraph(gpath, apath, opts, &loaded).ok());
  // Vertex count can differ when trailing vertices are isolated; compare
  // edges and attributes over the loaded prefix.
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(testing_util::EdgesOf(loaded), testing_util::EdgesOf(g));
  for (VertexId v = 0; v < loaded.num_vertices(); ++v) {
    EXPECT_EQ(loaded.attribute(v), g.attribute(v));
  }
}

TEST_F(IoTest, SaveToUnwritablePathFails) {
  AttributedGraph g = RandomAttributedGraph(5, 0.5, 1);
  EXPECT_TRUE(SaveEdgeList(g, "/nonexistent_dir_xyz/out.txt").IsIOError());
}

}  // namespace
}  // namespace fairclique
