// Randomized differential stress tests: many small instances, every engine
// and configuration, three independent answers per instance. Designed to
// shake out interaction bugs the targeted suites can miss. Kept to a few
// seconds of runtime via instance-size budgets.

#include <gtest/gtest.h>

#include "core/alternating_search.h"
#include "core/enumeration.h"
#include "core/fair_variants.h"
#include "core/heuristics.h"
#include "core/max_clique.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

TEST(StressTest, EverythingAgreesOnManyRandomInstances) {
  Rng meta(0x57BE55);
  for (int iter = 0; iter < 60; ++iter) {
    uint64_t seed = meta.NextU64();
    VertexId n = static_cast<VertexId>(meta.NextInRange(8, 32));
    double density = 0.15 + meta.NextDouble() * 0.5;
    int k = static_cast<int>(meta.NextInRange(1, 3));
    int delta = static_cast<int>(meta.NextInRange(0, 4));
    AttributedGraph g = RandomAttributedGraph(n, density, seed);
    FairnessParams params{k, delta};

    CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);
    SCOPED_TRACE("iter=" + std::to_string(iter) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) + " d=" + std::to_string(delta));

    // Exact search, a rotating bound configuration.
    ExtraBound extra = static_cast<ExtraBound>(iter % 6);
    SearchOptions opts = FullOptions(k, delta, extra);
    opts.engine =
        iter % 2 == 0 ? SearchEngine::kVector : SearchEngine::kBitset;
    SearchResult exact = FindMaximumFairClique(g, opts);
    EXPECT_EQ(exact.clique.size(), oracle.size());
    if (!exact.clique.empty()) {
      EXPECT_TRUE(VerifyFairClique(g, exact.clique.vertices, params).ok());
    }

    // Heuristics bracket the optimum from below.
    HeuristicResult heur = HeurRFC(g, {params, 1});
    EXPECT_LE(heur.clique.size(), oracle.size());
    AlternatingSearchResult alt = AlternatingMaxFairClique(g, params);
    EXPECT_LE(alt.clique.size(), oracle.size());

    // The plain maximum clique bounds from above.
    MaxCliqueResult mc = FindMaximumClique(g);
    EXPECT_GE(mc.clique.size(), oracle.size());

    // Weak >= relative >= strong.
    SearchResult weak = FindMaximumWeakFairClique(g, k);
    SearchResult strong = FindMaximumStrongFairClique(g, k);
    EXPECT_GE(weak.clique.size(), oracle.size());
    EXPECT_LE(strong.clique.size(), oracle.size());
  }
}

TEST(StressTest, ExtremeParameterCorners) {
  Rng meta(0xC04E5);
  for (int iter = 0; iter < 20; ++iter) {
    AttributedGraph g =
        RandomAttributedGraph(20, 0.4, meta.NextU64());
    // k larger than any possible clique: always empty.
    SearchResult impossible = FindMaximumFairClique(g, BaselineOptions(15, 3));
    EXPECT_TRUE(impossible.clique.empty());
    // delta = 0 answers have even size.
    SearchResult strict = FindMaximumFairClique(g, BaselineOptions(1, 0));
    EXPECT_EQ(strict.clique.size() % 2, 0u);
    // Huge delta equals weak fairness.
    SearchResult loose = FindMaximumFairClique(g, BaselineOptions(1, 1000));
    SearchResult weak = FindMaximumWeakFairClique(g, 1);
    EXPECT_EQ(loose.clique.size(), weak.clique.size());
  }
}

TEST(StressTest, AllOneAttributeGraphsNeverYieldFairCliques) {
  Rng meta(0xA77);
  for (int iter = 0; iter < 10; ++iter) {
    Rng rng(meta.NextU64());
    AttributedGraph g = ErdosRenyi(25, 0.5, rng);  // All kA by default.
    SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 5));
    EXPECT_TRUE(r.clique.empty());
    HeuristicResult heur = HeurRFC(g, {{1, 5}, 2});
    EXPECT_TRUE(heur.clique.empty());
  }
}

TEST(StressTest, DisconnectedForestsAndSparseDust) {
  // Graphs far below the clique regime: answers only at k=1, delta>=0 with
  // adjacent mixed-attribute pairs.
  Rng meta(0xD57);
  for (int iter = 0; iter < 15; ++iter) {
    AttributedGraph g = RandomAttributedGraph(60, 0.02, meta.NextU64());
    FairnessParams params{1, 0};
    CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);
    SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
    EXPECT_EQ(r.clique.size(), oracle.size());
  }
}

}  // namespace
}  // namespace fairclique
