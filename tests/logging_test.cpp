#include <gtest/gtest.h>

#include "common/logging.h"

namespace fairclique {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, SuppressedLevelsDoNotCrash) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  FC_LOG(kDebug) << "below threshold " << 42;
  FC_LOG(kInfo) << "also below " << 3.14;
  FC_LOG(kWarning) << "still below";
  SetLogLevel(before);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  FC_CHECK(1 + 1 == 2) << "arithmetic broke";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ FC_CHECK(false) << "expected failure"; }, "Check failed");
}

}  // namespace
}  // namespace fairclique
