#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/enumeration.h"
#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;
using testing_util::Sorted;

// Exhaustive maximal-clique listing by subset enumeration (n <= ~16).
std::set<std::vector<VertexId>> BruteMaximalCliques(const AttributedGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> cliques;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) verts.push_back(v);
    }
    if (!IsClique(g, verts)) continue;
    // Maximal: no vertex outside adjacent to all.
    bool maximal = true;
    for (VertexId w = 0; w < n && maximal; ++w) {
      if (mask & (1u << w)) continue;
      bool adjacent_to_all = true;
      for (VertexId v : verts) {
        if (!g.HasEdge(v, w)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) maximal = false;
    }
    if (maximal) cliques.push_back(verts);
  }
  return {cliques.begin(), cliques.end()};
}

TEST(EnumerationTest, TriangleHasOneMaximalClique) {
  AttributedGraph g = MakeGraph("aab", {{0, 1}, {1, 2}, {0, 2}});
  std::set<std::vector<VertexId>> found;
  uint64_t count = EnumerateMaximalCliques(
      g, [&](const std::vector<VertexId>& m) { found.insert(Sorted(m)); });
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(found.count({0, 1, 2}));
}

TEST(EnumerationTest, IsolatedVerticesAreMaximalCliques) {
  AttributedGraph g = MakeGraph("aab", {});
  uint64_t count =
      EnumerateMaximalCliques(g, [](const std::vector<VertexId>&) {});
  EXPECT_EQ(count, 3u);
}

TEST(EnumerationTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    AttributedGraph g = RandomAttributedGraph(14, 0.4, seed);
    std::set<std::vector<VertexId>> expected = BruteMaximalCliques(g);
    std::set<std::vector<VertexId>> found;
    uint64_t count = EnumerateMaximalCliques(
        g, [&](const std::vector<VertexId>& m) { found.insert(Sorted(m)); });
    EXPECT_EQ(count, expected.size()) << "seed " << seed;
    EXPECT_EQ(found, expected) << "seed " << seed;
  }
}

TEST(EnumerationTest, EveryReportedCliqueIsMaximal) {
  AttributedGraph g = RandomAttributedGraph(25, 0.3, 7);
  EnumerateMaximalCliques(g, [&](const std::vector<VertexId>& m) {
    EXPECT_TRUE(IsClique(g, m));
    for (VertexId w = 0; w < g.num_vertices(); ++w) {
      if (std::find(m.begin(), m.end(), w) != m.end()) continue;
      bool adjacent_to_all = true;
      for (VertexId v : m) {
        if (!g.HasEdge(v, w)) {
          adjacent_to_all = false;
          break;
        }
      }
      EXPECT_FALSE(adjacent_to_all) << "clique extendable by " << w;
    }
  });
}

TEST(EnumerationTest, MaxCliquesLimitAborts) {
  AttributedGraph g = RandomAttributedGraph(30, 0.4, 8);
  uint64_t count = EnumerateMaximalCliques(
      g, [](const std::vector<VertexId>&) {}, /*max_cliques=*/3);
  EXPECT_EQ(count, 3u);
}

TEST(MaxFairCliqueByEnumerationTest, WitnessIsAlwaysValid) {
  for (uint64_t seed : {10u, 11u, 12u, 13u}) {
    AttributedGraph g = RandomAttributedGraph(20, 0.45, seed);
    for (int k = 1; k <= 3; ++k) {
      for (int delta = 0; delta <= 2; ++delta) {
        FairnessParams params{k, delta};
        CliqueResult r = MaxFairCliqueByEnumeration(g, params);
        if (!r.empty()) {
          EXPECT_TRUE(VerifyFairClique(g, r.vertices, params).ok())
              << "seed=" << seed << " k=" << k << " delta=" << delta;
        }
        // Against the primitive subset brute force.
        std::vector<VertexId> brute =
            testing_util::BruteForceMaxFairClique(g, k, delta);
        EXPECT_EQ(r.size(), brute.size())
            << "seed=" << seed << " k=" << k << " delta=" << delta;
      }
    }
  }
}

TEST(MaxFairCliqueByEnumerationTest, InfeasibleReturnsEmpty) {
  AttributedGraph g = MakeGraph("aaaa", {{0, 1}, {1, 2}, {2, 3}});
  CliqueResult r = MaxFairCliqueByEnumeration(g, {1, 0});
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace fairclique
