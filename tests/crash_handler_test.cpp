#include "obs/crash_handler.h"

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/event_journal.h"
#include "obs/progress.h"
#include "test_util.h"

namespace fairclique {
namespace obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// nothing after the closing root brace. The CI smoke runs a real JSON
/// parser over a postmortem; this keeps the unit test dependency-free.
bool LooksLikeBalancedJson(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') depth++;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !s.empty() && s.front() == '{' &&
         s.back() == '}';
}

/// Forks; the child installs the handler into `dir`, runs `scenario`, and
/// raises `sig`. The parent asserts the child died by that signal and
/// returns the postmortem's contents.
std::string CrashInChild(const std::string& dir, int sig,
                         void (*scenario)()) {
  pid_t pid = fork();
  if (pid == 0) {
    CrashHandlerOptions options;
    options.dir = dir;
    if (!InstallCrashHandler(options)) _exit(42);
    if (scenario != nullptr) scenario();
    std::raise(sig);
    _exit(43);  // unreachable: the re-raised signal kills the child
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status))
      << "child exited instead of dying by signal; status=" << status;
  if (WIFSIGNALED(status)) EXPECT_EQ(WTERMSIG(status), sig);
  std::string path = dir + "/crash-" + std::to_string(pid) + ".json";
  std::string body = ReadFile(path);
  EXPECT_FALSE(body.empty()) << "no postmortem at " << path;
  std::remove(path.c_str());
  return body;
}

void SegvScenario() {
  EventJournal::Default().Record(EventType::kQueryAdmit, 3, 0, 0, "dying");
  ProgressRegistry::Default().Register(77, "doomed-graph", "k=2;d=1", 4);
  NoteGraphEpoch("doomed-graph", 9, 0xDEADBEEF);
  NoteGraphWalRecords("doomed-graph", 5);
}

TEST(CrashHandlerTest, PostmortemNamesSignalBacktraceJournalAndQuery) {
  std::string dir = testing::TempDir();
  std::string body = CrashInChild(dir, SIGSEGV, &SegvScenario);

  EXPECT_TRUE(LooksLikeBalancedJson(body)) << body;
  EXPECT_NE(body.find("\"signal\":\"SIGSEGV\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"signo\":11"), std::string::npos);
  // Backtrace captured (glibc pre-warmed at install, so frames resolve
  // even from the handler).
  EXPECT_NE(body.find("\"backtrace\":[\"0x"), std::string::npos) << body;
  // The journal breadcrumb recorded just before the crash, plus the
  // handler's own crash_signal event.
  EXPECT_NE(body.find("\"query_admit\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"crash_signal\""), std::string::npos) << body;
  // The in-flight query, by id and graph.
  EXPECT_NE(body.find("\"trace_id\":77"), std::string::npos) << body;
  EXPECT_NE(body.find("\"doomed-graph\""), std::string::npos) << body;
  // The graph epoch table.
  EXPECT_NE(body.find("\"version\":9"), std::string::npos) << body;
  EXPECT_NE(body.find("\"wal_records\":5"), std::string::npos) << body;
}

TEST(CrashHandlerTest, AbortGetsAPostmortemToo) {
  std::string dir = testing::TempDir();
  std::string body = CrashInChild(dir, SIGABRT, nullptr);
  EXPECT_TRUE(LooksLikeBalancedJson(body)) << body;
  EXPECT_NE(body.find("\"signal\":\"SIGABRT\""), std::string::npos);
}

TEST(CrashHandlerTest, InstallFailsClosedOnMissingDirectory) {
  CrashHandlerOptions options;
  options.dir = "/nonexistent/definitely/not/here";
  EXPECT_FALSE(InstallCrashHandler(options));
}

TEST(CrashHandlerTest, ReinstallRepointsTheOutputDirectory) {
  // Install twice (the parent process keeps the handlers hooked once);
  // CrashFilePath must follow the latest directory.
  std::string dir = testing::TempDir();
  CrashHandlerOptions options;
  options.dir = dir;
  ASSERT_TRUE(InstallCrashHandler(options));
  EXPECT_TRUE(CrashHandlerInstalled());
  std::string first = CrashFilePath();
  ASSERT_TRUE(InstallCrashHandler(options));
  EXPECT_EQ(CrashFilePath(), first);
  EXPECT_NE(first.find(dir), std::string::npos);
  EXPECT_NE(first.find("crash-"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace fairclique
