#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "core/max_fair_clique.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "test_util.h"

namespace fairclique {
namespace obs {
namespace {

using testing_util::RandomAttributedGraph;

TEST(WatchdogTest, StartStopIdempotent) {
  Watchdog dog(WatchdogOptions{});
  EXPECT_FALSE(dog.running());
  dog.Start();
  dog.Start();  // second Start is a no-op
  EXPECT_TRUE(dog.running());
  dog.Stop();
  dog.Stop();
  EXPECT_FALSE(dog.running());
}

TEST(WatchdogTest, FlagsDeliberatelyStalledSearchWithinOneSweep) {
  // The acceptance scenario: a branch kernel wedged mid-search (frozen via
  // the SearchOptions::branch_tick hook) must be flagged by the first sweep
  // that runs after the stall bound elapses — and only once.
  ProgressRegistry registry;
  WatchdogOptions options;
  options.interval_micros = 10000;      // 10 ms
  options.stall_after_micros = 30000;   // 30 ms
  Watchdog dog(options, &registry);

  std::atomic<bool> release{false};
  std::atomic<bool> frozen{false};
  const std::function<void()> tick = [&] {
    frozen.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  auto progress = registry.Register(31, "wedged", "k=1;d=50", 1);
  std::thread search([&] {
    AttributedGraph g = RandomAttributedGraph(60, 0.8, 0xFEED);
    SearchOptions so = BaselineOptions(1, 50);
    so.branch_tick = &tick;
    so.progress = progress.get();
    FindMaximumFairClique(g, so);  // blocks in the kernel until released
  });

  // Wait until the kernel is provably inside the frozen tick, then let the
  // stall bound elapse. The query has published zero nodes, so the first
  // sweep measures its stall from Branch entry and flags it immediately.
  while (!frozen.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  dog.SweepOnce();
  WatchdogStats stats = dog.stats();
  EXPECT_EQ(stats.stalled_queries, 1u) << "stuck query not flagged";
  EXPECT_EQ(stats.currently_stuck, 1u);

  // Still stuck on the next sweep, but the detection is one-shot.
  dog.SweepOnce();
  stats = dog.stats();
  EXPECT_EQ(stats.stalled_queries, 1u);
  EXPECT_EQ(stats.currently_stuck, 1u);

  release.store(true, std::memory_order_release);
  search.join();
  registry.Unregister(31);
  dog.SweepOnce();
  EXPECT_EQ(dog.stats().currently_stuck, 0u);
}

TEST(WatchdogTest, DeadlineBlownWithNoAdvanceIsStuck) {
  // The tighter criterion: a query past its own deadline that has not
  // advanced since the previous sweep is stuck even though the generic
  // stall bound has not elapsed — a live kernel would have noticed the
  // deadline at its next progress tick.
  ProgressRegistry registry;
  WatchdogOptions options;
  options.interval_micros = 1000;            // 1 ms
  options.stall_after_micros = 60000000000;  // generic bound: out of reach
  Watchdog dog(options, &registry);

  auto progress = registry.Register(7, "late", "", 1);
  progress->AddNodes(1024);
  progress->SetDeadlineMicros(1);  // already blown

  dog.SweepOnce();  // first sighting: establishes the advance baseline
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.SweepOnce();  // no advance for >= one interval past the deadline
  WatchdogStats stats = dog.stats();
  EXPECT_EQ(stats.stalled_queries, 1u);
  EXPECT_EQ(stats.currently_stuck, 1u);
  registry.Unregister(7);
}

TEST(WatchdogTest, AdvancingQueryIsNeverFlagged) {
  ProgressRegistry registry;
  WatchdogOptions options;
  options.interval_micros = 1000;
  options.stall_after_micros = 2000;
  Watchdog dog(options, &registry);

  auto progress = registry.Register(5, "busy", "", 1);
  progress->AddNodes(1024);
  for (int i = 0; i < 5; ++i) {
    dog.SweepOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    progress->AddNodes(1024);  // advances between sweeps
    dog.SweepOnce();
  }
  EXPECT_EQ(dog.stats().stalled_queries, 0u);
  registry.Unregister(5);
}

TEST(WatchdogTest, QueueStallNeedsConsecutiveFrozenSweeps) {
  ProgressRegistry registry;
  WatchdogOptions options;
  options.queue_stall_sweeps = 3;
  Watchdog dog(options, &registry);

  WatchdogExecutorSample sample;
  sample.queue_depth = 12;
  sample.served = 100;
  dog.SetExecutorSampler([&] { return sample; });

  dog.SweepOnce();  // baseline sample
  dog.SweepOnce();  // frozen x1
  dog.SweepOnce();  // frozen x2
  EXPECT_EQ(dog.stats().queue_stalls, 0u);
  dog.SweepOnce();  // frozen x3 -> episode
  WatchdogStats stats = dog.stats();
  EXPECT_EQ(stats.queue_stalls, 1u);
  EXPECT_TRUE(stats.queue_stalled_now);

  sample.served = 101;  // a serve clears the episode
  dog.SweepOnce();
  stats = dog.stats();
  EXPECT_EQ(stats.queue_stalls, 1u);
  EXPECT_FALSE(stats.queue_stalled_now);
}

TEST(WatchdogTest, RollingDeadlineMissRate) {
  ProgressRegistry registry;
  Watchdog dog(WatchdogOptions{}, &registry);
  WatchdogExecutorSample sample;
  dog.SetExecutorSampler([&] { return sample; });

  dog.SweepOnce();  // served=0, misses=0
  sample.served = 10;
  sample.deadline_misses = 4;
  dog.SweepOnce();
  EXPECT_DOUBLE_EQ(dog.stats().deadline_miss_rate, 0.4);
}

TEST(WatchdogTest, FsyncStallDetectedFromHistogramWindow) {
  ProgressRegistry registry;
  WatchdogOptions options;
  options.fsync_stall_micros = 1000;
  Watchdog dog(options, &registry);

  dog.SweepOnce();  // baseline the histogram cursor
  const uint64_t before = dog.stats().fsync_stalls;
  WalFsyncHistogram()->Record(50000);  // one pathological 50 ms fsync
  dog.SweepOnce();
  WatchdogStats stats = dog.stats();
  EXPECT_EQ(stats.fsync_stalls, before + 1);
  EXPECT_GE(stats.last_fsync_mean_micros, options.fsync_stall_micros);
}

}  // namespace
}  // namespace obs
}  // namespace fairclique
