#include <gtest/gtest.h>

#include "core/enumeration.h"
#include "core/heuristics.h"
#include "core/verifier.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(DegHeurTest, EmptyGraphReturnsEmpty) {
  AttributedGraph g = MakeGraph("", {});
  EXPECT_TRUE(DegHeur(g, {{1, 0}, 1}).empty());
}

TEST(DegHeurTest, FindsTheObviousFairClique) {
  // K6 split 3/3 dominates the graph.
  GraphBuilder b(6);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  for (VertexId v = 0; v < 3; ++v) b.SetAttribute(v, Attribute::kA);
  for (VertexId v = 3; v < 6; ++v) b.SetAttribute(v, Attribute::kB);
  AttributedGraph g = b.Build();
  CliqueResult r = DegHeur(g, {{2, 1}, 1});
  EXPECT_EQ(r.size(), 6u);
  EXPECT_TRUE(IsFairClique(g, r.vertices, {2, 1}));
}

TEST(DegHeurTest, OutputIsAlwaysAFairCliqueOrEmpty) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    AttributedGraph g = RandomAttributedGraph(60, 0.25, seed);
    for (int k = 1; k <= 3; ++k) {
      for (int delta = 0; delta <= 2; ++delta) {
        HeuristicOptions opts{{k, delta}, 1};
        CliqueResult r = DegHeur(g, opts);
        if (!r.empty()) {
          EXPECT_TRUE(IsFairClique(g, r.vertices, opts.params))
              << "seed=" << seed << " k=" << k << " d=" << delta;
        }
      }
    }
  }
}

TEST(ColorfulDegHeurTest, OutputIsAlwaysAFairCliqueOrEmpty) {
  for (uint64_t seed = 20; seed <= 30; ++seed) {
    AttributedGraph g = RandomAttributedGraph(60, 0.25, seed);
    HeuristicOptions opts{{2, 1}, 1};
    CliqueResult r = ColorfulDegHeur(g, opts);
    if (!r.empty()) {
      EXPECT_TRUE(IsFairClique(g, r.vertices, opts.params)) << "seed " << seed;
    }
  }
}

TEST(HeurRFCTest, NeverExceedsExactOptimum) {
  for (uint64_t seed = 40; seed <= 50; ++seed) {
    AttributedGraph g = RandomAttributedGraph(40, 0.35, seed);
    FairnessParams params{2, 1};
    CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
    HeuristicResult heur = HeurRFC(g, {params, 1});
    EXPECT_LE(heur.clique.size(), exact.size()) << "seed " << seed;
    if (!heur.clique.empty()) {
      EXPECT_TRUE(IsFairClique(g, heur.clique.vertices, params));
      // The color-count upper bound must dominate the exact optimum.
      EXPECT_GE(heur.color_upper_bound, static_cast<int64_t>(exact.size()));
    }
  }
}

TEST(HeurRFCTest, TakesTheBetterOfBothPasses) {
  for (uint64_t seed = 60; seed <= 66; ++seed) {
    AttributedGraph g = RandomAttributedGraph(80, 0.2, seed);
    HeuristicOptions opts{{2, 2}, 1};
    CliqueResult deg = DegHeur(g, opts);
    HeuristicResult combined = HeurRFC(g, opts);
    EXPECT_GE(combined.clique.size(), deg.size()) << "seed " << seed;
  }
}

TEST(HeurRFCTest, FindsPlantedCliqueApproximately) {
  Rng rng(99);
  AttributedGraph base = ChungLuPowerLaw(400, 5.0, 2.5, rng);
  base = AssignAttributesBernoulli(base, 0.5, rng);
  std::vector<VertexId> members;
  AttributedGraph g = PlantClique(base, 14, /*balanced=*/true, rng, &members);
  HeuristicResult heur = HeurRFC(g, {{5, 2}, 1});
  // The planted clique dominates degree-wise; the heuristic should land on
  // (most of) it. The paper's Fig. 8 reports gaps <= 6.
  EXPECT_GE(heur.clique.size(), 8u);
}

TEST(HeuristicOptionsTest, MultiStartOnlyImproves) {
  for (uint64_t seed = 70; seed <= 76; ++seed) {
    AttributedGraph g = RandomAttributedGraph(70, 0.25, seed);
    FairnessParams params{2, 1};
    CliqueResult one = DegHeur(g, {params, 1});
    CliqueResult many = DegHeur(g, {params, 8});
    EXPECT_GE(many.size(), one.size()) << "seed " << seed;
    if (!many.empty()) {
      EXPECT_TRUE(IsFairClique(g, many.vertices, params));
    }
  }
}

TEST(HeurRFCTest, SingleAttributeGraphYieldsEmpty) {
  GraphBuilder b(8);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) b.AddEdge(u, v);
  }
  AttributedGraph g = b.Build();  // all 'a'
  HeuristicResult heur = HeurRFC(g, {{1, 1}, 1});
  EXPECT_TRUE(heur.clique.empty());
}

}  // namespace
}  // namespace fairclique
