#include <gtest/gtest.h>

#include "core/alternating_search.h"
#include "core/enumeration.h"
#include "core/verifier.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(AlternatingSearchTest, OutputIsAlwaysAFairClique) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    AttributedGraph g = RandomAttributedGraph(30, 0.35, seed);
    for (int k = 1; k <= 3; ++k) {
      for (int delta = 0; delta <= 2; ++delta) {
        FairnessParams params{k, delta};
        AlternatingSearchResult r = AlternatingMaxFairClique(g, params);
        if (!r.clique.empty()) {
          EXPECT_TRUE(IsFairClique(g, r.clique.vertices, params))
              << "seed=" << seed << " k=" << k << " delta=" << delta;
        }
      }
    }
  }
}

TEST(AlternatingSearchTest, NeverExceedsExactOptimum) {
  for (uint64_t seed = 11; seed <= 22; ++seed) {
    AttributedGraph g = RandomAttributedGraph(25, 0.4, seed);
    FairnessParams params{2, 1};
    CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
    AlternatingSearchResult r = AlternatingMaxFairClique(g, params);
    EXPECT_LE(r.clique.size(), exact.size()) << "seed " << seed;
  }
}

// The executable counterexample behind DESIGN.md §2.2: on K4 with
// attribute-sorted ordering O(a1) < O(a2) < O(b1) < O(b2), Algorithm 3 as
// printed cannot produce the (2, 2) clique. After picking a1, the attribute
// flips to b; picking b1 filters out a2 (lower order); when the a-side
// candidate set empties the amax cap locks cnt(a) at 1 — the full K4 is
// unreachable from every branch.
TEST(AlternatingSearchTest, PrintedAlgorithmMissesK4Counterexample) {
  AttributedGraph g = MakeGraph(
      "aabb", {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  FairnessParams params{2, 0};
  // Attribute-sorted order: a-vertices first.
  std::vector<uint32_t> position{0, 1, 2, 3};

  CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
  ASSERT_EQ(exact.size(), 4u);  // The whole K4 is a (2,0)-fair clique.

  AlternatingSearchResult printed =
      AlternatingMaxFairClique(g, params, position);
  EXPECT_LT(printed.clique.size(), exact.size())
      << "the printed Algorithm 3 unexpectedly found the optimum; the "
         "incompleteness analysis in DESIGN.md would need revisiting";
}

TEST(AlternatingSearchTest, OftenFindsTheOptimumInPractice) {
  // As a heuristic it should land on the optimum reasonably often.
  int optimal = 0, total = 0;
  for (uint64_t seed = 31; seed <= 50; ++seed) {
    AttributedGraph g = RandomAttributedGraph(20, 0.45, seed);
    FairnessParams params{1, 2};
    CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
    if (exact.empty()) continue;
    AlternatingSearchResult r = AlternatingMaxFairClique(g, params);
    ++total;
    if (r.clique.size() == exact.size()) ++optimal;
  }
  ASSERT_GT(total, 5);
  EXPECT_GE(optimal * 2, total)  // At least half the instances.
      << optimal << "/" << total;
}

TEST(AlternatingSearchTest, NodeLimitMarksIncomplete) {
  AttributedGraph g = RandomAttributedGraph(40, 0.5, 51);
  AlternatingSearchResult r = AlternatingMaxFairClique(g, {1, 3}, 2);
  EXPECT_FALSE(r.completed);
}

TEST(AlternatingSearchTest, EmptyGraph) {
  AttributedGraph g = MakeGraph("", {});
  AlternatingSearchResult r = AlternatingMaxFairClique(g, {1, 1});
  EXPECT_TRUE(r.clique.empty());
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace fairclique
