#include "obs/progress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/options_key.h"
#include "core/prepared_graph.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "test_util.h"

namespace fairclique {
namespace {

using obs::ProgressRegistry;
using obs::ProgressSnapshot;
using obs::QueryProgress;
using testing_util::RandomAttributedGraph;

TEST(ProgressTest, SnapshotReflectsPublishedFields) {
  QueryProgress p(42, "dblp", "k=2;d=1", 3);
  p.AddNodes(1024);
  p.AddNodes(1024);
  p.NoteIncumbent(5);
  p.NoteIncumbent(3);  // monotonic max: a late smaller publish is ignored
  p.SetUpperBound(40);
  p.NoteComponentDone();

  ProgressSnapshot s = p.Snapshot();
  EXPECT_EQ(s.trace_id, 42u);
  EXPECT_EQ(s.graph, "dblp");
  EXPECT_EQ(s.options, "k=2;d=1");
  EXPECT_EQ(s.nodes, 2048u);
  EXPECT_EQ(s.incumbent_size, 5);
  EXPECT_EQ(s.upper_bound, 40);
  EXPECT_EQ(s.components_done, 1u);
  EXPECT_EQ(s.components_total, 3u);
  EXPECT_GE(s.elapsed_micros, 0);
}

TEST(ProgressTest, RegistryListsInTraceOrderAndUnregisters) {
  ProgressRegistry registry;
  auto p2 = registry.Register(2, "b", "", 1);
  auto p1 = registry.Register(1, "a", "", 1);
  ASSERT_EQ(registry.size(), 2u);

  std::vector<ProgressSnapshot> rows = registry.List();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].trace_id, 1u);
  EXPECT_EQ(rows[1].trace_id, 2u);

  registry.Unregister(1);
  registry.Unregister(999);  // unknown id is a no-op
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.List()[0].trace_id, 2u);

  // The handle returned by Register stays usable after Unregister (the
  // worker may publish a final count while the scraper drops the record).
  p1->AddNodes(1024);
  registry.Unregister(2);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ProgressTest, ReRegisteredTraceIdReplacesRecord) {
  ProgressRegistry registry;
  auto old_rec = registry.Register(7, "g", "", 1);
  old_rec->AddNodes(4096);
  registry.Register(7, "g", "", 2);
  ASSERT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.List()[0].nodes, 0u);
  EXPECT_EQ(registry.List()[0].components_total, 2u);
  registry.Unregister(7);
}

TEST(ProgressTest, MaxIncumbentGapAcrossInflightQueries) {
  ProgressRegistry registry;
  EXPECT_EQ(registry.MaxIncumbentGap(), 0);

  auto a = registry.Register(1, "a", "", 1);
  a->NoteIncumbent(10);
  a->SetUpperBound(12);  // gap 2
  auto b = registry.Register(2, "b", "", 1);
  b->NoteIncumbent(3);
  b->SetUpperBound(30);  // gap 27
  EXPECT_EQ(registry.MaxIncumbentGap(), 27);

  // A finished query whose bound collapsed to the incumbent contributes 0,
  // and a bound below the incumbent clamps rather than going negative.
  b->SetUpperBound(3);
  a->SetUpperBound(2);
  EXPECT_EQ(registry.MaxIncumbentGap(), 0);
  registry.Unregister(1);
  registry.Unregister(2);
}

TEST(ProgressTest, ConcurrentPublishersAndScrapersKeepExactCounts) {
  // The TSan target: kernel-side publishers (AddNodes / NoteIncumbent /
  // NoteComponentDone), an executor-side bound publisher, and a scraper
  // Listing snapshots all race on one registry. Counts are fetch_adds, so
  // the final totals are exact; the incumbent is a CAS max, so it ends at
  // the largest value any thread published.
  ProgressRegistry registry;
  constexpr int kPublishers = 4;
  constexpr int kRoundsPerPublisher = 500;
  auto rec = registry.Register(99, "storm", "", kPublishers);

  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&rec, t] {
      for (int i = 0; i < kRoundsPerPublisher; ++i) {
        rec->AddNodes(1024);
        rec->NoteIncumbent(t * kRoundsPerPublisher + i);
        rec->SetUpperBound(kPublishers * kRoundsPerPublisher);
      }
      rec->NoteComponentDone();
    });
  }
  std::atomic<bool> done{false};
  std::thread scraper([&registry, &done] {
    uint64_t last_nodes = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<ProgressSnapshot> rows = registry.List();
      ASSERT_EQ(rows.size(), 1u);
      // Node counts are monotone even while racing the publishers.
      ASSERT_GE(rows[0].nodes, last_nodes);
      last_nodes = rows[0].nodes;
      ASSERT_GE(registry.MaxIncumbentGap(), 0);
    }
  });
  for (auto& t : publishers) t.join();
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  ProgressSnapshot s = rec->Snapshot();
  EXPECT_EQ(s.nodes, 1024u * kPublishers * kRoundsPerPublisher);
  EXPECT_EQ(s.incumbent_size, kPublishers * kRoundsPerPublisher - 1);
  EXPECT_EQ(s.components_done, static_cast<uint64_t>(kPublishers));
  registry.Unregister(99);
}

TEST(ProgressTest, SearchPublishesNodesIncumbentAndCompletions) {
  // Wire a QueryProgress straight into SearchOptions and run a real search:
  // the kernels publish nodes at the 1024-node cadence and incumbents as
  // they are found, and SearchPreparedGraph marks every component done.
  AttributedGraph g = RandomAttributedGraph(90, 0.4, 0x90F5);
  SearchOptions options = BaselineOptions(1, 2);
  std::shared_ptr<const PreparedGraph> prepared =
      PrepareGraph(g, options.params.k, options.reductions);
  QueryProgress progress(1, "g", CanonicalOptionsKey(options),
                         prepared->components.size());
  options.progress = &progress;

  SearchResult result = SearchPreparedGraph(g, *prepared, options);
  ProgressSnapshot s = progress.Snapshot();

  ASSERT_TRUE(result.stats.completed);
  EXPECT_EQ(s.components_done, prepared->components.size());
  EXPECT_EQ(s.incumbent_size,
            static_cast<int64_t>(result.clique.vertices.size()));
  // The publish cadence is every 1024 nodes, so the published count is a
  // floor of the true count, never an overcount.
  EXPECT_LE(s.nodes, result.stats.nodes);
  if (result.stats.nodes >= 2048) EXPECT_GT(s.nodes, 0u);
}

TEST(ProgressTest, ExecutorRegistersWhileSearchingAndCleansUp) {
  // A slow query must be visible in the default registry while in flight
  // (that is what `ps` reads) and gone once served — cache hits and
  // completed queries never linger.
  GraphRegistry graphs;
  ASSERT_TRUE(graphs.Add("hard", RandomAttributedGraph(150, 0.9, 0x5EED)).ok());
  QueryExecutor executor(ExecutorOptions{2, 8}, nullptr);

  QueryRequest request;
  request.graph = graphs.Get("hard");
  request.options = BaselineOptions(1, 100);
  request.options.time_limit_seconds = 1.0;  // bounded but visibly slow
  std::future<QueryResponse> pending = executor.Submit(request);

  bool seen_inflight = false;
  while (pending.wait_for(std::chrono::milliseconds(1)) !=
         std::future_status::ready) {
    for (const ProgressSnapshot& row : ProgressRegistry::Default().List()) {
      if (row.graph == "hard") {
        seen_inflight = true;
        EXPECT_GE(row.upper_bound, row.incumbent_size);
      }
    }
  }
  QueryResponse response = pending.get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(seen_inflight)
      << "query never appeared in the progress registry";
  executor.Drain();
  for (const ProgressSnapshot& row : ProgressRegistry::Default().List()) {
    EXPECT_NE(row.graph, "hard") << "progress record leaked after serving";
  }
}

TEST(ProgressTest, ScopedRegistrationUnregistersOnScopeExit) {
  ProgressRegistry registry;
  {
    obs::ProgressRegistration scoped = registry.RegisterScoped(7, "g", "", 1);
    ASSERT_TRUE(scoped);
    EXPECT_EQ(scoped->trace_id(), 7u);
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ProgressTest, ScopedRegistrationSurvivesMoveAndReset) {
  ProgressRegistry registry;
  obs::ProgressRegistration a = registry.RegisterScoped(1, "g", "", 1);
  obs::ProgressRegistration b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  EXPECT_EQ(registry.size(), 1u);
  b.Reset();
  EXPECT_FALSE(b);
  EXPECT_EQ(registry.size(), 0u);
  b.Reset();  // idempotent
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ProgressTest, ScopedRegistrationUnwindsOnException) {
  // The regression this guards: an aborted submit path that threw between
  // Register and Unregister used to leak a phantom in-flight entry, which
  // the watchdog would then flag as a permanently stuck query.
  ProgressRegistry registry;
  try {
    obs::ProgressRegistration scoped =
        registry.RegisterScoped(9, "doomed", "", 1);
    ASSERT_EQ(registry.size(), 1u);
    throw std::runtime_error("submit aborted");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(registry.size(), 0u)
      << "aborted registration leaked a phantom in-flight entry";
}

TEST(ProgressTest, SnapshotCarriesDeadline) {
  QueryProgress p(1, "g", "", 1);
  EXPECT_EQ(p.Snapshot().deadline_micros, 0);
  p.SetDeadlineMicros(2500000);
  EXPECT_EQ(p.Snapshot().deadline_micros, 2500000);
}

}  // namespace
}  // namespace fairclique
