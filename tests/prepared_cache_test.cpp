#include "service/prepared_graph_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/prepared_graph.h"
#include "core/verifier.h"
#include "dynamic/dynamic_graph.h"
#include "graph/fingerprint.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// A balanced K6 (vertices 0-5, reduction-surviving for k=2) plus a path
// 6-7-8-9 and a pendant edge 10-11 (triangle-free, reduced away). Gives a
// graph where some edges live outside the reduced vertex set — the raw
// material of the forwarding rule.
AttributedGraph CoreAndFringeGraph() {
  GraphBuilder b(12);
  const char* attrs = "abababababab";
  for (VertexId v = 0; v < 12; ++v) {
    b.SetAttribute(v, attrs[v] == 'a' ? Attribute::kA : Attribute::kB);
  }
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(6, 7);
  b.AddEdge(7, 8);
  b.AddEdge(8, 9);
  b.AddEdge(10, 11);
  return b.Build();
}

// ----------------------------------------------------------------- caching

TEST(PreparedGraphCacheTest, KeySeparatesFingerprintKAndReductions) {
  ReductionOptions all;
  ReductionOptions no_sup = all;
  no_sup.use_colorful_sup = false;
  EXPECT_EQ(PreparedGraphCache::MakeKey(42, 3, all),
            PreparedGraphCache::MakeKey(42, 3, all));
  EXPECT_NE(PreparedGraphCache::MakeKey(42, 3, all),
            PreparedGraphCache::MakeKey(43, 3, all));
  EXPECT_NE(PreparedGraphCache::MakeKey(42, 3, all),
            PreparedGraphCache::MakeKey(42, 4, all));
  EXPECT_NE(PreparedGraphCache::MakeKey(42, 3, all),
            PreparedGraphCache::MakeKey(42, 3, no_sup));
}

TEST(PreparedGraphCacheTest, LruEvictionAndCounters) {
  AttributedGraph g = MakeGraph("abab", {{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                         {1, 3}, {2, 3}});
  PreparedGraphCache cache(2);
  cache.Put("a", PrepareGraph(g, 1, {}), 1);
  cache.Put("b", PrepareGraph(g, 2, {}), 1);
  ASSERT_NE(cache.Get("a"), nullptr);  // refreshes "a"; "b" is now LRU
  cache.Put("c", PrepareGraph(g, 3, {}), 1);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);

  PreparedGraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);

  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(PreparedGraphCacheTest, ZeroCapacityDisablesCaching) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  PreparedGraphCache cache(0);
  cache.Put("a", PrepareGraph(g, 1, {}), 1);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(PreparedGraphCacheTest, GetOrPrepareSingleFlightsConcurrentMisses) {
  AttributedGraph g = RandomAttributedGraph(60, 0.2, 0x51F);
  PreparedGraphCache cache(4);
  std::atomic<int> builds{0};
  auto build = [&] {
    builds.fetch_add(1);
    // A real reduction keeps the window open long enough for the other
    // threads to pile onto the in-flight build.
    return PrepareGraph(g, 2, {});
  };
  std::atomic<int> built_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      bool built = false;
      auto plan = cache.GetOrPrepare("k", 1, build, &built);
      EXPECT_NE(plan, nullptr);
      if (built) built_count.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread that arrived while the first build was in flight must
  // have waited and shared it; threads arriving after publication hit.
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(built_count.load(), 1);
  EXPECT_EQ(cache.Stats().insertions, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.Stats().hits, 5u);
}

TEST(PreparedGraphCacheTest, InvalidateFingerprintDropsOnlyThatGraph) {
  AttributedGraph g = MakeGraph("abab", {{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                         {1, 3}, {2, 3}});
  PreparedGraphCache cache(8);
  cache.Put("g1|k2", PrepareGraph(g, 2, {}), 1);
  cache.Put("g1|k3", PrepareGraph(g, 3, {}), 1);
  cache.Put("g2|k2", PrepareGraph(g, 2, {}), 2);
  EXPECT_EQ(cache.InvalidateFingerprint(1), 2u);
  EXPECT_EQ(cache.Get("g1|k2"), nullptr);
  EXPECT_EQ(cache.Get("g1|k3"), nullptr);
  EXPECT_NE(cache.Get("g2|k2"), nullptr);
  EXPECT_EQ(cache.Stats().invalidated, 2u);
}

// ------------------------------------------------------ executor integration

std::shared_ptr<const RegisteredGraph> RegisterGraph(GraphRegistry& registry,
                                                     const std::string& name,
                                                     AttributedGraph g) {
  EXPECT_TRUE(registry.Add(name, std::move(g)).ok());
  return registry.Get(name);
}

TEST(PreparedCacheExecutorTest, DeltaSweepReducesOnce) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "g", RandomAttributedGraph(120, 0.12, 0xABCD));
  PreparedGraphCache prepared(8);
  QueryExecutor executor(ExecutorOptions{2, 64}, nullptr, &prepared);

  for (int delta = 0; delta <= 3; ++delta) {
    SearchOptions options = BoundedOptions(2, delta, ExtraBound::kColorfulPath);
    QueryRequest request;
    request.graph = graph;
    request.options = options;
    QueryResponse response = executor.Submit(request).get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.prepared_hit, delta > 0) << "delta " << delta;
    EXPECT_EQ(response.result->clique.size(),
              FindMaximumFairClique(*graph->graph, options).clique.size());
    // On a plan hit the response reports no reduction work.
    if (response.prepared_hit) {
      EXPECT_EQ(response.result->stats.reduce_micros, 0);
    }
  }
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.prepared_builds, 1u);
  EXPECT_EQ(m.prepared_hits, 3u);
  EXPECT_EQ(prepared.Stats().entries, 1u);
}

TEST(PreparedCacheExecutorTest, BypassPreparedSkipsProbeAndPublish) {
  GraphRegistry registry;
  auto graph =
      RegisterGraph(registry, "g", RandomAttributedGraph(80, 0.15, 0x1122));
  PreparedGraphCache prepared(8);
  QueryExecutor executor(ExecutorOptions{1, 16}, nullptr, &prepared);

  QueryRequest request;
  request.graph = graph;
  request.options = BaselineOptions(2, 1);
  request.bypass_prepared_cache = true;
  QueryResponse r1 = executor.Submit(request).get();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_FALSE(r1.prepared_hit);
  EXPECT_EQ(prepared.Stats().entries, 0u);  // not published either

  request.bypass_prepared_cache = false;
  QueryResponse r2 = executor.Submit(request).get();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_FALSE(r2.prepared_hit);  // nothing was published to hit
  EXPECT_EQ(prepared.Stats().entries, 1u);
  EXPECT_EQ(r1.result->clique.size(), r2.result->clique.size());
}

// ------------------------------------------------------- registry migration

TEST(PreparedCacheMigrationTest, RemovalOutsideReducedSetForwards) {
  AttributedGraph g = CoreAndFringeGraph();
  GraphRegistry registry;
  PreparedGraphCache prepared(8);
  registry.AttachPreparedCache(&prepared);
  ASSERT_TRUE(registry.Add("g", g).ok());
  uint64_t old_fp = registry.Get("g")->fingerprint;

  QueryExecutor executor(ExecutorOptions{1, 8}, nullptr, &prepared);
  QueryRequest request;
  request.graph = registry.Get("g");
  request.options = BaselineOptions(2, 0);
  ASSERT_TRUE(executor.Run(request).status.ok());
  ASSERT_EQ(prepared.Stats().entries, 1u);

  // Edge {10,11} lies entirely outside the reduced K6: removal-only and
  // untouched reduced subgraph -> the plan forwards to the new epoch.
  DynamicGraph dyn(g);
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({RemoveEdgeOp(10, 11)}, &summary).ok());
  ReplaceReport report;
  ASSERT_TRUE(registry.Replace("g", dyn.snapshot(), summary.version, &summary,
                               &report)
                  .ok());
  EXPECT_EQ(report.prepared.forwarded, 1u);
  EXPECT_EQ(report.prepared.invalidated, 0u);
  EXPECT_NE(summary.fingerprint, old_fp);
  EXPECT_NE(prepared.Get(PreparedGraphCache::MakeKey(
                summary.fingerprint, 2, request.options.reductions)),
            nullptr);

  // A query on the new epoch branches on the forwarded plan and still
  // matches a from-scratch search.
  request.graph = registry.Get("g");
  QueryResponse response = executor.Run(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.prepared_hit);
  SearchResult fresh =
      FindMaximumFairClique(*registry.Get("g")->graph, request.options);
  EXPECT_EQ(response.result->clique.size(), fresh.clique.size());
  EXPECT_TRUE(VerifyFairClique(*registry.Get("g")->graph,
                               response.result->clique.vertices,
                               request.options.params)
                  .ok());
}

TEST(PreparedCacheMigrationTest, TouchedReducedVertexInvalidates) {
  AttributedGraph g = CoreAndFringeGraph();
  GraphRegistry registry;
  PreparedGraphCache prepared(8);
  registry.AttachPreparedCache(&prepared);
  ASSERT_TRUE(registry.Add("g", g).ok());

  auto key_of = [&](uint64_t fp) {
    return PreparedGraphCache::MakeKey(fp, 2, ReductionOptions{});
  };
  prepared.Put(key_of(registry.Get("g")->fingerprint),
               PrepareGraph(g, 2, {}), registry.Get("g")->fingerprint);

  // Edge {0,1} is inside the reduced K6: its removal changes the reduced
  // subgraph, so the plan must die.
  DynamicGraph dyn(g);
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({RemoveEdgeOp(0, 1)}, &summary).ok());
  ReplaceReport report;
  ASSERT_TRUE(registry.Replace("g", dyn.snapshot(), summary.version, &summary,
                               &report)
                  .ok());
  EXPECT_EQ(report.prepared.forwarded, 0u);
  EXPECT_EQ(report.prepared.invalidated, 1u);
  EXPECT_EQ(prepared.Get(key_of(summary.fingerprint)), nullptr);
  EXPECT_EQ(prepared.Stats().entries, 0u);
}

TEST(PreparedCacheMigrationTest, AddedEdgeAndAttrFlipInvalidate) {
  AttributedGraph g = CoreAndFringeGraph();
  // Vertex 10 carries 'a'; setting it to 'b' is a real flip (a same-value
  // set would be a net no-op batch with an unchanged fingerprint).
  for (UpdateOp op : {AddEdgeOp(6, 9), SetAttributeOp(10, Attribute::kB)}) {
    GraphRegistry registry;
    PreparedGraphCache prepared(8);
    registry.AttachPreparedCache(&prepared);
    ASSERT_TRUE(registry.Add("g", g).ok());
    prepared.Put(
        PreparedGraphCache::MakeKey(registry.Get("g")->fingerprint, 2, {}),
        PrepareGraph(g, 2, {}), registry.Get("g")->fingerprint);

    DynamicGraph dyn(g);
    UpdateSummary summary;
    ASSERT_TRUE(dyn.Apply({op}, &summary).ok());
    ReplaceReport report;
    ASSERT_TRUE(registry.Replace("g", dyn.snapshot(), summary.version,
                                 &summary, &report)
                    .ok());
    // Even though the op touches only fringe vertices, additions and
    // attribute flips can rescue vertices into the colorful core, so no
    // forward is sound.
    EXPECT_EQ(report.prepared.forwarded, 0u);
    EXPECT_EQ(report.prepared.invalidated, 1u);
  }
}

TEST(PreparedCacheMigrationTest, AppendedIsolatedVerticesForward) {
  AttributedGraph g = CoreAndFringeGraph();
  GraphRegistry registry;
  PreparedGraphCache prepared(8);
  registry.AttachPreparedCache(&prepared);
  ASSERT_TRUE(registry.Add("g", g).ok());
  prepared.Put(
      PreparedGraphCache::MakeKey(registry.Get("g")->fingerprint, 2, {}),
      PrepareGraph(g, 2, {}), registry.Get("g")->fingerprint);

  DynamicGraph dyn(g);
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({AddVertexOp(Attribute::kA),
                         AddVertexOp(Attribute::kB)},
                        &summary)
                  .ok());
  ReplaceReport report;
  ASSERT_TRUE(registry.Replace("g", dyn.snapshot(), summary.version, &summary,
                               &report)
                  .ok());
  // Isolated vertices can never join a fair clique: the plan forwards, and
  // searching the grown graph with it stays exact.
  EXPECT_EQ(report.prepared.forwarded, 1u);
  auto plan = prepared.Get(
      PreparedGraphCache::MakeKey(summary.fingerprint, 2, {}));
  ASSERT_NE(plan, nullptr);
  SearchOptions options = BaselineOptions(2, 0);
  SearchResult staged =
      SearchPreparedGraph(*registry.Get("g")->graph, *plan, options);
  SearchResult fresh =
      FindMaximumFairClique(*registry.Get("g")->graph, options);
  EXPECT_EQ(staged.clique.size(), fresh.clique.size());
}

TEST(PreparedCacheMigrationTest, EvictDropsOrphanedPlans) {
  GraphRegistry registry;
  PreparedGraphCache prepared(8);
  registry.AttachPreparedCache(&prepared);
  AttributedGraph g = RandomAttributedGraph(40, 0.25, 0x90);
  ASSERT_TRUE(registry.Add("one", g).ok());
  ASSERT_TRUE(registry.Add("two", g).ok());  // same fingerprint
  prepared.Put(
      PreparedGraphCache::MakeKey(registry.Get("one")->fingerprint, 2, {}),
      PrepareGraph(g, 2, {}), registry.Get("one")->fingerprint);

  // Another name still serves the fingerprint: the plan survives.
  ASSERT_TRUE(registry.Evict("one"));
  EXPECT_EQ(prepared.Stats().entries, 1u);
  // Evicting the last reference drops it.
  ASSERT_TRUE(registry.Evict("two"));
  EXPECT_EQ(prepared.Stats().entries, 0u);
  EXPECT_EQ(prepared.Stats().invalidated, 1u);
}

// --------------------------------------------- component-granular scheduling

// A graph with many mid-size components, each containing a planted balanced
// clique, so queued queries fan out into real component tasks.
AttributedGraph ManyComponentGraph(uint64_t seed, int components) {
  Rng rng(seed);
  GraphBuilder builder(static_cast<VertexId>(components * 25));
  for (int c = 0; c < components; ++c) {
    VertexId base = static_cast<VertexId>(c * 25);
    for (VertexId u = 0; u < 25; ++u) {
      for (VertexId v = u + 1; v < 25; ++v) {
        if (rng.NextBool(0.2)) builder.AddEdge(base + u, base + v);
      }
    }
    uint32_t size = static_cast<uint32_t>(rng.NextInRange(6, 10));
    std::vector<uint64_t> members = rng.SampleDistinct(25, size);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        builder.AddEdge(base + static_cast<VertexId>(members[i]),
                        base + static_cast<VertexId>(members[j]));
      }
    }
    for (VertexId u = 0; u < 25; ++u) {
      builder.SetAttribute(base + u,
                           rng.NextBool(0.5) ? Attribute::kA : Attribute::kB);
    }
  }
  return builder.Build();
}

// The acceptance stress test: many concurrent queries over multiple graphs,
// all expanded into component tasks on one shared pool, must match the
// sequential answers exactly (run under ASan/UBSan in CI).
TEST(ComponentSchedulingStressTest, ConcurrentMultiQueryAnswersExact) {
  GraphRegistry registry;
  auto g1 = RegisterGraph(registry, "a", ManyComponentGraph(0xA11CE, 8));
  auto g2 = RegisterGraph(registry, "b", ManyComponentGraph(0xB0B, 6));
  std::vector<std::shared_ptr<const RegisteredGraph>> graphs = {g1, g2};

  // Same k across most of the mix so queries share prepared plans; one
  // k=3 entry exercises plan misses interleaved with hits.
  std::vector<SearchOptions> mix = {
      BaselineOptions(2, 0),
      BaselineOptions(2, 1),
      BoundedOptions(2, 2, ExtraBound::kColorfulPath),
      FullOptions(2, 3, ExtraBound::kColorfulDegeneracy),
      BoundedOptions(3, 1, ExtraBound::kColorfulPath),
  };
  std::vector<std::vector<size_t>> expected(graphs.size());
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    for (const SearchOptions& options : mix) {
      expected[gi].push_back(
          FindMaximumFairClique(*graphs[gi]->graph, options).clique.size());
    }
  }

  ResultCache cache(64);
  PreparedGraphCache prepared(16);
  QueryExecutor executor(ExecutorOptions{4, 2048}, &cache, &prepared);

  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 15;
  std::vector<std::thread> clients;
  std::vector<std::string> failures[kClients];
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<std::pair<size_t, size_t>,
                            std::future<QueryResponse>>> futures;
      for (int q = 0; q < kQueriesPerClient; ++q) {
        size_t gi = static_cast<size_t>(c + q) % graphs.size();
        size_t mi = static_cast<size_t>(c + 3 * q) % mix.size();
        QueryRequest request;
        request.graph = graphs[gi];
        request.options = mix[mi];
        // A third of the load bypasses the result cache so component tasks
        // keep flowing even once every answer is memoized.
        request.bypass_cache = (q % 3 == 0);
        futures.emplace_back(std::make_pair(gi, mi),
                             executor.Submit(std::move(request)));
      }
      for (auto& [key, future] : futures) {
        QueryResponse response = future.get();
        if (!response.status.ok()) {
          failures[c].push_back("rejected: " + response.status.ToString());
          continue;
        }
        size_t want = expected[key.first][key.second];
        if (response.result->clique.size() != want) {
          failures[c].push_back(
              "size mismatch: got " +
              std::to_string(response.result->clique.size()) + " want " +
              std::to_string(want));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& failure : failures[c]) {
      ADD_FAILURE() << "client " << c << ": " << failure;
    }
  }

  executor.Drain();
  ExecutorMetrics m = executor.metrics();
  EXPECT_EQ(m.served, static_cast<uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(m.rejected, 0u);
  // The whole point: component tasks from many queries interleaved on the
  // shared pool, and plans were reused across the delta variations.
  EXPECT_GT(m.component_tasks, 0u);
  EXPECT_GT(m.prepared_hits, 0u);
  // 2 fingerprints x 2 distinct k -> at most 4 plans ever built per
  // (fingerprint, k); duplicate concurrent builds may add a few more
  // build events, but the cache holds at most 4 entries.
  EXPECT_LE(prepared.Stats().entries, 4u);
}

// Shutdown with queries still queued and expanded: every future must be
// satisfied (the destructor drains), with no leaks or races under ASan.
TEST(ComponentSchedulingStressTest, ShutdownDrainsExpandedQueries) {
  GraphRegistry registry;
  auto graph = RegisterGraph(registry, "g", ManyComponentGraph(0xD00D, 10));
  std::vector<std::future<QueryResponse>> futures;
  {
    PreparedGraphCache prepared(4);
    QueryExecutor executor(ExecutorOptions{3, 128}, nullptr, &prepared);
    for (int i = 0; i < 24; ++i) {
      QueryRequest request;
      request.graph = graph;
      request.options = BaselineOptions(2, i % 4);
      futures.push_back(executor.Submit(std::move(request)));
    }
    // Destructor: shuts down, drains the queue and all component tasks.
  }
  size_t answered = 0;
  for (auto& f : futures) {
    QueryResponse response = f.get();
    if (response.status.ok()) {
      ++answered;
      EXPECT_NE(response.result, nullptr);
    }
  }
  EXPECT_EQ(answered, futures.size());
}

}  // namespace
}  // namespace fairclique
