#include <gtest/gtest.h>

#include <vector>

#include "bounds/upper_bounds.h"
#include "core/enumeration.h"
#include "graph/coloring.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Every bound must dominate the exact maximum fair clique size. This is the
// central soundness property; it exercises the corrected forms of the
// paper's Lemmas 9-13 (see DESIGN.md §2.3).
struct BoundCase {
  uint64_t seed;
  double density;
  int delta;
};

class BoundSoundnessTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundSoundnessTest, AllBoundsDominateExactOptimum) {
  const BoundCase param = GetParam();
  AttributedGraph g = RandomAttributedGraph(35, param.density, param.seed);
  Coloring c = GreedyColoring(g);
  // Exact optimum for k = 1 (the least restrictive k makes the bound test
  // strongest: bounds are k-independent).
  FairnessParams params{1, param.delta};
  CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
  const int64_t opt = static_cast<int64_t>(exact.size());

  EXPECT_GE(SizeBound(g), opt);
  EXPECT_GE(AttributeBound(g, param.delta), opt);
  EXPECT_GE(ColorBound(c), opt);
  EXPECT_GE(AttributeColorBound(g, c, param.delta), opt);
  EXPECT_GE(EnhancedAttributeColorBound(g, c, param.delta), opt);
  EXPECT_GE(DegeneracyBound(g), opt);
  EXPECT_GE(HIndexBound(g), opt);
  EXPECT_GE(ColorfulDegeneracyBound(g, c, param.delta), opt);
  EXPECT_GE(ColorfulHIndexBound(g, c, param.delta), opt);
  EXPECT_GE(ColorfulPathBound(g, c), opt);
  EXPECT_GE(AdvancedBound(g, c, param.delta), opt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundSoundnessTest,
    ::testing::Values(BoundCase{1, 0.2, 0}, BoundCase{2, 0.2, 1},
                      BoundCase{3, 0.3, 2}, BoundCase{4, 0.3, 0},
                      BoundCase{5, 0.4, 1}, BoundCase{6, 0.4, 3},
                      BoundCase{7, 0.5, 2}, BoundCase{8, 0.5, 0},
                      BoundCase{9, 0.6, 1}, BoundCase{10, 0.6, 4}));

TEST(BoundOrderingTest, TighterVariantsNeverExceedLooserOnes) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    AttributedGraph g = RandomAttributedGraph(50, 0.3, seed);
    Coloring c = GreedyColoring(g);
    const int delta = 1;
    // ubac refines uba (colors per attribute <= vertices per attribute).
    EXPECT_LE(AttributeColorBound(g, c, delta), AttributeBound(g, delta));
    // ubeac refines ubac.
    EXPECT_LE(EnhancedAttributeColorBound(g, c, delta),
              AttributeColorBound(g, c, delta));
    // The advanced group is the min of its members.
    int64_t ad = AdvancedBound(g, c, delta);
    EXPECT_LE(ad, SizeBound(g));
    EXPECT_LE(ad, EnhancedAttributeColorBound(g, c, delta));
  }
}

TEST(ColorfulPathBoundTest, PathIsColorIncreasing) {
  // On a clique, the bound equals the clique size exactly.
  GraphBuilder b(6);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  AttributedGraph k6 = b.Build();
  Coloring c = GreedyColoring(k6);
  EXPECT_EQ(ColorfulPathBound(k6, c), 6);
}

TEST(ColorfulPathBoundTest, StarIsTwo) {
  AttributedGraph star = MakeGraph("aaaab", {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Coloring c = GreedyColoring(star);
  EXPECT_EQ(ColorfulPathBound(star, c), 2);
}

TEST(ColorfulPathBoundTest, EmptyAndIsolated) {
  AttributedGraph empty = MakeGraph("", {});
  EXPECT_EQ(ColorfulPathBound(empty, GreedyColoring(empty)), 0);
  AttributedGraph iso = MakeGraph("aa", {});
  EXPECT_EQ(ColorfulPathBound(iso, GreedyColoring(iso)), 1);
}

TEST(DegeneracyBoundTest, TriangleNeedsPlusOne) {
  // K3 has degeneracy 2 but clique number 3: the +1 correction matters.
  AttributedGraph k3 = MakeGraph("aab", {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(DegeneracyBound(k3), 3);
  EXPECT_EQ(HIndexBound(k3), 3);
}

TEST(EnhancedAttributeColorBoundTest, MixedColorsCountedOncePerSide) {
  // Printed Lemma 9 counterexample (DESIGN.md): ca=0, cb=10, cm=4, delta=0
  // admits a fair clique over 8 colors; the sound bound must be >= 8.
  // Construct: 4 a-vertices with colors shared by 4 b-vertices (mixed),
  // plus 6 b-only colors; complete bipartite-ish clique structure is not
  // needed — we check the formula directly through a crafted graph.
  // Simpler: verify formula behavior via BalancedAssignMin.
  // bal = max_x min(0 + x, 10 + 4 - x) for x <= 4 -> x=4: min(4,10)=4.
  // ubeac = min(14, 2*4 + 0) = 8.
  // Build a tiny graph realizing ca=0, cb=2, cm=1: colors {0,1,2};
  // a-vertices on color 0; b-vertices on colors 0,1,2.
  AttributedGraph g = MakeGraph(
      "abbb", {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {0, 3}});
  Coloring c = GreedyColoring(g);
  // K4 with one a: any delta >= 2 allows the whole K4... the bound with
  // delta = 0 caps at 2*min(colors available to a) = 2.
  int64_t ub0 = EnhancedAttributeColorBound(g, c, 0);
  EXPECT_GE(ub0, 2);  // a=1 + b=1 fair clique exists
  int64_t ub2 = EnhancedAttributeColorBound(g, c, 2);
  EXPECT_GE(ub2, 4);  // the whole K4 is fair at delta >= 2
}

TEST(ComputeUpperBoundTest, ConfigSelectsExtras) {
  AttributedGraph g = RandomAttributedGraph(40, 0.3, 21);
  FairnessParams params{1, 1};
  CliqueResult exact = MaxFairCliqueByEnumeration(g, params);
  for (ExtraBound extra :
       {ExtraBound::kNone, ExtraBound::kDegeneracy, ExtraBound::kHIndex,
        ExtraBound::kColorfulDegeneracy, ExtraBound::kColorfulHIndex,
        ExtraBound::kColorfulPath}) {
    UpperBoundConfig config{.use_advanced = true, .extra = extra};
    int64_t ub = ComputeUpperBound(g, params.delta, config);
    EXPECT_GE(ub, static_cast<int64_t>(exact.size()))
        << ExtraBoundName(extra);
  }
}

TEST(ComputeUpperBoundTest, EmptyGraphIsZero) {
  AttributedGraph empty = MakeGraph("", {});
  EXPECT_EQ(ComputeUpperBound(empty, 1, {}), 0);
}

TEST(ExtraBoundNameTest, AllNamesDistinct) {
  std::vector<std::string> names;
  for (ExtraBound extra :
       {ExtraBound::kNone, ExtraBound::kDegeneracy, ExtraBound::kHIndex,
        ExtraBound::kColorfulDegeneracy, ExtraBound::kColorfulHIndex,
        ExtraBound::kColorfulPath}) {
    names.push_back(ExtraBoundName(extra));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace fairclique
