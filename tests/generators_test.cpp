#include <gtest/gtest.h>

#include <cmath>

#include "core/verifier.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "test_util.h"

namespace fairclique {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(1);
  const VertexId n = 400;
  const double p = 0.05;
  AttributedGraph g = ErdosRenyi(n, p, rng);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(ErdosRenyi(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 1.0, rng).num_edges(), 45u);
  EXPECT_EQ(ErdosRenyi(0, 0.5, rng).num_vertices(), 0u);
  EXPECT_EQ(ErdosRenyi(1, 0.5, rng).num_edges(), 0u);
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng r1(99), r2(99);
  AttributedGraph a = ErdosRenyi(100, 0.1, r1);
  AttributedGraph b = ErdosRenyi(100, 0.1, r2);
  EXPECT_EQ(testing_util::EdgesOf(a), testing_util::EdgesOf(b));
}

TEST(GnMTest, ExactEdgeCount) {
  Rng rng(3);
  AttributedGraph g = GnM(100, 500, rng);
  EXPECT_EQ(g.num_edges(), 500u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GnMTest, CappedAtCompleteGraph) {
  Rng rng(4);
  AttributedGraph g = GnM(10, 1000, rng);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(ChungLuTest, AverageDegreeRoughlyCalibrated) {
  Rng rng(5);
  const VertexId n = 3000;
  AttributedGraph g = ChungLuPowerLaw(n, 10.0, 2.5, rng);
  double avg = 2.0 * g.num_edges() / n;
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 20.0);
}

TEST(ChungLuTest, ProducesSkewedDegrees) {
  Rng rng(6);
  AttributedGraph g = ChungLuPowerLaw(3000, 8.0, 2.2, rng);
  // Heavy tail: max degree far above average.
  double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(g.max_degree(), 4 * avg);
}

TEST(BarabasiAlbertTest, SizeAndConnectivity) {
  Rng rng(7);
  AttributedGraph g = BarabasiAlbert(500, 3, rng);
  EXPECT_TRUE(g.Validate().ok());
  // Each of the ~500 arrivals adds <= 3 edges plus the seed clique.
  EXPECT_LE(g.num_edges(), 3u * 500u + 10u);
  EXPECT_GE(g.num_edges(), 2u * 450u);
  EXPECT_EQ(g.ConnectedComponents().size(), 1u);
}

TEST(PlantedCliqueGraphTest, ContainsRequestedCliques) {
  Rng rng(8);
  PlantedCliqueOptions opts;
  opts.num_vertices = 300;
  opts.background_edge_prob = 0.01;
  opts.num_cliques = 10;
  opts.min_clique_size = 5;
  opts.max_clique_size = 8;
  AttributedGraph g = PlantedCliqueGraph(opts, rng);
  EXPECT_TRUE(g.Validate().ok());
  // Density must exceed the pure background.
  double bg = opts.background_edge_prob * 300 * 299 / 2;
  EXPECT_GT(g.num_edges(), static_cast<EdgeId>(bg));
}

TEST(PlantCliqueTest, PlantedBalancedCliqueIsFair) {
  Rng rng(9);
  AttributedGraph base = ErdosRenyi(200, 0.02, rng);
  base = AssignAttributesBernoulli(base, 0.5, rng);
  std::vector<VertexId> members;
  AttributedGraph g = PlantClique(base, 10, /*balanced=*/true, rng, &members);
  ASSERT_EQ(members.size(), 10u);
  EXPECT_TRUE(IsClique(g, members));
  AttrCounts cnt = CountAttributes(g, members);
  EXPECT_LE(cnt.Diff(), 1);
  // Fair for k = 5, delta = 1.
  EXPECT_TRUE(IsFairClique(g, members, {5, 1}));
}

TEST(PlantCliqueTest, UnbalancedPlantIsStillAClique) {
  Rng rng(10);
  AttributedGraph base = ErdosRenyi(100, 0.02, rng);
  std::vector<VertexId> members;
  AttributedGraph g = PlantClique(base, 7, /*balanced=*/false, rng, &members);
  EXPECT_TRUE(IsClique(g, members));
}

TEST(PaperFigure1Test, MatchesPaperExamples) {
  AttributedGraph g = PaperFigure1Graph();
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_TRUE(g.Validate().ok());
  // Example 2 facts: (v2, v5) is an edge; common neighbors are v1, v6 (a)
  // and v9 (b). Paper ids are 1-based.
  EXPECT_TRUE(g.HasEdge(1, 4));
  std::vector<VertexId> common;
  ForEachCommonNeighbor(g, 1, 4,
                        [&](VertexId w, EdgeId, EdgeId) { common.push_back(w); });
  EXPECT_EQ(common, (std::vector<VertexId>{0, 5, 8}));  // v1, v6, v9
  EXPECT_EQ(g.attribute(0), Attribute::kA);
  EXPECT_EQ(g.attribute(5), Attribute::kA);
  EXPECT_EQ(g.attribute(8), Attribute::kB);
  // The right community is an 8-clique with 3 a's and 5 b's.
  std::vector<VertexId> right{6, 7, 9, 10, 11, 12, 13, 14};
  EXPECT_TRUE(IsClique(g, right));
  AttrCounts cnt = CountAttributes(g, right);
  EXPECT_EQ(cnt.a(), 3);
  EXPECT_EQ(cnt.b(), 5);
}

TEST(AttributeAssignmentTest, BernoulliRoughlyBalanced) {
  Rng rng(11);
  AttributedGraph g = ErdosRenyi(2000, 0.005, rng);
  g = AssignAttributesBernoulli(g, 0.5, rng);
  AttrCounts cnt = g.attribute_counts();
  EXPECT_NEAR(static_cast<double>(cnt.a()) / 2000.0, 0.5, 0.05);
}

TEST(AttributeAssignmentTest, HomophilyCreatesAssortativity) {
  Rng rng(12);
  AttributedGraph g = ChungLuPowerLaw(2000, 8.0, 2.5, rng);
  AttributedGraph homo = AssignAttributesHomophily(g, 0.5, 0.9, rng);
  AttributedGraph indep = AssignAttributesBernoulli(g, 0.5, rng);
  auto same_attr_fraction = [](const AttributedGraph& h) {
    if (h.num_edges() == 0) return 0.0;
    uint64_t same = 0;
    for (const Edge& e : h.edges()) {
      if (h.attribute(e.u) == h.attribute(e.v)) ++same;
    }
    return static_cast<double>(same) / h.num_edges();
  };
  EXPECT_GT(same_attr_fraction(homo), same_attr_fraction(indep) + 0.15);
}

TEST(SamplingTest, VertexSampleSizes) {
  Rng rng(13);
  AttributedGraph g = ErdosRenyi(500, 0.05, rng);
  AttributedGraph s = SampleVertices(g, 0.4, rng);
  EXPECT_EQ(s.num_vertices(), 200u);
  EXPECT_LE(s.num_edges(), g.num_edges());
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SamplingTest, EdgeSampleSizes) {
  Rng rng(14);
  AttributedGraph g = ErdosRenyi(500, 0.05, rng);
  AttributedGraph s = SampleEdges(g, 0.25, rng);
  EXPECT_EQ(s.num_vertices(), g.num_vertices());
  EXPECT_EQ(s.num_edges(),
            static_cast<EdgeId>(std::llround(0.25 * g.num_edges())));
}

TEST(SamplingTest, FullAndEmptyFractions) {
  Rng rng(15);
  AttributedGraph g = ErdosRenyi(100, 0.1, rng);
  EXPECT_EQ(SampleVertices(g, 1.0, rng).num_vertices(), g.num_vertices());
  EXPECT_EQ(SampleVertices(g, 0.0, rng).num_vertices(), 0u);
  EXPECT_EQ(SampleEdges(g, 1.0, rng).num_edges(), g.num_edges());
  EXPECT_EQ(SampleEdges(g, 0.0, rng).num_edges(), 0u);
}

}  // namespace
}  // namespace fairclique
