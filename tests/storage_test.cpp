// Tests of the durable storage subsystem (src/storage): the FCG2 mmap
// container, the update WAL, the manifest, the StorageManager's
// write-through + compaction + recovery, the verifier-checked warm cache,
// and the GraphRegistry wiring (write-through, kAuto sniffing, Restore).
//
// The recovery tests tear the in-memory side down with no shutdown
// handshake at all — every durable write is fsync'd at operation time, so
// "drop everything and reopen the data dir" is exactly the SIGKILL state.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "datasets/datasets.h"
#include "graph/binary_io.h"
#include "graph/fingerprint.h"
#include "graph/io.h"
#include "service/graph_registry.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "storage/fcg2.h"
#include "storage/manifest.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "storage/warm_file.h"
#include "test_util.h"

namespace fairclique {
namespace {

using storage::LoadFcg2;
using storage::SaveFcg2;
using testing_util::EdgesOf;
using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fairclique_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string ReadBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

// ------------------------------------------------------------------- FCG2 --

TEST_F(StorageTest, Fcg2RoundTripIsExact) {
  AttributedGraph g = RandomAttributedGraph(150, 0.07, 11);
  ASSERT_TRUE(SaveFcg2(g, Path("g.fcg2")).ok());
  AttributedGraph loaded;
  ASSERT_TRUE(LoadFcg2(Path("g.fcg2"), &loaded).ok());
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(EdgesOf(loaded), EdgesOf(g));
  EXPECT_EQ(loaded.max_degree(), g.max_degree());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded.attribute(v), g.attribute(v));
  }
  EXPECT_TRUE(loaded.Validate().ok());
  EXPECT_EQ(GraphFingerprint(loaded), GraphFingerprint(g));
}

TEST_F(StorageTest, Fcg2RoundTripEmptyAndEdgelessGraphs) {
  for (VertexId n : {0u, 5u}) {
    AttributedGraph g = GraphBuilder(n).Build();
    ASSERT_TRUE(SaveFcg2(g, Path("e.fcg2")).ok());
    AttributedGraph loaded;
    ASSERT_TRUE(LoadFcg2(Path("e.fcg2"), &loaded).ok());
    EXPECT_EQ(loaded.num_vertices(), n);
    EXPECT_EQ(loaded.num_edges(), 0u);
  }
}

TEST_F(StorageTest, Fcg2LoadedGraphSurvivesFileDeletionAndCopies) {
  // The zero-copy view must keep the mapping alive through copies and the
  // unlink of the backing file (POSIX keeps mapped pages valid).
  AttributedGraph g = RandomAttributedGraph(80, 0.1, 3);
  ASSERT_TRUE(SaveFcg2(g, Path("z.fcg2")).ok());
  AttributedGraph copy;
  {
    AttributedGraph loaded;
    ASSERT_TRUE(LoadFcg2(Path("z.fcg2"), &loaded).ok());
    copy = loaded;  // shares the mapping
  }
  std::filesystem::remove(Path("z.fcg2"));
  EXPECT_EQ(GraphFingerprint(copy), GraphFingerprint(g));
  EXPECT_TRUE(copy.Validate().ok());
}

TEST_F(StorageTest, Fcg2SearchAnswersMatchBuiltGraph) {
  // The spans-over-mmap representation must be indistinguishable to the
  // algorithms: same maximum fair clique as the builder-backed graph.
  AttributedGraph g = RandomAttributedGraph(60, 0.25, 7);
  ASSERT_TRUE(SaveFcg2(g, Path("s.fcg2")).ok());
  AttributedGraph loaded;
  ASSERT_TRUE(LoadFcg2(Path("s.fcg2"), &loaded).ok());
  SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  SearchResult a = FindMaximumFairClique(g, options);
  SearchResult b = FindMaximumFairClique(loaded, options);
  EXPECT_EQ(a.clique.size(), b.clique.size());
  EXPECT_TRUE(VerifyFairClique(g, b.clique.vertices, options.params).ok());
}

TEST_F(StorageTest, Fcg2TruncationSweepRejectsEveryPrefix) {
  AttributedGraph g = RandomAttributedGraph(25, 0.2, 9);
  ASSERT_TRUE(SaveFcg2(g, Path("t.fcg2")).ok());
  const std::string bytes = ReadBytes(Path("t.fcg2"));
  ASSERT_GT(bytes.size(), 200u);
  // Sweep every prefix short of the full file (step 1 near the interesting
  // header/table boundary, coarser beyond to keep the test quick).
  for (size_t len = 0; len < bytes.size();
       len += (len < 256 ? 1 : 37)) {
    WriteBytes(Path("p.fcg2"), bytes.substr(0, len));
    AttributedGraph loaded;
    Status status = LoadFcg2(Path("p.fcg2"), &loaded);
    EXPECT_FALSE(status.ok()) << "prefix length " << len << " loaded";
  }
}

TEST_F(StorageTest, Fcg2RejectsTrailingGarbageAndNeverMisloads) {
  AttributedGraph g = RandomAttributedGraph(40, 0.15, 5);
  ASSERT_TRUE(SaveFcg2(g, Path("c.fcg2")).ok());
  const std::string bytes = ReadBytes(Path("c.fcg2"));
  const uint64_t fp = GraphFingerprint(g);

  WriteBytes(Path("c2.fcg2"), bytes + "junk");
  AttributedGraph loaded;
  EXPECT_TRUE(LoadFcg2(Path("c2.fcg2"), &loaded).IsCorruption());

  // Flip one byte at a sample of positions. Checksums cover the header,
  // table and sections; only inter-section padding is outside them, so a
  // flip either fails the load or loads the identical graph — never a
  // different one.
  for (size_t pos = 0; pos < bytes.size(); pos += 13) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteBytes(Path("c3.fcg2"), corrupt);
    AttributedGraph maybe;
    Status status = LoadFcg2(Path("c3.fcg2"), &maybe);
    if (status.ok()) {
      EXPECT_EQ(GraphFingerprint(maybe), fp) << "byte " << pos;
    }
  }
}

TEST_F(StorageTest, Fcg2RejectsWrappingSectionOffset) {
  // A hostile file can keep its header/table checksum self-consistent while
  // pointing a section near UINT64_MAX so that offset + length wraps; the
  // bounds check must be wrap-proof or the checksum pass reads wild memory.
  AttributedGraph g = RandomAttributedGraph(30, 0.2, 13);
  ASSERT_TRUE(SaveFcg2(g, Path("w.fcg2")).ok());
  std::string bytes = ReadBytes(Path("w.fcg2"));
  auto put_u64 = [&bytes](size_t pos, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  };
  // Section entry 1 (adjacency) lives at 32 + 32; its offset field is +8.
  put_u64(32 + 32 + 8, 0xfffffffffffff000ull);  // 8-aligned, wraps with len
  // Recompute the table checksum over bytes [0, 192) the way the writer
  // does, so only the bounds check stands between the file and a crash.
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < 192; ++i) {
    h = (h ^ static_cast<uint8_t>(bytes[i])) * 1099511628211ull;
  }
  put_u64(192, h);
  WriteBytes(Path("w.fcg2"), bytes);
  AttributedGraph loaded;
  Status status = LoadFcg2(Path("w.fcg2"), &loaded);
  ASSERT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.message().find("out of bounds"), std::string::npos);
}

// -------------------------------------------------------------------- WAL --

TEST_F(StorageTest, WalRoundTripPreservesRecords) {
  storage::WalRecord r1;
  r1.base_fingerprint = 111;
  r1.fingerprint = 222;
  r1.version = 1;
  r1.ops = {AddEdgeOp(3, 9), RemoveEdgeOp(2, 5), AddVertexOp(Attribute::kB),
            SetAttributeOp(7, Attribute::kB)};
  storage::WalRecord r2;
  r2.base_fingerprint = 222;
  r2.fingerprint = 333;
  r2.version = 2;
  r2.ops = {AddEdgeOp(0, 1)};
  ASSERT_TRUE(storage::AppendWalRecord(Path("w.wal"), r1).ok());
  ASSERT_TRUE(storage::AppendWalRecord(Path("w.wal"), r2).ok());

  std::vector<storage::WalRecord> records;
  bool torn = true;
  ASSERT_TRUE(storage::ReadWal(Path("w.wal"), &records, &torn).ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].base_fingerprint, 111u);
  EXPECT_EQ(records[0].version, 1u);
  ASSERT_EQ(records[0].ops.size(), 4u);
  EXPECT_EQ(records[0].ops[0].kind, UpdateKind::kAddEdge);
  EXPECT_EQ(records[0].ops[0].u, 3u);
  EXPECT_EQ(records[0].ops[0].v, 9u);
  EXPECT_EQ(records[0].ops[2].kind, UpdateKind::kAddVertex);
  EXPECT_EQ(records[0].ops[2].attr, Attribute::kB);
  EXPECT_EQ(records[0].ops[3].kind, UpdateKind::kSetAttribute);
  EXPECT_EQ(records[0].ops[3].u, 7u);
  EXPECT_EQ(records[1].fingerprint, 333u);
}

TEST_F(StorageTest, WalMissingFileIsEmptyLog) {
  std::vector<storage::WalRecord> records = {storage::WalRecord{}};
  bool torn = true;
  ASSERT_TRUE(storage::ReadWal(Path("absent.wal"), &records, &torn).ok());
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(torn);
}

TEST_F(StorageTest, WalTornTailKeepsIntactPrefix) {
  storage::WalRecord r;
  r.ops = {AddEdgeOp(1, 2)};
  for (uint64_t v = 1; v <= 3; ++v) {
    r.version = v;
    ASSERT_TRUE(storage::AppendWalRecord(Path("torn.wal"), r).ok());
  }
  std::string bytes = ReadBytes(Path("torn.wal"));
  // Chop into the middle of the third record: crash mid-append.
  WriteBytes(Path("torn.wal"), bytes.substr(0, bytes.size() - 5));
  std::vector<storage::WalRecord> records;
  bool torn = false;
  ASSERT_TRUE(storage::ReadWal(Path("torn.wal"), &records, &torn).ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].version, 2u);
}

TEST_F(StorageTest, WalMidFileCorruptionIsLoudNotTruncated) {
  storage::WalRecord r;
  r.ops = {AddEdgeOp(1, 2)};
  for (uint64_t v = 1; v <= 3; ++v) {
    r.version = v;
    ASSERT_TRUE(storage::AppendWalRecord(Path("mid.wal"), r).ok());
  }
  std::string bytes = ReadBytes(Path("mid.wal"));

  // A corrupt byte inside an EARLIER record is not a torn tail: records 2-3
  // are still intact behind it, which a crash (that can only cut the end of
  // an append-only file) could never produce. Silently stopping there would
  // truncate fsync-acknowledged history, so the read must fail loudly.
  std::string corrupt = bytes;
  corrupt[20] = static_cast<char>(corrupt[20] ^ 0xff);
  WriteBytes(Path("mid.wal"), corrupt);
  std::vector<storage::WalRecord> records = {storage::WalRecord{}};
  bool torn = true;
  Status status = storage::ReadWal(Path("mid.wal"), &records, &torn);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_TRUE(records.empty());  // nothing decodable before the failure

  // The same flip in the LAST record leaves nothing intact after it — that
  // is indistinguishable from a torn tail, and is treated as one.
  std::string tail_flip = bytes;
  tail_flip[bytes.size() - 3] =
      static_cast<char>(tail_flip[bytes.size() - 3] ^ 0xff);
  WriteBytes(Path("mid.wal"), tail_flip);
  ASSERT_TRUE(storage::ReadWal(Path("mid.wal"), &records, &torn).ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(records.size(), 2u);
}


// --------------------------------------------------------------- manifest --

TEST_F(StorageTest, ManifestRoundTripWithHostileNames) {
  storage::Manifest manifest;
  storage::ManifestEntry e;
  e.name = "with space \n%percent\tand\x01control";
  e.snapshot_file = "snap.0.fcg2";
  e.wal_file = "snap.0.wal";
  e.snapshot_version = 42;
  e.snapshot_fingerprint = 0xdeadbeefcafef00dull;
  e.source = "";
  manifest.entries.push_back(e);
  storage::ManifestEntry plain;
  plain.name = "plain";
  plain.snapshot_file = "p.1.fcg2";
  plain.snapshot_version = 1;
  plain.snapshot_fingerprint = 7;
  plain.source = "dataset:dblp-s";
  manifest.entries.push_back(plain);

  ASSERT_TRUE(storage::SaveManifest(manifest, Path("MANIFEST")).ok());
  storage::Manifest loaded;
  ASSERT_TRUE(storage::LoadManifest(Path("MANIFEST"), &loaded).ok());
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].name, e.name);
  EXPECT_EQ(loaded.entries[0].wal_file, "snap.0.wal");
  EXPECT_EQ(loaded.entries[0].snapshot_version, 42u);
  EXPECT_EQ(loaded.entries[0].snapshot_fingerprint, e.snapshot_fingerprint);
  EXPECT_EQ(loaded.entries[0].source, "");
  EXPECT_EQ(loaded.entries[1].wal_file, "");
  EXPECT_EQ(loaded.entries[1].source, "dataset:dblp-s");
}

TEST_F(StorageTest, ManifestRejectsTampering) {
  storage::Manifest manifest;
  storage::ManifestEntry e;
  e.name = "g";
  e.snapshot_file = "g.0.fcg2";
  e.snapshot_version = 1;
  manifest.entries.push_back(e);
  ASSERT_TRUE(storage::SaveManifest(manifest, Path("MANIFEST")).ok());

  std::string bytes = ReadBytes(Path("MANIFEST"));
  std::string tampered = bytes;
  size_t pos = tampered.find("g.0.fcg2");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] = 'x';
  WriteBytes(Path("MANIFEST"), tampered);
  storage::Manifest loaded;
  EXPECT_TRUE(storage::LoadManifest(Path("MANIFEST"), &loaded).IsCorruption());

  storage::Manifest missing;
  EXPECT_TRUE(storage::LoadManifest(Path("NOPE"), &missing).IsNotFound());
}

// ---------------------------------------------------------- StorageManager --

std::unique_ptr<storage::StorageManager> OpenManager(
    const std::string& dir, size_t wal_threshold = 1000) {
  storage::StorageManager::Options options;
  options.wal_compaction_threshold = wal_threshold;
  std::unique_ptr<storage::StorageManager> manager;
  Status status = storage::StorageManager::Open(dir, options, &manager);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return manager;
}

TEST_F(StorageTest, ManagerPersistAndRecoverSnapshotOnly) {
  AttributedGraph g = RandomAttributedGraph(70, 0.1, 21);
  const uint64_t fp = GraphFingerprint(g);
  {
    auto manager = OpenManager(Path("data"));
    ASSERT_TRUE(manager->PersistGraph("g", g, 0, fp, "test").ok());
  }  // dropped with no shutdown handshake

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].name, "g");
  EXPECT_EQ(recovered[0].version, 0u);
  EXPECT_EQ(recovered[0].fingerprint, fp);
  EXPECT_EQ(recovered[0].source, "test");
  EXPECT_EQ(GraphFingerprint(*recovered[0].graph), fp);
  EXPECT_EQ(manager->counters().recoveries, 1u);
}

TEST_F(StorageTest, ManagerWalReplayRecoversUncompactedTail) {
  AttributedGraph base = RandomAttributedGraph(50, 0.15, 33);
  uint64_t final_fp = 0, final_version = 0;
  {
    auto manager = OpenManager(Path("data"));
    ASSERT_TRUE(
        manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());
    DynamicGraph dyn(base);
    for (int b = 0; b < 4; ++b) {
      std::vector<UpdateOp> batch = {
          AddVertexOp(b % 2 == 0 ? Attribute::kA : Attribute::kB),
          AddEdgeOp(static_cast<VertexId>(b), dyn.num_vertices())};
      UpdateSummary summary;
      ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
      ASSERT_TRUE(manager->AppendUpdate("g", summary, batch).ok());
    }
    final_fp = dyn.fingerprint();
    final_version = dyn.version();
    EXPECT_EQ(manager->counters().wal_records_appended, 4u);
  }

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].version, final_version);
  EXPECT_EQ(recovered[0].fingerprint, final_fp);
  EXPECT_EQ(recovered[0].wal_records_replayed, 4u);
  EXPECT_EQ(GraphFingerprint(*recovered[0].graph), final_fp);
}

TEST_F(StorageTest, ManagerRecoveryToleratesTornWalTail) {
  AttributedGraph base = RandomAttributedGraph(40, 0.15, 35);
  uint64_t fp_after_two = 0;
  std::string wal_file;
  {
    auto manager = OpenManager(Path("data"));
    ASSERT_TRUE(
        manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());
    DynamicGraph dyn(base);
    for (int b = 0; b < 3; ++b) {
      std::vector<UpdateOp> batch = {AddVertexOp(Attribute::kB)};
      UpdateSummary summary;
      ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
      ASSERT_TRUE(manager->AppendUpdate("g", summary, batch).ok());
      if (b == 1) fp_after_two = dyn.fingerprint();
    }
  }
  // Tear the last record, as a crash mid-append would.
  for (const auto& entry : std::filesystem::directory_iterator(Path("data"))) {
    if (entry.path().extension() == ".wal") {
      wal_file = entry.path().string();
    }
  }
  ASSERT_FALSE(wal_file.empty());
  std::string bytes = ReadBytes(wal_file);
  WriteBytes(wal_file, bytes.substr(0, bytes.size() - 3));

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].version, 2u);
  EXPECT_EQ(recovered[0].fingerprint, fp_after_two);
  // The torn tail was truncated away: a second recovery replays cleanly.
  auto manager2 = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> again;
  ASSERT_TRUE(manager2->RecoverAll(&again).ok());
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].version, 2u);
  EXPECT_EQ(again[0].fingerprint, fp_after_two);
}

TEST_F(StorageTest, RecoveryRefusesWalWithMidFileCorruption) {
  // End to end: a graph whose WAL is corrupted mid-file must be SKIPPED by
  // recovery (counted in recover_failures), never served at a silently
  // truncated epoch.
  AttributedGraph base = RandomAttributedGraph(40, 0.15, 77);
  std::string wal_file;
  {
    auto manager = OpenManager(Path("data"));
    ASSERT_TRUE(
        manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());
    DynamicGraph dyn(base);
    for (int b = 0; b < 3; ++b) {
      std::vector<UpdateOp> batch = {AddVertexOp(Attribute::kB)};
      UpdateSummary summary;
      ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
      ASSERT_TRUE(manager->AppendUpdate("g", summary, batch).ok());
    }
  }
  for (const auto& entry : std::filesystem::directory_iterator(Path("data"))) {
    if (entry.path().extension() == ".wal") wal_file = entry.path().string();
  }
  ASSERT_FALSE(wal_file.empty());
  std::string bytes = ReadBytes(wal_file);
  bytes[18] = static_cast<char>(bytes[18] ^ 0x55);  // inside record 1
  WriteBytes(wal_file, bytes);

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  EXPECT_TRUE(recovered.empty());
  EXPECT_EQ(manager->counters().recover_failures, 1u);
  EXPECT_EQ(manager->counters().recoveries, 0u);

  // The stripe is poisoned: appending to the unrecoverable log must be
  // refused — an fsync'd ack into that file could never be replayed. Only
  // a snapshot rewrite may supersede it.
  DynamicGraph dyn(base);
  std::vector<UpdateOp> batch = {AddVertexOp(Attribute::kA)};
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
  EXPECT_TRUE(manager->AppendUpdate("g", summary, batch).IsIOError());
}

TEST_F(StorageTest, StaleUnchainedWalPoisonsAppendsUntilRecovery) {
  // A manifest-referenced WAL whose records do not chain from the snapshot
  // (a crashed rewrite's leftover). Open must refuse to append after it —
  // an fsync'd ack there would be discarded by the next recovery — until
  // RecoverAll truncates the stale log away.
  AttributedGraph base = MakeGraph("aabb", {{0, 1}, {1, 2}});
  const uint64_t fp = GraphFingerprint(base);
  std::filesystem::create_directories(Path("data"));
  ASSERT_TRUE(storage::SaveFcg2(base, Path("data/g-x.0.snap.fcg2")).ok());
  storage::WalRecord stale;
  stale.base_fingerprint = 0xDEAD;  // does not chain from the snapshot
  stale.fingerprint = 0xBEEF;
  stale.version = 7;
  stale.ops = {AddVertexOp(Attribute::kA)};
  ASSERT_TRUE(
      storage::AppendWalRecord(Path("data/g-x.0.snap.fcg2.wal"), stale).ok());
  storage::Manifest manifest;
  storage::ManifestEntry entry;
  entry.name = "g";
  entry.snapshot_file = "g-x.0.snap.fcg2";
  entry.wal_file = "g-x.0.snap.fcg2.wal";
  entry.snapshot_version = 0;
  entry.snapshot_fingerprint = fp;
  manifest.entries.push_back(entry);
  ASSERT_TRUE(storage::SaveManifest(manifest, Path("data/MANIFEST")).ok());

  auto manager = OpenManager(Path("data"));
  DynamicGraph dyn(base);
  std::vector<UpdateOp> batch = {AddEdgeOp(0, 2)};
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
  EXPECT_TRUE(manager->AppendUpdate("g", summary, batch).IsIOError());

  // RecoverAll proves nothing replays, truncates the stale log, and
  // un-poisons: the same append then succeeds and is replayable.
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].version, 0u);
  EXPECT_EQ(recovered[0].wal_records_replayed, 0u);
  ASSERT_TRUE(manager->AppendUpdate("g", summary, batch).ok());
  auto manager2 = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> again;
  ASSERT_TRUE(manager2->RecoverAll(&again).ok());
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].version, summary.version);
  EXPECT_EQ(again[0].fingerprint, summary.fingerprint);
}

TEST_F(StorageTest, ForgetTombstonesRacingWriteThrough) {
  // An OnReplace that lost its race against Forget (the registry calls the
  // storage write-through outside its publish lock) must not resurrect the
  // evicted graph's durable state; an explicit re-persist clears the
  // tombstone.
  AttributedGraph base = MakeGraph("aabb", {{0, 1}, {1, 2}});
  auto manager = OpenManager(Path("data"));
  ASSERT_TRUE(
      manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());
  ASSERT_TRUE(manager->Forget("g").ok());

  DynamicGraph dyn(base);
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(0, 2)}, &summary).ok());
  ASSERT_TRUE(
      manager->OnReplace("g", *dyn.snapshot(), summary.version,
                         summary.fingerprint)
          .ok());
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  EXPECT_TRUE(recovered.empty());  // the race did not resurrect "g"

  ASSERT_TRUE(
      manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
}

TEST_F(StorageTest, AppendTicketMoveTransfersWaitObligation) {
  AttributedGraph base = MakeGraph("aabb", {{0, 1}, {1, 2}});
  auto manager = OpenManager(Path("data"));
  ASSERT_TRUE(
      manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());
  DynamicGraph dyn(base);
  std::vector<UpdateOp> batch = {AddEdgeOp(0, 2)};
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply(batch, &summary).ok());

  storage::StorageManager::AppendTicket a;
  ASSERT_TRUE(manager->AppendUpdateAsync("g", summary, batch, &a).ok());
  storage::StorageManager::AppendTicket b = std::move(a);
  EXPECT_TRUE(a.Wait().ok());  // moved-from: resolved, owes nothing
  EXPECT_TRUE(b.Wait().ok());  // the obligation traveled with the move
  EXPECT_TRUE(b.Wait().ok());  // idempotent
  EXPECT_EQ(manager->counters().wal_records_appended, 1u);

  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].fingerprint, summary.fingerprint);
}

// --------------------------------------------- group-commit multi-writer --

/// The tentpole's end-to-end proof: several graphs, several writer threads
/// per graph, every batch appended through the two-phase group-commit API
/// (enqueue under the graph's ordering lock, wait outside it), then the
/// whole service is dropped with NO shutdown handshake and NO Replace
/// write-through — the WAL is the only durability — and recovery must
/// rebuild, for every graph, a fingerprint-chain-consistent state
/// containing every acknowledged batch.
TEST_F(StorageTest, GroupCommitConcurrentWritersRecoverEveryAckedBatch) {
  constexpr int kGraphs = 3;
  constexpr int kWritersPerGraph = 2;
  constexpr int kBatchesPerWriter = 12;

  struct GraphLane {
    std::string name;
    std::unique_ptr<DynamicGraph> dyn;
    std::mutex order_mu;  // holds (Apply, AppendUpdateAsync) together
    std::mutex ack_mu;
    std::map<uint64_t, uint64_t> acked;  // version -> fingerprint
  };
  std::vector<GraphLane> lanes(kGraphs);

  uint64_t groups_committed = 0;
  {
    storage::StorageManager::Options options;
    options.wal_compaction_threshold = 1000;  // keep every record in the WAL
    options.group_commit = true;
    std::unique_ptr<storage::StorageManager> manager;
    ASSERT_TRUE(
        storage::StorageManager::Open(Path("data"), options, &manager).ok());

    for (int g = 0; g < kGraphs; ++g) {
      lanes[g].name = "lane-" + std::to_string(g);
      AttributedGraph base =
          RandomAttributedGraph(30, 0.15, 100 + static_cast<uint64_t>(g));
      ASSERT_TRUE(manager
                      ->PersistGraph(lanes[g].name, base, 0,
                                     GraphFingerprint(base), "stress")
                      .ok());
      lanes[g].dyn = std::make_unique<DynamicGraph>(base);
    }

    std::atomic<int> errors{0};
    std::vector<std::thread> writers;
    for (int g = 0; g < kGraphs; ++g) {
      for (int w = 0; w < kWritersPerGraph; ++w) {
        writers.emplace_back([&, g, w] {
          GraphLane& lane = lanes[g];
          for (int b = 0; b < kBatchesPerWriter; ++b) {
            std::vector<UpdateOp> batch = {
                AddVertexOp(w % 2 == 0 ? Attribute::kA : Attribute::kB)};
            UpdateSummary summary;
            storage::StorageManager::AppendTicket ticket;
            Status status;
            {
              std::lock_guard<std::mutex> lock(lane.order_mu);
              status = lane.dyn->Apply(batch, &summary);
              if (status.ok()) {
                status = manager->AppendUpdateAsync(lane.name, summary,
                                                    batch, &ticket);
              }
            }
            // Durability arrives OUTSIDE the ordering lock: this is where
            // batches of all six writers share fsyncs.
            if (status.ok()) status = ticket.Wait();
            if (!status.ok()) {
              errors.fetch_add(1);
              continue;
            }
            std::lock_guard<std::mutex> lock(lane.ack_mu);
            lane.acked[summary.version] = summary.fingerprint;
          }
        });
      }
    }
    for (std::thread& t : writers) t.join();
    ASSERT_EQ(errors.load(), 0);

    storage::StorageCounters counters = manager->counters();
    EXPECT_EQ(counters.wal_records_appended,
              static_cast<uint64_t>(kGraphs * kWritersPerGraph *
                                    kBatchesPerWriter));
    groups_committed = counters.wal_group_commits;
    EXPECT_GE(groups_committed, 1u);
    EXPECT_LE(groups_committed, counters.wal_records_appended);
    // SIGKILL semantics: scope exit drops everything un-flushed; only the
    // fsync'd WAL and snapshots survive. No OnReplace ever ran.
  }

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), static_cast<size_t>(kGraphs));
  for (const storage::RecoveredGraph& r : recovered) {
    const GraphLane* lane = nullptr;
    for (const GraphLane& l : lanes) {
      if (l.name == r.name) lane = &l;
    }
    ASSERT_NE(lane, nullptr) << r.name;
    ASSERT_FALSE(lane->acked.empty());
    const auto [last_version, last_fp] = *lane->acked.rbegin();
    // Every acknowledged batch is in the recovered state, at the exact
    // fingerprint its ack promised — the write-ahead contract under
    // grouping.
    EXPECT_EQ(r.version, last_version) << r.name;
    EXPECT_EQ(r.fingerprint, last_fp) << r.name;
    EXPECT_EQ(r.wal_records_replayed, lane->acked.size()) << r.name;
    EXPECT_EQ(GraphFingerprint(*r.graph), last_fp) << r.name;
  }
}

/// Compaction under concurrent multi-graph write pressure: one graph's
/// snapshot rewrites (threshold crossings) must not corrupt another's
/// chain, and recovery equivalence must hold afterwards.
TEST_F(StorageTest, ConcurrentReplaceCompactionKeepsEveryGraphConsistent) {
  constexpr int kGraphs = 3;
  constexpr int kBatches = 10;

  struct Final {
    std::string name;
    uint64_t version = 0;
    uint64_t fingerprint = 0;
  };
  std::vector<Final> finals(kGraphs);
  {
    storage::StorageManager::Options options;
    options.wal_compaction_threshold = 3;  // force several compactions
    options.group_commit = true;
    std::unique_ptr<storage::StorageManager> manager;
    ASSERT_TRUE(
        storage::StorageManager::Open(Path("data"), options, &manager).ok());

    std::atomic<int> errors{0};
    std::vector<std::thread> writers;
    for (int g = 0; g < kGraphs; ++g) {
      writers.emplace_back([&, g] {
        const std::string name = "cg-" + std::to_string(g);
        AttributedGraph base =
            RandomAttributedGraph(25, 0.2, 200 + static_cast<uint64_t>(g));
        if (!manager
                 ->PersistGraph(name, base, 0, GraphFingerprint(base), "c")
                 .ok()) {
          errors.fetch_add(1);
          return;
        }
        DynamicGraph dyn(base);
        for (int b = 0; b < kBatches; ++b) {
          std::vector<UpdateOp> batch = {
              AddVertexOp(Attribute::kA),
              AddEdgeOp(static_cast<VertexId>(b), dyn.num_vertices())};
          UpdateSummary summary;
          if (!dyn.Apply(batch, &summary).ok() ||
              !manager->AppendUpdate(name, summary, batch).ok() ||
              !manager
                   ->OnReplace(name, *dyn.snapshot(), summary.version,
                               summary.fingerprint)
                   .ok()) {
            errors.fetch_add(1);
            return;
          }
        }
        finals[g] = {name, dyn.version(), dyn.fingerprint()};
      });
    }
    for (std::thread& t : writers) t.join();
    ASSERT_EQ(errors.load(), 0);
    EXPECT_GT(manager->counters().compactions, 0u);
  }

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), static_cast<size_t>(kGraphs));
  for (const storage::RecoveredGraph& r : recovered) {
    const Final* fin = nullptr;
    for (const Final& f : finals) {
      if (f.name == r.name) fin = &f;
    }
    ASSERT_NE(fin, nullptr) << r.name;
    EXPECT_EQ(r.version, fin->version) << r.name;
    EXPECT_EQ(r.fingerprint, fin->fingerprint) << r.name;
    EXPECT_EQ(GraphFingerprint(*r.graph), fin->fingerprint) << r.name;
  }
}

TEST_F(StorageTest, OnReplaceIgnoresStaleEpochs) {
  // The write-through may reach storage out of publish order (the registry
  // releases its lock before calling it); an older epoch must be ignored,
  // never allowed to regress the durable snapshot.
  AttributedGraph base = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}});
  auto manager = OpenManager(Path("data"));
  ASSERT_TRUE(
      manager->PersistGraph("g", base, 0, GraphFingerprint(base), "t").ok());

  DynamicGraph dyn(base);
  UpdateSummary s1, s2;
  std::vector<UpdateOp> b1 = {AddEdgeOp(0, 2)};
  std::vector<UpdateOp> b2 = {AddEdgeOp(0, 3)};
  ASSERT_TRUE(dyn.Apply(b1, &s1).ok());
  auto snap1 = dyn.snapshot();
  ASSERT_TRUE(manager->AppendUpdate("g", s1, b1).ok());
  ASSERT_TRUE(dyn.Apply(b2, &s2).ok());
  ASSERT_TRUE(manager->AppendUpdate("g", s2, b2).ok());

  // Newest epoch handled first; the stale one must be a no-op rather than
  // a snapshot rewrite back to version 1.
  ASSERT_TRUE(
      manager->OnReplace("g", *dyn.snapshot(), s2.version, s2.fingerprint)
          .ok());
  const uint64_t snapshots_after_v2 = manager->counters().snapshots_written;
  ASSERT_TRUE(
      manager->OnReplace("g", *snap1, s1.version, s1.fingerprint).ok());
  EXPECT_EQ(manager->counters().snapshots_written, snapshots_after_v2);

  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].version, s2.version);
  EXPECT_EQ(recovered[0].fingerprint, s2.fingerprint);
}

TEST_F(StorageTest, ManagerForgetRemovesDurableState) {
  AttributedGraph g = RandomAttributedGraph(30, 0.2, 12);
  {
    auto manager = OpenManager(Path("data"));
    ASSERT_TRUE(
        manager->PersistGraph("g", g, 0, GraphFingerprint(g), "t").ok());
    ASSERT_TRUE(manager->Forget("g").ok());
    EXPECT_TRUE(manager->Forget("never-existed").ok());
  }
  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  EXPECT_TRUE(recovered.empty());
  // Only the manifest remains in the dir.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(Path("data"))) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

// ------------------------------------------------- registry write-through --

TEST_F(StorageTest, RegistryWriteThroughPersistsAndForgets) {
  AttributedGraph g = RandomAttributedGraph(40, 0.2, 17);
  const uint64_t fp = GraphFingerprint(g);
  {
    auto manager = OpenManager(Path("data"));
    GraphRegistry registry;
    registry.AttachStorage(manager.get());
    ASSERT_TRUE(registry.Add("a", g, "test").ok());
    ASSERT_TRUE(registry.Add("b", g, "test").ok());
    EXPECT_EQ(manager->counters().snapshots_written, 2u);
    EXPECT_TRUE(registry.Evict("b"));
  }
  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].name, "a");
  EXPECT_EQ(recovered[0].fingerprint, fp);
}

TEST_F(StorageTest, RegistryReplaceWithoutWalRewritesSnapshot) {
  // A Replace that bypassed AppendUpdate must still become durable: the
  // write-through detects the uncovered epoch and snapshots it.
  AttributedGraph g = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}});
  auto manager = OpenManager(Path("data"));
  GraphRegistry registry;
  registry.AttachStorage(manager.get());
  ASSERT_TRUE(registry.Add("g", g, "t").ok());

  DynamicGraph dyn(g);
  UpdateSummary summary;
  ASSERT_TRUE(dyn.Apply({AddEdgeOp(0, 3)}, &summary).ok());
  ASSERT_TRUE(
      registry.Replace("g", dyn.snapshot(), summary.version, &summary).ok());
  EXPECT_EQ(manager->counters().snapshots_written, 2u);

  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].version, 1u);
  EXPECT_EQ(recovered[0].fingerprint, dyn.fingerprint());
}

TEST_F(StorageTest, CompactionTruncatesWalAndStaysRecoverable) {
  AttributedGraph base = RandomAttributedGraph(40, 0.15, 51);
  auto manager = OpenManager(Path("data"), /*wal_threshold=*/2);
  GraphRegistry registry;
  registry.AttachStorage(manager.get());
  ASSERT_TRUE(registry.Add("g", base, "t").ok());

  DynamicGraph dyn(base);
  for (int b = 0; b < 5; ++b) {
    std::vector<UpdateOp> batch = {AddVertexOp(Attribute::kA)};
    UpdateSummary summary;
    ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
    ASSERT_TRUE(manager->AppendUpdate("g", summary, batch).ok());
    ASSERT_TRUE(
        registry.Replace("g", dyn.snapshot(), summary.version, &summary).ok());
  }
  storage::StorageCounters counters = manager->counters();
  EXPECT_GT(counters.compactions, 0u);

  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].version, 5u);
  EXPECT_EQ(recovered[0].fingerprint, dyn.fingerprint());
}

// -------------------------------------------------------------- warm file --

TEST_F(StorageTest, WarmFileRoundTripAndTamperRejection) {
  storage::WarmEntry w;
  w.key = "0123456789abcdef|k=2;d=1";
  w.fingerprint = 0x123456789abcdef0ull;
  w.clique.vertices = {4, 7, 9};
  w.clique.attr_counts[Attribute::kA] = 2;
  w.clique.attr_counts[Attribute::kB] = 1;
  w.has_params = true;
  w.params = {2, 1};
  ASSERT_TRUE(storage::SaveWarmFile(Path("warm"), {&w, 1}).ok());

  std::vector<storage::WarmEntry> loaded;
  ASSERT_TRUE(storage::LoadWarmFile(Path("warm"), &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].key, w.key);
  EXPECT_EQ(loaded[0].fingerprint, w.fingerprint);
  EXPECT_EQ(loaded[0].clique.vertices, w.clique.vertices);
  EXPECT_EQ(loaded[0].params.k, 2);
  EXPECT_EQ(loaded[0].params.delta, 1);

  std::string bytes = ReadBytes(Path("warm"));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  WriteBytes(Path("warm"), bytes);
  EXPECT_TRUE(storage::LoadWarmFile(Path("warm"), &loaded).IsCorruption());
}

// ----------------------------------------------- end-to-end recovery proof --

/// The acceptance scenario: two graphs (one with an uncompacted WAL tail),
/// answers cached and persisted, SIGKILL-style teardown, then a restart
/// must serve byte-identical verifier-checked answers at the correct epochs
/// without searching.
TEST_F(StorageTest, RecoveryServesByteIdenticalVerifiedAnswers) {
  SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  AttributedGraph g1 = RandomAttributedGraph(60, 0.2, 71);
  AttributedGraph g2 = RandomAttributedGraph(50, 0.25, 72);

  std::vector<VertexId> witness1, witness2;
  uint64_t version1 = 0;
  {
    auto manager = OpenManager(Path("data"));
    GraphRegistry registry;
    ResultCache cache(64);
    registry.AttachCache(&cache);
    registry.AttachStorage(manager.get());
    QueryExecutor executor(ExecutorOptions{1, 16}, &cache);
    ASSERT_TRUE(registry.Add("updated", g1, "t1").ok());
    ASSERT_TRUE(registry.Add("static", g2, "t2").ok());

    // Three WAL-logged batches on "updated", left uncompacted.
    DynamicGraph dyn(g1);
    for (int b = 0; b < 3; ++b) {
      std::vector<UpdateOp> batch = {
          AddVertexOp(Attribute::kB),
          AddEdgeOp(static_cast<VertexId>(b), static_cast<VertexId>(b + 10))};
      UpdateSummary summary;
      ASSERT_TRUE(dyn.Apply(batch, &summary).ok());
      ASSERT_TRUE(manager->AppendUpdate("updated", summary, batch).ok());
      ASSERT_TRUE(
          registry.Replace("updated", dyn.snapshot(), summary.version,
                           &summary)
              .ok());
    }
    version1 = 3;

    for (const char* name : {"updated", "static"}) {
      QueryRequest request;
      request.graph = registry.Get(name);
      request.options = options;
      QueryResponse response = executor.Run(request);
      ASSERT_TRUE(response.status.ok() && response.result != nullptr);
      if (std::string(name) == "updated") {
        witness1 = response.result->clique.vertices;
      } else {
        witness2 = response.result->clique.vertices;
      }
    }
    ASSERT_FALSE(witness1.empty());
    ASSERT_FALSE(witness2.empty());
    ASSERT_TRUE(manager->SaveWarmEntries(cache.ExportWarmEntries()).ok());
    // SIGKILL: no drains, no handshakes — scope exit drops everything.
  }

  auto manager = OpenManager(Path("data"));
  std::vector<storage::RecoveredGraph> recovered;
  ASSERT_TRUE(manager->RecoverAll(&recovered).ok());
  ASSERT_EQ(recovered.size(), 2u);

  GraphRegistry registry;
  ResultCache cache(64);
  registry.AttachCache(&cache);
  QueryExecutor executor(ExecutorOptions{1, 16}, &cache);
  for (storage::RecoveredGraph& r : recovered) {
    ASSERT_TRUE(registry.Restore(r.name, r.graph, r.version, r.source).ok());
  }
  EXPECT_EQ(registry.Get("updated")->version, version1);
  EXPECT_EQ(registry.Get("static")->version, 0u);

  // Restore the warm file with the verifier gate; include one tampered
  // entry (out-of-range vertex) to prove the gate rejects it.
  std::vector<storage::WarmEntry> warm;
  ASSERT_TRUE(manager->LoadWarmEntries(&warm).ok());
  ASSERT_EQ(warm.size(), 2u);
  {
    storage::WarmEntry tampered = warm[0];
    tampered.clique.vertices.back() = 1u << 30;  // not a vertex of any graph
    warm.push_back(tampered);
  }
  WarmRestoreOutcome outcome =
      RestoreWarmEntries(registry, &cache, std::move(warm));
  EXPECT_EQ(outcome.restored, 2u);
  EXPECT_EQ(outcome.rejected, 1u);

  // Both graphs now serve the byte-identical witnesses, warm, verified.
  for (const char* name : {"updated", "static"}) {
    QueryRequest request;
    request.graph = registry.Get(name);
    request.options = options;
    QueryResponse response = executor.Run(request);
    ASSERT_TRUE(response.status.ok() && response.result != nullptr);
    EXPECT_TRUE(response.cache_hit) << name;
    const std::vector<VertexId>& expected =
        std::string(name) == "updated" ? witness1 : witness2;
    EXPECT_EQ(response.result->clique.vertices, expected) << name;
    EXPECT_TRUE(VerifyFairClique(*registry.Get(name)->graph,
                                 response.result->clique.vertices,
                                 options.params)
                    .ok())
        << name;
  }
}

// ------------------------------------------------- registry format sniffs --

TEST_F(StorageTest, RegistryAutoSniffsAllFormats) {
  AttributedGraph g = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}, {0, 2}});

  ASSERT_TRUE(SaveBinaryGraph(g, Path("g.fcg")).ok());
  ASSERT_TRUE(SaveFcg2(g, Path("g.fcg2")).ok());
  ASSERT_TRUE(SaveEdgeList(g, Path("g.txt")).ok());
  ASSERT_TRUE(SaveAttributes(g, Path("g.attrs")).ok());
  // METIS with the '%' comment convention the sniffer keys on.
  WriteBytes(Path("g.metis"),
             "% a METIS file\n4 4\n% adjacency, 1-based\n2 3\n1 3\n1 2 4\n3\n");

  GraphRegistry registry;
  ASSERT_TRUE(registry.Load("fcg1", Path("g.fcg")).ok());
  ASSERT_TRUE(registry.Load("fcg2", Path("g.fcg2")).ok());
  ASSERT_TRUE(registry.Load("text", Path("g.txt"), Path("g.attrs")).ok());
  ASSERT_TRUE(registry.Load("metis", Path("g.metis")).ok());

  const uint64_t fp = GraphFingerprint(g);
  EXPECT_EQ(registry.Get("fcg1")->fingerprint, fp);
  EXPECT_EQ(registry.Get("fcg2")->fingerprint, fp);
  EXPECT_EQ(registry.Get("text")->fingerprint, fp);
  // The METIS stand-in has the same edges but default attributes.
  EXPECT_EQ(EdgesOf(*registry.Get("metis")->graph), EdgesOf(g));

  // Explicit formats still work, and kMetis accepts an attribute file.
  ASSERT_TRUE(registry
                  .Load("metis_attrs", Path("g.metis"), Path("g.attrs"),
                        GraphFormat::kMetis)
                  .ok());
  EXPECT_EQ(registry.Get("metis_attrs")->fingerprint, fp);
}

TEST_F(StorageTest, SameContentUnderTwoNamesSharesOneCacheFingerprint) {
  AttributedGraph g = RandomAttributedGraph(40, 0.25, 91);
  ASSERT_TRUE(SaveFcg2(g, Path("g.fcg2")).ok());

  GraphRegistry registry;
  ResultCache cache(32);
  registry.AttachCache(&cache);
  QueryExecutor executor(ExecutorOptions{1, 16}, &cache);
  ASSERT_TRUE(registry.Load("first", Path("g.fcg2")).ok());
  ASSERT_TRUE(registry.Load("second", Path("g.fcg2")).ok());
  ASSERT_EQ(registry.Get("first")->fingerprint,
            registry.Get("second")->fingerprint);

  SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  QueryRequest request;
  request.graph = registry.Get("first");
  request.options = options;
  QueryResponse cold = executor.Run(request);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);

  request.graph = registry.Get("second");
  QueryResponse warm = executor.Run(request);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);  // same fingerprint, same key, one entry
  EXPECT_EQ(warm.result->clique.vertices, cold.result->clique.vertices);

  // Evicting one name keeps the shared entry alive for the other.
  EXPECT_TRUE(registry.Evict("first"));
  request.graph = registry.Get("second");
  QueryResponse still_warm = executor.Run(request);
  EXPECT_TRUE(still_warm.cache_hit);
}

}  // namespace
}  // namespace fairclique
