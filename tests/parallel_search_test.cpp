#include <gtest/gtest.h>

#include "core/enumeration.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "datasets/datasets.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::RandomAttributedGraph;

// A graph with many mid-size components, each containing a fair clique, so
// the parallel path actually distributes work.
AttributedGraph ManyComponentGraph(uint64_t seed, int components) {
  Rng rng(seed);
  GraphBuilder builder(static_cast<VertexId>(components * 30));
  for (int c = 0; c < components; ++c) {
    VertexId base = static_cast<VertexId>(c * 30);
    // Random component-local edges.
    for (VertexId u = 0; u < 30; ++u) {
      for (VertexId v = u + 1; v < 30; ++v) {
        if (rng.NextBool(0.25)) builder.AddEdge(base + u, base + v);
      }
    }
    // A planted balanced clique of size 6..12 inside the component.
    uint32_t size = static_cast<uint32_t>(rng.NextInRange(6, 12));
    std::vector<uint64_t> members = rng.SampleDistinct(30, size);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        builder.AddEdge(base + static_cast<VertexId>(members[i]),
                        base + static_cast<VertexId>(members[j]));
      }
    }
    for (VertexId u = 0; u < 30; ++u) {
      builder.SetAttribute(base + u,
                           rng.NextBool(0.5) ? Attribute::kA : Attribute::kB);
    }
  }
  return builder.Build();
}

TEST(ParallelSearchTest, MatchesSequentialAnswerSize) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    AttributedGraph g = ManyComponentGraph(seed, 12);
    for (int threads : {2, 4, 8}) {
      SearchOptions seq = FullOptions(2, 2, ExtraBound::kColorfulDegeneracy);
      seq.num_threads = 1;
      SearchOptions par = seq;
      par.num_threads = threads;
      SearchResult rs = FindMaximumFairClique(g, seq);
      SearchResult rp = FindMaximumFairClique(g, par);
      EXPECT_EQ(rs.clique.size(), rp.clique.size())
          << "seed=" << seed << " threads=" << threads;
      if (!rp.clique.empty()) {
        EXPECT_TRUE(VerifyFairClique(g, rp.clique.vertices, {2, 2}).ok());
      }
      EXPECT_TRUE(rp.stats.completed);
    }
  }
}

TEST(ParallelSearchTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    AttributedGraph g = RandomAttributedGraph(40, 0.3, seed);
    FairnessParams params{2, 1};
    CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);
    SearchOptions opts = BoundedOptions(2, 1, ExtraBound::kColorfulPath);
    opts.num_threads = 4;
    SearchResult r = FindMaximumFairClique(g, opts);
    EXPECT_EQ(r.clique.size(), oracle.size()) << "seed " << seed;
  }
}

TEST(ParallelSearchTest, ZeroMeansHardwareConcurrency) {
  AttributedGraph g = ManyComponentGraph(21, 6);
  SearchOptions opts = BaselineOptions(2, 2);
  opts.num_threads = 0;  // hardware concurrency
  SearchResult r = FindMaximumFairClique(g, opts);
  SearchOptions seq = opts;
  seq.num_threads = 1;
  SearchResult rs = FindMaximumFairClique(g, seq);
  EXPECT_EQ(r.clique.size(), rs.clique.size());
}

TEST(ParallelSearchTest, DatasetScaleAgreement) {
  AttributedGraph g = LoadDataset("dblp-s", 0.5);
  SearchOptions seq = FullOptions(5, 2, ExtraBound::kColorfulPath);
  SearchOptions par = seq;
  par.num_threads = 4;
  SearchResult rs = FindMaximumFairClique(g, seq);
  SearchResult rp = FindMaximumFairClique(g, par);
  EXPECT_EQ(rs.clique.size(), rp.clique.size());
}

TEST(ParallelSearchTest, ManyTrivialComponentsDoNotCrash) {
  // 200 isolated edges: every component is skipped as too small.
  GraphBuilder builder(400);
  for (VertexId v = 0; v < 400; v += 2) {
    builder.AddEdge(v, v + 1);
    builder.SetAttribute(v, Attribute::kA);
    builder.SetAttribute(v + 1, Attribute::kB);
  }
  AttributedGraph g = builder.Build();
  SearchOptions opts = BaselineOptions(2, 1);
  opts.num_threads = 8;
  SearchResult r = FindMaximumFairClique(g, opts);
  EXPECT_TRUE(r.clique.empty());  // (2,*) needs 4 vertices.
}

}  // namespace
}  // namespace fairclique
