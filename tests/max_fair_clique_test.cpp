#include <gtest/gtest.h>

#include <vector>

#include "core/enumeration.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::BruteForceMaxFairClique;
using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(MaxFairCliqueTest, PaperExample1) {
  // Fig. 1 with k = 3, delta = 1: the answer has 7 vertices — the right
  // 8-clique minus one of v11..v15 — with counts (3, 4).
  AttributedGraph g = PaperFigure1Graph();
  for (ExtraBound extra : {ExtraBound::kNone, ExtraBound::kColorfulPath}) {
    SearchResult r = FindMaximumFairClique(g, FullOptions(3, 1, extra));
    EXPECT_EQ(r.clique.size(), 7u);
    EXPECT_TRUE(IsFairClique(g, r.clique.vertices, {3, 1}));
    EXPECT_EQ(r.clique.attr_counts.a(), 3);
    EXPECT_EQ(r.clique.attr_counts.b(), 4);
  }
}

TEST(MaxFairCliqueTest, EmptyGraphHasNoFairClique) {
  AttributedGraph g = MakeGraph("", {});
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
  EXPECT_TRUE(r.clique.empty());
}

TEST(MaxFairCliqueTest, SingleAttributeGraphHasNoFairClique) {
  // All vertices 'a': cnt(b) >= k unsatisfiable.
  GraphBuilder b(6);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  AttributedGraph g = b.Build();
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 3));
  EXPECT_TRUE(r.clique.empty());
}

TEST(MaxFairCliqueTest, SingleEdgeFairForKOne) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
  EXPECT_EQ(r.clique.size(), 2u);
}

TEST(MaxFairCliqueTest, DeltaZeroForcesExactBalance) {
  // K5 with 2 a's and 3 b's: delta=0 allows only (2,2).
  GraphBuilder b(5);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  b.SetAttribute(0, Attribute::kA);
  b.SetAttribute(1, Attribute::kA);
  for (VertexId v = 2; v < 5; ++v) b.SetAttribute(v, Attribute::kB);
  AttributedGraph g = b.Build();
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(1, 0));
  EXPECT_EQ(r.clique.size(), 4u);
  EXPECT_EQ(r.clique.attr_counts.Diff(), 0);
}

TEST(MaxFairCliqueTest, InfeasibleKReturnsEmpty) {
  AttributedGraph g = RandomAttributedGraph(30, 0.2, 1);
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(20, 1));
  EXPECT_TRUE(r.clique.empty());
}

// ---- The flagship cross-check: every configuration agrees with two
// ---- independent oracles on randomized instances.

struct AgreementCase {
  uint64_t seed;
  VertexId n;
  double density;
  int k;
  int delta;
};

class OracleAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(OracleAgreementTest, AllConfigurationsMatchOracle) {
  const AgreementCase p = GetParam();
  AttributedGraph g = RandomAttributedGraph(p.n, p.density, p.seed);
  FairnessParams params{p.k, p.delta};
  CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);

  std::vector<SearchOptions> configs;
  configs.push_back(BaselineOptions(p.k, p.delta));
  for (ExtraBound extra :
       {ExtraBound::kNone, ExtraBound::kDegeneracy, ExtraBound::kHIndex,
        ExtraBound::kColorfulDegeneracy, ExtraBound::kColorfulHIndex,
        ExtraBound::kColorfulPath}) {
    configs.push_back(BoundedOptions(p.k, p.delta, extra));
    configs.push_back(FullOptions(p.k, p.delta, extra));
  }
  // Reduction ablations.
  SearchOptions no_reduce = BaselineOptions(p.k, p.delta);
  no_reduce.reductions = {false, false, false};
  configs.push_back(no_reduce);
  SearchOptions core_only = BaselineOptions(p.k, p.delta);
  core_only.reductions = {true, false, false};
  configs.push_back(core_only);

  for (size_t i = 0; i < configs.size(); ++i) {
    SearchResult r = FindMaximumFairClique(g, configs[i]);
    EXPECT_EQ(r.clique.size(), oracle.size())
        << "config " << i << " disagrees with the oracle (seed " << p.seed
        << ", k=" << p.k << ", delta=" << p.delta << ")";
    if (!r.clique.empty()) {
      EXPECT_TRUE(VerifyFairClique(g, r.clique.vertices, params).ok());
    }
    EXPECT_TRUE(r.stats.completed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, OracleAgreementTest,
    ::testing::Values(
        AgreementCase{101, 25, 0.30, 1, 0}, AgreementCase{102, 25, 0.30, 1, 2},
        AgreementCase{103, 25, 0.40, 2, 0}, AgreementCase{104, 25, 0.40, 2, 1},
        AgreementCase{105, 30, 0.35, 2, 2}, AgreementCase{106, 30, 0.35, 3, 1},
        AgreementCase{107, 30, 0.45, 3, 0}, AgreementCase{108, 30, 0.45, 2, 3},
        AgreementCase{109, 35, 0.30, 2, 1}, AgreementCase{110, 35, 0.30, 3, 2},
        AgreementCase{111, 40, 0.25, 2, 0}, AgreementCase{112, 40, 0.25, 2, 2},
        AgreementCase{113, 45, 0.20, 2, 1}, AgreementCase{114, 45, 0.35, 3, 3},
        AgreementCase{115, 50, 0.30, 3, 1}, AgreementCase{116, 50, 0.30, 4, 2},
        AgreementCase{117, 20, 0.50, 2, 0}, AgreementCase{118, 20, 0.60, 3, 1},
        AgreementCase{119, 22, 0.55, 2, 4}, AgreementCase{120, 28, 0.45, 1, 1}));

// Tiny graphs: agree with full subset enumeration (a third, even more
// primitive oracle).
TEST(MaxFairCliqueTest, MatchesSubsetBruteForceOnTinyGraphs) {
  for (uint64_t seed = 200; seed < 215; ++seed) {
    AttributedGraph g = RandomAttributedGraph(12, 0.45, seed);
    for (int k = 1; k <= 2; ++k) {
      for (int delta = 0; delta <= 2; ++delta) {
        std::vector<VertexId> brute = BruteForceMaxFairClique(g, k, delta);
        SearchResult r = FindMaximumFairClique(
            g, FullOptions(k, delta, ExtraBound::kColorfulDegeneracy));
        EXPECT_EQ(r.clique.size(), brute.size())
            << "seed=" << seed << " k=" << k << " delta=" << delta;
      }
    }
  }
}

TEST(MaxFairCliqueTest, PlantedBalancedCliqueIsFound) {
  Rng rng(77);
  AttributedGraph base = ChungLuPowerLaw(300, 6.0, 2.5, rng);
  base = AssignAttributesBernoulli(base, 0.5, rng);
  std::vector<VertexId> members;
  AttributedGraph g = PlantClique(base, 12, /*balanced=*/true, rng, &members);
  SearchResult r =
      FindMaximumFairClique(g, FullOptions(5, 2, ExtraBound::kColorfulPath));
  EXPECT_GE(r.clique.size(), 12u);
  EXPECT_TRUE(IsFairClique(g, r.clique.vertices, {5, 2}));
}

TEST(MaxFairCliqueTest, DisconnectedComponentsSearched) {
  // Two disjoint fair cliques of different sizes; the bigger one must win.
  GraphBuilder b(11);
  // Component 1: K4, 2+2.
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  b.SetAttribute(0, Attribute::kA);
  b.SetAttribute(1, Attribute::kA);
  b.SetAttribute(2, Attribute::kB);
  b.SetAttribute(3, Attribute::kB);
  // Component 2: K6, 3+3 on vertices 5..10.
  for (VertexId u = 5; u < 11; ++u) {
    for (VertexId v = u + 1; v < 11; ++v) b.AddEdge(u, v);
  }
  for (VertexId v = 5; v < 8; ++v) b.SetAttribute(v, Attribute::kA);
  for (VertexId v = 8; v < 11; ++v) b.SetAttribute(v, Attribute::kB);
  AttributedGraph g = b.Build();
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(2, 1));
  EXPECT_EQ(r.clique.size(), 6u);
  for (VertexId v : r.clique.vertices) EXPECT_GE(v, 5u);
}

TEST(MaxFairCliqueTest, NodeLimitMarksIncomplete) {
  AttributedGraph g = RandomAttributedGraph(60, 0.5, 301);
  SearchOptions opts = BaselineOptions(1, 5);
  opts.node_limit = 5;
  SearchResult r = FindMaximumFairClique(g, opts);
  EXPECT_FALSE(r.stats.completed);
}

TEST(MaxFairCliqueTest, StatsArePopulated) {
  AttributedGraph g = RandomAttributedGraph(50, 0.3, 303);
  SearchResult r =
      FindMaximumFairClique(g, FullOptions(2, 1, ExtraBound::kColorfulPath));
  EXPECT_GT(r.stats.nodes, 0u);
  EXPECT_GE(r.stats.total_micros, r.stats.search_micros);
  EXPECT_EQ(r.stats.reduction_stages.size(), 3u);
}

TEST(MaxFairCliqueTest, HeuristicPrimingNeverChangesTheAnswer) {
  for (uint64_t seed : {401u, 402u, 403u, 404u}) {
    AttributedGraph g = RandomAttributedGraph(40, 0.35, seed);
    SearchResult without =
        FindMaximumFairClique(g, BoundedOptions(2, 1, ExtraBound::kNone));
    SearchResult with =
        FindMaximumFairClique(g, FullOptions(2, 1, ExtraBound::kNone));
    EXPECT_EQ(without.clique.size(), with.clique.size()) << "seed " << seed;
  }
}

TEST(MaxFairCliqueTest, LargeDeltaBehavesLikeWeakFairness) {
  // With delta >= n the constraint reduces to cnt >= k on both sides.
  AttributedGraph g = RandomAttributedGraph(25, 0.4, 501);
  FairnessParams params{2, 25};
  CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(2, 25));
  EXPECT_EQ(r.clique.size(), oracle.size());
}

TEST(MaxFairCliqueTest, ResultVerticesAreSortedAndUnique) {
  AttributedGraph g = RandomAttributedGraph(40, 0.3, 601);
  SearchResult r = FindMaximumFairClique(g, BaselineOptions(2, 2));
  ASSERT_FALSE(r.clique.empty());
  for (size_t i = 1; i < r.clique.vertices.size(); ++i) {
    EXPECT_LT(r.clique.vertices[i - 1], r.clique.vertices[i]);
  }
}

}  // namespace
}  // namespace fairclique
