#include <gtest/gtest.h>

#include "graph/coloring.h"
#include "reduction/colorful_support.h"
#include "reduction/support_decomposition.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(SupportDecompositionTest, EmptyGraph) {
  AttributedGraph g = MakeGraph("", {});
  Coloring c = GreedyColoring(g);
  SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
  EXPECT_TRUE(d.ksup.empty());
  EXPECT_EQ(d.max_k, 0);
}

TEST(SupportDecompositionTest, TriangleFreeGraphDiesAtKOne) {
  // A path: no common neighbors anywhere, so the mixed/same-attribute
  // thresholds already fail at k = 1 for same-attribute pairs and k = 1
  // mixed pairs (need sup >= 0 ... compute directly).
  AttributedGraph g = MakeGraph("abab", {{0, 1}, {1, 2}, {2, 3}});
  Coloring c = GreedyColoring(g);
  SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
  // Mixed edges with no common neighbors survive k=1 (thresholds k-1=0)
  // but die at k=2.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(d.ksup[e], 1) << "edge " << e;
  }
}

TEST(SupportDecompositionTest, MatchesDirectReductionAtEveryK) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    AttributedGraph g = RandomAttributedGraph(45, 0.25, seed);
    Coloring c = GreedyColoring(g);
    SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
    for (int k = 1; k <= d.max_k + 1; ++k) {
      EdgeReductionResult direct = ColorfulSupReduction(g, c, k);
      std::vector<uint8_t> from_decomposition = EdgeAliveAtK(d, k);
      EXPECT_EQ(from_decomposition, direct.edge_alive)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(SupportDecompositionTest, EnhancedMatchesDirectReduction) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    AttributedGraph g = RandomAttributedGraph(40, 0.3, seed);
    Coloring c = GreedyColoring(g);
    SupportDecomposition d = ComputeEnhancedSupportNumbers(g, c);
    for (int k = 1; k <= d.max_k + 1; ++k) {
      EdgeReductionResult direct = EnColorfulSupReduction(g, c, k);
      EXPECT_EQ(EdgeAliveAtK(d, k), direct.edge_alive)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(SupportDecompositionTest, EnhancedNumbersNeverExceedPlain) {
  for (uint64_t seed : {8u, 9u}) {
    AttributedGraph g = RandomAttributedGraph(50, 0.25, seed);
    Coloring c = GreedyColoring(g);
    SupportDecomposition plain = ComputeColorfulSupportNumbers(g, c);
    SupportDecomposition enhanced = ComputeEnhancedSupportNumbers(g, c);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_LE(enhanced.ksup[e], plain.ksup[e]) << "edge " << e;
    }
    EXPECT_LE(enhanced.max_k, plain.max_k);
  }
}

TEST(SupportDecompositionTest, MaxKConsistent) {
  AttributedGraph g = RandomAttributedGraph(60, 0.3, 10);
  Coloring c = GreedyColoring(g);
  SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
  int observed_max = 0;
  for (int v : d.ksup) observed_max = std::max(observed_max, v);
  EXPECT_EQ(d.max_k, observed_max);
  // Beyond max_k nothing survives.
  EdgeReductionResult beyond = ColorfulSupReduction(g, c, d.max_k + 1);
  EXPECT_EQ(beyond.edges_left, 0u);
}

TEST(SupportDecompositionTest, PlantedCliqueEdgesHaveHighNumbers) {
  Rng rng(11);
  AttributedGraph base = ErdosRenyi(150, 0.02, rng);
  base = AssignAttributesBernoulli(base, 0.5, rng);
  std::vector<VertexId> members;
  AttributedGraph g = PlantClique(base, 12, /*balanced=*/true, rng, &members);
  Coloring c = GreedyColoring(g);
  SupportDecomposition d = ComputeColorfulSupportNumbers(g, c);
  // A balanced 12-clique (6/6) keeps its internal edges alive up to k ~ 5-6;
  // assert a conservative floor of 4.
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      EdgeId e = g.FindEdge(members[i], members[j]);
      ASSERT_NE(e, kInvalidEdge);
      EXPECT_GE(d.ksup[e], 4) << "clique edge " << members[i] << "-"
                              << members[j];
    }
  }
}

}  // namespace
}  // namespace fairclique
