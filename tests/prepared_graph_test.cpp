#include "core/prepared_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/enumeration.h"
#include "core/max_fair_clique.h"
#include "core/verifier.h"
#include "datasets/datasets.h"
#include "reduction/reduce.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

// Two balanced K4s, a balanced triangle-free path, and two isolated
// vertices: disconnected by construction, with reduction-surviving and
// reduction-pruned regions.
AttributedGraph DisconnectedGraph() {
  // Vertices 0-3: K4 "abab"; 4-7: K4 "aabb"; 8-11: path "abab"; 12-13
  // isolated "ab".
  GraphBuilder b(14);
  const char* attrs = "ababaabbababab";
  for (VertexId v = 0; v < 14; ++v) {
    b.SetAttribute(v, attrs[v] == 'a' ? Attribute::kA : Attribute::kB);
  }
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  for (VertexId u = 4; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(8, 9);
  b.AddEdge(9, 10);
  b.AddEdge(10, 11);
  return b.Build();
}

// ------------------------------------------------- original_ids round trips

// Satellite: ReductionPipelineResult::original_ids must round-trip on a
// disconnected graph — every reduced vertex maps to an input vertex with
// the same attribute, every reduced edge to an input edge, and the map is
// strictly increasing (the FilteredSubgraph contract the prepared-plan
// forwarding rule relies on).
TEST(ReductionRoundTripTest, OriginalIdsRoundTripOnDisconnectedGraph) {
  AttributedGraph g = DisconnectedGraph();
  ReductionPipelineResult reduced = ReduceForFairClique(g, 2, {});
  const AttributedGraph& rg = reduced.reduced;
  ASSERT_EQ(reduced.original_ids.size(), rg.num_vertices());
  EXPECT_TRUE(std::is_sorted(reduced.original_ids.begin(),
                             reduced.original_ids.end()));
  EXPECT_EQ(std::adjacent_find(reduced.original_ids.begin(),
                               reduced.original_ids.end()),
            reduced.original_ids.end());  // strictly increasing -> unique
  for (VertexId v = 0; v < rg.num_vertices(); ++v) {
    VertexId orig = reduced.original_ids[v];
    ASSERT_LT(orig, g.num_vertices());
    EXPECT_EQ(rg.attribute(v), g.attribute(orig));
    for (VertexId w : rg.neighbors(v)) {
      EXPECT_TRUE(g.HasEdge(orig, reduced.original_ids[w]))
          << "reduced edge {" << v << "," << w << "} has no original edge";
    }
  }
  // The k=2 colorful reductions keep the two K4s and drop the path and the
  // isolated vertices (none of which can hold a (2,*) fair clique).
  EXPECT_EQ(rg.num_vertices(), 8u);
  for (VertexId orig : reduced.original_ids) EXPECT_LT(orig, 8u);
}

TEST(ReductionRoundTripTest, EmptiedGraphYieldsEmptyIds) {
  AttributedGraph g = DisconnectedGraph();
  // k = 10 exceeds any clique in the 14-vertex graph: everything reduces
  // away, and the id map must be empty rather than stale.
  ReductionPipelineResult reduced = ReduceForFairClique(g, 10, {});
  EXPECT_EQ(reduced.reduced.num_vertices(), 0u);
  EXPECT_EQ(reduced.reduced.num_edges(), 0u);
  EXPECT_TRUE(reduced.original_ids.empty());
  EXPECT_FALSE(reduced.stages.empty());
}

// Same round trip through the PreparedGraph path: component-local ids must
// compose (component -> reduced -> input) correctly, and components must
// partition the reduced vertex set.
TEST(PreparedGraphTest, ComponentIdsRoundTripOnDisconnectedGraph) {
  AttributedGraph g = DisconnectedGraph();
  auto prepared = PrepareGraph(g, 2, {});
  ASSERT_EQ(prepared->components.size(), 2u);  // the two K4s
  std::set<VertexId> seen;
  for (const auto& comp : prepared->components) {
    ASSERT_EQ(comp->original_ids.size(), comp->graph.num_vertices());
    for (VertexId v = 0; v < comp->graph.num_vertices(); ++v) {
      VertexId orig = comp->original_ids[v];
      ASSERT_LT(orig, g.num_vertices());
      EXPECT_TRUE(seen.insert(orig).second)
          << "vertex " << orig << " appears in two components";
      EXPECT_EQ(comp->graph.attribute(v), g.attribute(orig));
      for (VertexId w : comp->graph.neighbors(v)) {
        EXPECT_TRUE(g.HasEdge(orig, comp->original_ids[w]));
      }
    }
  }
  EXPECT_EQ(seen.size(), prepared->original_ids.size());
}

TEST(PreparedGraphTest, EmptiedByReductionSearchesToEmptyAnswer) {
  AttributedGraph g = DisconnectedGraph();
  auto prepared = PrepareGraph(g, 10, {});
  EXPECT_EQ(prepared->reduced.num_vertices(), 0u);
  EXPECT_TRUE(prepared->original_ids.empty());
  EXPECT_TRUE(prepared->components.empty());

  SearchOptions options = FullOptions(10, 2, ExtraBound::kColorfulPath);
  SearchResult staged = SearchPreparedGraph(g, *prepared, options);
  EXPECT_TRUE(staged.clique.empty());
  EXPECT_TRUE(staged.stats.completed);
  SearchResult mono = FindMaximumFairClique(g, options);
  EXPECT_TRUE(mono.clique.empty());
}

// --------------------------------------------------- staged == monolithic

TEST(PreparedGraphTest, StagedPlanMatchesMonolithOnRandomGraphs) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    AttributedGraph g = RandomAttributedGraph(60, 0.2, seed);
    auto prepared = PrepareGraph(g, 2, {});
    for (int delta : {0, 1, 2}) {
      SearchOptions options = BoundedOptions(2, delta, ExtraBound::kColorfulPath);
      SearchResult staged = SearchPreparedGraph(g, *prepared, options);
      SearchResult mono = FindMaximumFairClique(g, options);
      EXPECT_EQ(staged.clique.size(), mono.clique.size())
          << "seed=" << seed << " delta=" << delta;
      if (!staged.clique.empty()) {
        EXPECT_TRUE(
            VerifyFairClique(g, staged.clique.vertices, options.params).ok());
      }
    }
  }
}

TEST(PreparedGraphTest, StagedPlanMatchesOracle) {
  for (uint64_t seed : {7u, 8u}) {
    AttributedGraph g = RandomAttributedGraph(18, 0.4, seed);
    FairnessParams params{2, 1};
    CliqueResult oracle = MaxFairCliqueByEnumeration(g, params);
    auto prepared = PrepareGraph(g, 2, {});
    SearchResult staged =
        SearchPreparedGraph(g, *prepared, BoundedOptions(2, 1,
                                                         ExtraBound::kNone));
    EXPECT_EQ(staged.clique.size(), oracle.size()) << "seed " << seed;
  }
}

// One plan serves a whole delta sweep — the reuse the PreparedGraphCache
// builds on. Answers must equal fresh monolithic searches for every delta.
TEST(PreparedGraphTest, OnePlanServesDeltaSweep) {
  AttributedGraph g = LoadDataset("dblp-s", 0.3);
  auto prepared = PrepareGraph(g, 3, {});
  for (int delta = 0; delta <= 3; ++delta) {
    SearchOptions options = BoundedOptions(3, delta, ExtraBound::kColorfulPath);
    SearchResult staged = SearchPreparedGraph(g, *prepared, options);
    SearchResult mono = FindMaximumFairClique(g, options);
    EXPECT_EQ(staged.clique.size(), mono.clique.size()) << "delta " << delta;
  }
  // The heuristic preset rides the same plan (it runs in the Branch stage).
  SearchOptions full = FullOptions(3, 1, ExtraBound::kColorfulPath);
  EXPECT_EQ(SearchPreparedGraph(g, *prepared, full).clique.size(),
            FindMaximumFairClique(g, full).clique.size());
}

// The memoized per-order positions: one plan answers under all three
// branch orders (identical sizes — ordering never changes the answer), and
// repeated queries per order reuse the memo (exercised under TSan/ASan via
// the concurrent service stress test).
TEST(PreparedGraphTest, AllBranchOrdersShareOnePlan) {
  AttributedGraph g = RandomAttributedGraph(80, 0.15, 0x0DDE);
  auto prepared = PrepareGraph(g, 2, {});
  SearchOptions base = BoundedOptions(2, 2, ExtraBound::kColorfulDegeneracy);
  size_t expected = FindMaximumFairClique(g, base).clique.size();
  for (BranchOrder order : {BranchOrder::kColorfulCore,
                            BranchOrder::kDegeneracy, BranchOrder::kDegree}) {
    SearchOptions options = base;
    options.order = order;
    for (int repeat = 0; repeat < 2; ++repeat) {
      EXPECT_EQ(SearchPreparedGraph(g, *prepared, options).clique.size(),
                expected);
    }
  }
}

TEST(PreparedGraphTest, CompatibleChecksKAndReductions) {
  AttributedGraph g = MakeGraph("abab", {{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                         {1, 3}, {2, 3}});
  auto prepared = PrepareGraph(g, 2, {});
  EXPECT_TRUE(prepared->Compatible(BaselineOptions(2, 1)));
  EXPECT_FALSE(prepared->Compatible(BaselineOptions(3, 1)));
  SearchOptions no_sup = BaselineOptions(2, 1);
  no_sup.reductions.use_colorful_sup = false;
  EXPECT_FALSE(prepared->Compatible(no_sup));
}

// Warm starts flow through the staged path identically: a valid clique
// seeds the incumbent, an invalid one is ignored.
TEST(PreparedGraphTest, SeedIncumbentVerifiesWarmStart) {
  AttributedGraph g = MakeGraph("abab", {{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                         {1, 3}, {2, 3}});
  auto prepared = PrepareGraph(g, 1, {});
  SearchOptions options = BaselineOptions(1, 0);
  options.warm_start = {0, 1};  // valid fair 2-clique
  IncumbentSeed seed = SeedIncumbent(g, *prepared, options);
  EXPECT_EQ(seed.clique.size(), 2u);

  options.warm_start = {0, 1, 2};  // |a|=2,|b|=1 violates delta=0
  seed = SeedIncumbent(g, *prepared, options);
  EXPECT_TRUE(seed.clique.empty());

  SearchResult r = SearchPreparedGraph(g, *prepared, options);
  EXPECT_EQ(r.clique.size(), 4u);  // the search still proves optimality
}

// ----------------------------------------------- deterministic aggregation

// Satellite: multi-component stats must aggregate by summation in component
// order. Two sequential staged runs are bit-identical; a parallel run sums
// per-component branch times into component_search_micros instead of
// letting the last finisher win.
TEST(PreparedGraphTest, StatsAggregateDeterministically) {
  // Several mid-size components so the parallel path distributes work.
  GraphBuilder b(90);
  const char attrs[] = "ababab";
  for (int c = 0; c < 3; ++c) {
    VertexId base = static_cast<VertexId>(c * 30);
    for (VertexId u = 0; u < 6; ++u) {
      b.SetAttribute(base + u, attrs[u] == 'a' ? Attribute::kA : Attribute::kB);
      for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(base + u, base + v);
    }
  }
  AttributedGraph g = b.Build();
  auto prepared = PrepareGraph(g, 2, {});
  ASSERT_EQ(prepared->components.size(), 3u);

  SearchOptions seq = BaselineOptions(2, 1);
  SearchResult r1 = SearchPreparedGraph(g, *prepared, seq);
  SearchResult r2 = SearchPreparedGraph(g, *prepared, seq);
  EXPECT_EQ(r1.stats.nodes, r2.stats.nodes);
  EXPECT_EQ(r1.stats.size_prunes, r2.stats.size_prunes);
  EXPECT_EQ(r1.stats.attr_prunes, r2.stats.attr_prunes);
  EXPECT_EQ(r1.clique.vertices, r2.clique.vertices);

  SearchOptions par = seq;
  par.num_threads = 3;
  SearchResult rp = SearchPreparedGraph(g, *prepared, par);
  EXPECT_EQ(rp.clique.size(), r1.clique.size());
  EXPECT_TRUE(rp.stats.completed);
  // The summed per-component time is populated and covers every branched
  // component, not just the last writer.
  EXPECT_GE(rp.stats.component_search_micros, 0);
}

// The wrapper contract: FindMaximumFairClique == PrepareGraph +
// SearchPreparedGraph, including the timing glue.
TEST(PreparedGraphTest, MonolithIsThinWrapper) {
  AttributedGraph g = RandomAttributedGraph(70, 0.2, 0xFACE);
  SearchOptions options = FullOptions(2, 1, ExtraBound::kColorfulPath);
  SearchResult mono = FindMaximumFairClique(g, options);
  auto prepared = PrepareGraph(g, 2, {});
  SearchResult staged = SearchPreparedGraph(g, *prepared, options);
  EXPECT_EQ(mono.clique.size(), staged.clique.size());
  EXPECT_GE(mono.stats.total_micros, mono.stats.search_micros);
  EXPECT_FALSE(mono.stats.reduction_stages.empty());
  EXPECT_EQ(mono.stats.reduction_stages.size(),
            staged.stats.reduction_stages.size());
}

}  // namespace
}  // namespace fairclique
