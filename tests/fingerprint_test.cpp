// Dedicated tests for the content fingerprint (graph/fingerprint.h): load
//-path independence (edge-list text vs FCG1 binary), sensitivity to every
// kind of content perturbation, and label sensitivity.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "graph/binary_io.h"
#include "graph/fingerprint.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A deterministic 10-vertex graph where every vertex has at least one edge
/// (so the text edge list covers the full id range) and both attributes
/// appear: a ring plus chords.
AttributedGraph ReferenceGraph() {
  return MakeGraph("ababababab",
                   {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
                    {7, 8}, {8, 9}, {9, 0}, {0, 5}, {2, 7}, {1, 4}, {3, 8}});
}

TEST(FingerprintIoTest, EdgeListAndBinaryLoadsAgree) {
  AttributedGraph g = ReferenceGraph();
  const uint64_t fp = GraphFingerprint(g);

  const std::string edge_path = TempPath("fp_edges.txt");
  const std::string attr_path = TempPath("fp_attrs.txt");
  const std::string bin_path = TempPath("fp_graph.fcg");
  ASSERT_TRUE(SaveEdgeList(g, edge_path).ok());
  ASSERT_TRUE(SaveAttributes(g, attr_path).ok());
  ASSERT_TRUE(SaveBinaryGraph(g, bin_path).ok());

  // Text loading with id remapping disabled preserves labels, so both load
  // paths must reproduce the exact content and hence the fingerprint.
  EdgeListOptions options;
  options.remap_ids = false;
  AttributedGraph from_text;
  ASSERT_TRUE(
      LoadAttributedGraph(edge_path, attr_path, options, &from_text).ok());
  EXPECT_EQ(GraphFingerprint(from_text), fp);

  AttributedGraph from_binary;
  ASSERT_TRUE(LoadBinaryGraph(bin_path, &from_binary).ok());
  EXPECT_EQ(GraphFingerprint(from_binary), fp);

  std::remove(edge_path.c_str());
  std::remove(attr_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(FingerprintIoTest, EveryPerturbationChangesIt) {
  AttributedGraph g = ReferenceGraph();
  const uint64_t fp = GraphFingerprint(g);

  // Removing an edge.
  EXPECT_NE(fp, GraphFingerprint(MakeGraph(
                    "ababababab",
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
                     {7, 8}, {8, 9}, {9, 0}, {0, 5}, {2, 7}, {1, 4}})));
  // Adding an edge.
  EXPECT_NE(fp, GraphFingerprint(MakeGraph(
                    "ababababab",
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
                     {7, 8}, {8, 9}, {9, 0}, {0, 5}, {2, 7}, {1, 4}, {3, 8},
                     {2, 9}})));
  // Flipping one attribute.
  EXPECT_NE(fp, GraphFingerprint(MakeGraph(
                    "bbabababab",
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
                     {7, 8}, {8, 9}, {9, 0}, {0, 5}, {2, 7}, {1, 4}, {3, 8}})));
  // Appending an isolated vertex (same edges, one more vertex).
  {
    GraphBuilder builder(11);
    for (VertexId v = 0; v < 10; ++v) {
      builder.SetAttribute(v, v % 2 == 0 ? Attribute::kA : Attribute::kB);
    }
    for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
    EXPECT_NE(fp, GraphFingerprint(builder.Build()));
  }
}

TEST(FingerprintIoTest, LabelSensitive) {
  // Swapping the ids of two vertices with different neighborhoods yields an
  // isomorphic graph but a different fingerprint: cached search results
  // report vertex ids, so a relabeled graph must not share cache entries.
  // (Here ids 0 and 3 are swapped.)
  AttributedGraph g = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}});
  AttributedGraph swapped = MakeGraph("baba", {{3, 1}, {1, 2}, {2, 0}});
  EXPECT_NE(GraphFingerprint(g), GraphFingerprint(swapped));
}

TEST(FingerprintIoTest, BuildRouteIndependent) {
  // The same content assembled in a different edge order (and with
  // duplicate insertions that normalization collapses) fingerprints
  // identically.
  GraphBuilder b(5);
  b.SetAttribute(1, Attribute::kB);
  b.SetAttribute(4, Attribute::kB);
  b.AddEdge(3, 4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate, reversed
  b.AddEdge(2, 4);
  b.AddEdge(1, 2);
  AttributedGraph via_builder = b.Build();

  AttributedGraph via_list =
      MakeGraph("abaab", {{0, 1}, {1, 2}, {2, 4}, {3, 4}});
  EXPECT_EQ(GraphFingerprint(via_builder), GraphFingerprint(via_list));
}

}  // namespace
}  // namespace fairclique
