#ifndef FAIRCLIQUE_TESTS_TEST_UTIL_H_
#define FAIRCLIQUE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {
namespace testing_util {

/// Builds a small attributed graph from explicit edges and an attribute
/// string like "aabba" (index = vertex id).
inline AttributedGraph MakeGraph(const std::string& attrs,
                                 const std::vector<std::pair<int, int>>& edges) {
  GraphBuilder builder(static_cast<VertexId>(attrs.size()));
  for (size_t v = 0; v < attrs.size(); ++v) {
    builder.SetAttribute(static_cast<VertexId>(v), attrs[v] == 'a'
                                                       ? Attribute::kA
                                                       : Attribute::kB);
  }
  for (auto [u, v] : edges) {
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

/// A random attributed G(n, p) with Bernoulli(1/2) attributes, seeded.
inline AttributedGraph RandomAttributedGraph(VertexId n, double p,
                                             uint64_t seed) {
  Rng rng(seed);
  AttributedGraph g = ErdosRenyi(n, p, rng);
  return AssignAttributesBernoulli(g, 0.5, rng);
}

/// Sorted copy of a vertex vector (canonical form for comparisons).
inline std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Materialized edge list, for EXPECT_EQ between graphs (edges() is a span).
inline std::vector<Edge> EdgesOf(const AttributedGraph& g) {
  return {g.edges().begin(), g.edges().end()};
}

/// Brute-force max fair clique by subset enumeration; usable for n <= ~20.
/// Completely independent of the library's search/enumeration code.
inline std::vector<VertexId> BruteForceMaxFairClique(const AttributedGraph& g,
                                                     int k, int delta) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> best;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) verts.push_back(v);
    }
    if (verts.size() <= best.size()) continue;
    int cnt[2] = {0, 0};
    bool clique = true;
    for (size_t i = 0; i < verts.size() && clique; ++i) {
      cnt[AttrIndex(g.attribute(verts[i]))]++;
      for (size_t j = i + 1; j < verts.size(); ++j) {
        if (!g.HasEdge(verts[i], verts[j])) {
          clique = false;
          break;
        }
      }
    }
    if (!clique) continue;
    if (cnt[0] < k || cnt[1] < k) continue;
    if (std::abs(cnt[0] - cnt[1]) > delta) continue;
    best = verts;
  }
  return best;
}

}  // namespace testing_util
}  // namespace fairclique

#endif  // FAIRCLIQUE_TESTS_TEST_UTIL_H_
