#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.h"
#include "graph/triangles.h"
#include "test_util.h"

namespace fairclique {
namespace {

using testing_util::MakeGraph;
using testing_util::RandomAttributedGraph;

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(0);
  AttributedGraph g = builder.Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, SingleVertexNoEdges) {
  GraphBuilder builder(1);
  AttributedGraph g = builder.Build();
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 0);
  builder.AddEdge(1, 1);
  builder.AddEdge(0, 1);
  AttributedGraph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, DuplicateEdgesCollapsed) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  AttributedGraph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, AttributesStored) {
  AttributedGraph g = MakeGraph("ab", {{0, 1}});
  EXPECT_EQ(g.attribute(0), Attribute::kA);
  EXPECT_EQ(g.attribute(1), Attribute::kB);
  EXPECT_EQ(g.attribute_counts().a(), 1);
  EXPECT_EQ(g.attribute_counts().b(), 1);
}

TEST(GraphTest, AdjacencySortedAndSymmetric) {
  AttributedGraph g = RandomAttributedGraph(60, 0.2, 101);
  EXPECT_TRUE(g.Validate().ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (VertexId w : nbrs) {
      auto back = g.neighbors(w);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), v));
    }
  }
}

TEST(GraphTest, HasEdgeAgainstAdjacency) {
  AttributedGraph g = RandomAttributedGraph(40, 0.15, 7);
  std::set<std::pair<VertexId, VertexId>> edge_set;
  for (const Edge& e : g.edges()) edge_set.insert({e.u, e.v});
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      EXPECT_EQ(g.HasEdge(u, v), edge_set.count({u, v}) > 0);
      EXPECT_EQ(g.HasEdge(v, u), g.HasEdge(u, v));
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(GraphTest, FindEdgeReturnsConsistentIds) {
  AttributedGraph g = RandomAttributedGraph(30, 0.3, 3);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edges()[e];
    EXPECT_EQ(g.FindEdge(edge.u, edge.v), e);
    EXPECT_EQ(g.FindEdge(edge.v, edge.u), e);
  }
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);
}

TEST(GraphTest, MaxDegreeMatchesManualScan) {
  AttributedGraph g = RandomAttributedGraph(50, 0.25, 9);
  uint32_t expected = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    expected = std::max(expected, g.degree(v));
  }
  EXPECT_EQ(g.max_degree(), expected);
}

TEST(InducedSubgraphTest, TriangleFromSquareWithDiagonal) {
  // 0-1-2-3-0 plus diagonal 0-2.
  AttributedGraph g =
      MakeGraph("abab", {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  std::vector<VertexId> verts{0, 1, 2};
  std::vector<VertexId> original;
  AttributedGraph sub = g.InducedSubgraph(verts, &original);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);  // Triangle 0-1-2.
  EXPECT_EQ(original, verts);
  EXPECT_EQ(sub.attribute(0), Attribute::kA);
  EXPECT_EQ(sub.attribute(1), Attribute::kB);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(InducedSubgraphTest, PreservesEdgesExactly) {
  AttributedGraph g = RandomAttributedGraph(40, 0.2, 21);
  std::vector<VertexId> verts{3, 8, 9, 15, 22, 31, 39};
  AttributedGraph sub = g.InducedSubgraph(verts);
  for (size_t i = 0; i < verts.size(); ++i) {
    for (size_t j = i + 1; j < verts.size(); ++j) {
      EXPECT_EQ(sub.HasEdge(static_cast<VertexId>(i), static_cast<VertexId>(j)),
                g.HasEdge(verts[i], verts[j]));
    }
  }
}

TEST(FilteredSubgraphTest, DropsDeadVerticesAndEdges) {
  AttributedGraph g =
      MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  std::vector<uint8_t> valive{1, 1, 1, 0};
  std::vector<uint8_t> ealive(g.num_edges(), 1);
  ealive[g.FindEdge(0, 2)] = 0;
  std::vector<VertexId> original;
  AttributedGraph sub = g.FilteredSubgraph(valive, ealive, &original);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0-1, 1-2 survive; 0-2 dropped; 3 dead.
  EXPECT_EQ(original, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(ConnectedComponentsTest, SplitsDisjointTriangles) {
  AttributedGraph g =
      MakeGraph("aaabbb", {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(comps[1], (std::vector<VertexId>{3, 4, 5}));
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreSingletons) {
  AttributedGraph g = MakeGraph("aab", {{0, 1}});
  auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[1], (std::vector<VertexId>{2}));
}

TEST(ConnectedComponentsTest, CoverAllVerticesOnce) {
  AttributedGraph g = RandomAttributedGraph(80, 0.02, 5);
  auto comps = g.ConnectedComponents();
  std::set<VertexId> seen;
  for (const auto& comp : comps) {
    for (VertexId v : comp) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex in two components";
    }
  }
  EXPECT_EQ(seen.size(), g.num_vertices());
}

TEST(TrianglesTest, CommonNeighborsOfSquareDiagonal) {
  AttributedGraph g =
      MakeGraph("abab", {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  // Common neighbors of 0 and 2 are 1 and 3.
  std::vector<VertexId> common;
  ForEachCommonNeighbor(g, 0, 2, [&](VertexId w, EdgeId e1, EdgeId e2) {
    common.push_back(w);
    EXPECT_EQ(g.edges()[e1].u, std::min<VertexId>(0, w));
    EXPECT_EQ(g.edges()[e2].u, std::min<VertexId>(2, w));
  });
  EXPECT_EQ(common, (std::vector<VertexId>{1, 3}));
}

TEST(TrianglesTest, CountTrianglesOnKnownGraphs) {
  // K4 has 4 triangles.
  AttributedGraph k4 =
      MakeGraph("aabb", {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CountTriangles(k4), 4u);
  // A square has none.
  AttributedGraph square = MakeGraph("aabb", {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(CountTriangles(square), 0u);
}

TEST(TrianglesTest, CountMatchesBruteForce) {
  AttributedGraph g = RandomAttributedGraph(25, 0.3, 77);
  uint64_t brute = 0;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (VertexId b = a + 1; b < g.num_vertices(); ++b) {
      for (VertexId c = b + 1; c < g.num_vertices(); ++c) {
        if (g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c)) ++brute;
      }
    }
  }
  EXPECT_EQ(CountTriangles(g), brute);
}

TEST(AttrCountsTest, Helpers) {
  AttrCounts c;
  c[Attribute::kA] = 5;
  c[Attribute::kB] = 3;
  EXPECT_EQ(c.Total(), 8);
  EXPECT_EQ(c.Min(), 3);
  EXPECT_EQ(c.Max(), 5);
  EXPECT_EQ(c.Diff(), 2);
}

TEST(FairnessParamsTest, SatisfiedConditions) {
  FairnessParams p{2, 1};
  AttrCounts ok;
  ok[Attribute::kA] = 2;
  ok[Attribute::kB] = 3;
  EXPECT_TRUE(p.Satisfied(ok));
  AttrCounts low = ok;
  low[Attribute::kA] = 1;
  EXPECT_FALSE(p.Satisfied(low));
  AttrCounts wide = ok;
  wide[Attribute::kB] = 4;
  EXPECT_FALSE(p.Satisfied(wide));
}

TEST(FairnessParamsTest, BestFairSubsetSize) {
  FairnessParams p{2, 1};
  AttrCounts avail;
  avail[Attribute::kA] = 3;
  avail[Attribute::kB] = 8;
  // min(11, 2*3+1) = 7.
  EXPECT_EQ(p.BestFairSubsetSize(avail), 7);
  avail[Attribute::kA] = 1;  // Below k -> infeasible.
  EXPECT_EQ(p.BestFairSubsetSize(avail), 0);
  avail[Attribute::kA] = 8;  // Balanced: total wins.
  EXPECT_EQ(p.BestFairSubsetSize(avail), 16);
}

}  // namespace
}  // namespace fairclique
