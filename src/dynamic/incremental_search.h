#ifndef FAIRCLIQUE_DYNAMIC_INCREMENTAL_SEARCH_H_
#define FAIRCLIQUE_DYNAMIC_INCREMENTAL_SEARCH_H_

#include <span>

#include "core/max_fair_clique.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Exact re-query of the maximum relative fair clique after edges were
/// *added* to a graph, in time proportional to the added edges' common
/// neighborhoods instead of the whole graph.
///
/// Preconditions (the service layer's cache-migration rules establish them):
///  - `base` is a maximum fair clique of the pre-update graph under
///    `options.params`, and is still a valid fair clique of `g` (insertions
///    never invalidate a clique; removals/attribute changes since the base
///    result must not have touched it — enforced by the caller via the
///    verifier);
///  - every edge of `g` that was not in the pre-update graph is listed in
///    `new_edges` (net additions; stale entries no longer present in `g`
///    are skipped).
///
/// Correctness: a maximum fair clique C of `g` either contains no new edge —
/// then C is a clique of the old graph, so |C| <= |base| — or contains some
/// new edge {u, v}, and then C ⊆ {u, v} ∪ (N(u) ∩ N(v)). Searching each
/// added edge's closed common neighborhood and taking the best of those
/// results and `base` is therefore exact.
///
/// The returned result reports original vertex ids; stats aggregate the
/// local searches. `completed` is false if any local search hit a limit.
SearchResult IncrementalRequery(const AttributedGraph& g,
                                std::span<const Edge> new_edges,
                                const CliqueResult& base,
                                const SearchOptions& options);

}  // namespace fairclique

#endif  // FAIRCLIQUE_DYNAMIC_INCREMENTAL_SEARCH_H_
