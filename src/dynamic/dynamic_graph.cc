#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "graph/fingerprint.h"

namespace fairclique {

namespace {

Edge Normalized(VertexId u, VertexId v) {
  return u < v ? Edge{u, v} : Edge{v, u};
}

void SortedInsert(std::vector<VertexId>* row, VertexId v) {
  row->insert(std::lower_bound(row->begin(), row->end(), v), v);
}

void SortedErase(std::vector<VertexId>* row, VertexId v) {
  auto it = std::lower_bound(row->begin(), row->end(), v);
  row->erase(it);
}

}  // namespace

DynamicGraph::DynamicGraph(const AttributedGraph& base, uint64_t base_version)
    : version_(base_version) {
  // Nothing can contend before the constructor returns, but the guarded
  // members are still written under mu_ — the analysis checks ctor bodies.
  fc::MutexLock lock(mu_);
  const VertexId n = base.num_vertices();
  adj_.resize(n);
  attrs_.resize(n);
  nbr_attr_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    attrs_[v] = base.attribute(v);
    adj_[v].assign(base.neighbors(v).begin(), base.neighbors(v).end());
  }
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : adj_[v]) nbr_attr_[v][attrs_[w]]++;
  }
  num_edges_ = base.num_edges();
  snapshot_ = std::make_shared<const AttributedGraph>(base);
  fingerprint_ = GraphFingerprint(*snapshot_);
}

uint64_t DynamicGraph::version() const {
  fc::MutexLock lock(mu_);
  return version_;
}

std::shared_ptr<const AttributedGraph> DynamicGraph::snapshot() const {
  fc::MutexLock lock(mu_);
  return snapshot_;
}

uint64_t DynamicGraph::fingerprint() const {
  fc::MutexLock lock(mu_);
  return fingerprint_;
}

VertexId DynamicGraph::num_vertices() const {
  fc::MutexLock lock(mu_);
  return static_cast<VertexId>(adj_.size());
}

EdgeId DynamicGraph::num_edges() const {
  fc::MutexLock lock(mu_);
  return num_edges_;
}

uint32_t DynamicGraph::degree(VertexId v) const {
  fc::MutexLock lock(mu_);
  return static_cast<uint32_t>(adj_[v].size());
}

AttrCounts DynamicGraph::attr_neighbor_counts(VertexId v) const {
  fc::MutexLock lock(mu_);
  return nbr_attr_[v];
}

bool DynamicGraph::HasEdgeLocked(VertexId u, VertexId v) const {
  const std::vector<VertexId>& row =
      adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  VertexId other = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(row.begin(), row.end(), other);
}

void DynamicGraph::Rebuild() {
  GraphBuilder builder(static_cast<VertexId>(adj_.size()));
  for (VertexId v = 0; v < adj_.size(); ++v) {
    builder.SetAttribute(v, attrs_[v]);
    for (VertexId w : adj_[v]) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  snapshot_ = std::make_shared<const AttributedGraph>(builder.Build());
  fingerprint_ = GraphFingerprint(*snapshot_);
}

Status DynamicGraph::Apply(std::span<const UpdateOp> batch,
                           UpdateSummary* summary) {
  fc::MutexLock lock(mu_);
  const VertexId n = static_cast<VertexId>(adj_.size());

  // ---- Validation pass: sequential semantics over a staged view ----------
  // edge_delta tracks the batch's net effect relative to the committed
  // state: +1 net added, -1 net removed, 0 back to unchanged.
  VertexId n_staged = n;
  std::map<Edge, int> edge_delta;
  std::map<VertexId, Attribute> staged_attr;   // final attribute per vertex
  std::vector<Attribute> new_vertex_attrs;     // initial attrs of appended ids

  auto staged_has_edge = [&](const Edge& e) {
    auto it = edge_delta.find(e);
    int delta = it == edge_delta.end() ? 0 : it->second;
    bool committed = e.u < n && e.v < n && HasEdgeLocked(e.u, e.v);
    return committed ? delta != -1 : delta == 1;
  };

  for (size_t i = 0; i < batch.size(); ++i) {
    const UpdateOp& op = batch[i];
    const std::string at = "op #" + std::to_string(i) + ": ";
    switch (op.kind) {
      case UpdateKind::kAddVertex:
        new_vertex_attrs.push_back(op.attr);
        ++n_staged;
        break;
      case UpdateKind::kAddEdge:
      case UpdateKind::kRemoveEdge: {
        if (op.u >= n_staged || op.v >= n_staged) {
          return Status::InvalidArgument(at + "edge endpoint out of range");
        }
        if (op.u == op.v) {
          return Status::InvalidArgument(at + "self-loops are not allowed");
        }
        Edge e = Normalized(op.u, op.v);
        bool exists = staged_has_edge(e);
        bool committed = e.u < n && e.v < n && HasEdgeLocked(e.u, e.v);
        if (op.kind == UpdateKind::kAddEdge) {
          if (exists) {
            return Status::InvalidArgument(at + "edge already exists");
          }
          edge_delta[e] = committed ? 0 : 1;
        } else {
          if (!exists) {
            return Status::InvalidArgument(at + "edge does not exist");
          }
          edge_delta[e] = committed ? -1 : 0;
        }
        break;
      }
      case UpdateKind::kSetAttribute:
        if (op.u >= n_staged) {
          return Status::InvalidArgument(at + "vertex out of range");
        }
        staged_attr[op.u] = op.attr;
        break;
    }
  }

  // ---- Commit: apply the net effect, maintaining degrees and per-attribute
  // neighbor counts incrementally. Attribute flips go first so every edge
  // insertion/removal adjusts nbr_attr_ with final attributes.
  UpdateSummary out;
  out.base_fingerprint = fingerprint_;

  for (VertexId v = n; v < n_staged; ++v) {
    Attribute attr = new_vertex_attrs[v - n];
    auto it = staged_attr.find(v);
    if (it != staged_attr.end()) attr = it->second;
    adj_.emplace_back();
    attrs_.push_back(attr);
    nbr_attr_.emplace_back();
    out.affected.push_back(v);
  }
  out.vertices_added = n_staged - n;

  for (const auto& [v, attr] : staged_attr) {
    if (v >= n || attrs_[v] == attr) continue;  // new vertices handled above
    Attribute old = attrs_[v];
    for (VertexId w : adj_[v]) {
      nbr_attr_[w][old]--;
      nbr_attr_[w][attr]++;
    }
    attrs_[v] = attr;
    out.attributes_changed++;
    out.touched.push_back(v);
  }

  for (const auto& [e, delta] : edge_delta) {
    if (delta == 0) continue;
    if (delta > 0) {
      SortedInsert(&adj_[e.u], e.v);
      SortedInsert(&adj_[e.v], e.u);
      nbr_attr_[e.u][attrs_[e.v]]++;
      nbr_attr_[e.v][attrs_[e.u]]++;
      ++num_edges_;
      out.edges_added++;
      out.added_edges.push_back(e);
    } else {
      SortedErase(&adj_[e.u], e.v);
      SortedErase(&adj_[e.v], e.u);
      nbr_attr_[e.u][attrs_[e.v]]--;
      nbr_attr_[e.v][attrs_[e.u]]--;
      --num_edges_;
      out.edges_removed++;
      out.touched.push_back(e.u);
      out.touched.push_back(e.v);
    }
    out.affected.push_back(e.u);
    out.affected.push_back(e.v);
  }
  out.affected.insert(out.affected.end(), out.touched.begin(),
                      out.touched.end());

  auto sort_unique = [](std::vector<VertexId>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  sort_unique(&out.touched);
  sort_unique(&out.affected);

  for (VertexId v : out.affected) {
    AttrCounts avail = nbr_attr_[v];
    avail[attrs_[v]]++;
    out.max_affected_min =
        std::max<uint32_t>(out.max_affected_min,
                           static_cast<uint32_t>(avail.Min()));
    out.max_affected_total =
        std::max<uint32_t>(out.max_affected_total,
                           static_cast<uint32_t>(avail.Total()));
  }

  ++version_;
  Rebuild();
  out.version = version_;
  out.fingerprint = fingerprint_;
  if (summary != nullptr) *summary = std::move(out);
  return Status::OK();
}

}  // namespace fairclique
