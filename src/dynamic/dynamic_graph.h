#ifndef FAIRCLIQUE_DYNAMIC_DYNAMIC_GRAPH_H_
#define FAIRCLIQUE_DYNAMIC_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// One mutation in an update batch. Batches use sequential semantics: each
/// op is validated against the state produced by the ops before it, so
/// "add edge, remove the same edge" is a legal (net no-op) batch while
/// "add an edge that already exists" is not.
enum class UpdateKind : uint8_t {
  kAddVertex,     // appends vertex `num_vertices()` with attribute `attr`
  kAddEdge,       // adds undirected edge {u, v}; must not already exist
  kRemoveEdge,    // removes undirected edge {u, v}; must exist
  kSetAttribute,  // sets attribute of vertex u to `attr` (no-op if unchanged)
};

struct UpdateOp {
  UpdateKind kind = UpdateKind::kAddEdge;
  VertexId u = 0;
  VertexId v = 0;
  Attribute attr = Attribute::kA;
};

inline UpdateOp AddVertexOp(Attribute attr) {
  return {UpdateKind::kAddVertex, 0, 0, attr};
}
inline UpdateOp AddEdgeOp(VertexId u, VertexId v) {
  return {UpdateKind::kAddEdge, u, v, Attribute::kA};
}
inline UpdateOp RemoveEdgeOp(VertexId u, VertexId v) {
  return {UpdateKind::kRemoveEdge, u, v, Attribute::kA};
}
inline UpdateOp SetAttributeOp(VertexId v, Attribute attr) {
  return {UpdateKind::kSetAttribute, v, 0, attr};
}

/// Affected-region summary of one applied batch, in *net* terms: an edge
/// added and removed inside the same batch contributes to neither count.
/// The service layer keys its cache-invalidation decisions off this:
///
///  - `insert_only()` batches cannot invalidate any existing clique, so a
///    cached result survives as a lower bound (and `added_edges` is exactly
///    the region where a larger clique could have appeared);
///  - `touched` lists the only vertices whose cached cliques can have been
///    *invalidated* (endpoints of net-removed edges, attribute flips);
///  - `max_affected_min` / `max_affected_total` cap, via the incrementally
///    maintained per-attribute neighbor counts, the size of any fair clique
///    through the affected region on the NEW snapshot. When a cached clique
///    already beats that cap, no update in this batch can have produced a
///    better answer.
struct UpdateSummary {
  uint64_t version = 0;           // epoch after the batch
  uint64_t base_fingerprint = 0;  // snapshot fingerprint before
  uint64_t fingerprint = 0;       // snapshot fingerprint after

  uint32_t vertices_added = 0;
  uint32_t edges_added = 0;        // net
  uint32_t edges_removed = 0;      // net
  uint32_t attributes_changed = 0; // net (set to a different value)

  /// Net-new undirected edges (u < v, sorted). Any clique of the new
  /// snapshot that is not a clique of the old one contains one of these.
  std::vector<Edge> added_edges;
  /// Sorted distinct vertices that can invalidate a cached clique: endpoints
  /// of net-removed edges plus attribute-changed vertices.
  std::vector<VertexId> touched;
  /// Sorted distinct vertices involved in any net change (touched +
  /// added-edge endpoints + appended vertices).
  std::vector<VertexId> affected;

  /// Over all affected vertices v on the new snapshot, with
  /// avail(v) = per-attribute neighbor counts of v plus v itself:
  /// max of min(avail) and max of total(avail). Any fair clique through the
  /// affected region has size <= min(max_affected_total,
  /// 2 * max_affected_min + delta) for every delta (see
  /// FairnessParams::BestFairSubsetSize). 0 when nothing changed.
  uint32_t max_affected_min = 0;
  uint32_t max_affected_total = 0;

  /// Only edges (and possibly isolated vertices) were added.
  bool insert_only() const {
    return edges_removed == 0 && attributes_changed == 0;
  }
  /// Nothing that could enlarge the maximum fair clique happened.
  bool removal_only() const {
    return edges_added == 0 && attributes_changed == 0 && vertices_added == 0;
  }
};

/// A mutable, versioned attributed graph built on top of an immutable
/// AttributedGraph base. Updates arrive in batches; each successful Apply
/// advances the epoch (monotonically increasing `version`) and materializes
/// a fresh immutable snapshot, so readers always work on a frozen,
/// normalized CSR graph while writers mutate the adjacency behind the lock.
///
/// Per-vertex degrees and per-attribute neighbor counts (the cheap colorful
/// degree surrogate used by the reduction bounds) are maintained
/// incrementally — O(deg) per edge op, O(deg) per attribute flip — rather
/// than recomputed, and feed the UpdateSummary's affected-region caps.
///
/// Thread safety: Apply serializes on an internal mutex; snapshot() /
/// version() may be called concurrently with Apply. Snapshots are immutable
/// and shared, so queries running on an older epoch are never invalidated.
class DynamicGraph {
 public:
  /// Wraps `base` at epoch `base_version` (0 for a brand-new graph). A
  /// non-zero base version continues an epoch sequence across process
  /// restarts: recovery and the server wrap a snapshot registered at
  /// version V as DynamicGraph(snapshot, V), so the next batch publishes
  /// V+1 instead of restarting at 1 and being rejected by
  /// GraphRegistry::Replace's monotonicity check.
  explicit DynamicGraph(const AttributedGraph& base, uint64_t base_version = 0);

  /// Current epoch; `base_version` until the first successful Apply.
  uint64_t version() const;

  /// The current epoch's immutable snapshot (never null).
  std::shared_ptr<const AttributedGraph> snapshot() const;

  /// Fingerprint of the current snapshot (graph/fingerprint.h).
  uint64_t fingerprint() const;

  VertexId num_vertices() const;
  EdgeId num_edges() const;

  /// Incrementally maintained degree of v.
  uint32_t degree(VertexId v) const;

  /// Incrementally maintained per-attribute neighbor counts of v.
  AttrCounts attr_neighbor_counts(VertexId v) const;

  /// Validates and applies one batch atomically: on any invalid op the
  /// whole batch is rejected with InvalidArgument("op #i: ...") and the
  /// graph is unchanged. On success the epoch advances, a new snapshot is
  /// materialized, and `summary` (when non-null) describes the net effect.
  Status Apply(std::span<const UpdateOp> batch, UpdateSummary* summary = nullptr);

  /// Convenience for literal batches: dyn.Apply({AddEdgeOp(0, 1)}).
  Status Apply(std::initializer_list<UpdateOp> batch,
               UpdateSummary* summary = nullptr) {
    return Apply(std::span<const UpdateOp>(batch.begin(), batch.size()),
                 summary);
  }

 private:
  bool HasEdgeLocked(VertexId u, VertexId v) const REQUIRES(mu_);
  /// Materializes snapshot_ + fingerprint_ from adj_/attrs_.
  void Rebuild() REQUIRES(mu_);

  mutable fc::Mutex mu_;
  std::vector<std::vector<VertexId>> adj_ GUARDED_BY(mu_);  // sorted rows
  std::vector<Attribute> attrs_ GUARDED_BY(mu_);
  /// Per-attribute neighbor counts.
  std::vector<AttrCounts> nbr_attr_ GUARDED_BY(mu_);
  EdgeId num_edges_ GUARDED_BY(mu_) = 0;
  uint64_t version_ GUARDED_BY(mu_) = 0;
  uint64_t fingerprint_ GUARDED_BY(mu_) = 0;
  std::shared_ptr<const AttributedGraph> snapshot_ GUARDED_BY(mu_);
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_DYNAMIC_DYNAMIC_GRAPH_H_
