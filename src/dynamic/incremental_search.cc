#include "dynamic/incremental_search.h"

#include <algorithm>
#include <vector>

#include "common/timer.h"

namespace fairclique {

SearchResult IncrementalRequery(const AttributedGraph& g,
                                std::span<const Edge> new_edges,
                                const CliqueResult& base,
                                const SearchOptions& options) {
  WallTimer total_timer;
  SearchResult result;
  result.clique = base;
  std::sort(result.clique.vertices.begin(), result.clique.vertices.end());

  // Each local search needs only to beat the incumbent accumulated so far,
  // and per Definition 1 any fair clique has size >= 2k.
  SearchOptions local = options;
  local.warm_start.clear();  // base ids are not local subgraph ids
  local.use_heuristic = false;
  local.num_threads = 1;

  std::vector<VertexId> candidates;
  for (const Edge& e : new_edges) {
    // The caller's time budget covers the whole re-query, not each local
    // search: give every sub-search only what remains, and report an
    // incomplete result once the budget is exhausted.
    if (options.time_limit_seconds > 0.0) {
      double remaining =
          options.time_limit_seconds - total_timer.ElapsedSeconds();
      if (remaining <= 0.0) {
        result.stats.completed = false;
        break;
      }
      local.time_limit_seconds = remaining;
    }
    if (e.u >= g.num_vertices() || e.v >= g.num_vertices()) continue;
    if (!g.HasEdge(e.u, e.v)) continue;  // stale: added then removed again

    // Closed common neighborhood {u, v} ∪ (N(u) ∩ N(v)), sorted.
    candidates.clear();
    std::span<const VertexId> nu = g.neighbors(e.u);
    std::span<const VertexId> nv = g.neighbors(e.v);
    std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                          std::back_inserter(candidates));
    candidates.push_back(e.u);
    candidates.push_back(e.v);

    int64_t floor = std::max<int64_t>(
        2 * options.params.k, static_cast<int64_t>(result.clique.size()) + 1);
    if (static_cast<int64_t>(candidates.size()) < floor) continue;

    std::vector<VertexId> original_ids;
    AttributedGraph sub = g.InducedSubgraph(candidates, &original_ids);
    SearchResult local_result = FindMaximumFairClique(sub, local);

    result.stats.nodes += local_result.stats.nodes;
    result.stats.bound_prunes += local_result.stats.bound_prunes;
    result.stats.size_prunes += local_result.stats.size_prunes;
    result.stats.attr_prunes += local_result.stats.attr_prunes;
    result.stats.cap_removals += local_result.stats.cap_removals;
    if (!local_result.stats.completed) result.stats.completed = false;

    if (local_result.clique.size() > result.clique.size()) {
      result.clique.attr_counts = local_result.clique.attr_counts;
      result.clique.vertices.clear();
      for (VertexId v : local_result.clique.vertices) {
        result.clique.vertices.push_back(original_ids[v]);
      }
      std::sort(result.clique.vertices.begin(), result.clique.vertices.end());
    }
  }

  result.stats.search_micros = total_timer.ElapsedMicros();
  result.stats.total_micros = result.stats.search_micros;
  return result;
}

}  // namespace fairclique
