#include "service/wire.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fairclique {
namespace wire {

namespace {

bool SkipSpace(const std::string& s, size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
  return *i < s.size();
}

bool ParseJsonString(const std::string& s, size_t* i, std::string* out) {
  if (s[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < s.size() && s[*i] != '"') {
    char c = s[*i];
    if (c == '\\') {
      if (*i + 1 >= s.size()) return false;
      char esc = s[*i + 1];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        default: return false;  // \uXXXX etc. not needed by this protocol
      }
      *i += 2;
    } else {
      out->push_back(c);
      ++*i;
    }
  }
  if (*i >= s.size()) return false;
  ++*i;  // closing quote
  return true;
}

}  // namespace

bool ParseJsonObject(const std::string& line, JsonObject* out,
                     std::string* error) {
  *error = "";
  out->clear();
  size_t i = 0;
  if (!SkipSpace(line, &i) || line[i] != '{') {
    *error = "expected '{'";
    return false;
  }
  ++i;
  if (!SkipSpace(line, &i)) {
    *error = "unterminated object";
    return false;
  }
  if (line[i] == '}') return true;  // empty object
  while (true) {
    if (!SkipSpace(line, &i)) break;
    std::string key;
    if (!ParseJsonString(line, &i, &key)) {
      *error = "expected string key";
      return false;
    }
    if (!SkipSpace(line, &i) || line[i] != ':') {
      *error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++i;
    if (!SkipSpace(line, &i)) break;
    JsonValue value;
    char c = line[i];
    if (c == '"') {
      value.type = JsonValue::Type::kString;
      if (!ParseJsonString(line, &i, &value.str)) {
        *error = "bad string value for '" + key + "'";
        return false;
      }
    } else if (std::strncmp(line.c_str() + i, "true", 4) == 0) {
      value.type = JsonValue::Type::kBool;
      value.b = true;
      i += 4;
    } else if (std::strncmp(line.c_str() + i, "false", 5) == 0) {
      value.type = JsonValue::Type::kBool;
      value.b = false;
      i += 5;
    } else {
      value.type = JsonValue::Type::kNumber;
      char* end = nullptr;
      value.num = std::strtod(line.c_str() + i, &end);
      if (end == line.c_str() + i) {
        *error = "bad value for '" + key + "'";
        return false;
      }
      i = static_cast<size_t>(end - line.c_str());
    }
    (*out)[key] = std::move(value);
    if (!SkipSpace(line, &i)) break;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return true;
    *error = "expected ',' or '}'";
    return false;
  }
  *error = "unterminated object";
  return false;
}

std::string GetString(const JsonObject& obj, const std::string& key,
                      const std::string& fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kString) {
    return fallback;
  }
  return it->second.str;
}

double GetNumber(const JsonObject& obj, const std::string& key,
                 double fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return it->second.num;
}

bool GetBool(const JsonObject& obj, const std::string& key, bool fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kBool) {
    return fallback;
  }
  return it->second.b;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeItem() {
  if (after_key_) {
    // The value right after Key() is already separated by the ':'.
    after_key_ = false;
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_.push_back(',');
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeItem();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeItem();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  BeforeItem();
  out_.push_back('"');
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeItem();
  out_.push_back('"');
  out_ += JsonEscape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) {
  return Value(std::string(v));
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeItem();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeItem();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeItem();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(long long v) {
  BeforeItem();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(unsigned long long v) {
  BeforeItem();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int v) { return Value(static_cast<long long>(v)); }
JsonWriter& JsonWriter::Value(unsigned v) {
  return Value(static_cast<unsigned long long>(v));
}
JsonWriter& JsonWriter::Value(long v) {
  return Value(static_cast<long long>(v));
}
JsonWriter& JsonWriter::Value(unsigned long v) {
  return Value(static_cast<unsigned long long>(v));
}

std::string ErrorJson(uint64_t id, const std::string& message) {
  JsonWriter w;
  w.BeginObject()
      .Field("ok", false)
      .Field("id", static_cast<unsigned long long>(id))
      .Field("error", message)
      .EndObject();
  return w.str();
}

std::string TraceNotFoundJson(uint64_t id, uint64_t trace_id) {
  JsonWriter w;
  w.BeginObject()
      .Field("ok", false)
      .Field("id", static_cast<unsigned long long>(id))
      .Field("error", "trace " + std::to_string(trace_id) + " not retained")
      .Field("trace_id", static_cast<unsigned long long>(trace_id))
      .Field("reason", "not_retained")
      .EndObject();
  return w.str();
}

std::string QueryResponseJson(uint64_t id, const std::string& graph,
                              const QueryResponse& r) {
  if (!r.status.ok()) return ErrorJson(id, r.status.ToString());
  const SearchResult& sr = *r.result;
  JsonWriter w;
  w.BeginObject()
      .Field("ok", true)
      .Field("id", static_cast<unsigned long long>(id))
      .Field("graph", graph)
      .Field("size", static_cast<unsigned long long>(sr.clique.size()));
  w.Key("counts").BeginArray();
  w.Value(sr.clique.attr_counts.a()).Value(sr.clique.attr_counts.b());
  w.EndArray();
  w.Key("vertices").BeginArray();
  for (VertexId v : sr.clique.vertices) w.Value(v);
  w.EndArray();
  w.Field("cache_hit", r.cache_hit)
      .Field("incremental", r.incremental)
      .Field("warm_start", r.warm_start)
      .Field("prepared_hit", r.prepared_hit)
      .Field("completed", sr.stats.completed)
      .Field("deadline_missed", r.deadline_missed)
      .Field("trace_id", static_cast<unsigned long long>(r.trace_id))
      .Field("queue_micros", static_cast<long long>(r.queue_micros))
      .Field("run_micros", static_cast<long long>(r.run_micros));
  // New fields append here, after the originals: external scrapers (and the
  // CI crash-recovery smoke) pattern-match on the field order above.
  w.Field("stop_reason", r.stop_reason);
  if (!r.plan_json.empty()) w.Key("plan").Raw(r.plan_json);
  w.EndObject();
  return w.str();
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool ParseAttrToken(const std::string& token, Attribute* out) {
  if (token == "a" || token == "0") *out = Attribute::kA;
  else if (token == "b" || token == "1") *out = Attribute::kB;
  else return false;
  return true;
}

bool ParseVertexId(const char* s, const char* expected_end, VertexId* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end != expected_end || v > 0xffffffffULL) return false;
  *out = static_cast<VertexId>(v);
  return true;
}

bool ParseVertexPair(const std::string& token, char sep, VertexId* u,
                     VertexId* v) {
  size_t pos = token.find(sep);
  if (pos == std::string::npos || pos == 0 || pos + 1 >= token.size()) {
    return false;
  }
  return ParseVertexId(token.c_str(), token.c_str() + pos, u) &&
         ParseVertexId(token.c_str() + pos + 1,
                       token.c_str() + token.size(), v);
}

bool ParseExtraBound(const std::string& name, ExtraBound* out) {
  if (name.empty() || name == "none") *out = ExtraBound::kNone;
  else if (name == "degeneracy" || name == "d") *out = ExtraBound::kDegeneracy;
  else if (name == "hindex" || name == "h") *out = ExtraBound::kHIndex;
  else if (name == "cd") *out = ExtraBound::kColorfulDegeneracy;
  else if (name == "ch") *out = ExtraBound::kColorfulHIndex;
  else if (name == "cp") *out = ExtraBound::kColorfulPath;
  else return false;
  return true;
}

}  // namespace wire
}  // namespace fairclique
