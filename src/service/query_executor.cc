#include "service/query_executor.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/bitset_simd.h"
#include "core/options_key.h"
#include "dynamic/incremental_search.h"
#include "obs/event_journal.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "service/explain.h"

namespace fairclique {

namespace {

/// Above this many outstanding added edges, the per-edge neighborhood
/// searches of IncrementalRequery approach full-search cost; fall back to a
/// warm-started full search instead.
constexpr size_t kMaxIncrementalEdges = 256;

/// Maps a search's stop reason onto the response's wire string. An
/// incomplete result with no recorded reason (possible on legacy paths that
/// only cleared `completed`) is attributed to the time valve; a time stop
/// is reported as "deadline" when the request deadline set the limit.
const char* ResponseStopReason(const SearchStats& stats,
                               bool deadline_tightened) {
  StopReason reason = stats.stop_reason;
  if (reason == StopReason::kNone && !stats.completed) {
    reason = StopReason::kTimeLimit;
  }
  if (reason == StopReason::kTimeLimit && deadline_tightened) {
    return "deadline";
  }
  return StopReasonName(reason);
}

}  // namespace

struct QueryExecutor::QueryState {
  QueryRequest request;
  std::promise<QueryResponse> promise;
  WallTimer queued;     // from Pending; meaningless for synchronous Run()
  WallTimer run_timer;  // restarted when processing begins
  WallTimer search_timer;
  QueryResponse response;

  SearchOptions effective;
  std::string cache_key;
  bool use_cache = false;
  /// A non-incremental warm hint consumed from the cache; put back when a
  /// deadline truncates the search it seeded.
  std::optional<WarmHint> hint;

  std::shared_ptr<const PreparedGraph> prepared;
  int64_t prepare_micros = 0;  // 0 on a prepared-cache hit
  Deadline deadline;           // spans prepare + branch, like the monolith
  /// True when the per-query deadline is what set (or lowered) the
  /// effective time limit — a kTimeLimit stop is then reported as
  /// "deadline", not "time_limit".
  bool deadline_tightened = false;

  /// Live-progress entry in the ProgressRegistry, keyed by trace_id. Held
  /// through an RAII handle: whenever this QueryState dies — normal
  /// completion, an exception unwinding a worker, an abandoned submit —
  /// the registry entry goes with it, so a phantom in-flight query can
  /// never outlive its query. Empty when telemetry is off or nothing was
  /// selected to search.
  obs::ProgressRegistration progress;
  /// Per-slot completion flags (relaxed; advisory), used to recompute the
  /// progress upper bound: comp_indices ascends and prepared components are
  /// sorted largest-first, so the first undone slot is the largest
  /// component still able to beat the incumbent.
  std::unique_ptr<std::atomic<bool>[]> comp_done;

  IncumbentSeed seed;
  std::atomic<int64_t> floor{0};
  /// Prepared-component indices that survived selection; results[i] is the
  /// outcome for comp_indices[i], aggregated in this (deterministic) order.
  std::vector<size_t> comp_indices;
  std::vector<ComponentBranchResult> results;
  std::atomic<size_t> remaining{0};

  // Stage timestamps for the trace (obs/trace.h), relative to Submit
  // (qs.queued). Captured as plain integers on the hot path; the Trace
  // object is only assembled for queries slow enough for the slowlog.
  bool from_queue = false;     // admitted from the queue (vs synchronous Run)
  int64_t t_admit = 0;         // processing began (== queue wait)
  int64_t t_probe_end = -1;    // result-cache probe + hint handling done
  int64_t t_prepare_end = -1;  // prepared plan in hand
  int64_t t_branch_end = -1;   // Branch stage done (aggregation follows)
  /// Per-slot Branch start times; each slot is written only by its own
  /// component task and read by the final task (after the acq_rel
  /// remaining-counter handoff), so no locking is needed.
  std::vector<int64_t> comp_start_micros;
};

QueryExecutor::QueryExecutor(const ExecutorOptions& options, ResultCache* cache,
                             PreparedGraphCache* prepared_cache)
    : options_(options),
      cache_(cache),
      prepared_cache_(prepared_cache),
      queue_wait_hist_(obs::QueryQueueWaitHistogram()),
      run_hist_(obs::QueryRunHistogram()),
      prepare_hist_(obs::QueryPrepareHistogram()),
      branch_hist_(obs::QueryBranchHistogram()) {
  int workers = std::max(1, options_.num_workers);
  // workers_ is guarded by shutdown_mu_; the analysis does not exempt
  // constructor bodies, and locking here is free (nothing can contend yet).
  fc::MutexLock lock(shutdown_mu_);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(); }

std::future<QueryResponse> QueryExecutor::Submit(QueryRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();

  const char* graph_name =
      request.graph != nullptr ? request.graph->name.c_str() : nullptr;
  {
    fc::MutexLock lock(mu_);
    if (!stopping_ && queue_.size() < options_.queue_capacity) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Pending pending;
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      ++inflight_;
      peak_queue_depth_ = std::max(
          peak_queue_depth_, queue_.size() + component_queue_.size());
      obs::EventJournal::Default().Record(obs::EventType::kQueryAdmit,
                                          queue_.size(), 0, 0, graph_name);
      work_ready_.NotifyOne();
      return future;
    }
  }

  // Rejection path: satisfy the future immediately instead of blocking.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::EventJournal::Default().Record(obs::EventType::kQueryReject,
                                      options_.queue_capacity, 0, 0,
                                      graph_name);
  QueryResponse response;
  response.status = Status::Aborted("queue full or executor shut down");
  promise.set_value(std::move(response));
  return future;
}

bool QueryExecutor::PreSearch(QueryState& qs) {
  const QueryRequest& request = qs.request;
  qs.run_timer.Restart();

  if (obs::Enabled()) {
    qs.response.trace_id = obs::NextTraceId();
    // run_timer was just restarted, so its start IS the admission instant:
    // derive the queue wait from the two existing timestamps instead of a
    // third clock read (this runs on every query, cache hits included).
    qs.t_admit = qs.run_timer.StartMicrosSince(qs.queued);
    if (qs.t_admit < 0) qs.t_admit = 0;
    if (qs.from_queue) queue_wait_hist_->Record(qs.t_admit);
  }

  if (request.graph == nullptr || request.graph->graph == nullptr) {
    qs.response.status = Status::InvalidArgument("request has no graph");
    return true;
  }

  // The deadline is anchored at Submit (qs.queued started there), so queue
  // wait burns budget. A request popped already-dead is expired for the
  // cost of this clock read — before even the cache probe: its latency
  // bound is blown either way, and the client has stopped waiting.
  double remaining_deadline = 0.0;
  if (request.deadline_seconds > 0.0) {
    remaining_deadline =
        request.deadline_seconds - qs.queued.ElapsedSeconds();
    if (remaining_deadline <= 0.0) {
      qs.response.status = Status::Aborted(
          "deadline of " + std::to_string(request.deadline_seconds) +
          "s expired while the request waited in the queue");
      qs.response.deadline_missed = true;
      qs.response.stop_reason = "deadline";
      qs.response.run_micros = qs.run_timer.ElapsedMicros();
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      stopped_deadline_.fetch_add(1, std::memory_order_relaxed);
      obs::EventJournal::Default().Record(obs::EventType::kQueryExpire,
                                          qs.response.trace_id, 0, 0,
                                          request.graph->name.c_str());
      return true;
    }
  }

  qs.use_cache = cache_ != nullptr && !request.bypass_cache;
  if (qs.use_cache) {
    qs.cache_key =
        ResultCache::MakeKey(request.graph->fingerprint, request.options);
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(qs.cache_key)) {
      qs.response.result = std::move(cached);
      qs.response.cache_hit = true;
      qs.response.run_micros = qs.run_timer.ElapsedMicros();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  // Map what is LEFT of the per-query deadline onto the search's own
  // safety valve (0 = unlimited on both sides).
  qs.effective = request.options;
  if (request.deadline_seconds > 0.0) {
    qs.deadline_tightened =
        qs.effective.time_limit_seconds <= 0.0 ||
        remaining_deadline < qs.effective.time_limit_seconds;
    qs.effective.time_limit_seconds =
        qs.effective.time_limit_seconds > 0.0
            ? std::min(qs.effective.time_limit_seconds, remaining_deadline)
            : remaining_deadline;
  }

  // Warm hint: a cached clique that survived graph updates. exact_chain
  // hints with few outstanding edges answer exactly via the incremental
  // re-query; everything else still seeds the incumbent for a full search.
  std::optional<WarmHint> hint;
  if (qs.use_cache) hint = cache_->TakeHint(qs.cache_key);
  if (qs.response.trace_id != 0) qs.t_probe_end = qs.queued.ElapsedMicros();
  if (hint.has_value() && hint->exact_chain &&
      hint->new_edges.size() <= kMaxIncrementalEdges) {
    auto result = std::make_shared<SearchResult>(IncrementalRequery(
        *request.graph->graph, hint->new_edges, hint->clique, qs.effective));
    qs.response.deadline_missed = !result->stats.completed;
    qs.response.stop_reason =
        ResponseStopReason(result->stats, qs.deadline_tightened);
    CountStop(qs, result->stats);
    if (qs.response.deadline_missed) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      // Give the (one-shot) hint back: this query's budget was too tight,
      // but the exact chain is still valid for the next one.
      cache_->PutHint(qs.cache_key, std::move(*hint));
    } else {
      cache_->Put(qs.cache_key, result, request.options.params);
    }
    qs.response.result = std::move(result);
    qs.response.incremental = true;
    qs.response.run_micros = qs.run_timer.ElapsedMicros();
    incremental_requeries_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (hint.has_value() && !hint->clique.vertices.empty()) {
    qs.effective.warm_start = hint->clique.vertices;
    qs.response.warm_start = true;
    warm_starts_.fetch_add(1, std::memory_order_relaxed);
    qs.hint = std::move(hint);
  }

  // The deadline spans prepare + branch, matching the monolithic search
  // where reduction time counted against the budget.
  qs.deadline = Deadline(qs.effective.time_limit_seconds);

  // Prepared plan: probe the shared cache, else build (and publish). The
  // plan is keyed by (fingerprint, k, reductions) only, so a delta/bound
  // sweep on one graph reduces exactly once.
  const bool use_prepared =
      prepared_cache_ != nullptr && !request.bypass_prepared_cache;
  if (use_prepared) {
    // Single-flight through the cache: concurrent identical cold queries
    // share one reduction; only the builder pays (and logs) it.
    std::string prepared_key = PreparedGraphCache::MakeKey(
        request.graph->fingerprint, qs.effective.params.k,
        qs.effective.reductions);
    WallTimer prepare_timer;
    bool built = false;
    qs.prepared = prepared_cache_->GetOrPrepare(
        prepared_key, request.graph->fingerprint,
        [&] {
          return PrepareGraph(*request.graph->graph, qs.effective.params.k,
                              qs.effective.reductions);
        },
        &built);
    if (built) {
      qs.prepare_micros = prepare_timer.ElapsedMicros();
      prepared_builds_.fetch_add(1, std::memory_order_relaxed);
    } else {
      qs.response.prepared_hit = true;
      prepared_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    WallTimer prepare_timer;
    qs.prepared = PrepareGraph(*request.graph->graph, qs.effective.params.k,
                               qs.effective.reductions);
    qs.prepare_micros = prepare_timer.ElapsedMicros();
    prepared_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  if (qs.response.trace_id != 0) {
    qs.t_prepare_end = qs.queued.ElapsedMicros();
    prepare_hist_->Record(qs.t_prepare_end - qs.t_probe_end);
  }
  return false;
}

void QueryExecutor::CountStop(const QueryState& qs, const SearchStats& stats) {
  StopReason reason = stats.stop_reason;
  if (reason == StopReason::kNone && !stats.completed) {
    reason = StopReason::kTimeLimit;
  }
  switch (reason) {
    case StopReason::kNone:
      break;
    case StopReason::kNodeLimit:
      stopped_node_limit_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kTimeLimit:
      (qs.deadline_tightened ? stopped_deadline_ : stopped_time_limit_)
          .fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void QueryExecutor::FinishSearch(QueryState& qs, SearchResult&& sr) {
  auto result = std::make_shared<SearchResult>(std::move(sr));
  qs.response.deadline_missed = !result->stats.completed;
  qs.response.stop_reason =
      ResponseStopReason(result->stats, qs.deadline_tightened);
  CountStop(qs, result->stats);
  if (qs.response.deadline_missed) {
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    // A hint consumed by a query whose budget was too tight goes back for
    // the next query.
    if (qs.hint.has_value() && qs.use_cache) {
      cache_->PutHint(qs.cache_key, std::move(*qs.hint));
    }
  } else if (qs.use_cache) {
    // Only completed searches are cached: a truncated result under a tight
    // deadline must not be replayed to a later query with a looser one.
    // The key is the *request's* options, so repeat queries hit even when a
    // deadline tightened the effective limit (completion makes them equal).
    cache_->Put(qs.cache_key, result, qs.request.options.params);
  }
  qs.response.result = std::move(result);
  qs.response.run_micros = qs.run_timer.ElapsedMicros();
  BuildExplain(qs, qs.response.result.get());
}

void QueryExecutor::BuildExplain(QueryState& qs, const SearchResult* sr) {
  if (!qs.request.explain) return;
  ExplainPlan plan;
  plan.result_cache_probed = qs.use_cache;
  plan.result_cache_hit = qs.response.cache_hit;
  if (sr != nullptr && qs.prepared != nullptr) {
    const PreparedGraph& prepared = *qs.prepared;
    plan.prepared_hit = qs.response.prepared_hit;
    plan.prepare_micros = qs.prepare_micros;
    plan.source_vertices = prepared.source_vertices;
    plan.source_edges = prepared.source_edges;
    plan.stages = prepared.stages;
    plan.reduced_vertices = prepared.reduced.num_vertices();
    plan.reduced_edges = prepared.reduced.num_edges();
    plan.heuristic_micros = sr->stats.heuristic_micros;
    plan.heuristic_size = sr->stats.heuristic_size;
    plan.warm_start = qs.response.warm_start;
    // The queued path keeps the seed around; the synchronous path seeds
    // inside SearchPreparedGraph, where only the heuristic size survives.
    plan.seed_size = !qs.seed.clique.vertices.empty()
                         ? static_cast<int64_t>(qs.seed.clique.size())
                         : sr->stats.heuristic_size;
    plan.simd_kernel = simd::ActiveName();
    plan.bitset_budget_bytes = BitsetArenaBudgetBytes();
    plan.components.reserve(prepared.components.size());
    size_t slot = 0;
    for (size_t i = 0; i < prepared.components.size(); ++i) {
      ExplainComponent row;
      row.index = i;
      const AttributedGraph& cg = prepared.components[i]->graph;
      row.vertices = cg.num_vertices();
      row.edges = cg.num_edges();
      // comp_indices ascends, so one cursor pairs slots with components.
      if (slot < qs.comp_indices.size() && qs.comp_indices[slot] == i) {
        const ComponentBranchResult& task = qs.results[slot];
        row.searched = true;
        EngineDecision decision =
            ResolveEngineDecision(qs.effective.engine, cg.num_vertices());
        row.engine = SearchEngineName(decision.engine);
        row.arena_bytes = decision.arena_bytes;
        row.stats = task.stats;
        row.aborted = task.aborted;
        row.best_size = static_cast<int64_t>(task.best.size());
        ++slot;
      }
      plan.components.push_back(std::move(row));
    }
    plan.totals = sr->stats;
    plan.stop_reason = qs.response.stop_reason;
  }
  qs.response.plan_json = ExplainPlanJson(plan);
}

void QueryExecutor::RecordTelemetry(QueryState& qs) {
  if (qs.response.trace_id == 0) return;  // telemetry was off at admission
  const int64_t run = qs.response.run_micros;
  run_hist_->Record(run);
  obs::Slowlog& slowlog = obs::Slowlog::Default();
  if (!slowlog.Admits(run)) return;

  auto trace = std::make_shared<obs::Trace>();
  trace->id = qs.response.trace_id;
  if (qs.request.graph != nullptr) trace->graph = qs.request.graph->name;
  trace->options = CanonicalOptionsKey(qs.request.options);
  trace->queue_micros = qs.from_queue ? qs.t_admit : 0;
  trace->run_micros = run;
  trace->total_micros = std::max(qs.queued.ElapsedMicros(), qs.t_admit);
  trace->ok = qs.response.status.ok();
  trace->cache_hit = qs.response.cache_hit;
  trace->prepared_hit = qs.response.prepared_hit;
  trace->incremental = qs.response.incremental;
  trace->warm_start = qs.response.warm_start;
  trace->deadline_missed = qs.response.deadline_missed;
  trace->stop_reason = qs.response.stop_reason;
  trace->explain_json = qs.response.plan_json;

  const int64_t t_end = trace->total_micros;
  auto add_span = [&trace](const char* name, int32_t parent, int64_t start,
                           int64_t end) {
    obs::TraceSpan span;
    span.name = name;
    span.parent = parent;
    span.start_micros = start;
    span.duration_micros = end > start ? end - start : 0;
    trace->spans.push_back(span);
  };

  if (qs.from_queue) add_span("queue", -1, 0, qs.t_admit);
  if (qs.t_probe_end < 0) {
    // The response completed inside the probe stage: a result-cache hit, a
    // request that expired in the queue, or a validation failure — one span
    // covers the whole run.
    const char* name = qs.response.cache_hit         ? "result_cache_probe"
                       : qs.response.deadline_missed ? "expired_in_queue"
                                                     : "validate";
    add_span(name, -1, qs.t_admit, t_end);
  } else if (qs.response.incremental) {
    add_span("result_cache_probe", -1, qs.t_admit, qs.t_probe_end);
    add_span("incremental_requery", -1, qs.t_probe_end, t_end);
  } else {
    const int64_t t_prepare_end =
        qs.t_prepare_end >= 0 ? qs.t_prepare_end : qs.t_probe_end;
    const int64_t t_branch_end =
        qs.t_branch_end >= 0 ? qs.t_branch_end : t_prepare_end;
    add_span("result_cache_probe", -1, qs.t_admit, qs.t_probe_end);
    add_span("prepare", -1, qs.t_probe_end, t_prepare_end);
    const int32_t branch_span = static_cast<int32_t>(trace->spans.size());
    add_span("branch", -1, t_prepare_end, t_branch_end);
    for (size_t i = 0;
         i < qs.comp_indices.size() && i < qs.comp_start_micros.size(); ++i) {
      const int64_t start = qs.comp_start_micros[i];
      if (start <= 0) continue;  // task never ran (or telemetry raced off)
      add_span("component", branch_span, start,
               start + qs.results[i].stats.search_micros);
    }
    add_span("finish", -1, t_branch_end, t_end);
  }
  slowlog.Record(std::move(trace));
}

QueryResponse QueryExecutor::Run(const QueryRequest& request) {
  QueryState qs;
  qs.request = request;
  qs.queued.Restart();  // the synchronous "submit" is this very call
  if (!PreSearch(qs)) {
    // Deduct the time already spent (hint handling, plan build) from the
    // branch budget so the overall limit matches the monolith's.
    SearchOptions branch_options = qs.effective;
    branch_options.time_limit_seconds = RemainingTimeBudget(
        qs.effective.time_limit_seconds, qs.run_timer.ElapsedSeconds());
    if (qs.response.trace_id != 0) {
      qs.progress = obs::ProgressRegistry::Default().RegisterScoped(
          qs.response.trace_id, request.graph->name,
          CanonicalOptionsKey(request.options),
          qs.prepared->components.size());
      if (qs.effective.time_limit_seconds > 0.0) {
        qs.progress->SetDeadlineMicros(
            static_cast<int64_t>(qs.effective.time_limit_seconds * 1e6));
      }
      branch_options.progress = qs.progress.get();
    }
    std::vector<ComponentBranchResult> per_component;
    SearchResult sr = SearchPreparedGraph(
        *request.graph->graph, *qs.prepared, branch_options,
        request.explain ? &per_component : nullptr);
    qs.progress.Reset();
    if (request.explain) {
      // Adopt the per-component outcomes under the queued path's layout
      // (every component got a task here), so BuildExplain has one shape.
      qs.comp_indices.resize(per_component.size());
      for (size_t i = 0; i < per_component.size(); ++i) qs.comp_indices[i] = i;
      qs.results = std::move(per_component);
    }
    if (qs.response.trace_id != 0) {
      qs.t_branch_end = qs.queued.ElapsedMicros();
      branch_hist_->Record(qs.t_branch_end - qs.t_prepare_end);
    }
    sr.stats.reduce_micros = qs.prepare_micros;
    sr.stats.total_micros = qs.run_timer.ElapsedMicros();
    FinishSearch(qs, std::move(sr));
  } else if (qs.request.explain && qs.response.plan_json.empty()) {
    BuildExplain(qs, nullptr);  // cache hit / expired / invalid: plan is
                                // just the cache decision
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  RecordTelemetry(qs);
  // Journal only queries that did real work. A cache hit serves in well
  // under a microsecond at millions of q/s: journaling each one would both
  // blow the <5% cached-hit overhead budget and flush the entire ring in
  // milliseconds, destroying the flight record's value exactly when it is
  // needed. Hits remain visible through fc_executor_cache_hits_total.
  if (!qs.response.cache_hit) {
    obs::EventJournal::Default().Record(
        obs::EventType::kQueryFinish, qs.response.trace_id,
        qs.response.result != nullptr ? qs.response.result->clique.size() : 0,
        static_cast<uint64_t>(qs.response.run_micros));
  }
  return std::move(qs.response);
}

void QueryExecutor::ExpandQuery(std::shared_ptr<QueryState> qs) {
  qs->seed = SeedIncumbent(*qs->request.graph->graph, *qs->prepared,
                           qs->effective);
  qs->floor.store(static_cast<int64_t>(qs->seed.clique.size()),
                  std::memory_order_relaxed);

  // Static selection against the seeded incumbent; BranchComponent re-checks
  // against the live floor when the task actually runs, so components made
  // irrelevant by a sibling's find are skipped for free.
  const int64_t target =
      std::max<int64_t>(2 * qs->effective.params.k,
                        static_cast<int64_t>(qs->seed.clique.size()) + 1);
  for (size_t i = 0; i < qs->prepared->components.size(); ++i) {
    if (static_cast<int64_t>(
            qs->prepared->components[i]->graph.num_vertices()) >= target) {
      qs->comp_indices.push_back(i);
    }
  }

  const size_t n = qs->comp_indices.size();
  qs->search_timer.Restart();
  if (n == 0) {
    FinalizeQuery(*qs);
    return;
  }
  qs->results.resize(n);
  qs->comp_start_micros.assign(n, 0);
  if (qs->response.trace_id != 0) {
    // Publish this query in the live-progress registry for the duration of
    // its Branch stage; the component tasks write through qs->effective.
    const int64_t seed_size = static_cast<int64_t>(qs->seed.clique.size());
    qs->progress = obs::ProgressRegistry::Default().RegisterScoped(
        qs->response.trace_id, qs->request.graph->name,
        CanonicalOptionsKey(qs->request.options), n);
    if (qs->effective.time_limit_seconds > 0.0) {
      qs->progress->SetDeadlineMicros(
          static_cast<int64_t>(qs->effective.time_limit_seconds * 1e6));
    }
    qs->effective.progress = qs->progress.get();
    qs->progress->NoteIncumbent(seed_size);
    qs->progress->SetUpperBound(std::max(
        seed_size,
        static_cast<int64_t>(qs->prepared->components[qs->comp_indices[0]]
                                 ->graph.num_vertices())));
    qs->comp_done = std::make_unique<std::atomic<bool>[]>(n);
    for (size_t i = 0; i < n; ++i) {
      qs->comp_done[i].store(false, std::memory_order_relaxed);
    }
  }
  qs->remaining.store(n, std::memory_order_relaxed);
  component_tasks_.fetch_add(n, std::memory_order_relaxed);
  obs::EventJournal::Default().Record(
      obs::EventType::kQueryStart, qs->response.trace_id, n,
      qs->seed.clique.size(), qs->request.graph->name.c_str());
  {
    // One engine-decision breadcrumb per query, for the largest selected
    // component (comp_indices ascends over largest-first components).
    const EngineDecision decision = ResolveEngineDecision(
        qs->effective.engine,
        qs->prepared->components[qs->comp_indices[0]]->graph.num_vertices());
    obs::EventJournal::Default().Record(
        obs::EventType::kEngineDecision, qs->response.trace_id,
        decision.arena_bytes, 0, SearchEngineName(decision.engine));
  }
  {
    fc::MutexLock lock(mu_);
    for (size_t slot = 0; slot < n; ++slot) {
      component_queue_.push_back(ComponentTask{qs, slot});
    }
    peak_queue_depth_ = std::max(
        peak_queue_depth_, queue_.size() + component_queue_.size());
    work_ready_.NotifyAll();
  }
}

void QueryExecutor::ExecuteComponentTask(const ComponentTask& task) {
  QueryState& qs = *task.query;
  if (qs.response.trace_id != 0) {
    // Slot-owned; published to the finalizer by the acq_rel decrement below.
    qs.comp_start_micros[task.slot] = qs.queued.ElapsedMicros();
  }
  obs::EventJournal::Default().Record(
      obs::EventType::kTaskBegin, qs.response.trace_id, task.slot,
      qs.prepared->components[qs.comp_indices[task.slot]]
          ->graph.num_vertices());
  qs.results[task.slot] =
      BranchComponent(*qs.prepared, qs.comp_indices[task.slot], qs.effective,
                      qs.deadline, &qs.floor);
  obs::EventJournal::Default().Record(
      obs::EventType::kTaskEnd, qs.response.trace_id, task.slot,
      static_cast<uint64_t>(qs.results[task.slot].stats.nodes));
  if (qs.progress) {
    qs.comp_done[task.slot].store(true, std::memory_order_relaxed);
    // The answer can't exceed the larger of the incumbent and the largest
    // component still searching: comp_indices ascends over largest-first
    // components, so the first undone slot is that component.
    int64_t ub = qs.floor.load(std::memory_order_relaxed);
    for (size_t s = 0; s < qs.comp_indices.size(); ++s) {
      if (!qs.comp_done[s].load(std::memory_order_relaxed)) {
        ub = std::max(
            ub, static_cast<int64_t>(qs.prepared->components[qs.comp_indices[s]]
                                         ->graph.num_vertices()));
        break;
      }
    }
    qs.progress->SetUpperBound(ub);
    qs.progress->NoteComponentDone();
  }
  // acq_rel: the release side publishes this task's result slot, the
  // acquire side (the final decrement) observes every sibling's slot.
  if (qs.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    FinalizeQuery(qs);
  }
}

void QueryExecutor::FinalizeQuery(QueryState& qs) {
  if (qs.response.trace_id != 0) {
    qs.t_branch_end = qs.queued.ElapsedMicros();
    branch_hist_->Record(qs.t_branch_end - qs.t_prepare_end);
  }
  SearchResult sr =
      AggregatePreparedSearch(*qs.prepared, qs.seed, qs.results);
  sr.stats.reduce_micros = qs.prepare_micros;
  sr.stats.search_micros = qs.search_timer.ElapsedMicros();
  sr.stats.total_micros = qs.run_timer.ElapsedMicros();
  FinishSearch(qs, std::move(sr));
  CompleteQuery(qs);
}

void QueryExecutor::CompleteQuery(QueryState& qs) {
  qs.progress.Reset();
  qs.effective.progress = nullptr;
  if (qs.request.explain && qs.response.plan_json.empty()) {
    BuildExplain(qs, nullptr);  // PreSearch answered without a search
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  qs.response.queue_micros =
      qs.queued.ElapsedMicros() - qs.response.run_micros;
  RecordTelemetry(qs);
  obs::EventJournal::Default().Record(
      obs::EventType::kQueryFinish, qs.response.trace_id,
      qs.response.result != nullptr ? qs.response.result->clique.size() : 0,
      static_cast<uint64_t>(qs.response.run_micros),
      qs.request.graph != nullptr ? qs.request.graph->name.c_str() : nullptr);
  qs.promise.set_value(std::move(qs.response));
  {
    fc::MutexLock lock(mu_);
    --inflight_;
    if (inflight_ == 0) idle_.NotifyAll();
  }
}

void QueryExecutor::Drain() {
  fc::MutexLock lock(mu_);
  while (inflight_ != 0) idle_.Wait(lock);
}

void QueryExecutor::Shutdown() {
  // Serialized on its own mutex so a concurrent caller (e.g. the destructor
  // racing an explicit Shutdown) blocks until the workers are actually
  // joined, rather than returning while they still run. Workers never call
  // Shutdown, so this cannot deadlock.
  fc::MutexLock shutdown_lock(shutdown_mu_);
  {
    fc::MutexLock lock(mu_);
    stopping_ = true;
    work_ready_.NotifyAll();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void QueryExecutor::WorkerLoop() {
  while (true) {
    ComponentTask task;
    Pending pending;
    enum class Work { kNone, kComponent, kQuery } work = Work::kNone;
    {
      fc::MutexLock lock(mu_);
      while (!stopping_ && component_queue_.empty() && queue_.empty()) {
        work_ready_.Wait(lock);
      }
      // Component tasks first: finishing in-flight queries beats admitting
      // new ones (and is what frees their memory).
      if (!component_queue_.empty()) {
        task = std::move(component_queue_.front());
        component_queue_.pop_front();
        work = Work::kComponent;
      } else if (!queue_.empty()) {
        pending = std::move(queue_.front());
        queue_.pop_front();
        work = Work::kQuery;
      } else {
        return;  // stopping_ && both queues drained
      }
    }
    active_workers_.fetch_add(1, std::memory_order_relaxed);
    if (work == Work::kComponent) {
      ExecuteComponentTask(task);
    } else {
      auto qs = std::make_shared<QueryState>();
      qs->request = std::move(pending.request);
      qs->promise = std::move(pending.promise);
      qs->queued = pending.queued;
      qs->from_queue = true;
      if (PreSearch(*qs)) {
        CompleteQuery(*qs);
      } else {
        ExpandQuery(std::move(qs));
      }
    }
    active_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

ExecutorMetrics QueryExecutor::metrics() const {
  ExecutorMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.served = served_.load(std::memory_order_relaxed);
  m.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  m.incremental_requeries =
      incremental_requeries_.load(std::memory_order_relaxed);
  m.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  m.prepared_hits = prepared_hits_.load(std::memory_order_relaxed);
  m.prepared_builds = prepared_builds_.load(std::memory_order_relaxed);
  m.component_tasks = component_tasks_.load(std::memory_order_relaxed);
  m.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  m.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  m.stopped_node_limit = stopped_node_limit_.load(std::memory_order_relaxed);
  m.stopped_time_limit = stopped_time_limit_.load(std::memory_order_relaxed);
  m.stopped_deadline = stopped_deadline_.load(std::memory_order_relaxed);
  m.num_workers = static_cast<size_t>(std::max(1, options_.num_workers));
  m.active_workers = active_workers_.load(std::memory_order_relaxed);
  fc::MutexLock lock(mu_);
  m.admission_queue_depth = queue_.size();
  m.component_queue_depth = component_queue_.size();
  m.queue_depth = m.admission_queue_depth + m.component_queue_depth;
  m.peak_queue_depth = peak_queue_depth_;
  return m;
}

}  // namespace fairclique
