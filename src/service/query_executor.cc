#include "service/query_executor.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "dynamic/incremental_search.h"

namespace fairclique {

namespace {

/// Above this many outstanding added edges, the per-edge neighborhood
/// searches of IncrementalRequery approach full-search cost; fall back to a
/// warm-started full search instead.
constexpr size_t kMaxIncrementalEdges = 256;

}  // namespace

QueryExecutor::QueryExecutor(const ExecutorOptions& options, ResultCache* cache)
    : options_(options), cache_(cache) {
  int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(); }

std::future<QueryResponse> QueryExecutor::Submit(QueryRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queue_.size() < options_.queue_capacity) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Pending pending;
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
      work_ready_.notify_one();
      return future;
    }
  }

  // Rejection path: satisfy the future immediately instead of blocking.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse response;
  response.status = Status::Aborted("queue full or executor shut down");
  promise.set_value(std::move(response));
  return future;
}

QueryResponse QueryExecutor::Run(const QueryRequest& request) {
  QueryResponse response;
  WallTimer run_timer;

  if (request.graph == nullptr || request.graph->graph == nullptr) {
    response.status = Status::InvalidArgument("request has no graph");
    served_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  std::string key;
  const bool use_cache = cache_ != nullptr && !request.bypass_cache;
  if (use_cache) {
    key = ResultCache::MakeKey(request.graph->fingerprint, request.options);
    if (std::shared_ptr<const SearchResult> cached = cache_->Get(key)) {
      response.result = std::move(cached);
      response.cache_hit = true;
      response.run_micros = run_timer.ElapsedMicros();
      served_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
  }

  // Map the per-query deadline onto the search's own safety valve
  // (0 = unlimited on both sides).
  SearchOptions effective = request.options;
  if (request.deadline_seconds > 0.0) {
    effective.time_limit_seconds =
        effective.time_limit_seconds > 0.0
            ? std::min(effective.time_limit_seconds, request.deadline_seconds)
            : request.deadline_seconds;
  }

  // Warm hint: a cached clique that survived graph updates. exact_chain
  // hints with few outstanding edges answer exactly via the incremental
  // re-query; everything else still seeds the incumbent for a full search.
  std::optional<WarmHint> hint;
  if (use_cache) hint = cache_->TakeHint(key);
  if (hint.has_value() && hint->exact_chain &&
      hint->new_edges.size() <= kMaxIncrementalEdges) {
    auto result = std::make_shared<SearchResult>(IncrementalRequery(
        *request.graph->graph, hint->new_edges, hint->clique, effective));
    response.deadline_missed = !result->stats.completed;
    if (response.deadline_missed) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      // Give the (one-shot) hint back: this query's budget was too tight,
      // but the exact chain is still valid for the next one.
      cache_->PutHint(key, std::move(*hint));
    } else {
      cache_->Put(key, result, request.options.params);
    }
    response.result = std::move(result);
    response.incremental = true;
    response.run_micros = run_timer.ElapsedMicros();
    served_.fetch_add(1, std::memory_order_relaxed);
    incremental_requeries_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  if (hint.has_value() && !hint->clique.vertices.empty()) {
    effective.warm_start = hint->clique.vertices;
    response.warm_start = true;
    warm_starts_.fetch_add(1, std::memory_order_relaxed);
  }

  auto result = std::make_shared<SearchResult>(
      FindMaximumFairClique(*request.graph->graph, effective));
  response.deadline_missed = !result->stats.completed;
  if (response.deadline_missed) {
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    // As on the incremental path: a hint consumed by a query whose budget
    // was too tight goes back for the next query.
    if (hint.has_value()) cache_->PutHint(key, std::move(*hint));
  } else if (use_cache) {
    // Only completed searches are cached: a truncated result under a tight
    // deadline must not be replayed to a later query with a looser one.
    // The key is the *request's* options, so repeat queries hit even when a
    // deadline tightened the effective limit (completion makes them equal).
    cache_->Put(key, result, request.options.params);
  }
  response.result = std::move(result);
  response.run_micros = run_timer.ElapsedMicros();
  served_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

void QueryExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void QueryExecutor::Shutdown() {
  // Serialized on its own mutex so a concurrent caller (e.g. the destructor
  // racing an explicit Shutdown) blocks until the workers are actually
  // joined, rather than returning while they still run. Workers never call
  // Shutdown, so this cannot deadlock.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    work_ready_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void QueryExecutor::WorkerLoop() {
  while (true) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    QueryResponse response = Run(pending.request);
    response.queue_micros = pending.queued.ElapsedMicros() -
                            response.run_micros;
    pending.promise.set_value(std::move(response));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

ExecutorMetrics QueryExecutor::metrics() const {
  ExecutorMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.served = served_.load(std::memory_order_relaxed);
  m.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  m.incremental_requeries =
      incremental_requeries_.load(std::memory_order_relaxed);
  m.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  m.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  m.queue_depth = queue_.size();
  m.peak_queue_depth = peak_queue_depth_;
  return m;
}

}  // namespace fairclique
