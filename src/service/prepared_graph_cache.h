#ifndef FAIRCLIQUE_SERVICE_PREPARED_GRAPH_CACHE_H_
#define FAIRCLIQUE_SERVICE_PREPARED_GRAPH_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/thread_annotations.h"
#include "core/prepared_graph.h"
#include "dynamic/dynamic_graph.h"

namespace fairclique {

/// Counters exposed by PreparedGraphCache::Stats(). `entries`/`capacity`
/// are point-in-time; the rest are monotonic since construction/Clear().
struct PreparedGraphCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidated = 0;  // dropped by eviction of their graph / migration
  uint64_t forwarded = 0;    // re-keyed to a new epoch's fingerprint
  size_t entries = 0;
  size_t capacity = 0;
};

/// How a snapshot replace migrated the prepared plans of the old epoch.
struct PreparedMigrationOutcome {
  size_t invalidated = 0;
  size_t forwarded = 0;
};

/// Thread-safe LRU cache of PreparedGraph artifacts, keyed by
/// (graph content fingerprint, k, reduction options) — exactly the inputs
/// of PrepareGraph, which are independent of delta, bounds, engine,
/// heuristic, and thread count. A delta- or bound-sweep over one (graph, k)
/// therefore pays the reduction + decomposition cost once and every
/// subsequent query goes straight to the Branch stage.
///
/// Values are shared_ptr<const PreparedGraph>: a hit is one refcount bump,
/// and a plan evicted while queries still branch over it stays valid. A
/// capacity of 0 disables caching (Get always misses, Put is a no-op).
///
/// Epoch migration (OnSnapshotReplace): a prepared plan bakes in the exact
/// content it was reduced from, so almost any update invalidates it. The
/// one provable exception is forwarded instead: a batch that net-added no
/// edges and flipped no attributes (removals and/or appended isolated
/// vertices only) whose touched vertices all lie *outside* the plan's
/// reduced vertex set. Then the reduced subgraph is bit-identical on the
/// new snapshot (none of its vertices or edges changed), it still contains
/// every fair clique of the new graph (removal-only shrinks the clique
/// set; appended isolated vertices cannot join a fair clique), and the
/// plan is re-keyed to the new fingerprint unchanged.
class PreparedGraphCache {
 public:
  explicit PreparedGraphCache(size_t capacity = 16);

  /// Canonical key: FingerprintHex(fingerprint) + "|k=<k>|red=<c><s><e>".
  static std::string MakeKey(uint64_t fingerprint, int k,
                             const ReductionOptions& reductions);

  /// Returns the cached plan and refreshes its recency, or nullptr.
  std::shared_ptr<const PreparedGraph> Get(const std::string& key);

  /// Single-flight probe-or-build: returns the cached plan for `key`, or
  /// runs `build` exactly once per concurrent miss wave — other callers of
  /// the same key block until the builder publishes, then share its plan.
  /// Without this, N workers admitting N identical cold queries would each
  /// run the full reduction pipeline, defeating "reduce once" exactly in
  /// the concurrent setting the service targets. `*built` reports whether
  /// THIS call ran the builder (for metrics). At capacity 0 every call
  /// builds (caching is disabled, so there is nothing to share).
  ///
  /// Deliberate trade-off: a waiter parks its thread for the duration of
  /// the in-flight build (an executor worker waiting here serves nothing
  /// else meanwhile). The window equals one reduction and only opens for
  /// identical concurrent cold queries; re-queuing the caller as a
  /// continuation would keep the pool draining but needs a deferred-query
  /// mechanism the executor does not have yet.
  std::shared_ptr<const PreparedGraph> GetOrPrepare(
      const std::string& key, uint64_t fingerprint,
      const std::function<std::shared_ptr<const PreparedGraph>()>& build,
      bool* built);

  /// Inserts (or refreshes) `prepared` under `key`, evicting the least
  /// recently used entry when full. `fingerprint` must be the graph
  /// fingerprint the key was built from (it drives invalidation).
  void Put(const std::string& key,
           std::shared_ptr<const PreparedGraph> prepared,
           uint64_t fingerprint);

  /// Drops every plan keyed to `fingerprint`; returns the number dropped.
  size_t InvalidateFingerprint(uint64_t fingerprint);

  /// Migrates plans keyed to `old_fp` after the graph advanced to the
  /// epoch with fingerprint `new_fp` via the batch described by `summary`
  /// (see the class comment for the forward rule). `keep_old_entries`
  /// preserves the old-fingerprint plans (another registered name still
  /// serves that content); forwarded plans are *copied* to the new key in
  /// that case.
  PreparedMigrationOutcome OnSnapshotReplace(uint64_t old_fp, uint64_t new_fp,
                                             const UpdateSummary& summary,
                                             bool keep_old_entries = false);

  /// Drops every entry and resets the counters.
  void Clear();

  PreparedGraphCacheStats Stats() const;

 private:
  struct CacheEntry {
    std::shared_ptr<const PreparedGraph> prepared;
    uint64_t fingerprint = 0;
  };
  using LruList = std::list<std::pair<std::string, CacheEntry>>;

  void PutLocked(const std::string& key, CacheEntry entry) REQUIRES(mu_);

  const size_t capacity_;
  mutable fc::Mutex mu_;
  fc::CondVar build_done_;
  /// Keys with a GetOrPrepare builder in flight; waiters block on
  /// build_done_ until their key leaves this set.
  std::unordered_set<std::string> building_ GUARDED_BY(mu_);
  LruList lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t insertions_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t invalidated_ GUARDED_BY(mu_) = 0;
  uint64_t forwarded_ GUARDED_BY(mu_) = 0;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_PREPARED_GRAPH_CACHE_H_
