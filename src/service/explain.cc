#include "service/explain.h"

#include "service/wire.h"

namespace fairclique {

namespace {

void WriteStats(wire::JsonWriter& w, const SearchStats& s) {
  w.Field("nodes", static_cast<unsigned long long>(s.nodes))
      .Field("bound_prunes", static_cast<unsigned long long>(s.bound_prunes))
      .Field("size_prunes", static_cast<unsigned long long>(s.size_prunes))
      .Field("attr_prunes", static_cast<unsigned long long>(s.attr_prunes))
      .Field("cap_removals", static_cast<unsigned long long>(s.cap_removals));
}

}  // namespace

std::string ExplainPlanJson(const ExplainPlan& plan) {
  wire::JsonWriter w;
  w.BeginObject();

  w.Key("prepare").BeginObject();
  w.Field("prepared_hit", plan.prepared_hit)
      .Field("prepare_micros", static_cast<long long>(plan.prepare_micros))
      .Field("source_vertices",
             static_cast<unsigned long long>(plan.source_vertices))
      .Field("source_edges", static_cast<unsigned long long>(plan.source_edges));
  w.Key("stages").BeginArray();
  for (const ReductionStageStats& stage : plan.stages) {
    w.BeginObject()
        .Field("name", stage.name)
        .Field("vertices_left",
               static_cast<unsigned long long>(stage.vertices_left))
        .Field("edges_left", static_cast<unsigned long long>(stage.edges_left))
        .Field("micros", static_cast<long long>(stage.micros))
        .EndObject();
  }
  w.EndArray();
  w.Field("reduced_vertices",
          static_cast<unsigned long long>(plan.reduced_vertices))
      .Field("reduced_edges",
             static_cast<unsigned long long>(plan.reduced_edges));
  w.EndObject();

  w.Key("result_cache").BeginObject();
  w.Field("probed", plan.result_cache_probed)
      .Field("hit", plan.result_cache_hit)
      .EndObject();

  w.Key("seed").BeginObject();
  w.Field("heuristic_micros", static_cast<long long>(plan.heuristic_micros))
      .Field("heuristic_size", static_cast<long long>(plan.heuristic_size))
      .Field("warm_start", plan.warm_start)
      .Field("seed_size", static_cast<long long>(plan.seed_size))
      .EndObject();

  w.Key("kernel").BeginObject();
  w.Field("simd", plan.simd_kernel)
      .Field("bitset_budget_bytes",
             static_cast<unsigned long long>(plan.bitset_budget_bytes))
      .EndObject();

  w.Key("components").BeginArray();
  for (const ExplainComponent& comp : plan.components) {
    w.BeginObject()
        .Field("index", static_cast<unsigned long long>(comp.index))
        .Field("vertices", static_cast<unsigned long long>(comp.vertices))
        .Field("edges", static_cast<unsigned long long>(comp.edges))
        .Field("searched", comp.searched);
    if (comp.searched) {
      w.Field("engine", comp.engine)
          .Field("arena_bytes",
                 static_cast<unsigned long long>(comp.arena_bytes));
      WriteStats(w, comp.stats);
      w.Field("search_micros",
              static_cast<long long>(comp.stats.search_micros))
          .Field("aborted", comp.aborted)
          .Field("best_size", static_cast<long long>(comp.best_size));
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("totals").BeginObject();
  WriteStats(w, plan.totals);
  w.Field("component_search_micros",
          static_cast<long long>(plan.totals.component_search_micros))
      .Field("search_micros",
             static_cast<long long>(plan.totals.search_micros))
      .Field("completed", plan.totals.completed)
      .Field("stop_reason", plan.stop_reason)
      .EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace fairclique
