#ifndef FAIRCLIQUE_SERVICE_WIRE_H_
#define FAIRCLIQUE_SERVICE_WIRE_H_

/// The JSON-lines wire protocol of fairclique_server, factored out of the
/// binary so it can be unit-tested and reused: a minimal flat-object JSON
/// parser (string keys; string / number / bool values — no nesting, no
/// arrays, no null, which is all the protocol uses), typed field accessors,
/// token parsers for the protocol's compact list encodings ("0-5,3-7",
/// "4:b"), and response serialization.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bounds/upper_bounds.h"
#include "graph/types.h"
#include "service/query_executor.h"

namespace fairclique {
namespace wire {

// ----------------------------------------------------------------- JSON in

struct JsonValue {
  enum class Type { kString, kNumber, kBool };
  Type type = Type::kString;
  std::string str;
  double num = 0.0;
  bool b = false;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses one flat JSON object from `line`. On failure returns false and
/// describes the problem in `*error`.
bool ParseJsonObject(const std::string& line, JsonObject* out,
                     std::string* error);

/// Typed accessors; a missing key or a value of the wrong type yields the
/// fallback.
std::string GetString(const JsonObject& obj, const std::string& key,
                      const std::string& fallback = "");
double GetNumber(const JsonObject& obj, const std::string& key,
                 double fallback);
bool GetBool(const JsonObject& obj, const std::string& key, bool fallback);

// ---------------------------------------------------------------- JSON out

/// Escapes `s` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

/// {"ok":false,"id":<id>,"error":"<message>"}
std::string ErrorJson(uint64_t id, const std::string& message);

/// The query response line: clique size/counts/vertices plus the serving
/// flags (cache_hit / incremental / warm_start / prepared_hit / completed /
/// deadline_missed) and timings. A non-OK response serializes as ErrorJson.
std::string QueryResponseJson(uint64_t id, const std::string& graph,
                              const QueryResponse& response);

// ----------------------------------------------------------- token parsing

/// Splits a comma-separated list; empty input (and empty segments) yield no
/// tokens.
std::vector<std::string> SplitList(const std::string& s);

/// "a"/"0" -> kA, "b"/"1" -> kB.
bool ParseAttrToken(const std::string& token, Attribute* out);

/// Parses a decimal vertex id spanning [s, expected_end), rejecting values
/// that do not fit VertexId (a silent narrowing would mutate some unrelated
/// small id instead).
bool ParseVertexId(const char* s, const char* expected_end, VertexId* out);

/// Parses "<u><sep><v>" into two vertex ids.
bool ParseVertexPair(const std::string& token, char sep, VertexId* u,
                     VertexId* v);

/// Protocol names of the extra upper bounds: none|degeneracy|d|hindex|h|
/// cd|ch|cp; the empty string means none.
bool ParseExtraBound(const std::string& name, ExtraBound* out);

}  // namespace wire
}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_WIRE_H_
