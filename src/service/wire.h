#ifndef FAIRCLIQUE_SERVICE_WIRE_H_
#define FAIRCLIQUE_SERVICE_WIRE_H_

/// The JSON-lines wire protocol of fairclique_server, factored out of the
/// binary so it can be unit-tested and reused: a minimal flat-object JSON
/// parser (string keys; string / number / bool values — no nesting, no
/// arrays, no null, which is all the protocol uses), typed field accessors,
/// token parsers for the protocol's compact list encodings ("0-5,3-7",
/// "4:b"), and response serialization.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bounds/upper_bounds.h"
#include "graph/types.h"
#include "service/query_executor.h"

namespace fairclique {
namespace wire {

// ----------------------------------------------------------------- JSON in

struct JsonValue {
  enum class Type { kString, kNumber, kBool };
  Type type = Type::kString;
  std::string str;
  double num = 0.0;
  bool b = false;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses one flat JSON object from `line`. On failure returns false and
/// describes the problem in `*error`.
bool ParseJsonObject(const std::string& line, JsonObject* out,
                     std::string* error);

/// Typed accessors; a missing key or a value of the wrong type yields the
/// fallback.
std::string GetString(const JsonObject& obj, const std::string& key,
                      const std::string& fallback = "");
double GetNumber(const JsonObject& obj, const std::string& key,
                 double fallback);
bool GetBool(const JsonObject& obj, const std::string& key, bool fallback);

// ---------------------------------------------------------------- JSON out

/// Escapes `s` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

/// Streaming JSON serializer for the response side of the protocol: nested
/// objects/arrays, automatic commas, and escaping through one code path —
/// so no response line can be built with a hand-managed quote or a missed
/// escape again. Usage:
///
///   JsonWriter w;
///   w.BeginObject().Field("ok", true).Field("id", id);
///   w.Key("vertices").BeginArray();
///   for (VertexId v : clique) w.Value(int64_t{v});
///   w.EndArray().EndObject();
///   printf("%s\n", w.str().c_str());
///
/// The writer trusts the caller to call Begin/End/Key in a well-formed
/// order (it tracks only comma placement); wire_test locks down the output
/// for each value type.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(const std::string& v);  // quoted + escaped
  JsonWriter& Value(const char* v);
  JsonWriter& Value(bool v);
  JsonWriter& Value(double v);  // %.17g, shortest round-trip not needed
  JsonWriter& Value(int v);
  JsonWriter& Value(unsigned v);
  JsonWriter& Value(long v);
  JsonWriter& Value(unsigned long v);
  JsonWriter& Value(long long v);
  JsonWriter& Value(unsigned long long v);

  /// Splices `json` into the stream verbatim (comma handling included).
  /// For embedding an already-serialized subdocument — e.g. the EXPLAIN
  /// plan a QueryResponse carries pre-rendered — without re-escaping it as
  /// a string. The caller guarantees `json` is itself well-formed.
  JsonWriter& Raw(const std::string& json);

  template <typename T>
  JsonWriter& Field(const std::string& key, T&& v) {
    Key(key);
    return Value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }

 private:
  /// Emits the separator a value/key needs at the current position.
  void BeforeItem();

  std::string out_;
  /// One entry per open container: true until its first item is written.
  std::vector<bool> first_;
  /// True between Key() and its value (the ':' already separates them).
  bool after_key_ = false;
};

/// {"ok":false,"id":<id>,"error":"<message>"}
std::string ErrorJson(uint64_t id, const std::string& message);

/// Structured error for `trace <id>` / `slowlog` misses: unlike the generic
/// ErrorJson, it echoes the requested trace id and a machine-readable
/// reason ("not_retained" — the trace was evicted by a slower query or was
/// never slow enough to enter the slowlog).
std::string TraceNotFoundJson(uint64_t id, uint64_t trace_id);

/// The query response line: clique size/counts/vertices plus the serving
/// flags (cache_hit / incremental / warm_start / prepared_hit / completed /
/// deadline_missed) and timings. A non-OK response serializes as ErrorJson.
std::string QueryResponseJson(uint64_t id, const std::string& graph,
                              const QueryResponse& response);

// ----------------------------------------------------------- token parsing

/// Splits a comma-separated list; empty input (and empty segments) yield no
/// tokens.
std::vector<std::string> SplitList(const std::string& s);

/// "a"/"0" -> kA, "b"/"1" -> kB.
bool ParseAttrToken(const std::string& token, Attribute* out);

/// Parses a decimal vertex id spanning [s, expected_end), rejecting values
/// that do not fit VertexId (a silent narrowing would mutate some unrelated
/// small id instead).
bool ParseVertexId(const char* s, const char* expected_end, VertexId* out);

/// Parses "<u><sep><v>" into two vertex ids.
bool ParseVertexPair(const std::string& token, char sep, VertexId* u,
                     VertexId* v);

/// Protocol names of the extra upper bounds: none|degeneracy|d|hindex|h|
/// cd|ch|cp; the empty string means none.
bool ParseExtraBound(const std::string& name, ExtraBound* out);

}  // namespace wire
}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_WIRE_H_
