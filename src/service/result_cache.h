#ifndef FAIRCLIQUE_SERVICE_RESULT_CACHE_H_
#define FAIRCLIQUE_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/max_fair_clique.h"

namespace fairclique {

/// Counters exposed by ResultCache::Stats(). `entries` and `capacity` are
/// point-in-time sizes; the rest are monotonic since construction/Clear().
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Thread-safe LRU cache of completed search results, keyed by
/// (graph content fingerprint, canonical options key) — see MakeKey. Values
/// are shared_ptr<const SearchResult>, so a hit costs one refcount bump and
/// entries evicted while a client still holds the pointer stay valid.
///
/// A capacity of 0 disables caching: Get always misses and Put is a no-op
/// (misses are still counted, so stats stay meaningful).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 128);

  /// The canonical cache key: FingerprintHex(fingerprint) + "|" +
  /// CanonicalOptionsKey(options). Options fields that cannot change the
  /// answer (engine, num_threads) are canonicalized away, so e.g. a 1-thread
  /// and an 8-thread query for the same (k, delta, bounds) share one entry.
  static std::string MakeKey(uint64_t fingerprint,
                             const SearchOptions& options);

  /// Returns the cached result and refreshes its recency, or nullptr.
  std::shared_ptr<const SearchResult> Get(const std::string& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the least
  /// recently used entry when full. Callers should only Put results whose
  /// search ran to completion; truncated results would poison repeat
  /// queries with stale limits.
  void Put(const std::string& key, std::shared_ptr<const SearchResult> result);

  /// Drops every entry and resets the counters.
  void Clear();

  ResultCacheStats Stats() const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const SearchResult>>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_RESULT_CACHE_H_
