#ifndef FAIRCLIQUE_SERVICE_RESULT_CACHE_H_
#define FAIRCLIQUE_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/max_fair_clique.h"
#include "dynamic/dynamic_graph.h"
#include "storage/warm_file.h"

namespace fairclique {

/// Counters exposed by ResultCache::Stats(). `entries`, `hint_entries` and
/// `capacity` are point-in-time sizes; the rest are monotonic since
/// construction/Clear().
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidated = 0;      // entries/hints dropped by invalidation
  uint64_t republished = 0;      // exact entries carried to a new fingerprint
  uint64_t hints_published = 0;  // warm hints created by snapshot migration
  uint64_t hint_hits = 0;        // TakeHint successes
  size_t entries = 0;
  size_t hint_entries = 0;
  size_t capacity = 0;
};

/// A cached clique that survived a graph update but is no longer known to be
/// maximum: the next query for its key uses it instead of starting cold.
///
///  - `exact_chain` true means every epoch since `clique` was an exact
///    answer only added the edges in `new_edges` (plus removals/isolated
///    vertices that provably cannot create a larger clique), so
///    IncrementalRequery(snapshot, new_edges, clique, options) is exact.
///    With `new_edges` empty the clique is still exact outright.
///  - `exact_chain` false (an attribute changed somewhere) downgrades the
///    clique to a warm lower bound for SearchOptions::warm_start.
struct WarmHint {
  CliqueResult clique;
  FairnessParams params;
  std::vector<Edge> new_edges;
  bool exact_chain = false;
};

/// Counts returned by OnSnapshotReplace / InvalidateFingerprint.
struct MigrationOutcome {
  size_t invalidated = 0;   // dropped outright
  size_t republished = 0;   // carried over as exact entries
  size_t hints = 0;         // carried over as warm hints
};

/// Thread-safe LRU cache of completed search results, keyed by
/// (graph content fingerprint, canonical options key) — see MakeKey. Values
/// are shared_ptr<const SearchResult>, so a hit costs one refcount bump and
/// entries evicted while a client still holds the pointer stay valid.
///
/// Entries remember the query's FairnessParams so that, when a graph
/// advances to a new epoch (OnSnapshotReplace), each cached clique can be
/// revalidated against the new snapshot and either invalidated, republished
/// as still-exact, or downgraded to a WarmHint for the new fingerprint.
///
/// A capacity of 0 disables caching: Get always misses and Put is a no-op
/// (misses are still counted, so stats stay meaningful).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 128);

  /// The canonical cache key: FingerprintHex(fingerprint) + "|" +
  /// CanonicalOptionsKey(options). Options fields that cannot change the
  /// answer (engine, num_threads, warm_start) are canonicalized away, so
  /// e.g. a 1-thread and an 8-thread query for the same (k, delta, bounds)
  /// share one entry.
  static std::string MakeKey(uint64_t fingerprint,
                             const SearchOptions& options);

  /// Returns the cached result and refreshes its recency, or nullptr.
  std::shared_ptr<const SearchResult> Get(const std::string& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the least
  /// recently used entry when full. Callers should only Put results whose
  /// search ran to completion; truncated results would poison repeat
  /// queries with stale limits. `params` must be the query's fairness
  /// parameters — snapshot migration revalidates the clique under them.
  /// Entries stored without params (nullopt) are served normally but
  /// invalidated outright on the first snapshot change, since no migration
  /// rule can be proven without knowing (k, delta).
  void Put(const std::string& key, std::shared_ptr<const SearchResult> result,
           std::optional<FairnessParams> params = std::nullopt);

  /// Removes and returns the warm hint for `key`, if any. Hints are
  /// one-shot: the consumer is expected to complete the re-query and Put
  /// the fresh exact result back under the same key — or PutHint the hint
  /// back if the re-query could not complete (deadline), so the exact
  /// chain is not lost to one impatient query.
  std::optional<WarmHint> TakeHint(const std::string& key);

  /// (Re-)publishes a warm hint for `key`. No-op at capacity 0 or when an
  /// exact entry already holds the key. Known limitation: a put-back that
  /// races a concurrent Replace/Evict can land under a just-invalidated
  /// fingerprint; the stray hint is never served incorrectly (keys are
  /// content-addressed) and ages out of the FIFO-bounded hint store.
  void PutHint(const std::string& key, WarmHint hint);

  /// Drops every exact entry and warm hint keyed to `fingerprint` (a graph
  /// no longer registered under any name). Returns the number dropped.
  size_t InvalidateFingerprint(uint64_t fingerprint);

  /// Migrates everything keyed to `old_fp` after the graph advanced to the
  /// epoch `snapshot` (fingerprint `new_fp`) via the batch described by
  /// `summary`. Per entry/hint with clique Q and params p:
  ///
  ///  - a net-removed edge endpoint or attribute flip inside Q, or a failed
  ///    re-verification against `snapshot`, invalidates it;
  ///  - an attribute flip elsewhere downgrades it to a warm hint (a larger
  ///    fair clique may now exist anywhere, but Q is still a lower bound);
  ///  - otherwise Q's exactness argument is delta-shaped: any better clique
  ///    must contain a net-added edge. With no added edges outstanding the
  ///    entry is republished as exact; when the summary's affected-region
  ///    cap (min(max_affected_total, 2*max_affected_min + p.delta)) cannot
  ///    beat |Q| it is also republished as exact; otherwise it becomes an
  ///    exact_chain hint carrying the accumulated added edges.
  ///
  /// `keep_old_entries` preserves the old-fingerprint entries (another
  /// registered name still serves that content); otherwise they are removed.
  ///
  /// Runs under the cache mutex; per entry the work is one verifier call
  /// (O(|Q|^2 log d)) plus per-edge lookups, bounded by the cache capacity,
  /// so queries stall for well under a millisecond per epoch at default
  /// sizes. Queries in flight across the swap may still Put results under
  /// the old fingerprint afterwards; such stragglers are content-addressed
  /// (never wrong), occupy at most one LRU slot each, and age out.
  MigrationOutcome OnSnapshotReplace(uint64_t old_fp, uint64_t new_fp,
                                     const AttributedGraph& snapshot,
                                     const UpdateSummary& summary,
                                     bool keep_old_entries = false);

  /// Drops every entry and hint and resets the counters.
  void Clear();

  /// Snapshot of the persistable exact entries for the warm file
  /// (storage/warm_file.h), most recently used first: completed results
  /// with a non-empty clique and known fairness params — exactly the
  /// entries a restart can re-prove with the verifier. Hints are not
  /// exported (they are lower bounds, not answers).
  std::vector<storage::WarmEntry> ExportWarmEntries() const;

  ResultCacheStats Stats() const;

 private:
  struct CacheEntry {
    std::shared_ptr<const SearchResult> result;
    std::optional<FairnessParams> params;  // nullopt: not migratable
  };
  using LruList = std::list<std::pair<std::string, CacheEntry>>;

  void PutLocked(const std::string& key, CacheEntry entry) REQUIRES(mu_);
  void PutHintLocked(const std::string& key, WarmHint hint) REQUIRES(mu_);
  /// Applies the migration rules to one clique; returns true when it
  /// survives (as an exact entry or hint under `new_key`).
  bool MigrateCliqueLocked(const std::string& new_key, const CliqueResult& q,
                           const FairnessParams& params,
                           std::vector<Edge> prior_edges, bool prior_exact,
                           std::shared_ptr<const SearchResult> exact_result,
                           const AttributedGraph& snapshot,
                           const UpdateSummary& summary,
                           MigrationOutcome* outcome) REQUIRES(mu_);

  const size_t capacity_;
  mutable fc::Mutex mu_;
  LruList lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_ GUARDED_BY(mu_);
  std::unordered_map<std::string, WarmHint> hints_ GUARDED_BY(mu_);
  /// front = oldest, for FIFO eviction
  std::list<std::string> hint_order_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t insertions_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t invalidated_ GUARDED_BY(mu_) = 0;
  uint64_t republished_ GUARDED_BY(mu_) = 0;
  uint64_t hints_published_ GUARDED_BY(mu_) = 0;
  uint64_t hint_hits_ GUARDED_BY(mu_) = 0;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_RESULT_CACHE_H_
