#include "service/result_cache.h"

#include "core/options_key.h"
#include "graph/fingerprint.h"

namespace fairclique {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::string ResultCache::MakeKey(uint64_t fingerprint,
                                 const SearchOptions& options) {
  return FingerprintHex(fingerprint) + "|" + CanonicalOptionsKey(options);
}

std::shared_ptr<const SearchResult> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const SearchResult> result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(result));
  index_[key] = lru_.begin();
  ++insertions_;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = misses_ = insertions_ = evictions_ = 0;
}

ResultCacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace fairclique
