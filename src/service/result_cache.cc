#include "service/result_cache.h"

#include <algorithm>

#include <string_view>

#include "core/options_key.h"
#include "obs/event_journal.h"
#include "core/verifier.h"
#include "graph/fingerprint.h"
#include "storage/format_util.h"

namespace fairclique {

namespace {

/// True when the sorted vertex sets intersect.
bool Intersects(const std::vector<VertexId>& sorted_a,
                const std::vector<VertexId>& sorted_b) {
  size_t i = 0, j = 0;
  while (i < sorted_a.size() && j < sorted_b.size()) {
    if (sorted_a[i] < sorted_b[j]) ++i;
    else if (sorted_a[i] > sorted_b[j]) ++j;
    else return true;
  }
  return false;
}

}  // namespace

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::string ResultCache::MakeKey(uint64_t fingerprint,
                                 const SearchOptions& options) {
  return FingerprintHex(fingerprint) + "|" + CanonicalOptionsKey(options);
}

std::shared_ptr<const SearchResult> ResultCache::Get(const std::string& key) {
  fc::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second.result;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const SearchResult> result,
                      std::optional<FairnessParams> params) {
  if (capacity_ == 0) return;
  fc::MutexLock lock(mu_);
  PutLocked(key, CacheEntry{std::move(result), params});
  // A fresh exact answer supersedes any warm hint for the same key.
  auto hint = hints_.find(key);
  if (hint != hints_.end()) {
    hints_.erase(hint);
    hint_order_.remove(key);
  }
}

void ResultCache::PutLocked(const std::string& key, CacheEntry entry) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    obs::EventJournal::Default().Record(obs::EventType::kCacheEvict, 1, 0);
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  ++insertions_;
}

void ResultCache::PutHint(const std::string& key, WarmHint hint) {
  fc::MutexLock lock(mu_);
  PutHintLocked(key, std::move(hint));
}

void ResultCache::PutHintLocked(const std::string& key, WarmHint hint) {
  if (capacity_ == 0) return;
  // An exact entry always beats a hint (Get is probed before TakeHint), so
  // publishing one would only waste a hint slot. This also closes a race:
  // a deadline-missed query putting its consumed hint back after a
  // concurrent query for the same key already completed and cached the
  // exact answer.
  if (index_.count(key) > 0) return;
  auto it = hints_.find(key);
  if (it != hints_.end()) {
    it->second = std::move(hint);
    return;
  }
  while (hints_.size() >= capacity_ && !hint_order_.empty()) {
    hints_.erase(hint_order_.front());
    hint_order_.pop_front();
    ++evictions_;
  }
  hint_order_.push_back(key);
  hints_.emplace(key, std::move(hint));
}

std::optional<WarmHint> ResultCache::TakeHint(const std::string& key) {
  fc::MutexLock lock(mu_);
  auto it = hints_.find(key);
  if (it == hints_.end()) return std::nullopt;
  WarmHint hint = std::move(it->second);
  hints_.erase(it);
  hint_order_.remove(key);
  ++hint_hits_;
  return hint;
}

size_t ResultCache::InvalidateFingerprint(uint64_t fingerprint) {
  const std::string prefix = FingerprintHex(fingerprint) + "|";
  fc::MutexLock lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  for (auto it = hints_.begin(); it != hints_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      hint_order_.remove(it->first);
      it = hints_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidated_ += dropped;
  return dropped;
}

bool ResultCache::MigrateCliqueLocked(
    const std::string& new_key, const CliqueResult& q,
    const FairnessParams& params, std::vector<Edge> prior_edges,
    bool prior_exact, std::shared_ptr<const SearchResult> exact_result,
    const AttributedGraph& snapshot, const UpdateSummary& summary,
    MigrationOutcome* outcome) {
  // Rule 1: a removed edge endpoint or attribute flip inside the clique, or
  // a failed re-verification, invalidates it. (Clique vertices are stored
  // sorted; summary.touched is sorted.)
  if (Intersects(q.vertices, summary.touched) ||
      (!q.vertices.empty() &&
       !VerifyFairClique(snapshot, q.vertices, params).ok())) {
    ++outcome->invalidated;
    ++invalidated_;
    return false;
  }

  // Rule 2: an attribute flip elsewhere can enlarge the maximum without new
  // edges, so the clique survives only as a warm lower bound. (An empty
  // cached answer carries no information then — drop it.)
  if (summary.attributes_changed > 0) {
    if (q.vertices.empty()) {
      ++outcome->invalidated;
      ++invalidated_;
      return false;
    }
    PutHintLocked(new_key, WarmHint{q, params, {}, /*exact_chain=*/false});
    ++outcome->hints;
    ++hints_published_;
    return true;
  }

  // No attribute flips: any clique of the new snapshot that beats q must
  // contain a net-added edge still present (cliques avoiding all of them
  // are cliques of the base epoch, hence <= |q|). Accumulate those edges.
  for (const Edge& e : summary.added_edges) prior_edges.push_back(e);
  prior_edges.erase(
      std::remove_if(prior_edges.begin(), prior_edges.end(),
                     [&snapshot](const Edge& e) {
                       return e.u >= snapshot.num_vertices() ||
                              e.v >= snapshot.num_vertices() ||
                              !snapshot.HasEdge(e.u, e.v);
                     }),
      prior_edges.end());
  std::sort(prior_edges.begin(), prior_edges.end());
  prior_edges.erase(std::unique(prior_edges.begin(), prior_edges.end()),
                    prior_edges.end());

  // Rule 3: exactness preserved outright — no added edges outstanding, or
  // (for entries that were exact before this batch) the affected-region cap
  // from the incrementally maintained attribute-degrees cannot beat |q|.
  bool still_exact = prior_exact && prior_edges.empty();
  if (prior_exact && !still_exact && exact_result != nullptr &&
      prior_edges.size() == summary.added_edges.size()) {
    int64_t cap = std::min<int64_t>(
        summary.max_affected_total,
        2 * static_cast<int64_t>(summary.max_affected_min) + params.delta);
    still_exact = cap <= static_cast<int64_t>(q.vertices.size());
  }
  if (still_exact) {
    if (exact_result != nullptr) {
      PutLocked(new_key, CacheEntry{std::move(exact_result), params});
      ++outcome->republished;
      ++republished_;
    } else {
      // Hint chains drop the original SearchResult; keep an exact_chain
      // hint with no outstanding edges — the consumer serves it verbatim.
      PutHintLocked(new_key,
                    WarmHint{q, params, {}, /*exact_chain=*/true});
      ++outcome->hints;
      ++hints_published_;
    }
    return true;
  }

  // Rule 4: survives as a lower bound; exact_chain enables the incremental
  // re-query over the outstanding added edges.
  PutHintLocked(new_key, WarmHint{q, params, std::move(prior_edges),
                                  /*exact_chain=*/prior_exact});
  ++outcome->hints;
  ++hints_published_;
  return true;
}

MigrationOutcome ResultCache::OnSnapshotReplace(uint64_t old_fp,
                                                uint64_t new_fp,
                                                const AttributedGraph& snapshot,
                                                const UpdateSummary& summary,
                                                bool keep_old_entries) {
  MigrationOutcome outcome;
  if (old_fp == new_fp) return outcome;
  const std::string old_prefix = FingerprintHex(old_fp) + "|";
  const std::string new_prefix = FingerprintHex(new_fp) + "|";
  fc::MutexLock lock(mu_);

  // Exact entries. Collect first: PutLocked mutates lru_/index_.
  std::vector<std::pair<std::string, CacheEntry>> exact;
  for (const auto& [key, entry] : lru_) {
    if (key.compare(0, old_prefix.size(), old_prefix) == 0) {
      exact.emplace_back(key.substr(old_prefix.size()), entry);
    }
  }
  if (!keep_old_entries) {
    for (const auto& [opts_part, entry] : exact) {
      auto it = index_.find(old_prefix + opts_part);
      if (it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
      }
    }
  }
  for (auto& [opts_part, entry] : exact) {
    if (!entry.params.has_value()) {
      // Stored without fairness params: no migration rule is provable.
      ++outcome.invalidated;
      ++invalidated_;
      continue;
    }
    MigrateCliqueLocked(new_prefix + opts_part, entry.result->clique,
                        *entry.params, {}, /*prior_exact=*/true, entry.result,
                        snapshot, summary, &outcome);
  }

  // Warm hints from earlier epochs that were never consumed.
  std::vector<std::pair<std::string, WarmHint>> old_hints;
  for (const auto& [key, hint] : hints_) {
    if (key.compare(0, old_prefix.size(), old_prefix) == 0) {
      old_hints.emplace_back(key.substr(old_prefix.size()), hint);
    }
  }
  if (!keep_old_entries) {
    for (const auto& [opts_part, hint] : old_hints) {
      hints_.erase(old_prefix + opts_part);
      hint_order_.remove(old_prefix + opts_part);
    }
  }
  for (auto& [opts_part, hint] : old_hints) {
    MigrateCliqueLocked(new_prefix + opts_part, hint.clique, hint.params,
                        std::move(hint.new_edges), hint.exact_chain, nullptr,
                        snapshot, summary, &outcome);
  }
  return outcome;
}

void ResultCache::Clear() {
  fc::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  hints_.clear();
  hint_order_.clear();
  hits_ = misses_ = insertions_ = evictions_ = 0;
  invalidated_ = republished_ = hints_published_ = hint_hits_ = 0;
}

std::vector<storage::WarmEntry> ResultCache::ExportWarmEntries() const {
  fc::MutexLock lock(mu_);
  std::vector<storage::WarmEntry> out;
  out.reserve(lru_.size());
  for (const auto& [key, entry] : lru_) {
    if (entry.result == nullptr || !entry.result->stats.completed) continue;
    if (!entry.params.has_value()) continue;  // not re-provable on restore
    if (entry.result->clique.empty()) continue;  // no witness to verify
    // Keys are "<16-hex fingerprint>|<options key>" (MakeKey); recover the
    // fingerprint so the restore side can resolve the graph to verify
    // against without parsing keys itself. (Covered by the recovery round-
    // trip tests — a MakeKey layout change fails them rather than silently
    // emptying the warm file.)
    if (key.size() < 17 || key[16] != '|') continue;
    uint64_t fingerprint = 0;
    if (!storage::ParseHex64(std::string_view(key).substr(0, 16),
                             &fingerprint)) {
      continue;
    }
    storage::WarmEntry warm;
    warm.key = key;
    warm.fingerprint = fingerprint;
    warm.clique = entry.result->clique;
    warm.has_params = true;
    warm.params = *entry.params;
    out.push_back(std::move(warm));
  }
  return out;
}

ResultCacheStats ResultCache::Stats() const {
  fc::MutexLock lock(mu_);
  ResultCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.invalidated = invalidated_;
  stats.republished = republished_;
  stats.hints_published = hints_published_;
  stats.hint_hits = hint_hits_;
  stats.entries = lru_.size();
  stats.hint_entries = hints_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace fairclique
