#include "service/graph_registry.h"

#include <fstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/verifier.h"
#include "obs/crash_handler.h"
#include "obs/event_journal.h"
#include "graph/binary_io.h"
#include "graph/fingerprint.h"
#include "graph/io.h"
#include "storage/fcg2.h"

namespace fairclique {

namespace {

/// Resolves kAuto by sniffing the first bytes: the FCG1/FCG2 magics pick
/// the binary containers, a leading '%' (METIS's conventional comment and
/// the only format here that uses it as the *first* byte by convention)
/// picks METIS, everything else is a text edge list. IO failures fall
/// through to the edge-list loader, which reports them with a proper
/// status.
GraphFormat SniffFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  if (in.gcount() == 4 && magic[0] == 'F' && magic[1] == 'C' &&
      magic[2] == 'G') {
    if (magic[3] == '1') return GraphFormat::kBinary;
    if (magic[3] == '2') return GraphFormat::kBinaryV2;
  }
  if (in.gcount() >= 1 && magic[0] == '%') return GraphFormat::kMetis;
  return GraphFormat::kEdgeList;
}

}  // namespace

void GraphRegistry::AttachCache(ResultCache* cache) {
  fc::MutexLock lock(mu_);
  cache_ = cache;
}

void GraphRegistry::AttachPreparedCache(PreparedGraphCache* cache) {
  fc::MutexLock lock(mu_);
  prepared_cache_ = cache;
}

void GraphRegistry::AttachStorage(storage::StorageManager* storage) {
  fc::MutexLock lock(mu_);
  storage_ = storage;
}

bool GraphRegistry::FingerprintReferencedLocked(
    uint64_t fingerprint, const std::string& except) const {
  for (const auto& [name, entry] : graphs_) {
    if (name != except && entry->fingerprint == fingerprint) return true;
  }
  return false;
}

Status GraphRegistry::Load(const std::string& name, const std::string& path,
                           const std::string& attribute_path,
                           GraphFormat format) {
  {
    fc::MutexLock lock(mu_);
    if (graphs_.count(name) > 0) {
      return Status::InvalidArgument("graph '" + name +
                                     "' is already registered; evict first");
    }
  }
  if (format == GraphFormat::kAuto) format = SniffFormat(path);

  AttributedGraph g;
  if (format == GraphFormat::kBinary || format == GraphFormat::kBinaryV2) {
    if (!attribute_path.empty()) {
      return Status::InvalidArgument(
          "binary graphs carry attributes inline; no attribute file expected");
    }
    if (format == GraphFormat::kBinary) {
      FAIRCLIQUE_RETURN_NOT_OK(LoadBinaryGraph(path, &g));
    } else {
      FAIRCLIQUE_RETURN_NOT_OK(storage::LoadFcg2(path, &g));
    }
  } else if (format == GraphFormat::kMetis) {
    FAIRCLIQUE_RETURN_NOT_OK(LoadMetisGraph(path, &g));
    if (!attribute_path.empty()) {
      std::vector<Attribute> attrs;
      FAIRCLIQUE_RETURN_NOT_OK(
          LoadAttributes(attribute_path, g.num_vertices(), &attrs));
      g = BuildGraph(g.num_vertices(), g.edges(), attrs);
    }
  } else {
    FAIRCLIQUE_RETURN_NOT_OK(
        LoadAttributedGraph(path, attribute_path, EdgeListOptions{}, &g));
  }
  return Add(name, std::move(g), path);
}

Status GraphRegistry::Add(const std::string& name, AttributedGraph graph,
                          const std::string& source) {
  return AddEntry(name,
                  std::make_shared<const AttributedGraph>(std::move(graph)),
                  /*version=*/0, source, /*persist=*/true);
}

Status GraphRegistry::Restore(const std::string& name,
                              std::shared_ptr<const AttributedGraph> graph,
                              uint64_t version, const std::string& source) {
  if (graph == nullptr) {
    return Status::InvalidArgument("Restore: graph must not be null");
  }
  return AddEntry(name, std::move(graph), version, source, /*persist=*/false);
}

Status GraphRegistry::AddEntry(const std::string& name,
                               std::shared_ptr<const AttributedGraph> graph,
                               uint64_t version, const std::string& source,
                               bool persist) {
  auto entry = std::make_shared<RegisteredGraph>();
  entry->name = name;
  entry->fingerprint = GraphFingerprint(*graph);
  entry->graph = std::move(graph);
  entry->version = version;
  entry->source = source;

  // swap_mu_ serializes the (insert, persist) pair with Replace/Evict so
  // the write-through cannot interleave with a concurrent mutation of the
  // same name; reads only ever take mu_.
  fc::MutexLock swap_lock(swap_mu_);
  storage::StorageManager* storage = nullptr;
  {
    fc::MutexLock lock(mu_);
    auto [it, inserted] = graphs_.emplace(name, entry);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("graph '" + name +
                                     "' is already registered; evict first");
    }
    if (persist) storage = storage_;
  }
  if (storage != nullptr) {
    Status status = storage->PersistGraph(name, *entry->graph, version,
                                          entry->fingerprint, source);
    if (!status.ok()) {
      // Durability is part of the registration contract once storage is
      // attached: an unpersistable graph is not registered at all.
      fc::MutexLock lock(mu_);
      graphs_.erase(name);
      return status;
    }
  }
  (persist ? loads_ : restores_).fetch_add(1, std::memory_order_relaxed);
  obs::EventJournal::Default().Record(
      obs::EventType::kGraphLoad, version, entry->graph->num_vertices(),
      entry->graph->num_edges(), name.c_str());
  obs::NoteGraphEpoch(name, version, entry->fingerprint);
  return Status::OK();
}

std::shared_ptr<const RegisteredGraph> GraphRegistry::Get(
    const std::string& name) const {
  fc::MutexLock lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

Status GraphRegistry::Replace(const std::string& name,
                              std::shared_ptr<const AttributedGraph> snapshot,
                              uint64_t version, const UpdateSummary* summary,
                              ReplaceReport* report) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Replace: snapshot must not be null");
  }
  // Fingerprint the snapshot we were actually given rather than trusting
  // summary->fingerprint: if a racing Apply advanced the DynamicGraph
  // between the caller's Apply and this Replace, snapshot and summary
  // describe different epochs, and registering the summary's fingerprint
  // would key cache entries to the wrong content.
  const uint64_t new_fp = GraphFingerprint(*snapshot);
  auto entry = std::make_shared<RegisteredGraph>();
  entry->name = name;
  entry->fingerprint = new_fp;
  entry->graph = snapshot;
  entry->version = version;

  uint64_t old_fp = 0;
  bool old_referenced = false;
  ResultCache* cache = nullptr;
  PreparedGraphCache* prepared_cache = nullptr;
  storage::StorageManager* storage = nullptr;
  fc::MutexLock swap_lock(swap_mu_);
  {
    fc::MutexLock lock(mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("graph '" + name + "' is not registered");
    }
    if (version <= it->second->version) {
      return Status::InvalidArgument(
          "Replace: version " + std::to_string(version) +
          " does not advance past " + std::to_string(it->second->version));
    }
    entry->source = it->second->source;
    old_fp = it->second->fingerprint;
    it->second = std::move(entry);
    old_referenced = FingerprintReferencedLocked(old_fp, name);
    cache = cache_;
    prepared_cache = prepared_cache_;
    storage = storage_;
  }

  replaces_.fetch_add(1, std::memory_order_relaxed);
  obs::EventJournal::Default().Record(
      obs::EventType::kEpochReplace, version,
      summary != nullptr ? summary->added_edges.size() : 0, new_fp,
      name.c_str());
  obs::NoteGraphEpoch(name, version, new_fp);
  ReplaceReport out;
  out.old_fingerprint = old_fp;
  out.new_fingerprint = new_fp;
  out.version = version;
  // Only migrate with a summary that describes exactly this transition:
  // old registered content -> this snapshot. Anything else (several
  // Apply batches collapsed into one Replace, a summary from a racing
  // later epoch) would republish stale results as exact, so fall back to
  // plain invalidation.
  const bool summary_matches = summary != nullptr &&
                               summary->base_fingerprint == old_fp &&
                               summary->fingerprint == new_fp;
  if (cache != nullptr && old_fp != new_fp) {
    if (summary_matches) {
      out.cache = cache->OnSnapshotReplace(old_fp, new_fp, *snapshot, *summary,
                                           /*keep_old_entries=*/old_referenced);
    } else if (!old_referenced) {
      out.cache.invalidated = cache->InvalidateFingerprint(old_fp);
    }
  }
  if (prepared_cache != nullptr && old_fp != new_fp) {
    if (summary_matches) {
      out.prepared = prepared_cache->OnSnapshotReplace(
          old_fp, new_fp, *summary, /*keep_old_entries=*/old_referenced);
    } else if (!old_referenced) {
      out.prepared.invalidated = prepared_cache->InvalidateFingerprint(old_fp);
    }
  }
  if (report != nullptr) *report = std::move(out);
  // The storage write-through runs OUTSIDE swap_mu_: a snapshot rewrite or
  // compaction of one graph must not stall every other graph's Replace
  // behind the global publish lock. Two Replaces of the same name can then
  // reach storage out of order, but StorageManager::OnReplace ignores
  // epochs older than one it already handled, so the durable snapshot
  // never regresses.
  swap_lock.Unlock();
  if (storage != nullptr) {
    // The in-memory replace is already published (readers may be serving
    // it); a write-through failure is reported rather than rolled back, so
    // the caller can retry persistence without re-applying the update.
    FAIRCLIQUE_RETURN_NOT_OK(
        storage->OnReplace(name, *snapshot, version, new_fp));
  }
  return Status::OK();
}

bool GraphRegistry::Evict(const std::string& name) {
  uint64_t fingerprint = 0;
  ResultCache* cache = nullptr;
  PreparedGraphCache* prepared_cache = nullptr;
  storage::StorageManager* storage = nullptr;
  fc::MutexLock swap_lock(swap_mu_);
  {
    fc::MutexLock lock(mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) return false;
    fingerprint = it->second->fingerprint;
    graphs_.erase(it);
    if (!FingerprintReferencedLocked(fingerprint, name)) {
      cache = cache_;
      prepared_cache = prepared_cache_;
    }
    storage = storage_;
  }
  // Outside mu_: the caches have their own locks, and dropping the orphaned
  // entries is not required to be atomic with the map erase.
  if (cache != nullptr) cache->InvalidateFingerprint(fingerprint);
  if (prepared_cache != nullptr) {
    prepared_cache->InvalidateFingerprint(fingerprint);
  }
  if (storage != nullptr) {
    Status status = storage->Forget(name);
    if (!status.ok()) {
      // The in-memory evict already happened; stale durable files only cost
      // disk until the next successful Forget/Open, so log and move on.
      FC_LOG(kWarning) << "Evict('" << name
                       << "'): storage forget failed: " << status.ToString();
    }
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
  obs::EventJournal::Default().Record(obs::EventType::kGraphEvict, 0, 0, 0,
                                      name.c_str());
  obs::ForgetGraphEpoch(name);
  return true;
}

std::vector<std::shared_ptr<const RegisteredGraph>> GraphRegistry::List()
    const {
  fc::MutexLock lock(mu_);
  std::vector<std::shared_ptr<const RegisteredGraph>> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) out.push_back(entry);
  return out;
}

size_t GraphRegistry::size() const {
  fc::MutexLock lock(mu_);
  return graphs_.size();
}

RegistryStats GraphRegistry::Stats() const {
  RegistryStats s;
  s.loads = loads_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.replaces = replaces_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  fc::MutexLock lock(mu_);
  s.graphs = graphs_.size();
  return s;
}

WarmRestoreOutcome RestoreWarmEntries(
    const GraphRegistry& registry, ResultCache* cache,
    std::vector<storage::WarmEntry> entries) {
  WarmRestoreOutcome outcome;
  std::map<uint64_t, std::shared_ptr<const AttributedGraph>> by_fingerprint;
  for (const auto& entry : registry.List()) {
    by_fingerprint.emplace(entry->fingerprint, entry->graph);
  }
  // The export lists entries most-recently-used first; Put in reverse so
  // the pre-crash MRU entry is also the restored cache's MRU — otherwise a
  // smaller post-restart cache would evict exactly the hottest entries.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    storage::WarmEntry& w = *it;
    auto found = by_fingerprint.find(w.fingerprint);
    if (found == by_fingerprint.end() || !w.has_params ||
        !VerifyFairClique(*found->second, w.clique.vertices, w.params).ok()) {
      outcome.rejected++;
      continue;
    }
    auto result = std::make_shared<SearchResult>();
    result->clique = std::move(w.clique);
    result->stats.completed = true;
    cache->Put(w.key, std::move(result), w.params);
    outcome.restored++;
  }
  return outcome;
}

}  // namespace fairclique
