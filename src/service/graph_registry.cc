#include "service/graph_registry.h"

#include <fstream>
#include <utility>

#include "graph/binary_io.h"
#include "graph/fingerprint.h"
#include "graph/io.h"

namespace fairclique {

namespace {

/// Resolves kAuto by sniffing the FCG1 magic; IO failures fall through to
/// the edge-list loader, which reports them with a proper status.
GraphFormat SniffFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  if (in.gcount() == 4 && magic[0] == 'F' && magic[1] == 'C' &&
      magic[2] == 'G' && magic[3] == '1') {
    return GraphFormat::kBinary;
  }
  return GraphFormat::kEdgeList;
}

}  // namespace

Status GraphRegistry::Load(const std::string& name, const std::string& path,
                           const std::string& attribute_path,
                           GraphFormat format) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (graphs_.count(name) > 0) {
      return Status::InvalidArgument("graph '" + name +
                                     "' is already registered; evict first");
    }
  }
  if (format == GraphFormat::kAuto) format = SniffFormat(path);

  AttributedGraph g;
  if (format == GraphFormat::kBinary) {
    if (!attribute_path.empty()) {
      return Status::InvalidArgument(
          "binary graphs carry attributes inline; no attribute file expected");
    }
    FAIRCLIQUE_RETURN_NOT_OK(LoadBinaryGraph(path, &g));
  } else {
    FAIRCLIQUE_RETURN_NOT_OK(
        LoadAttributedGraph(path, attribute_path, EdgeListOptions{}, &g));
  }
  return Add(name, std::move(g), path);
}

Status GraphRegistry::Add(const std::string& name, AttributedGraph graph,
                          const std::string& source) {
  auto entry = std::make_shared<RegisteredGraph>();
  entry->name = name;
  entry->fingerprint = GraphFingerprint(graph);
  entry->graph = std::make_shared<const AttributedGraph>(std::move(graph));
  entry->source = source;

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = graphs_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("graph '" + name +
                                   "' is already registered; evict first");
  }
  return Status::OK();
}

std::shared_ptr<const RegisteredGraph> GraphRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

bool GraphRegistry::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.erase(name) > 0;
}

std::vector<std::shared_ptr<const RegisteredGraph>> GraphRegistry::List()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const RegisteredGraph>> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) out.push_back(entry);
  return out;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace fairclique
