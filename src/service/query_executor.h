#ifndef FAIRCLIQUE_SERVICE_QUERY_EXECUTOR_H_
#define FAIRCLIQUE_SERVICE_QUERY_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "core/prepared_graph.h"
#include "obs/metrics.h"
#include "service/graph_registry.h"
#include "service/prepared_graph_cache.h"
#include "service/result_cache.h"

namespace fairclique {

/// Sizing of the query worker pool.
struct ExecutorOptions {
  /// Worker threads. Queued queries are expanded into *component-granular*
  /// tasks scheduled onto this pool: all in-flight queries' components
  /// interleave, so one huge component no longer monopolizes a worker pool
  /// while other queries' small components wait. SearchOptions::num_threads
  /// is therefore ignored for queued requests (the pool is the
  /// parallelism); the synchronous Run() still honors it.
  int num_workers = 2;
  /// Requests waiting beyond the ones being executed. Submit rejects (does
  /// not block) once the queue is full, giving callers explicit
  /// backpressure. 0 means "no queueing": every Submit is rejected, which
  /// tests use to exercise the rejection path deterministically.
  size_t queue_capacity = 64;
};

/// One search request against a registered graph.
struct QueryRequest {
  std::shared_ptr<const RegisteredGraph> graph;  // required
  SearchOptions options;
  /// Per-query wall-clock budget in seconds; 0 = none. The clock is
  /// anchored at Submit, so time spent waiting in the admission queue burns
  /// budget — it bounds the client's response latency, not compute from
  /// admission (a query that waited seconds for a worker does NOT get its
  /// full budget back afterwards). The remaining budget at admission is
  /// mapped onto the search's own safety valve: effective
  /// time_limit_seconds = min(options.time_limit_seconds, remaining)
  /// (treating 0 as unlimited); on a loaded pool it also covers time the
  /// query's component tasks spend waiting behind other queries' tasks. A
  /// search stopped by the budget reports `deadline_missed = true` and is
  /// not cached; a request whose budget is already gone when a worker pops
  /// it is expired for the cost of a clock read (Aborted status, null
  /// result, `deadline_missed = true`).
  double deadline_seconds = 0.0;
  /// Skip the result cache (cold benchmarking, freshness checks).
  bool bypass_cache = false;
  /// Skip the prepared-plan cache as well: the query reduces from scratch
  /// and does not publish the plan. bypass_cache + bypass_prepared_cache
  /// is a fully cold query.
  bool bypass_prepared_cache = false;
  /// Attach an EXPLAIN plan (service/explain.h) to the response: reduction
  /// stage stats, component selection and resolved engines, the full
  /// per-component prune breakdown, and the cache decisions — the execution
  /// record the executor otherwise discards. Observational only (the search
  /// is unchanged); costs one struct copy per component at finish.
  bool explain = false;
};

/// Outcome of one request.
struct QueryResponse {
  Status status;  // non-OK: rejected (queue full / shutdown / bad request)
  std::shared_ptr<const SearchResult> result;  // null when status is non-OK
  bool cache_hit = false;
  /// Served by IncrementalRequery over a surviving cached clique plus the
  /// edges added since — exact, without a full search.
  bool incremental = false;
  /// A surviving cached clique primed SearchOptions::warm_start for a full
  /// search (attribute changes downgraded it below incremental exactness).
  bool warm_start = false;
  /// The Branch stage reused a cached PreparedGraph instead of re-running
  /// the reduction pipeline.
  bool prepared_hit = false;
  bool deadline_missed = false;  // search stopped by a safety valve
  /// Process-unique id of this query's trace (obs/trace.h), echoed on the
  /// wire so a slow response can be looked up in the slowlog by id. 0 when
  /// telemetry is disabled or the request was rejected at Submit.
  uint64_t trace_id = 0;
  int64_t queue_micros = 0;      // time spent waiting for a worker
  int64_t run_micros = 0;        // cache lookup + search time
  /// Which valve stopped the search: "" (ran to completion) | "node_limit"
  /// | "time_limit" | "deadline" — "deadline" when the request's
  /// deadline_seconds is what tightened the effective time limit (including
  /// requests that expired in the queue). Static strings, never freed.
  const char* stop_reason = "";
  /// Serialized EXPLAIN plan when the request set `explain`; empty
  /// otherwise. Pre-rendered JSON so the wire layer splices it verbatim.
  std::string plan_json;
};

/// Monotonic serving metrics. submitted = accepted + rejected;
/// served counts completed responses (cache hits included).
struct ExecutorMetrics {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served = 0;
  uint64_t cache_hits = 0;
  uint64_t incremental_requeries = 0;  // exact re-queries from warm hints
  uint64_t warm_starts = 0;            // full searches seeded by a warm hint
  uint64_t prepared_hits = 0;          // Branch stages on a cached plan
  uint64_t prepared_builds = 0;        // plans built (and possibly published)
  uint64_t component_tasks = 0;        // component tasks scheduled pool-wide
  /// Every response answered with deadline_missed = true: searches stopped
  /// by the budget AND requests that expired before a worker ever popped
  /// them. The latter subset is broken out as `expired_in_queue` — a
  /// nonzero rate there means the admission queue itself is the problem
  /// (clients time out waiting, not computing), which deepening the worker
  /// pool fixes and a faster kernel does not.
  uint64_t deadline_misses = 0;
  uint64_t expired_in_queue = 0;
  /// Early-stopped searches broken down by which valve fired (the
  /// response's stop_reason): the request's own node/time limit vs the
  /// per-query deadline (expired-in-queue requests count under deadline).
  uint64_t stopped_node_limit = 0;
  uint64_t stopped_time_limit = 0;
  uint64_t stopped_deadline = 0;
  /// Queue depths are point-in-time. Admission alone is a misleading
  /// saturation signal — queries expand into component tasks, so a pool
  /// drowning in thousands of backed-up component tasks can show an empty
  /// admission queue — hence both queues are reported, plus their sum
  /// (`queue_depth`, the total backlog) whose high-water mark is
  /// `peak_queue_depth`.
  size_t admission_queue_depth = 0;  // whole queries waiting for a worker
  size_t component_queue_depth = 0;  // expanded Branch tasks waiting
  size_t queue_depth = 0;            // admission + component, combined
  size_t peak_queue_depth = 0;       // high-water mark of the combined depth
  /// Pool occupancy: configured worker count and how many are executing
  /// work (a query stage or a component task) right now. active == num with
  /// a nonzero queue_depth means the pool, not the kernel, is the
  /// bottleneck.
  size_t num_workers = 0;
  size_t active_workers = 0;
};

/// Bounded-queue worker pool turning the staged fair-clique search into a
/// concurrent, memoized query service. Requests flow
///
///   Submit -> [bounded queue] -> worker: result-cache probe
///                                  -> prepared-plan probe/build
///                                  -> expand into per-component tasks
///                                  -> [component queue] -> workers branch
///                                  -> last task aggregates, fills caches
///
/// Workers prefer component tasks over admitting new queries, so in-flight
/// queries finish before fresh ones start reducing. Components of one query
/// share an atomic incumbent-size floor (exactly as the in-search parallel
/// mode does), so answers are identical to a sequential search.
///
/// The executor owns its worker threads; the result cache and prepared-plan
/// cache are optional, shared, and owned by the caller (pass nullptr to
/// serve without them). The destructor drains outstanding accepted requests
/// before joining, so every future obtained from Submit is eventually
/// satisfied.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecutorOptions& options,
                         ResultCache* cache = nullptr,
                         PreparedGraphCache* prepared_cache = nullptr);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues a request. The returned future is always valid; when the
  /// queue is full or the executor is shutting down it is already satisfied
  /// with an Aborted status instead of blocking the caller.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Runs a request synchronously on the calling thread, through the same
  /// cache path as queued requests (used by sequential baselines in
  /// benchmarks). Honors SearchOptions::num_threads for the Branch stage
  /// instead of the shared component queue.
  QueryResponse Run(const QueryRequest& request);

  /// Blocks until every accepted request has been served.
  void Drain();

  /// Stops accepting new requests, serves the remaining queue (including
  /// outstanding component tasks), joins the workers. Idempotent; called by
  /// the destructor.
  void Shutdown();

  ExecutorMetrics metrics() const;

 private:
  /// Everything one query carries from admission to response. Shared by the
  /// component tasks fanned out for it; the last task to finish aggregates
  /// and fulfills the promise.
  struct QueryState;

  /// One schedulable unit: branch component `slot` of `query`'s selection.
  struct ComponentTask {
    std::shared_ptr<QueryState> query;
    size_t slot = 0;
  };

  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    WallTimer queued;
  };

  void WorkerLoop();
  /// Shared pre-Branch pipeline: submit-anchored deadline check,
  /// validation, result-cache probe, warm-hint handling, deadline mapping,
  /// prepared-plan probe/build. Returns true when the response is already
  /// complete (expired / hit / incremental / invalid).
  bool PreSearch(QueryState& qs);
  /// Records the run histogram and, when the query is slow enough for the
  /// slowlog, assembles its span timeline from the stage timestamps
  /// PreSearch/Expand/Finalize captured. Called once per query right before
  /// the response leaves the executor.
  void RecordTelemetry(QueryState& qs);
  /// Shared post-Branch glue: deadline-miss bookkeeping, hint put-back,
  /// result-cache fill, response fields. Does not touch the promise.
  void FinishSearch(QueryState& qs, SearchResult&& result);
  /// Assembles and serializes the EXPLAIN plan onto the response when the
  /// request asked for one. `sr` is null on paths that never searched
  /// (cache hit, expired in queue, invalid request) — the plan then records
  /// only the cache decision.
  void BuildExplain(QueryState& qs, const SearchResult* sr);
  /// Bumps the stopped_* counter matching an early-stopped search's reason.
  void CountStop(const QueryState& qs, const SearchStats& stats);
  /// Worker path: seed the incumbent, select components, fan tasks out (or
  /// finalize immediately when nothing survives selection).
  void ExpandQuery(std::shared_ptr<QueryState> qs);
  void ExecuteComponentTask(const ComponentTask& task);
  void FinalizeQuery(QueryState& qs);
  /// Sets the promise and settles the in-flight accounting.
  void CompleteQuery(QueryState& qs);

  const ExecutorOptions options_;
  ResultCache* const cache_;                   // not owned; may be null
  PreparedGraphCache* const prepared_cache_;   // not owned; may be null

  // ------------------------------------------------------ lock ordering
  //
  // Proven acquisition order across the executor and everything a query
  // touches while a worker holds one of these locks (checked by the clang
  // -Wthread-safety CI job via the ACQUIRED_AFTER annotations below, and at
  // runtime by the TSan job's deadlock detector):
  //
  //   level 0 (outermost)  shutdown_mu_        Shutdown serialization
  //   level 1              mu_                 queues + in-flight accounting
  //   leaves (never held together with mu_ or shutdown_mu_ by this class;
  //   workers take them only while NOT holding mu_):
  //     ResultCache::mu_, PreparedGraphCache::mu_,
  //     GraphRegistry::{swap_mu_, mu_}, StorageManager::{map_mu_, stripe
  //     mu, manifest_mu_}, obs::* registries
  //
  // Workers pop work under mu_, then RELEASE it before running the query
  // pipeline, so no cache/registry/storage lock is ever acquired under
  // mu_ — the only nesting in this file is shutdown_mu_ -> mu_.

  /// Guards the two work queues and the in-flight accounting. Acquired
  /// after shutdown_mu_ (Shutdown posts the stop flag under both), never
  /// before it.
  mutable fc::Mutex mu_ ACQUIRED_AFTER(shutdown_mu_);
  fc::CondVar work_ready_;
  fc::CondVar idle_;
  std::deque<Pending> queue_ GUARDED_BY(mu_);
  std::deque<ComponentTask> component_queue_ GUARDED_BY(mu_);
  /// Accepted queries not yet answered (queued, expanding, or branching).
  size_t inflight_ GUARDED_BY(mu_) = 0;
  /// High-water mark of queue_.size() + component_queue_.size(); bumped
  /// under mu_ wherever either queue grows.
  size_t peak_queue_depth_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Serializes Shutdown end to end; workers_ is written under this mutex,
  /// including at construction.
  fc::Mutex shutdown_mu_;
  std::vector<std::thread> workers_ GUARDED_BY(shutdown_mu_);

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> incremental_requeries_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> prepared_hits_{0};
  std::atomic<uint64_t> prepared_builds_{0};
  std::atomic<uint64_t> component_tasks_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> stopped_node_limit_{0};
  std::atomic<uint64_t> stopped_time_limit_{0};
  std::atomic<uint64_t> stopped_deadline_{0};
  /// Workers currently executing work (vs blocked on work_ready_).
  std::atomic<size_t> active_workers_{0};

  /// Process-wide latency histograms (obs/metrics.h), resolved once at
  /// construction so the hot path records through raw pointers.
  obs::Histogram* const queue_wait_hist_;
  obs::Histogram* const run_hist_;
  obs::Histogram* const prepare_hist_;
  obs::Histogram* const branch_hist_;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_QUERY_EXECUTOR_H_
