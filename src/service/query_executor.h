#ifndef FAIRCLIQUE_SERVICE_QUERY_EXECUTOR_H_
#define FAIRCLIQUE_SERVICE_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"

namespace fairclique {

/// Sizing of the query worker pool.
struct ExecutorOptions {
  /// Worker threads running searches; clamped to >= 1. Query-level
  /// parallelism composes with SearchOptions::num_threads (per-query
  /// component parallelism); serving workloads usually want workers > 1 and
  /// num_threads = 1.
  int num_workers = 2;
  /// Requests waiting beyond the ones being executed. Submit rejects (does
  /// not block) once the queue is full, giving callers explicit
  /// backpressure. 0 means "no queueing": every Submit is rejected, which
  /// tests use to exercise the rejection path deterministically.
  size_t queue_capacity = 64;
};

/// One search request against a registered graph.
struct QueryRequest {
  std::shared_ptr<const RegisteredGraph> graph;  // required
  SearchOptions options;
  /// Per-query wall-clock budget in seconds; 0 = none. Mapped onto the
  /// search's own safety valve: effective time_limit_seconds =
  /// min(options.time_limit_seconds, deadline_seconds) (treating 0 as
  /// unlimited). A search stopped by the budget reports
  /// `deadline_missed = true` and is not cached.
  double deadline_seconds = 0.0;
  /// Skip the cache entirely (cold benchmarking, freshness checks).
  bool bypass_cache = false;
};

/// Outcome of one request.
struct QueryResponse {
  Status status;  // non-OK: rejected (queue full / shutdown / bad request)
  std::shared_ptr<const SearchResult> result;  // null when status is non-OK
  bool cache_hit = false;
  /// Served by IncrementalRequery over a surviving cached clique plus the
  /// edges added since — exact, without a full search.
  bool incremental = false;
  /// A surviving cached clique primed SearchOptions::warm_start for a full
  /// search (attribute changes downgraded it below incremental exactness).
  bool warm_start = false;
  bool deadline_missed = false;  // search stopped by a safety valve
  int64_t queue_micros = 0;      // time spent waiting for a worker
  int64_t run_micros = 0;        // cache lookup + search time
};

/// Monotonic serving metrics. submitted = accepted + rejected;
/// served counts completed responses (cache hits included).
struct ExecutorMetrics {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served = 0;
  uint64_t cache_hits = 0;
  uint64_t incremental_requeries = 0;  // exact re-queries from warm hints
  uint64_t warm_starts = 0;            // full searches seeded by a warm hint
  uint64_t deadline_misses = 0;
  size_t queue_depth = 0;       // point-in-time
  size_t peak_queue_depth = 0;  // high-water mark
};

/// Bounded-queue worker pool turning FindMaximumFairClique into a
/// concurrent, memoized query service. Requests flow
///
///   Submit -> [bounded queue] -> worker: cache probe -> search -> cache fill
///
/// The executor owns its worker threads; the result cache is optional,
/// shared, and owned by the caller (pass nullptr to serve uncached). The
/// destructor drains outstanding accepted requests before joining, so every
/// future obtained from Submit is eventually satisfied.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecutorOptions& options,
                         ResultCache* cache = nullptr);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues a request. The returned future is always valid; when the
  /// queue is full or the executor is shutting down it is already satisfied
  /// with an Aborted status instead of blocking the caller.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Runs a request synchronously on the calling thread, through the same
  /// cache path as queued requests (used by workers internally, and by
  /// sequential baselines in benchmarks).
  QueryResponse Run(const QueryRequest& request);

  /// Blocks until every accepted request has been served.
  void Drain();

  /// Stops accepting new requests, serves the remaining queue, joins the
  /// workers. Idempotent; called by the destructor.
  void Shutdown();

  ExecutorMetrics metrics() const;

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    WallTimer queued;
  };

  void WorkerLoop();

  const ExecutorOptions options_;
  ResultCache* const cache_;  // not owned; may be null

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<Pending> queue_;
  size_t active_ = 0;
  size_t peak_queue_depth_ = 0;
  bool stopping_ = false;
  /// Serializes Shutdown end to end; workers_ is written only at
  /// construction and under this mutex afterwards.
  std::mutex shutdown_mu_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> incremental_requeries_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> deadline_misses_{0};
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_QUERY_EXECUTOR_H_
