#ifndef FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_
#define FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "service/prepared_graph_cache.h"
#include "service/result_cache.h"

namespace fairclique {

/// File format accepted by GraphRegistry::Load. kAuto sniffs the FCG1 magic
/// to distinguish the binary container from text edge lists.
enum class GraphFormat {
  kAuto,
  kEdgeList,  // "u v" lines + optional "v attr" attribute file
  kBinary,    // FCG1 container (graph/binary_io.h)
};

/// A named, immutable graph shared by every query that references it.
/// Handed out as shared_ptr<const>, so eviction from the registry never
/// invalidates a graph that in-flight queries still hold.
struct RegisteredGraph {
  std::string name;
  std::shared_ptr<const AttributedGraph> graph;
  /// Content fingerprint (graph/fingerprint.h); result-cache keys use this,
  /// not the name, so re-registering identical content under another name
  /// still hits the cache.
  uint64_t fingerprint = 0;
  /// Dynamic-graph epoch of this snapshot; 0 for freshly loaded graphs,
  /// advanced by Replace. Strictly increasing per name.
  uint64_t version = 0;
  /// Where the graph came from (file path or "<inline>").
  std::string source;
};

/// How Replace handled the attached result cache.
struct ReplaceReport {
  uint64_t old_fingerprint = 0;
  uint64_t new_fingerprint = 0;
  uint64_t version = 0;
  MigrationOutcome cache;             // zeros when no result cache attached
  PreparedMigrationOutcome prepared;  // zeros when no prepared cache attached
};

/// Thread-safe name -> graph map for the query service: each graph is loaded
/// and normalized once, then shared (read-only) across all concurrent
/// queries. Names are unique; re-loading a live name is an error so a
/// client cannot silently swap the graph under another client's feet —
/// evict first, then load, or advance the same logical graph atomically
/// with Replace.
///
/// With AttachCache the registry keeps the result cache honest: Evict drops
/// cached results whose fingerprint no longer backs any registered name,
/// and Replace migrates them to the new epoch's fingerprint (republish /
/// warm hint / invalidate — see ResultCache::OnSnapshotReplace).
class GraphRegistry {
 public:
  /// Attaches the service's result cache (not owned; may be null to
  /// detach). Callers wire the same cache into their QueryExecutor.
  void AttachCache(ResultCache* cache);

  /// Attaches the service's prepared-plan cache (not owned; may be null to
  /// detach). Replace forwards or invalidates prepared plans per the rules
  /// in PreparedGraphCache::OnSnapshotReplace; Evict drops plans whose
  /// fingerprint no longer backs any registered name.
  void AttachPreparedCache(PreparedGraphCache* cache);

  /// Loads a graph file and registers it under `name`. For kEdgeList an
  /// optional attribute file ("v attr" lines) may be given; binary FCG1
  /// files carry their attributes inline. Fails with InvalidArgument when
  /// `name` is already registered and with the loader's status on bad input.
  Status Load(const std::string& name, const std::string& path,
              const std::string& attribute_path = "",
              GraphFormat format = GraphFormat::kAuto);

  /// Registers an in-memory graph (datasets, tests, generators).
  Status Add(const std::string& name, AttributedGraph graph,
             const std::string& source = "<inline>");

  /// Atomically advances `name` to a new epoch snapshot without the
  /// evict-then-load race: queries in flight keep the old snapshot, queries
  /// admitted after Replace see the new one. `version` must be greater than
  /// the current entry's version (NotFound when the name is absent,
  /// InvalidArgument on a non-advancing version). When a cache is attached,
  /// cached results for the old fingerprint are migrated per `summary`
  /// (null summary = plain invalidation). The snapshot is fingerprinted
  /// here rather than trusted from the summary; a summary that does not
  /// describe exactly the (current entry -> snapshot) transition — several
  /// Apply batches collapsed into one Replace, or a racing Apply advancing
  /// the DynamicGraph between the caller's Apply and Replace — falls back
  /// to plain invalidation rather than migrating incorrectly.
  Status Replace(const std::string& name,
                 std::shared_ptr<const AttributedGraph> snapshot,
                 uint64_t version, const UpdateSummary* summary = nullptr,
                 ReplaceReport* report = nullptr);

  /// The entry for `name`, or nullptr when absent.
  std::shared_ptr<const RegisteredGraph> Get(const std::string& name) const;

  /// Removes `name`; returns false when it was not registered. In-flight
  /// queries keep their shared_ptr; memory is reclaimed when the last
  /// reference drops. When a cache is attached and no other registered
  /// name shares the evicted graph's fingerprint, its cached results are
  /// dropped immediately instead of lingering until LRU pressure.
  bool Evict(const std::string& name);

  /// All entries, sorted by name.
  std::vector<std::shared_ptr<const RegisteredGraph>> List() const;

  size_t size() const;

 private:
  /// True when any registered entry (excluding `except`) has `fingerprint`.
  bool FingerprintReferencedLocked(uint64_t fingerprint,
                                   const std::string& except) const;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const RegisteredGraph>> graphs_;
  ResultCache* cache_ = nullptr;                  // not owned; may be null
  PreparedGraphCache* prepared_cache_ = nullptr;  // not owned; may be null
  /// Serializes (map swap, cache migration) pairs end to end: without it
  /// two concurrent Replace calls could run their cache migrations in the
  /// opposite order of their map swaps, stranding entries under a stale
  /// fingerprint. Acquired before mu_ by Replace/Evict; Get/List/Add take
  /// only mu_, so reads never wait on a migration.
  std::mutex swap_mu_;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_
