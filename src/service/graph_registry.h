#ifndef FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_
#define FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "service/prepared_graph_cache.h"
#include "service/result_cache.h"
#include "storage/storage_manager.h"

namespace fairclique {

/// File format accepted by GraphRegistry::Load. kAuto sniffs the first
/// bytes: the FCG1/FCG2 magics select the binary containers, a leading '%'
/// selects METIS (its conventional comment marker; SNAP-style edge lists
/// comment with '#'), anything else is an edge list. The text formats are
/// genuinely ambiguous (a METIS header "n m" parses as an edge too), so
/// the sniff is a convention, not a proof: a '%'-commented edge list needs
/// an explicit kEdgeList, and a comment-free METIS file needs an explicit
/// kMetis.
enum class GraphFormat {
  kAuto,
  kEdgeList,  // "u v" lines + optional "v attr" attribute file
  kBinary,    // FCG1 container (graph/binary_io.h)
  kBinaryV2,  // FCG2 mmap container (storage/fcg2.h)
  kMetis,     // METIS adjacency format (graph/binary_io.h)
};

/// A named, immutable graph shared by every query that references it.
/// Handed out as shared_ptr<const>, so eviction from the registry never
/// invalidates a graph that in-flight queries still hold.
struct RegisteredGraph {
  std::string name;
  std::shared_ptr<const AttributedGraph> graph;
  /// Content fingerprint (graph/fingerprint.h); result-cache keys use this,
  /// not the name, so re-registering identical content under another name
  /// still hits the cache.
  uint64_t fingerprint = 0;
  /// Dynamic-graph epoch of this snapshot; 0 for freshly loaded graphs,
  /// advanced by Replace. Strictly increasing per name.
  uint64_t version = 0;
  /// Where the graph came from (file path or "<inline>").
  std::string source;
};

/// How Replace handled the attached result cache.
struct ReplaceReport {
  uint64_t old_fingerprint = 0;
  uint64_t new_fingerprint = 0;
  uint64_t version = 0;
  MigrationOutcome cache;             // zeros when no result cache attached
  PreparedMigrationOutcome prepared;  // zeros when no prepared cache attached
};

/// Monotonic counters of the registry's epoch transitions (plus the current
/// graph count); exported as fc_registry_* by the telemetry layer.
struct RegistryStats {
  uint64_t loads = 0;      // Load/Add registrations (write-through persisted)
  uint64_t restores = 0;   // graphs registered from durable recovery
  uint64_t replaces = 0;   // successful epoch advances
  uint64_t evictions = 0;  // successful Evict calls
  size_t graphs = 0;       // currently registered names (point-in-time)
};

/// Thread-safe name -> graph map for the query service: each graph is loaded
/// and normalized once, then shared (read-only) across all concurrent
/// queries. Names are unique; re-loading a live name is an error so a
/// client cannot silently swap the graph under another client's feet —
/// evict first, then load, or advance the same logical graph atomically
/// with Replace.
///
/// With AttachCache the registry keeps the result cache honest: Evict drops
/// cached results whose fingerprint no longer backs any registered name,
/// and Replace migrates them to the new epoch's fingerprint (republish /
/// warm hint / invalidate — see ResultCache::OnSnapshotReplace).
class GraphRegistry {
 public:
  /// Attaches the service's result cache (not owned; may be null to
  /// detach). Callers wire the same cache into their QueryExecutor.
  void AttachCache(ResultCache* cache);

  /// Attaches the service's prepared-plan cache (not owned; may be null to
  /// detach). Replace forwards or invalidates prepared plans per the rules
  /// in PreparedGraphCache::OnSnapshotReplace; Evict drops plans whose
  /// fingerprint no longer backs any registered name.
  void AttachPreparedCache(PreparedGraphCache* cache);

  /// Attaches the durable storage manager (not owned; may be null to
  /// detach). With storage attached the registry is write-through:
  /// Load/Add snapshot the graph (FCG2 + manifest) before returning,
  /// Replace verifies the published epoch is covered by the WAL tail
  /// (rewriting the snapshot when it is not, compacting when the tail is
  /// long), and Evict forgets the graph's durable state. Restore registers
  /// recovered graphs without re-persisting them.
  void AttachStorage(storage::StorageManager* storage);

  /// Loads a graph file and registers it under `name`. For kEdgeList an
  /// optional attribute file ("v attr" lines) may be given; binary FCG1
  /// files carry their attributes inline. Fails with InvalidArgument when
  /// `name` is already registered and with the loader's status on bad input.
  Status Load(const std::string& name, const std::string& path,
              const std::string& attribute_path = "",
              GraphFormat format = GraphFormat::kAuto);

  /// Registers an in-memory graph (datasets, tests, generators).
  Status Add(const std::string& name, AttributedGraph graph,
             const std::string& source = "<inline>");

  /// Registers a graph recovered from durable storage at its persisted
  /// epoch `version`, bypassing the write-through persist (its durable
  /// state already exists — re-snapshotting it on every restart would make
  /// recovery O(data)). Same uniqueness rule as Add.
  Status Restore(const std::string& name,
                 std::shared_ptr<const AttributedGraph> graph,
                 uint64_t version, const std::string& source);

  /// Atomically advances `name` to a new epoch snapshot without the
  /// evict-then-load race: queries in flight keep the old snapshot, queries
  /// admitted after Replace see the new one. `version` must be greater than
  /// the current entry's version (NotFound when the name is absent,
  /// InvalidArgument on a non-advancing version). When a cache is attached,
  /// cached results for the old fingerprint are migrated per `summary`
  /// (null summary = plain invalidation). The snapshot is fingerprinted
  /// here rather than trusted from the summary; a summary that does not
  /// describe exactly the (current entry -> snapshot) transition — several
  /// Apply batches collapsed into one Replace, or a racing Apply advancing
  /// the DynamicGraph between the caller's Apply and Replace — falls back
  /// to plain invalidation rather than migrating incorrectly. The storage
  /// write-through runs after the publish lock is released (so one graph's
  /// snapshot rewrite cannot stall every other graph's Replace); a
  /// write-through that loses a race against Evict of the same name is
  /// dropped by a storage-side tombstone instead of resurrecting the
  /// evicted graph's durable state.
  Status Replace(const std::string& name,
                 std::shared_ptr<const AttributedGraph> snapshot,
                 uint64_t version, const UpdateSummary* summary = nullptr,
                 ReplaceReport* report = nullptr);

  /// The entry for `name`, or nullptr when absent.
  std::shared_ptr<const RegisteredGraph> Get(const std::string& name) const;

  /// Removes `name`; returns false when it was not registered. In-flight
  /// queries keep their shared_ptr; memory is reclaimed when the last
  /// reference drops. When a cache is attached and no other registered
  /// name shares the evicted graph's fingerprint, its cached results are
  /// dropped immediately instead of lingering until LRU pressure.
  bool Evict(const std::string& name);

  /// All entries, sorted by name.
  std::vector<std::shared_ptr<const RegisteredGraph>> List() const;

  size_t size() const;

  RegistryStats Stats() const;

 private:
  /// True when any registered entry (excluding `except`) has `fingerprint`.
  bool FingerprintReferencedLocked(uint64_t fingerprint,
                                   const std::string& except) const
      REQUIRES(mu_);

  /// Shared insert path of Add/Restore; persists via write-through when
  /// `persist` (and storage attached), rolling the insert back on failure.
  Status AddEntry(const std::string& name,
                  std::shared_ptr<const AttributedGraph> graph,
                  uint64_t version, const std::string& source, bool persist)
      EXCLUDES(swap_mu_, mu_);

  mutable fc::Mutex mu_;
  std::map<std::string, std::shared_ptr<const RegisteredGraph>> graphs_
      GUARDED_BY(mu_);
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> restores_{0};
  std::atomic<uint64_t> replaces_{0};
  std::atomic<uint64_t> evictions_{0};
  ResultCache* cache_ GUARDED_BY(mu_) = nullptr;  // not owned; may be null
  PreparedGraphCache* prepared_cache_ GUARDED_BY(mu_) =
      nullptr;                                    // not owned; may be null
  storage::StorageManager* storage_ GUARDED_BY(mu_) =
      nullptr;                                    // not owned; may be null
  /// Serializes (map swap, cache migration) pairs end to end: without it
  /// two concurrent Replace calls could run their cache migrations in the
  /// opposite order of their map swaps, stranding entries under a stale
  /// fingerprint. Acquired before mu_ by Replace/Evict; Get/List/Add take
  /// only mu_, so reads never wait on a migration.
  fc::Mutex swap_mu_ ACQUIRED_BEFORE(mu_);
};

/// Outcome of a warm-file restore pass.
struct WarmRestoreOutcome {
  size_t restored = 0;
  size_t rejected = 0;  // unknown fingerprint, missing params, failed verify
};

/// Publishes persisted warm entries (storage/warm_file.h) into `cache`,
/// admitting only entries whose clique the verifier re-proves as a valid
/// fair clique of the registered graph with that fingerprint. The gate
/// catches staleness and corruption; it does not re-prove *maximality*
/// (that would cost the search the cache exists to avoid), so the data dir
/// is trusted state — its checksums detect accidents, they are not MACs.
/// Shared by the server startup/restore path and the benchmarks so the
/// admission rule lives in exactly one place.
WarmRestoreOutcome RestoreWarmEntries(const GraphRegistry& registry,
                                      ResultCache* cache,
                                      std::vector<storage::WarmEntry> entries);

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_
