#ifndef FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_
#define FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace fairclique {

/// File format accepted by GraphRegistry::Load. kAuto sniffs the FCG1 magic
/// to distinguish the binary container from text edge lists.
enum class GraphFormat {
  kAuto,
  kEdgeList,  // "u v" lines + optional "v attr" attribute file
  kBinary,    // FCG1 container (graph/binary_io.h)
};

/// A named, immutable graph shared by every query that references it.
/// Handed out as shared_ptr<const>, so eviction from the registry never
/// invalidates a graph that in-flight queries still hold.
struct RegisteredGraph {
  std::string name;
  std::shared_ptr<const AttributedGraph> graph;
  /// Content fingerprint (graph/fingerprint.h); result-cache keys use this,
  /// not the name, so re-registering identical content under another name
  /// still hits the cache.
  uint64_t fingerprint = 0;
  /// Where the graph came from (file path or "<inline>").
  std::string source;
};

/// Thread-safe name -> graph map for the query service: each graph is loaded
/// and normalized once, then shared (read-only) across all concurrent
/// queries. Names are unique; re-loading a live name is an error so a
/// client cannot silently swap the graph under another client's feet —
/// evict first, then load.
class GraphRegistry {
 public:
  /// Loads a graph file and registers it under `name`. For kEdgeList an
  /// optional attribute file ("v attr" lines) may be given; binary FCG1
  /// files carry their attributes inline. Fails with InvalidArgument when
  /// `name` is already registered and with the loader's status on bad input.
  Status Load(const std::string& name, const std::string& path,
              const std::string& attribute_path = "",
              GraphFormat format = GraphFormat::kAuto);

  /// Registers an in-memory graph (datasets, tests, generators).
  Status Add(const std::string& name, AttributedGraph graph,
             const std::string& source = "<inline>");

  /// The entry for `name`, or nullptr when absent.
  std::shared_ptr<const RegisteredGraph> Get(const std::string& name) const;

  /// Removes `name`; returns false when it was not registered. In-flight
  /// queries keep their shared_ptr; memory is reclaimed when the last
  /// reference drops.
  bool Evict(const std::string& name);

  /// All entries, sorted by name.
  std::vector<std::shared_ptr<const RegisteredGraph>> List() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const RegisteredGraph>> graphs_;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_GRAPH_REGISTRY_H_
