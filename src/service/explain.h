#ifndef FAIRCLIQUE_SERVICE_EXPLAIN_H_
#define FAIRCLIQUE_SERVICE_EXPLAIN_H_

/// EXPLAIN plans: the per-stage execution record a query discards on the
/// normal path, assembled on demand when a request sets `explain=true`.
///
/// The plan is built from data the executor already has in hand — the
/// PreparedGraph's reduction-stage stats, the component selection, and the
/// per-component ComponentBranchResults that AggregatePreparedSearch
/// normally folds away — so EXPLAIN costs one struct copy per component,
/// never a re-run. The struct lives here (core types only); serialization
/// lives in explain.cc (which may include wire.h — the reverse include
/// would cycle, since wire.h includes query_executor.h).

#include <cstdint>
#include <string>
#include <vector>

#include "core/max_fair_clique.h"
#include "core/prepared_graph.h"
#include "reduction/reduce.h"

namespace fairclique {

/// One prepared component's row in the plan. Components appear in prepared
/// order (largest-first); `searched` distinguishes the ones selection kept
/// from the ones skipped as too small to beat the seeded incumbent.
struct ExplainComponent {
  size_t index = 0;          // index into PreparedGraph::components
  VertexId vertices = 0;
  EdgeId edges = 0;
  bool searched = false;     // survived static selection (a task was made)
  /// Engine the branch kernel resolved to for this component ("vector" /
  /// "bitset"); meaningful only when searched.
  std::string engine;
  /// Bytes of the blocked adjacency arena the bitset engine allocates at
  /// this component size — the quantity the memory-aware kAuto rule
  /// compared against the budget. Meaningful only when searched.
  uint64_t arena_bytes = 0;
  /// The component's SearchStats (nodes + the full prune breakdown +
  /// search_micros); zeros when not searched or skipped by the live floor.
  SearchStats stats;
  bool aborted = false;
  int64_t best_size = 0;     // size of the clique this component found
};

/// The full plan for one executed query.
struct ExplainPlan {
  // Prepare stage: where the plan came from and what reduction did.
  bool prepared_hit = false;      // plan reused from the PreparedGraphCache
  int64_t prepare_micros = 0;     // this query's build time; 0 on a hit
  VertexId source_vertices = 0;
  EdgeId source_edges = 0;
  std::vector<ReductionStageStats> stages;
  VertexId reduced_vertices = 0;
  EdgeId reduced_edges = 0;

  // Result-cache decision (the probe that ran before any search).
  bool result_cache_probed = false;  // false when bypassed or absent
  bool result_cache_hit = false;

  // Seed stage.
  int64_t heuristic_micros = 0;
  int64_t heuristic_size = 0;
  bool warm_start = false;
  int64_t seed_size = 0;          // incumbent size the Branch stage started at

  // Kernel dispatch: the SIMD variant the word-parallel bitset ops ran with
  // ("scalar" / "avx2" / "neon") and the memory budget the engine-selection
  // rule allowed the bitset engine's adjacency arena.
  std::string simd_kernel;
  uint64_t bitset_budget_bytes = 0;

  // Branch stage.
  std::vector<ExplainComponent> components;
  SearchStats totals;             // the aggregated stats the response carries
  std::string stop_reason;        // "" | "node_limit" | "time_limit" | "deadline"
};

/// Serializes a plan as a JSON object (no enclosing field name), ready to
/// splice into a response via JsonWriter::Raw. Component stage micros sum
/// to totals.component_search_micros by construction; explain_test locks
/// this consistency down.
std::string ExplainPlanJson(const ExplainPlan& plan);

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_EXPLAIN_H_
