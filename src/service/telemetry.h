#ifndef FAIRCLIQUE_SERVICE_TELEMETRY_H_
#define FAIRCLIQUE_SERVICE_TELEMETRY_H_

/// Service-level telemetry export: one struct gathering every subsystem's
/// counters (executor, result cache, prepared-plan cache, registry, storage)
/// plus the process-wide instrument registry (obs/metrics.h), rendered as
/// either the server's `stats` JSON line or a Prometheus text-exposition
/// page. The caller assembles a ServiceTelemetry at scrape time from the
/// components it owns — there is no callback registration, so no dangling
/// exporter can outlive its component — and the already-maintained counters
/// cost the hot path nothing extra.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/progress.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "service/graph_registry.h"
#include "service/prepared_graph_cache.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "storage/storage_manager.h"

namespace fairclique {

/// Point-in-time counters of every service component. Assembled by the
/// owner (the server, a benchmark, a test) right before rendering.
struct ServiceTelemetry {
  std::vector<std::shared_ptr<const RegisteredGraph>> graphs;
  RegistryStats registry;
  ResultCacheStats cache;
  PreparedGraphCacheStats prepared;
  ExecutorMetrics executor;
  storage::StorageCounters storage;
  bool has_storage = false;  // storage{} is meaningless when false
  obs::WatchdogStats watchdog;
  bool has_watchdog = false;  // watchdog{} is meaningless when false
};

/// The server's `stats` response line: registry contents + per-subsystem
/// counter objects, serialized through wire::JsonWriter.
std::string StatsJson(uint64_t id, const ServiceTelemetry& t);

/// Prometheus text exposition (format 0.0.4) of the ServiceTelemetry
/// counters merged with the process-wide instrument registry (latency
/// histograms, WAL metrics), name-sorted, ending in "# EOF". The standard
/// histograms (queue wait, run, prepare, branch, fsync) are interned before
/// rendering, so they appear on the page even before their first sample.
std::string PrometheusText(const ServiceTelemetry& t);

/// The server's `health` response line: an ok/degraded verdict with the
/// reasons behind a degraded call ("stalled_query",
/// "admission_queue_stalled", "high_deadline_miss_rate"), plus uptime,
/// build identity (version / build type / compiler / SIMD kernel), the
/// in-flight query count, and — when the caller wired a watchdog — its
/// stats sub-object. Designed for load-balancer checks: `"status"` is the
/// one field a prober needs, everything else is for the human who gets
/// paged when it says "degraded".
std::string HealthJson(uint64_t id, const ServiceTelemetry& t);

/// One trace as a JSON object (the `trace <id>` / `slowlog` responses):
/// ids, serving flags, timings, and the span tree as a flat array with
/// parent indices (-1 = top level). When the traced query carried an
/// EXPLAIN plan, it is spliced in under `plan`.
std::string TraceJson(const obs::Trace& trace);

/// One in-flight query's live progress as a JSON object (a `ps` response
/// row): trace id, graph, options key, node count, incumbent vs upper
/// bound, components done/total, and elapsed time.
std::string ProgressJson(const obs::ProgressSnapshot& p);

}  // namespace fairclique

#endif  // FAIRCLIQUE_SERVICE_TELEMETRY_H_
