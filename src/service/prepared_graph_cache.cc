#include "service/prepared_graph_cache.h"

#include "obs/event_journal.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/fingerprint.h"

namespace fairclique {

PreparedGraphCache::PreparedGraphCache(size_t capacity)
    : capacity_(capacity) {}

std::string PreparedGraphCache::MakeKey(uint64_t fingerprint, int k,
                                        const ReductionOptions& reductions) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "|k=%d|red=%d%d%d", k,
                reductions.use_en_colorful_core ? 1 : 0,
                reductions.use_colorful_sup ? 1 : 0,
                reductions.use_en_colorful_sup ? 1 : 0);
  return FingerprintHex(fingerprint) + buf;
}

std::shared_ptr<const PreparedGraph> PreparedGraphCache::Get(
    const std::string& key) {
  fc::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_++;
    return nullptr;
  }
  hits_++;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second.prepared;
}

void PreparedGraphCache::PutLocked(const std::string& key, CacheEntry entry) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  insertions_++;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_++;
    obs::EventJournal::Default().Record(obs::EventType::kCacheEvict, 1, 1);
  }
}

std::shared_ptr<const PreparedGraph> PreparedGraphCache::GetOrPrepare(
    const std::string& key, uint64_t fingerprint,
    const std::function<std::shared_ptr<const PreparedGraph>()>& build,
    bool* built) {
  *built = false;
  if (capacity_ == 0) {
    *built = true;
    {
      fc::MutexLock lock(mu_);
      misses_++;
    }
    return build();
  }
  {
    fc::MutexLock lock(mu_);
    while (true) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        hits_++;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->second.prepared;
      }
      if (building_.count(key) == 0) break;
      // Another caller is reducing this key; share its plan instead of
      // burning a second reduction.
      build_done_.Wait(lock);
    }
    misses_++;
    building_.insert(key);
  }
  // The build runs outside the lock (it is the expensive part); Get/Put on
  // other keys proceed concurrently. The key MUST leave building_ on every
  // exit — a build that throws (e.g. bad_alloc on a huge graph) would
  // otherwise strand every future query for this key on build_done_.
  std::shared_ptr<const PreparedGraph> prepared;
  try {
    prepared = build();
  } catch (...) {
    {
      fc::MutexLock lock(mu_);
      building_.erase(key);
      build_done_.NotifyAll();
    }
    throw;
  }
  *built = true;
  {
    fc::MutexLock lock(mu_);
    building_.erase(key);
    if (prepared != nullptr) {
      PutLocked(key, CacheEntry{prepared, fingerprint});
    }
    build_done_.NotifyAll();
  }
  return prepared;
}

void PreparedGraphCache::Put(const std::string& key,
                             std::shared_ptr<const PreparedGraph> prepared,
                             uint64_t fingerprint) {
  if (capacity_ == 0 || prepared == nullptr) return;
  fc::MutexLock lock(mu_);
  PutLocked(key, CacheEntry{std::move(prepared), fingerprint});
}

size_t PreparedGraphCache::InvalidateFingerprint(uint64_t fingerprint) {
  fc::MutexLock lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second.fingerprint == fingerprint) {
      index_.erase(it->first);
      it = lru_.erase(it);
      dropped++;
    } else {
      ++it;
    }
  }
  invalidated_ += dropped;
  return dropped;
}

PreparedMigrationOutcome PreparedGraphCache::OnSnapshotReplace(
    uint64_t old_fp, uint64_t new_fp, const UpdateSummary& summary,
    bool keep_old_entries) {
  PreparedMigrationOutcome outcome;
  fc::MutexLock lock(mu_);

  // Forwarding is only on the table for batches that cannot create a new
  // clique anywhere: no net-added edges, no attribute flips (appended
  // isolated vertices are fine — a fair clique needs both attributes >= k,
  // which an isolated vertex can never contribute to).
  const bool batch_forwardable =
      summary.edges_added == 0 && summary.attributes_changed == 0;

  std::vector<std::pair<std::string, CacheEntry>> to_forward;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second.fingerprint != old_fp) {
      ++it;
      continue;
    }
    const PreparedGraph& plan = *it->second.prepared;
    // Per-plan check: every touched vertex (net-removed edge endpoints;
    // attribute flips are already excluded above) must lie outside the
    // plan's reduced vertex set, so no vertex or edge of the reduced
    // subgraph changed. original_ids is strictly increasing (reduction
    // stages preserve vertex order), hence the binary search.
    bool forwardable = batch_forwardable;
    if (forwardable) {
      for (VertexId v : summary.touched) {
        if (std::binary_search(plan.original_ids.begin(),
                               plan.original_ids.end(), v)) {
          forwardable = false;
          break;
        }
      }
    }
    if (forwardable) {
      std::string new_key =
          MakeKey(new_fp, plan.k, plan.reductions);
      to_forward.emplace_back(std::move(new_key),
                              CacheEntry{it->second.prepared, new_fp});
      outcome.forwarded++;
      forwarded_++;
    } else if (!keep_old_entries) {
      // Not forwardable: the plan dies with its epoch. With
      // keep_old_entries it simply stays behind under the old fingerprint
      // (another registered name still serves that content).
      outcome.invalidated++;
      invalidated_++;
    }
    if (keep_old_entries) {
      ++it;
    } else {
      index_.erase(it->first);
      it = lru_.erase(it);
    }
  }
  // Inserted after the scan so a forwarded entry is never re-examined (or
  // double-erased) by the loop above.
  for (auto& [key, entry] : to_forward) {
    PutLocked(key, std::move(entry));
  }
  return outcome;
}

void PreparedGraphCache::Clear() {
  fc::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = misses_ = insertions_ = evictions_ = invalidated_ = forwarded_ = 0;
}

PreparedGraphCacheStats PreparedGraphCache::Stats() const {
  fc::MutexLock lock(mu_);
  PreparedGraphCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.invalidated = invalidated_;
  s.forwarded = forwarded_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace fairclique
