#include "service/telemetry.h"

#include <algorithm>
#include <utility>

#include "common/bitset_simd.h"
#include "common/build_info.h"
#include "core/prepared_graph.h"
#include "graph/fingerprint.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "service/wire.h"

namespace fairclique {

namespace {

/// The build-identity sub-object shared by `stats` and `health`.
void WriteBuildObject(wire::JsonWriter& w) {
  w.Key("build")
      .BeginObject()
      .Field("version", BuildVersion())
      .Field("build_type", BuildType())
      .Field("compiler", BuildCompiler())
      .Field("simd", simd::ActiveName())
      .EndObject();
}

}  // namespace

std::string StatsJson(uint64_t id, const ServiceTelemetry& t) {
  wire::JsonWriter w;
  w.BeginObject()
      .Field("ok", true)
      .Field("id", static_cast<unsigned long long>(id))
      .Field("uptime_seconds", ProcessUptimeSeconds());
  WriteBuildObject(w);
  w.Key("graphs").BeginArray();
  for (const auto& entry : t.graphs) {
    w.BeginObject()
        .Field("name", entry->name)
        .Field("vertices", entry->graph->num_vertices())
        .Field("edges", entry->graph->num_edges())
        .Field("version", static_cast<unsigned long long>(entry->version))
        .Field("fingerprint", FingerprintHex(entry->fingerprint))
        .EndObject();
  }
  w.EndArray();
  w.Key("registry")
      .BeginObject()
      .Field("loads", static_cast<unsigned long long>(t.registry.loads))
      .Field("restores", static_cast<unsigned long long>(t.registry.restores))
      .Field("replaces", static_cast<unsigned long long>(t.registry.replaces))
      .Field("evictions",
             static_cast<unsigned long long>(t.registry.evictions))
      .EndObject();
  w.Key("cache")
      .BeginObject()
      .Field("hits", static_cast<unsigned long long>(t.cache.hits))
      .Field("misses", static_cast<unsigned long long>(t.cache.misses))
      .Field("insertions", static_cast<unsigned long long>(t.cache.insertions))
      .Field("evictions", static_cast<unsigned long long>(t.cache.evictions))
      .Field("invalidated",
             static_cast<unsigned long long>(t.cache.invalidated))
      .Field("republished",
             static_cast<unsigned long long>(t.cache.republished))
      .Field("hints_published",
             static_cast<unsigned long long>(t.cache.hints_published))
      .Field("hint_hits", static_cast<unsigned long long>(t.cache.hint_hits))
      .Field("entries", t.cache.entries)
      .Field("hint_entries", t.cache.hint_entries)
      .Field("capacity", t.cache.capacity)
      .EndObject();
  w.Key("prepared")
      .BeginObject()
      .Field("hits", static_cast<unsigned long long>(t.prepared.hits))
      .Field("misses", static_cast<unsigned long long>(t.prepared.misses))
      .Field("insertions",
             static_cast<unsigned long long>(t.prepared.insertions))
      .Field("evictions",
             static_cast<unsigned long long>(t.prepared.evictions))
      .Field("invalidated",
             static_cast<unsigned long long>(t.prepared.invalidated))
      .Field("forwarded",
             static_cast<unsigned long long>(t.prepared.forwarded))
      .Field("entries", t.prepared.entries)
      .Field("capacity", t.prepared.capacity)
      .EndObject();
  w.Key("executor")
      .BeginObject()
      .Field("submitted", static_cast<unsigned long long>(t.executor.submitted))
      .Field("accepted", static_cast<unsigned long long>(t.executor.accepted))
      .Field("rejected", static_cast<unsigned long long>(t.executor.rejected))
      .Field("served", static_cast<unsigned long long>(t.executor.served))
      .Field("cache_hits",
             static_cast<unsigned long long>(t.executor.cache_hits))
      .Field("incremental",
             static_cast<unsigned long long>(t.executor.incremental_requeries))
      .Field("warm_starts",
             static_cast<unsigned long long>(t.executor.warm_starts))
      .Field("prepared_hits",
             static_cast<unsigned long long>(t.executor.prepared_hits))
      .Field("prepared_builds",
             static_cast<unsigned long long>(t.executor.prepared_builds))
      .Field("component_tasks",
             static_cast<unsigned long long>(t.executor.component_tasks))
      .Field("deadline_misses",
             static_cast<unsigned long long>(t.executor.deadline_misses))
      .Field("expired_in_queue",
             static_cast<unsigned long long>(t.executor.expired_in_queue))
      .Field("stopped_node_limit",
             static_cast<unsigned long long>(t.executor.stopped_node_limit))
      .Field("stopped_time_limit",
             static_cast<unsigned long long>(t.executor.stopped_time_limit))
      .Field("stopped_deadline",
             static_cast<unsigned long long>(t.executor.stopped_deadline))
      .Field("admission_queue_depth", t.executor.admission_queue_depth)
      .Field("component_queue_depth", t.executor.component_queue_depth)
      .Field("queue_depth", t.executor.queue_depth)
      .Field("peak_queue_depth", t.executor.peak_queue_depth)
      .Field("num_workers", t.executor.num_workers)
      .Field("active_workers", t.executor.active_workers)
      .EndObject();
  w.Key("kernel")
      .BeginObject()
      .Field("simd", simd::ActiveName())
      .Field("bitset_budget_bytes",
             static_cast<unsigned long long>(BitsetArenaBudgetBytes()))
      .EndObject();
  {
    obs::Slowlog& slowlog = obs::Slowlog::Default();
    w.Key("slowlog")
        .BeginObject()
        .Field("traces", slowlog.size())
        .Field("capacity", slowlog.capacity())
        .EndObject();
  }
  if (t.has_storage) {
    w.Key("storage")
        .BeginObject()
        .Field("snapshots_written",
               static_cast<unsigned long long>(t.storage.snapshots_written))
        .Field("wal_records_appended",
               static_cast<unsigned long long>(t.storage.wal_records_appended))
        .Field("wal_group_commits",
               static_cast<unsigned long long>(t.storage.wal_group_commits))
        .Field("wal_records_replayed",
               static_cast<unsigned long long>(t.storage.wal_records_replayed))
        .Field("compactions",
               static_cast<unsigned long long>(t.storage.compactions))
        .Field("recoveries",
               static_cast<unsigned long long>(t.storage.recoveries))
        .Field("recover_failures",
               static_cast<unsigned long long>(t.storage.recover_failures))
        .Field("warm_entries_saved",
               static_cast<unsigned long long>(t.storage.warm_entries_saved))
        .Field("warm_entries_restored", static_cast<unsigned long long>(
                                            t.storage.warm_entries_restored))
        .Field("warm_entries_rejected", static_cast<unsigned long long>(
                                            t.storage.warm_entries_rejected))
        .EndObject();
  }
  w.EndObject();
  return w.str();
}

std::string PrometheusText(const ServiceTelemetry& t) {
  // Interning the standard instruments first guarantees the required
  // histogram families render (with zero counts) even on a fresh process.
  obs::QueryQueueWaitHistogram();
  obs::QueryRunHistogram();
  obs::QueryPrepareHistogram();
  obs::QueryBranchHistogram();
  obs::WalFsyncHistogram();
  obs::WalGroupFramesHistogram();
  obs::WalBytesWrittenCounter();

  obs::MetricsSnapshot snap = obs::MetricRegistry::Default().Snapshot();

  snap.AddCounter("fc_executor_submitted_total", "Requests submitted",
                  t.executor.submitted);
  snap.AddCounter("fc_executor_accepted_total", "Requests admitted",
                  t.executor.accepted);
  snap.AddCounter("fc_executor_rejected_total",
                  "Requests rejected (queue full or shutdown)",
                  t.executor.rejected);
  snap.AddCounter("fc_executor_served_total", "Responses completed",
                  t.executor.served);
  snap.AddCounter("fc_executor_cache_hits_total",
                  "Queries answered from the result cache",
                  t.executor.cache_hits);
  snap.AddCounter("fc_executor_incremental_requeries_total",
                  "Queries answered exactly via incremental re-query",
                  t.executor.incremental_requeries);
  snap.AddCounter("fc_executor_warm_starts_total",
                  "Full searches seeded by a warm hint",
                  t.executor.warm_starts);
  snap.AddCounter("fc_executor_prepared_hits_total",
                  "Branch stages run on a cached prepared plan",
                  t.executor.prepared_hits);
  snap.AddCounter("fc_executor_prepared_builds_total",
                  "Prepared plans built", t.executor.prepared_builds);
  snap.AddCounter("fc_executor_component_tasks_total",
                  "Component tasks scheduled pool-wide",
                  t.executor.component_tasks);
  snap.AddCounter("fc_executor_deadline_misses_total",
                  "Responses answered with deadline_missed",
                  t.executor.deadline_misses);
  snap.AddCounter("fc_executor_expired_in_queue_total",
                  "Requests whose deadline expired before a worker popped "
                  "them",
                  t.executor.expired_in_queue);
  snap.AddCounter("fc_executor_stopped_node_limit_total",
                  "Searches stopped by the request's node limit",
                  t.executor.stopped_node_limit);
  snap.AddCounter("fc_executor_stopped_time_limit_total",
                  "Searches stopped by the request's own time limit",
                  t.executor.stopped_time_limit);
  snap.AddCounter("fc_executor_stopped_deadline_total",
                  "Searches stopped by the per-query deadline (expired "
                  "in queue included)",
                  t.executor.stopped_deadline);
  snap.AddGauge("fc_executor_workers", "Configured worker-pool size",
                static_cast<int64_t>(t.executor.num_workers));
  snap.AddGauge("fc_executor_active_workers",
                "Workers currently executing a query stage or component "
                "task",
                static_cast<int64_t>(t.executor.active_workers));
  snap.AddGauge("fc_executor_admission_queue_depth",
                "Whole queries waiting for a worker",
                static_cast<int64_t>(t.executor.admission_queue_depth));
  snap.AddGauge("fc_executor_component_queue_depth",
                "Expanded Branch tasks waiting",
                static_cast<int64_t>(t.executor.component_queue_depth));
  snap.AddGauge("fc_executor_queue_depth",
                "Total backlog (admission + component)",
                static_cast<int64_t>(t.executor.queue_depth));
  snap.AddGauge("fc_executor_peak_queue_depth",
                "High-water mark of the combined backlog",
                static_cast<int64_t>(t.executor.peak_queue_depth));

  snap.AddCounter("fc_result_cache_hits_total", "Result-cache hits",
                  t.cache.hits);
  snap.AddCounter("fc_result_cache_misses_total", "Result-cache misses",
                  t.cache.misses);
  snap.AddCounter("fc_result_cache_insertions_total",
                  "Result-cache insertions", t.cache.insertions);
  snap.AddCounter("fc_result_cache_evictions_total",
                  "Result-cache LRU evictions", t.cache.evictions);
  snap.AddCounter("fc_result_cache_invalidated_total",
                  "Result-cache entries/hints dropped by invalidation",
                  t.cache.invalidated);
  snap.AddCounter("fc_result_cache_republished_total",
                  "Exact entries migrated to a new epoch's fingerprint",
                  t.cache.republished);
  snap.AddCounter("fc_result_cache_hints_published_total",
                  "Warm hints created by snapshot migration",
                  t.cache.hints_published);
  snap.AddCounter("fc_result_cache_hint_hits_total",
                  "Warm hints consumed by queries", t.cache.hint_hits);
  snap.AddGauge("fc_result_cache_entries", "Resident result-cache entries",
                static_cast<int64_t>(t.cache.entries));
  snap.AddGauge("fc_result_cache_hint_entries", "Resident warm hints",
                static_cast<int64_t>(t.cache.hint_entries));
  snap.AddGauge("fc_result_cache_capacity", "Result-cache capacity",
                static_cast<int64_t>(t.cache.capacity));

  snap.AddCounter("fc_prepared_cache_hits_total", "Prepared-plan cache hits",
                  t.prepared.hits);
  snap.AddCounter("fc_prepared_cache_misses_total",
                  "Prepared-plan cache misses", t.prepared.misses);
  snap.AddCounter("fc_prepared_cache_insertions_total",
                  "Prepared-plan insertions", t.prepared.insertions);
  snap.AddCounter("fc_prepared_cache_evictions_total",
                  "Prepared-plan LRU evictions", t.prepared.evictions);
  snap.AddCounter("fc_prepared_cache_invalidated_total",
                  "Prepared plans dropped by invalidation",
                  t.prepared.invalidated);
  snap.AddCounter("fc_prepared_cache_forwarded_total",
                  "Prepared plans re-keyed to a new epoch",
                  t.prepared.forwarded);
  snap.AddGauge("fc_prepared_cache_entries", "Resident prepared plans",
                static_cast<int64_t>(t.prepared.entries));
  snap.AddGauge("fc_prepared_cache_capacity", "Prepared-plan cache capacity",
                static_cast<int64_t>(t.prepared.capacity));

  snap.AddCounter("fc_registry_loads_total",
                  "Graphs registered via Load/Add", t.registry.loads);
  snap.AddCounter("fc_registry_restores_total",
                  "Graphs registered from durable recovery",
                  t.registry.restores);
  snap.AddCounter("fc_registry_replaces_total",
                  "Epoch transitions published by Replace",
                  t.registry.replaces);
  snap.AddCounter("fc_registry_evictions_total", "Graphs evicted",
                  t.registry.evictions);
  snap.AddGauge("fc_registry_graphs", "Currently registered graphs",
                static_cast<int64_t>(t.registry.graphs));

  {
    obs::Slowlog& slowlog = obs::Slowlog::Default();
    snap.AddGauge("fc_slowlog_traces", "Traces retained in the slowlog",
                  static_cast<int64_t>(slowlog.size()));
    snap.AddGauge("fc_slowlog_capacity", "Slowlog capacity",
                  static_cast<int64_t>(slowlog.capacity()));
  }

  // Build identity as an info-style metric (constant 1, payload in the
  // labels) plus process uptime, so dashboards can overlay deploys on any
  // latency panel.
  snap.AddLabeledGauge(
      "fc_build_info", "Build identity (constant 1; see labels)",
      std::string("{version=\"") + BuildVersion() + "\",build_type=\"" +
          BuildType() + "\",simd=\"" + simd::ActiveName() + "\"}",
      1);
  snap.AddGauge("fc_uptime_seconds", "Seconds since process start",
                ProcessUptimeSeconds());
  snap.AddGauge(
      "fc_journal_events_recorded",
      "Structured events recorded into the in-memory journal since start",
      static_cast<int64_t>(obs::EventJournal::Default().recorded()));

  {
    obs::ProgressRegistry& progress = obs::ProgressRegistry::Default();
    snap.AddGauge("fc_queries_inflight",
                  "Queries currently in their Branch stage",
                  static_cast<int64_t>(progress.size()));
    snap.AddGauge("fc_search_incumbent_gap",
                  "Largest (upper bound - incumbent) over in-flight "
                  "searches; 0 when idle or converged",
                  progress.MaxIncumbentGap());
  }

  if (t.has_storage) {
    snap.AddCounter("fc_storage_snapshots_written_total",
                    "FCG2 snapshots written (incl. compactions)",
                    t.storage.snapshots_written);
    snap.AddCounter("fc_wal_records_appended_total",
                    "WAL records acknowledged durable",
                    t.storage.wal_records_appended);
    snap.AddCounter("fc_wal_group_commits_total",
                    "Write+fsync groups issued by commit leaders",
                    t.storage.wal_group_commits);
    snap.AddCounter("fc_wal_records_replayed_total",
                    "WAL records replayed during recovery",
                    t.storage.wal_records_replayed);
    snap.AddCounter("fc_storage_compactions_total",
                    "Snapshot rewrites that truncated a WAL",
                    t.storage.compactions);
    snap.AddCounter("fc_storage_recoveries_total",
                    "Graphs recovered by RecoverAll", t.storage.recoveries);
    snap.AddCounter("fc_storage_recover_failures_total",
                    "Manifest entries skipped on recovery",
                    t.storage.recover_failures);
    snap.AddCounter("fc_storage_warm_entries_saved_total",
                    "Warm cache entries persisted",
                    t.storage.warm_entries_saved);
    snap.AddCounter("fc_storage_warm_entries_restored_total",
                    "Warm cache entries restored (verifier-approved)",
                    t.storage.warm_entries_restored);
    snap.AddCounter("fc_storage_warm_entries_rejected_total",
                    "Warm cache entries rejected by the restore verifier",
                    t.storage.warm_entries_rejected);
  }

  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const obs::MetricSnapshot& a, const obs::MetricSnapshot& b) {
              return a.name < b.name;
            });
  return obs::RenderPrometheus(snap);
}

std::string HealthJson(uint64_t id, const ServiceTelemetry& t) {
  // Degraded verdicts come from the watchdog: a stuck query, a stalled
  // admission queue, or a window where most answers blew their deadline.
  std::vector<std::string> reasons;
  if (t.has_watchdog) {
    if (t.watchdog.currently_stuck > 0) reasons.push_back("stalled_query");
    if (t.watchdog.queue_stalled_now) {
      reasons.push_back("admission_queue_stalled");
    }
    if (t.watchdog.deadline_miss_rate > 0.5) {
      reasons.push_back("high_deadline_miss_rate");
    }
  }

  wire::JsonWriter w;
  w.BeginObject()
      .Field("ok", true)
      .Field("id", static_cast<unsigned long long>(id))
      .Field("status", reasons.empty() ? "ok" : "degraded");
  w.Key("reasons").BeginArray();
  for (const std::string& r : reasons) w.Value(r);
  w.EndArray();
  w.Field("uptime_seconds", ProcessUptimeSeconds());
  WriteBuildObject(w);
  w.Field("graphs", t.graphs.size())
      .Field("inflight", obs::ProgressRegistry::Default().size())
      .Field("queue_depth", t.executor.queue_depth)
      .Field("served", static_cast<unsigned long long>(t.executor.served))
      .Field("deadline_misses",
             static_cast<unsigned long long>(t.executor.deadline_misses))
      .Field("journal_events",
             static_cast<unsigned long long>(
                 obs::EventJournal::Default().recorded()));
  if (t.has_watchdog) {
    w.Key("watchdog")
        .BeginObject()
        .Field("running", t.watchdog.running)
        .Field("sweeps", static_cast<unsigned long long>(t.watchdog.sweeps))
        .Field("stalled_queries",
               static_cast<unsigned long long>(t.watchdog.stalled_queries))
        .Field("currently_stuck",
               static_cast<unsigned long long>(t.watchdog.currently_stuck))
        .Field("fsync_stalls",
               static_cast<unsigned long long>(t.watchdog.fsync_stalls))
        .Field("queue_stalls",
               static_cast<unsigned long long>(t.watchdog.queue_stalls))
        .Field("queue_stalled_now", t.watchdog.queue_stalled_now)
        .Field("last_fsync_mean_micros",
               static_cast<long long>(t.watchdog.last_fsync_mean_micros))
        .Field("deadline_miss_rate", t.watchdog.deadline_miss_rate)
        .EndObject();
  }
  w.EndObject();
  return w.str();
}

std::string TraceJson(const obs::Trace& trace) {
  wire::JsonWriter w;
  w.BeginObject()
      .Field("trace_id", static_cast<unsigned long long>(trace.id))
      .Field("graph", trace.graph)
      .Field("options", trace.options)
      .Field("queue_micros", static_cast<long long>(trace.queue_micros))
      .Field("run_micros", static_cast<long long>(trace.run_micros))
      .Field("total_micros", static_cast<long long>(trace.total_micros))
      .Field("ok", trace.ok)
      .Field("cache_hit", trace.cache_hit)
      .Field("prepared_hit", trace.prepared_hit)
      .Field("incremental", trace.incremental)
      .Field("warm_start", trace.warm_start)
      .Field("deadline_missed", trace.deadline_missed)
      .Field("stop_reason", trace.stop_reason);
  w.Key("spans").BeginArray();
  for (const obs::TraceSpan& span : trace.spans) {
    w.BeginObject()
        .Field("name", span.name)
        .Field("parent", span.parent)
        .Field("start_micros", static_cast<long long>(span.start_micros))
        .Field("duration_micros",
               static_cast<long long>(span.duration_micros))
        .EndObject();
  }
  w.EndArray();
  if (!trace.explain_json.empty()) w.Key("plan").Raw(trace.explain_json);
  w.EndObject();
  return w.str();
}

std::string ProgressJson(const obs::ProgressSnapshot& p) {
  wire::JsonWriter w;
  w.BeginObject()
      .Field("trace_id", static_cast<unsigned long long>(p.trace_id))
      .Field("graph", p.graph)
      .Field("options", p.options)
      .Field("nodes", static_cast<unsigned long long>(p.nodes))
      .Field("incumbent_size", static_cast<long long>(p.incumbent_size))
      .Field("upper_bound", static_cast<long long>(p.upper_bound))
      .Field("components_done",
             static_cast<unsigned long long>(p.components_done))
      .Field("components_total",
             static_cast<unsigned long long>(p.components_total))
      .Field("elapsed_micros", static_cast<long long>(p.elapsed_micros))
      .EndObject();
  return w.str();
}

}  // namespace fairclique
