#include "common/build_info.h"

#include <chrono>

#ifndef FAIRCLIQUE_BUILD_VERSION
#define FAIRCLIQUE_BUILD_VERSION "unversioned"
#endif
#ifndef FAIRCLIQUE_BUILD_TYPE
#define FAIRCLIQUE_BUILD_TYPE "unspecified"
#endif

namespace fairclique {
namespace {
/// Captured at static initialization, i.e. before main() runs.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();
}  // namespace

const char* BuildVersion() { return FAIRCLIQUE_BUILD_VERSION; }

const char* BuildType() { return FAIRCLIQUE_BUILD_TYPE; }

const char* BuildCompiler() {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

int64_t ProcessUptimeMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - g_process_start)
      .count();
}

int64_t ProcessUptimeSeconds() { return ProcessUptimeMicros() / 1000000; }

}  // namespace fairclique
