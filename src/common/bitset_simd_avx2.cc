// The only TU compiled with -mavx2 -mpopcnt (see CMakeLists.txt). Keeping
// the intrinsics isolated here avoids gcc's target-attribute inlining traps
// and guarantees no AVX2 instruction leaks into always-executed code; the
// dispatcher calls Avx2Kernels() only after a cpuid check.

#include "common/bitset_simd.h"

#if defined(__AVX2__) && !defined(FAIRCLIQUE_FORCE_SCALAR)

#include <immintrin.h>

namespace fairclique {
namespace simd {

namespace {

// Positional popcount of a 256-bit lane via the vpshufb nibble LUT (Mula):
// per-byte counts summed into four 64-bit lanes by psadbw. Accumulate lanes
// across the loop, reduce once at the end.
inline __m256i PopcountBytes256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline uint64_t ReduceLanes(__m256i acc) {
  return static_cast<uint64_t>(_mm256_extract_epi64(acc, 0)) +
         static_cast<uint64_t>(_mm256_extract_epi64(acc, 1)) +
         static_cast<uint64_t>(_mm256_extract_epi64(acc, 2)) +
         static_cast<uint64_t>(_mm256_extract_epi64(acc, 3));
}

void Avx2And(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void Avx2AndNot(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot computes ~first & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_andnot_si256(vb, va));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

void Avx2Or(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

uint64_t Avx2Popcount(const uint64_t* a, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, PopcountBytes256(v));
  }
  uint64_t c = ReduceLanes(acc);
  for (; i < n; ++i) c += static_cast<uint64_t>(_mm_popcnt_u64(a[i]));
  return c;
}

uint64_t Avx2IntersectCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, PopcountBytes256(_mm256_and_si256(va, vb)));
  }
  uint64_t c = ReduceLanes(acc);
  for (; i < n; ++i) {
    c += static_cast<uint64_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return c;
}

bool Avx2Any(const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

DualCount Avx2IntersectIntoDual(uint64_t* dst, const uint64_t* a,
                                const uint64_t* b, const uint64_t* mask,
                                size_t n) {
  __m256i acc_total = _mm256_setzero_si256();
  __m256i acc_mask = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    __m256i w = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), w);
    acc_total = _mm256_add_epi64(acc_total, PopcountBytes256(w));
    acc_mask = _mm256_add_epi64(
        acc_mask, PopcountBytes256(_mm256_and_si256(w, vm)));
  }
  DualCount out;
  out.total = ReduceLanes(acc_total);
  out.in_mask = ReduceLanes(acc_mask);
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    dst[i] = w;
    out.total += static_cast<uint64_t>(_mm_popcnt_u64(w));
    out.in_mask += static_cast<uint64_t>(_mm_popcnt_u64(w & mask[i]));
  }
  return out;
}

constexpr Kernels kAvx2 = {
    "avx2",  Avx2And, Avx2AndNot,
    Avx2Or,  Avx2Popcount, Avx2IntersectCount,
    Avx2Any, Avx2IntersectIntoDual,
};

}  // namespace

const Kernels* Avx2Kernels() { return &kAvx2; }

}  // namespace simd
}  // namespace fairclique

#else  // !__AVX2__ or forced scalar: this TU was built without the ISA.

namespace fairclique {
namespace simd {

const Kernels* Avx2Kernels() { return nullptr; }

}  // namespace simd
}  // namespace fairclique

#endif
