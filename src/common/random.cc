#include "common/random.h"

#include <unordered_set>

namespace fairclique {

std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t count) {
  assert(count <= n);
  std::vector<uint64_t> result;
  result.reserve(count);
  if (count == 0) return result;
  // For dense samples a partial Fisher-Yates over an explicit index array is
  // cheaper; for sparse samples, rejection from a hash set is O(count).
  if (count * 3 >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t j = i + NextBounded(n - i);
      std::swap(all[i], all[j]);
      result.push_back(all[i]);
    }
    return result;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(count * 2);
  while (result.size() < count) {
    uint64_t x = NextBounded(n);
    if (seen.insert(x).second) result.push_back(x);
  }
  return result;
}

}  // namespace fairclique
