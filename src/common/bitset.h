#ifndef FAIRCLIQUE_COMMON_BITSET_H_
#define FAIRCLIQUE_COMMON_BITSET_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "common/bitset_simd.h"

namespace fairclique {

/// Minimal C++17 allocator that over-aligns every allocation, so Bitset word
/// storage starts on a cache line and the vector kernels never straddle one
/// more line than the data needs.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Alignment >= alignof(T), "alignment below natural");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// A fixed-size dynamic bitset with word-level operations used by the search
/// kernels (candidate sets, adjacency rows of dense subproblems). Faster and
/// leaner than std::vector<bool> for intersection-heavy workloads.
///
/// Bulk operations (&=, -=, |=, Count, Any, IntersectCount, the fused
/// AssignIntersectDual) route through the runtime-dispatched kernels in
/// common/bitset_simd.h — scalar, AVX2, or NEON depending on build and CPU.
///
/// Invariant: bits at positions >= size() in the last word are always zero
/// ("tail-clean"). Every mutator here preserves it and the counting queries
/// assert it in debug builds, so popcounts can run word-parallel without
/// masking. Code writing through words() directly must uphold it too.
class Bitset {
 public:
  Bitset() : size_(0) {}

  /// Creates a bitset of `size` bits, all clear.
  explicit Bitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0ULL) {}

  size_t size() const { return size_; }

  /// Word-level access for kernels operating across Bitsets and arena rows.
  /// Writers must keep the tail-clean invariant (see class comment).
  size_t num_words() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  void Set(size_t i) {
    assert(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void Reset(size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Clears all bits.
  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Sets all bits in [0, size).
  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    TrimTail();
  }

  /// Number of set bits.
  size_t Count() const {
    assert(TailClean());
    return static_cast<size_t>(simd::Popcount(words_.data(), words_.size()));
  }

  bool Any() const {
    assert(TailClean());
    return simd::Any(words_.data(), words_.size());
  }

  /// In-place intersection with `other` (must have the same size).
  Bitset& operator&=(const Bitset& other) {
    assert(size_ == other.size_);
    simd::AndInPlace(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  /// In-place union with `other` (must have the same size). Canonically
  /// trims the tail so a stale tail in either operand cannot propagate.
  Bitset& operator|=(const Bitset& other) {
    assert(size_ == other.size_);
    simd::OrInPlace(words_.data(), other.words_.data(), words_.size());
    TrimTail();
    return *this;
  }

  /// In-place difference: clears every bit that is set in `other`.
  Bitset& operator-=(const Bitset& other) {
    assert(size_ == other.size_);
    simd::AndNotInPlace(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Index of the first set bit at or after `from`, or `size()` if none.
  size_t NextSetBit(size_t from) const {
    if (from >= size_) return size_;
    const size_t last = words_.size() - 1;
    size_t wi = from >> 6;
    uint64_t w = words_[wi] & (~0ULL << (from & 63));
    while (true) {
      // Mask the final word explicitly rather than trusting the tail-clean
      // invariant: NextSetBit must be exact even mid-mutation.
      if (wi == last) w &= TailMask();
      if (w != 0) {
        return (wi << 6) + static_cast<size_t>(__builtin_ctzll(w));
      }
      if (++wi > last) return size_;
      w = words_[wi];
    }
  }

  /// Calls `fn(i)` for every set bit i in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    assert(TailClean());
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        size_t bit = static_cast<size_t>(__builtin_ctzll(w));
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  /// Clears every bit with index < n (keeps the suffix). Used by ordered
  /// clique enumeration to restrict candidates to higher-ranked vertices.
  void ResetBelow(size_t n) {
    if (n >= size_) {
      Clear();
      return;
    }
    size_t full_words = n >> 6;
    for (size_t i = 0; i < full_words; ++i) words_[i] = 0;
    size_t tail = n & 63;
    if (tail != 0) words_[full_words] &= ~0ULL << tail;
  }

  /// Population count of the intersection with `other`, without materializing
  /// the intersection.
  size_t IntersectCount(const Bitset& other) const {
    assert(size_ == other.size_);
    assert(TailClean() && other.TailClean());
    return static_cast<size_t>(simd::IntersectCount(
        words_.data(), other.words_.data(), words_.size()));
  }

  /// Fused branch-kernel op: *this = a & b, returning {|a&b|, |a&b&mask|} in
  /// one pass. Replaces the materialize-then-count-twice sequence in the
  /// bitset search engine. `b` may be a raw arena row of the same width.
  simd::DualCount AssignIntersectDual(const Bitset& a, const uint64_t* b,
                                      const Bitset& mask) {
    assert(size_ == a.size_ && size_ == mask.size_);
    assert(a.TailClean() && mask.TailClean());
    return simd::IntersectIntoDual(words_.data(), a.words_.data(), b,
                                   mask.words_.data(), words_.size());
  }

  /// True when no bit beyond size() is set in the last word. Debug-only
  /// sanity hook; all counting queries assert it.
  bool TailClean() const {
    if (words_.empty()) return true;
    return (words_.back() & ~TailMask()) == 0;
  }

 private:
  // Valid-bit mask for the last word (all ones when size_ % 64 == 0).
  uint64_t TailMask() const {
    size_t tail = size_ & 63;
    return tail == 0 ? ~0ULL : (1ULL << tail) - 1;
  }

  // Clears bits beyond size_ in the last word so Count()/Any() stay exact.
  void TrimTail() {
    if (!words_.empty()) words_.back() &= TailMask();
  }

  size_t size_;
  std::vector<uint64_t, AlignedAllocator<uint64_t, 64>> words_;
};

/// Contiguous 64-byte-aligned block of fixed-width bit rows: the adjacency
/// layout of the bitset search engine. One allocation for all rows, each row
/// padded to a whole cache line, so successive candidate-row intersections
/// walk a dense arena instead of chasing per-row heap allocations.
class BitsetArena {
 public:
  BitsetArena() = default;

  /// `rows` rows of `bits` bits each, all clear.
  BitsetArena(size_t rows, size_t bits)
      : rows_(rows),
        bits_(bits),
        words_per_row_(((bits + 63) / 64 + 7) & ~size_t{7}) {
    size_t total = rows_ * words_per_row_;
    if (total != 0) {
      data_ = static_cast<uint64_t*>(
          ::operator new(total * sizeof(uint64_t), std::align_val_t(64)));
      for (size_t i = 0; i < total; ++i) data_[i] = 0;
    }
  }

  BitsetArena(BitsetArena&& o) noexcept
      : rows_(o.rows_),
        bits_(o.bits_),
        words_per_row_(o.words_per_row_),
        data_(o.data_) {
    o.data_ = nullptr;
    o.rows_ = 0;
  }
  BitsetArena& operator=(BitsetArena&& o) noexcept {
    if (this != &o) {
      Free();
      rows_ = o.rows_;
      bits_ = o.bits_;
      words_per_row_ = o.words_per_row_;
      data_ = o.data_;
      o.data_ = nullptr;
      o.rows_ = 0;
    }
    return *this;
  }
  BitsetArena(const BitsetArena&) = delete;
  BitsetArena& operator=(const BitsetArena&) = delete;
  ~BitsetArena() { Free(); }

  size_t rows() const { return rows_; }
  size_t bits() const { return bits_; }
  size_t words_per_row() const { return words_per_row_; }
  size_t bytes() const { return rows_ * words_per_row_ * sizeof(uint64_t); }

  uint64_t* row(size_t r) {
    assert(r < rows_);
    return data_ + r * words_per_row_;
  }
  const uint64_t* row(size_t r) const {
    assert(r < rows_);
    return data_ + r * words_per_row_;
  }

  void SetBit(size_t r, size_t i) {
    assert(i < bits_);
    row(r)[i >> 6] |= 1ULL << (i & 63);
  }
  bool TestBit(size_t r, size_t i) const {
    assert(i < bits_);
    return (row(r)[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Hints the row into cache ahead of its intersection. No-op on toolchains
  /// without __builtin_prefetch.
  void PrefetchRow(size_t r) const {
    if (r >= rows_) return;
#if defined(__GNUC__) || defined(__clang__)
    const uint64_t* p = data_ + r * words_per_row_;
    for (size_t w = 0; w < words_per_row_; w += 8) {
      __builtin_prefetch(p + w, 0 /*read*/, 1 /*low temporal locality*/);
    }
#endif
  }

 private:
  void Free() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(64));
      data_ = nullptr;
    }
  }

  size_t rows_ = 0;
  size_t bits_ = 0;
  size_t words_per_row_ = 0;
  uint64_t* data_ = nullptr;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_BITSET_H_
