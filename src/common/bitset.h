#ifndef FAIRCLIQUE_COMMON_BITSET_H_
#define FAIRCLIQUE_COMMON_BITSET_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace fairclique {

/// A fixed-size dynamic bitset with word-level operations used by the search
/// kernels (candidate sets, adjacency rows of dense subproblems). Faster and
/// leaner than std::vector<bool> for intersection-heavy workloads.
class Bitset {
 public:
  Bitset() : size_(0) {}

  /// Creates a bitset of `size` bits, all clear.
  explicit Bitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0ULL) {}

  size_t size() const { return size_; }

  void Set(size_t i) {
    assert(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void Reset(size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Clears all bits.
  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Sets all bits in [0, size).
  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    TrimTail();
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// In-place intersection with `other` (must have the same size).
  Bitset& operator&=(const Bitset& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// In-place union with `other` (must have the same size).
  Bitset& operator|=(const Bitset& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place difference: clears every bit that is set in `other`.
  Bitset& operator-=(const Bitset& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Index of the first set bit at or after `from`, or `size()` if none.
  size_t NextSetBit(size_t from) const {
    if (from >= size_) return size_;
    size_t wi = from >> 6;
    uint64_t w = words_[wi] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        return (wi << 6) + static_cast<size_t>(__builtin_ctzll(w));
      }
      if (++wi == words_.size()) return size_;
      w = words_[wi];
    }
  }

  /// Calls `fn(i)` for every set bit i in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        size_t bit = static_cast<size_t>(__builtin_ctzll(w));
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  /// Clears every bit with index < n (keeps the suffix). Used by ordered
  /// clique enumeration to restrict candidates to higher-ranked vertices.
  void ResetBelow(size_t n) {
    if (n >= size_) {
      Clear();
      return;
    }
    size_t full_words = n >> 6;
    for (size_t i = 0; i < full_words; ++i) words_[i] = 0;
    size_t tail = n & 63;
    if (tail != 0) words_[full_words] &= ~0ULL << tail;
  }

  /// Population count of the intersection with `other`, without materializing
  /// the intersection.
  size_t IntersectCount(const Bitset& other) const {
    assert(size_ == other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      c += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
    }
    return c;
  }

 private:
  // Clears bits beyond size_ in the last word so Count()/Any() stay exact.
  void TrimTail() {
    size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ULL << tail) - 1;
    }
  }

  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_BITSET_H_
