#include "common/bitset_simd.h"

#include <atomic>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace fairclique {
namespace simd {

namespace {

// ------------------------------------------------------------- scalar ----
// The portable reference. Also the differential baseline: every other
// variant must be bit-exact against these (tests/bitset_kernel_test.cpp).

void ScalarAnd(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] &= b[i];
}

void ScalarAndNot(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] &= ~b[i];
}

void ScalarOr(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] |= b[i];
}

uint64_t ScalarPopcount(const uint64_t* a, size_t n) {
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(a[i]));
  }
  return c;
}

uint64_t ScalarIntersectCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c;
}

bool ScalarAny(const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

DualCount ScalarIntersectIntoDual(uint64_t* dst, const uint64_t* a,
                                  const uint64_t* b, const uint64_t* mask,
                                  size_t n) {
  DualCount out;
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    dst[i] = w;
    out.total += static_cast<uint64_t>(__builtin_popcountll(w));
    out.in_mask += static_cast<uint64_t>(__builtin_popcountll(w & mask[i]));
  }
  return out;
}

constexpr Kernels kScalar = {
    "scalar",         ScalarAnd, ScalarAndNot,
    ScalarOr,         ScalarPopcount, ScalarIntersectCount,
    ScalarAny,        ScalarIntersectIntoDual,
};

// --------------------------------------------------------------- neon ----
// NEON is baseline on aarch64, so this variant is compile-time selected
// (no cpuid probe needed) and dispatch only chooses between neon/scalar.

#if defined(__aarch64__) && defined(__ARM_NEON) && \
    !defined(FAIRCLIQUE_FORCE_SCALAR)
#define FAIRCLIQUE_HAVE_NEON 1

void NeonAnd(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void NeonAndNot(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

void NeonOr(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

inline uint64_t NeonPop128(uint64x2_t v) {
  return vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

uint64_t NeonPopcount(const uint64_t* a, size_t n) {
  uint64_t c = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) c += NeonPop128(vld1q_u64(a + i));
  for (; i < n; ++i) c += static_cast<uint64_t>(__builtin_popcountll(a[i]));
  return c;
}

uint64_t NeonIntersectCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t c = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    c += NeonPop128(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c;
}

bool NeonAny(const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vld1q_u64(a + i);
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

DualCount NeonIntersectIntoDual(uint64_t* dst, const uint64_t* a,
                                const uint64_t* b, const uint64_t* mask,
                                size_t n) {
  DualCount out;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t w = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    vst1q_u64(dst + i, w);
    out.total += NeonPop128(w);
    out.in_mask += NeonPop128(vandq_u64(w, vld1q_u64(mask + i)));
  }
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    dst[i] = w;
    out.total += static_cast<uint64_t>(__builtin_popcountll(w));
    out.in_mask += static_cast<uint64_t>(__builtin_popcountll(w & mask[i]));
  }
  return out;
}

constexpr Kernels kNeon = {
    "neon",  NeonAnd, NeonAndNot,
    NeonOr,  NeonPopcount, NeonIntersectCount,
    NeonAny, NeonIntersectIntoDual,
};
#endif  // aarch64 NEON

// Best variant for this build + CPU (ignoring any override).
const Kernels* DetectKernels() {
#if defined(FAIRCLIQUE_FORCE_SCALAR)
  return &kScalar;
#else
#if defined(FAIRCLIQUE_HAVE_NEON)
  return &kNeon;
#endif
#if defined(__x86_64__) || defined(_M_X64)
  if (const Kernels* avx2 = Avx2Kernels()) {
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
      return avx2;
    }
  }
#endif
  return &kScalar;
#endif
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels& Scalar() { return kScalar; }

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign first-use race: DetectKernels is deterministic, so concurrent
    // initializers store the same pointer.
    k = DetectKernels();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

const char* ActiveName() { return Active().name; }

std::vector<std::string> SupportedKernels() {
  std::vector<std::string> names{"scalar"};
  const Kernels* best = DetectKernels();
  if (best != &kScalar) names.push_back(best->name);
  return names;
}

bool SetKernelOverride(const char* name) {
  if (name == nullptr || std::strcmp(name, "auto") == 0) {
    g_active.store(DetectKernels(), std::memory_order_release);
    return true;
  }
  if (std::strcmp(name, "scalar") == 0) {
    g_active.store(&kScalar, std::memory_order_release);
    return true;
  }
  const Kernels* best = DetectKernels();
  if (best != &kScalar && std::strcmp(name, best->name) == 0) {
    g_active.store(best, std::memory_order_release);
    return true;
  }
  return false;
}

}  // namespace simd
}  // namespace fairclique
