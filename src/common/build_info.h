#ifndef FAIRCLIQUE_COMMON_BUILD_INFO_H_
#define FAIRCLIQUE_COMMON_BUILD_INFO_H_

/// Compile-time provenance and process uptime, surfaced by `stats`,
/// `metrics` (the fc_build_info gauge), `health`, and crash postmortems.
/// The version string is `git describe` captured by CMake at configure
/// time; the build type comes from CMAKE_BUILD_TYPE. All accessors return
/// pointers to static storage and are async-signal-safe.

#include <cstdint>

namespace fairclique {

/// git describe --always --dirty at configure time, or "unversioned" when
/// the source tree was not a git checkout.
const char* BuildVersion();

/// CMake build type ("Release", "Debug", ...), or "unspecified".
const char* BuildType();

/// Compiler identification (__VERSION__).
const char* BuildCompiler();

/// Microseconds since this process's static initialization — effectively
/// process start for anything that links this library.
int64_t ProcessUptimeMicros();
int64_t ProcessUptimeSeconds();

}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_BUILD_INFO_H_
