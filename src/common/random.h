#ifndef FAIRCLIQUE_COMMON_RANDOM_H_
#define FAIRCLIQUE_COMMON_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fairclique {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). All randomized code in the library draws from this type so
/// that every test, generator and benchmark is reproducible from a single
/// 64-bit seed across platforms (unlike std::mt19937 + std::uniform_*, whose
/// distributions are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct values from [0, n) in O(count) expected time.
  /// Returned values are in no particular order.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t count);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_RANDOM_H_
