#ifndef FAIRCLIQUE_COMMON_BITSET_SIMD_H_
#define FAIRCLIQUE_COMMON_BITSET_SIMD_H_

/// Runtime-dispatched word-array kernels behind Bitset and the branch
/// engines' blocked adjacency arenas.
///
/// Every kernel operates on raw uint64_t word arrays (no bit-size concept:
/// callers own tail-word hygiene). Three variants exist:
///
///   scalar — portable reference, always available; also the differential
///            baseline the fuzz tests and bench_micro compare against.
///   avx2   — x86-64 with AVX2+POPCNT, selected at runtime via cpuid;
///            bitwise ops on 256-bit lanes, popcounts via the vpshufb
///            nibble-LUT + psadbw reduction.
///   neon   — aarch64 (NEON is baseline there): 128-bit lanes, vcntq_u8.
///
/// Dispatch is one relaxed atomic pointer load, resolved on first use. The
/// inline wrappers below skip the indirect call entirely for tiny operands
/// (< kDispatchMinWords), where the loop body beats the call overhead.
///
/// Building with -DFAIRCLIQUE_FORCE_SCALAR=ON (CMake option, CI matrix leg)
/// pins the scalar variant and compiles no vector ISA at all, so both code
/// paths stay green. Tests force a specific variant with SetKernelOverride.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fairclique {
namespace simd {

/// Result of the fused candidate-row intersection: total set bits of the
/// intersection and how many of them also fall inside `mask`. The branch
/// kernel derives both per-attribute counts from one pass (attribute B is
/// total - in_mask, since every vertex carries exactly one attribute).
struct DualCount {
  uint64_t total = 0;
  uint64_t in_mask = 0;
};

/// One kernel variant: a table of function pointers over word arrays.
struct Kernels {
  const char* name;  // "scalar" | "avx2" | "neon"
  void (*and_inplace)(uint64_t* a, const uint64_t* b, size_t n);
  void (*andnot_inplace)(uint64_t* a, const uint64_t* b, size_t n);
  void (*or_inplace)(uint64_t* a, const uint64_t* b, size_t n);
  uint64_t (*popcount)(const uint64_t* a, size_t n);
  uint64_t (*intersect_count)(const uint64_t* a, const uint64_t* b, size_t n);
  bool (*any)(const uint64_t* a, size_t n);
  /// dst[i] = a[i] & b[i] for i in [0, n); returns {popcount(dst),
  /// popcount(dst & mask)}. dst may alias a (not b or mask).
  DualCount (*intersect_into_dual)(uint64_t* dst, const uint64_t* a,
                                   const uint64_t* b, const uint64_t* mask,
                                   size_t n);
};

/// The portable reference variant (always available).
const Kernels& Scalar();

/// The dispatched variant: the best the CPU supports, unless pinned by
/// FAIRCLIQUE_FORCE_SCALAR or SetKernelOverride.
const Kernels& Active();

/// Name of the dispatched variant ("scalar" / "avx2" / "neon"), surfaced in
/// EXPLAIN plans and `stats` so kernel regressions are visible per query.
const char* ActiveName();

/// Variant names this build+CPU can run, scalar first.
std::vector<std::string> SupportedKernels();

/// Pins dispatch to a named variant ("scalar", "avx2", "neon"); nullptr or
/// "auto" restores CPU-based selection. Returns false (and changes nothing)
/// when the variant is unsupported on this build or CPU. Used by the
/// differential tests and the self-controlled scalar-vs-SIMD benches.
bool SetKernelOverride(const char* name);

/// Defined in bitset_simd_avx2.cc, which is the only TU compiled with
/// -mavx2: returns the AVX2 table, or nullptr when that TU was built
/// without AVX2 support. Callers still must check cpuid before using it.
const Kernels* Avx2Kernels();

/// Word counts below this run the inline scalar loop instead of the
/// dispatched kernel: under 512 bits the indirect call costs more than it
/// saves. (AVX2 processes 4 words per lane; dispatch from 8 words up.)
inline constexpr size_t kDispatchMinWords = 8;

// ------------------------------------------------------------------------
// Inline wrappers: tiny-operand fast path, dispatched kernel beyond.

inline void AndInPlace(uint64_t* a, const uint64_t* b, size_t n) {
  if (n < kDispatchMinWords) {
    for (size_t i = 0; i < n; ++i) a[i] &= b[i];
    return;
  }
  Active().and_inplace(a, b, n);
}

inline void AndNotInPlace(uint64_t* a, const uint64_t* b, size_t n) {
  if (n < kDispatchMinWords) {
    for (size_t i = 0; i < n; ++i) a[i] &= ~b[i];
    return;
  }
  Active().andnot_inplace(a, b, n);
}

inline void OrInPlace(uint64_t* a, const uint64_t* b, size_t n) {
  if (n < kDispatchMinWords) {
    for (size_t i = 0; i < n; ++i) a[i] |= b[i];
    return;
  }
  Active().or_inplace(a, b, n);
}

inline uint64_t Popcount(const uint64_t* a, size_t n) {
  if (n < kDispatchMinWords) {
    uint64_t c = 0;
    for (size_t i = 0; i < n; ++i) {
      c += static_cast<uint64_t>(__builtin_popcountll(a[i]));
    }
    return c;
  }
  return Active().popcount(a, n);
}

inline uint64_t IntersectCount(const uint64_t* a, const uint64_t* b,
                               size_t n) {
  if (n < kDispatchMinWords) {
    uint64_t c = 0;
    for (size_t i = 0; i < n; ++i) {
      c += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
    }
    return c;
  }
  return Active().intersect_count(a, b, n);
}

inline bool Any(const uint64_t* a, size_t n) {
  if (n < kDispatchMinWords) {
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != 0) return true;
    }
    return false;
  }
  return Active().any(a, n);
}

inline DualCount IntersectIntoDual(uint64_t* dst, const uint64_t* a,
                                   const uint64_t* b, const uint64_t* mask,
                                   size_t n) {
  if (n < kDispatchMinWords) {
    DualCount out;
    for (size_t i = 0; i < n; ++i) {
      uint64_t w = a[i] & b[i];
      dst[i] = w;
      out.total += static_cast<uint64_t>(__builtin_popcountll(w));
      out.in_mask += static_cast<uint64_t>(__builtin_popcountll(w & mask[i]));
    }
    return out;
  }
  return Active().intersect_into_dual(dst, a, b, mask, n);
}

}  // namespace simd
}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_BITSET_SIMD_H_
