#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <ctime>

namespace fairclique {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_log_suppressed{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warning" || name == "warn") *out = LogLevel::kWarning;
  else if (name == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

void SetLogSuppressed(bool suppressed) {
  g_log_suppressed.store(suppressed, std::memory_order_relaxed);
}

bool LogSuppressed() {
  return g_log_suppressed.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  ::gmtime_r(&secs, &tm_utc);  // thread-safe, unlike std::gmtime
  // Large enough for the worst case gcc's -Wformat-truncation computes
  // (every %d at full int width), not just the expected 24 characters.
  char stamp[96];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  stream_ << "[" << stamp << " " << LevelName(level) << " " << base << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (!LogSuppressed() &&
      (level_ >= GetLogLevel() || level_ == LogLevel::kFatal)) {
    // One fwrite of the complete line (newline included): POSIX stdio locks
    // per call, so concurrent threads' messages never interleave
    // mid-line — which the old fprintf("%s\n") already guaranteed, but only
    // as long as no message contained a format accident; building the full
    // buffer first also keeps the write atomic if a sanitizer intercepts
    // fprintf into multiple writes.
    std::string msg = stream_.str();
    msg.push_back('\n');
    std::fwrite(msg.data(), 1, msg.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace fairclique
