#ifndef FAIRCLIQUE_COMMON_TIMER_H_
#define FAIRCLIQUE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fairclique {

/// Monotonic wall-clock timer used by the benchmark harnesses and by
/// time-limited search. Started on construction; `Restart()` resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

  /// Microseconds between `earlier`'s start and this timer's start — the
  /// elapsed time `earlier` would have reported at the instant this timer
  /// was (re)started, without another clock read. Negative when this timer
  /// actually started first.
  int64_t StartMicrosSince(const WallTimer& earlier) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               start_ - earlier.start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline for cooperative cancellation of long searches. A non-positive
/// budget means "no limit".
class Deadline {
 public:
  /// Creates a deadline `budget_seconds` from now; <= 0 disables the limit.
  explicit Deadline(double budget_seconds = 0.0)
      : limited_(budget_seconds > 0.0), budget_seconds_(budget_seconds) {}

  bool Expired() const {
    return limited_ && timer_.ElapsedSeconds() > budget_seconds_;
  }

 private:
  bool limited_;
  double budget_seconds_;
  WallTimer timer_;
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_TIMER_H_
