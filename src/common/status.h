#ifndef FAIRCLIQUE_COMMON_STATUS_H_
#define FAIRCLIQUE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace fairclique {

/// A lightweight, RocksDB-style status object used for recoverable errors on
/// all fallible public APIs (primarily IO and input validation). Algorithmic
/// invariant violations use assertions instead; exceptions are not used.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kIOError = 3,
    kCorruption = 4,
    kOutOfRange = 5,
    kAborted = 6,
  };

  /// Default-constructed status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" string, "OK" for success.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kOutOfRange: name = "OutOfRange"; break;
      case Code::kAborted: name = "Aborted"; break;
    }
    if (message_.empty()) return name;
    return name + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define FAIRCLIQUE_RETURN_NOT_OK(expr)          \
  do {                                          \
    ::fairclique::Status _st = (expr);          \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace fairclique

#endif  // FAIRCLIQUE_COMMON_STATUS_H_
