#ifndef FAIRCLIQUE_COMMON_THREAD_ANNOTATIONS_H_
#define FAIRCLIQUE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis support: the annotation macro set plus
/// zero-overhead annotated facades (fc::Mutex, fc::SharedMutex,
/// fc::MutexLock, fc::CondVar) over the std synchronization types.
///
/// Under clang with -Wthread-safety the annotations make the locking
/// discipline a compile-time proof: every read/write of a GUARDED_BY member
/// must happen with its capability held on every path that compiles, and a
/// REQUIRES contract on a helper is checked at every call site. Under any
/// other compiler (the analysis is clang-only) every macro expands to
/// nothing and the wrappers inline to the exact std calls — zero overhead,
/// zero behavior change.
///
/// Repo rule (enforced by tools/lint/fclint.py): raw std::mutex /
/// std::shared_mutex / std::condition_variable / std::lock_guard /
/// std::unique_lock must not appear in src/ outside this header. Lock
/// through fc:: so new state cannot creep in unannotated.
///
/// Known analysis limitations this codebase designs around:
///  - Lambdas do not inherit the enclosing capability set, so condition
///    variables are waited in explicit `while (!pred) cv.Wait(lock);` loops
///    rather than the predicate-lambda overload.
///  - A REQUIRES on a parameter of incomplete type cannot name its members;
///    such helpers call `arg.mu.AssertHeld()` in the body instead.
///  - Functions that unlock/relock a caller-owned lock mid-body carry
///    NO_THREAD_SAFETY_ANALYSIS with a comment explaining the hand-off.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define FC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define FC_THREAD_ANNOTATION__(x)  // no-op on gcc/msvc
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) FC_THREAD_ANNOTATION__(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY FC_THREAD_ANNOTATION__(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) FC_THREAD_ANNOTATION__(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) FC_THREAD_ANNOTATION__(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) FC_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) FC_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) FC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  FC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) FC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  FC_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) FC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  FC_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  FC_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) FC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  FC_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) FC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) FC_THREAD_ANNOTATION__(assert_capability(x))
#endif

#ifndef ASSERT_SHARED_CAPABILITY
#define ASSERT_SHARED_CAPABILITY(x) \
  FC_THREAD_ANNOTATION__(assert_shared_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) FC_THREAD_ANNOTATION__(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS FC_THREAD_ANNOTATION__(no_thread_safety_analysis)
#endif

namespace fc {

class CondVar;
class MutexLock;

/// Annotated exclusive mutex. Same size, layout, and codegen as the
/// std::mutex it wraps; every method inlines to the std call.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Runtime no-op that tells the analysis this thread holds the mutex.
  /// Used where the proof cannot be expressed in the type system (helpers
  /// taking a forward-declared owner type, callbacks invoked under a lock).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Annotated reader/writer mutex over std::shared_mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) { return mu_.try_lock_shared(); }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII scoped lock over fc::Mutex — the one way locks are taken in this
/// codebase. Relockable (clang's documented scoped-capability pattern):
/// Unlock()/Lock() may bracket a region that must run unlocked, and the
/// destructor releases only if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {
    // Exactly what the defaulted destructor would do; spelled out so the
    // RELEASE annotation sits on an ordinary definition.
    if (lock_.owns_lock()) lock_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. around blocking IO); pair with Lock().
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock over fc::SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over fc::SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to fc::MutexLock. Deliberately has no
/// predicate-lambda overload: the analysis cannot see capabilities inside a
/// lambda body, so callers write the explicit
/// `while (!cond) cv.Wait(lock);` loop, which the analysis checks.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, and reacquires before returning.
  /// The capability is held again on return, which is what the (unchanged)
  /// annotation state says — the transient release is invisible to callers.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& rel_time) {
    return cv_.wait_for(lock.lock_, rel_time);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fc

#endif  // FAIRCLIQUE_COMMON_THREAD_ANNOTATIONS_H_
