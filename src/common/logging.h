#ifndef FAIRCLIQUE_COMMON_LOGGING_H_
#define FAIRCLIQUE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fairclique {

/// Log severity levels. kFatal aborts the process after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum severity; messages below it are dropped. Benchmarks
/// raise this to kWarning so tables are not interleaved with chatter.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug" / "info" / "warning" (or "warn") / "error" into `out`.
/// Returns false (leaving `out` untouched) on anything else. Backs the
/// server's --log-level flag.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Emergency mute: while suppressed, every non-fatal message is dropped
/// before reaching stderr (fatal still aborts, silently). The crash handler
/// sets this from inside a fatal-signal handler — an atomic store is
/// async-signal-safe where stdio is not — so its postmortem breadcrumb is
/// the only line other threads can no longer garble.
void SetLogSuppressed(bool suppressed);
bool LogSuppressed();

namespace internal {

/// Stream-style log sink: collects the message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fairclique

#define FC_LOG(level)                                              \
  ::fairclique::internal::LogMessage(::fairclique::LogLevel::level, \
                                     __FILE__, __LINE__)

/// FC_CHECK aborts with a message when `cond` is false, in all build modes.
/// Used for internal invariants whose violation means a library bug.
#define FC_CHECK(cond)                                      \
  if (!(cond))                                              \
  ::fairclique::internal::LogMessage(                       \
      ::fairclique::LogLevel::kFatal, __FILE__, __LINE__)   \
      << "Check failed: " #cond " "

#endif  // FAIRCLIQUE_COMMON_LOGGING_H_
