#ifndef FAIRCLIQUE_BOUNDS_UPPER_BOUNDS_H_
#define FAIRCLIQUE_BOUNDS_UPPER_BOUNDS_H_

#include <cstdint>
#include <string>

#include "graph/coloring.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Optional expensive bound stacked on top of the ubAD group, matching the
/// six MaxRFC configurations evaluated in Table II of the paper.
enum class ExtraBound {
  kNone,                 // ubAD only
  kDegeneracy,           // + ub_triangle (Lemma 10)
  kHIndex,               // + ubh (Lemma 11)
  kColorfulDegeneracy,   // + ubcd (Lemma 12)
  kColorfulHIndex,       // + ubch (Lemma 13)
  kColorfulPath,         // + ubcp (Lemma 14 / Algorithm 4)
};

/// Short human-readable name ("ubAD", "ubAD+ubcp", ...).
std::string ExtraBoundName(ExtraBound extra);

/// Bound configuration for the branch-and-bound search.
struct UpperBoundConfig {
  /// Apply the ubAD group = min(ubs, uba, ubc, ubac, ubeac) at the top level
  /// of every search branch.
  bool use_advanced = true;
  ExtraBound extra = ExtraBound::kNone;
};

/// All bounds below bound MRFC(R, C) — the size of the maximum relative fair
/// clique inside the subgraph G' induced by R ∪ C — for fairness parameter
/// `delta` (they are independent of k; the search compares them against
/// max(2k, |R*|+1)).
///
/// Where the paper's printed lemma is unsound as stated (Lemmas 9, 10, 11,
/// 12, 13 — see DESIGN.md §2.3), the implementation uses the corrected sound
/// form and documents the derivation inline; property tests in
/// tests/upper_bounds_test.cpp verify soundness against an exact oracle.

/// Lemma 5: ubs = |R| + |C| = |V(G')|.
int64_t SizeBound(const AttributedGraph& sub);

/// Lemma 6: the attribute counts cap the total; the delta constraint caps it
/// at 2*min + delta. ubs = min(cnt_a + cnt_b, 2*min(cnt_a, cnt_b) + delta).
int64_t AttributeBound(const AttributedGraph& sub, int delta);

/// Lemma 7: a clique's vertices carry distinct colors, so ubc = #colors.
int64_t ColorBound(const Coloring& coloring);

/// Lemma 8: per-attribute color counts; ubac = min(col_a + col_b,
/// 2*min(col_a, col_b) + delta).
int64_t AttributeColorBound(const AttributedGraph& sub,
                            const Coloring& coloring, int delta);

/// Lemma 9 (sound form): partition colors into a-only/b-only/mixed classes
/// (ca, cb, cm); a fair clique uses at most ca+x colors for a and cb+(cm-x)
/// for b, so ubeac = min(ca+cb+cm, 2*max_x min(ca+x, cb+cm-x) + delta).
int64_t EnhancedAttributeColorBound(const AttributedGraph& sub,
                                    const Coloring& coloring, int delta);

/// Lemma 10 (sound form): a clique of size s forces core numbers >= s-1,
/// hence ub = degeneracy(G') + 1.
int64_t DegeneracyBound(const AttributedGraph& sub);

/// Lemma 11 (sound form): a clique of size s has s vertices of degree >= s-1,
/// hence ub = h(G') + 1.
int64_t HIndexBound(const AttributedGraph& sub);

/// Lemma 12 (sound form): every vertex of a fair clique with minority count m
/// has colorful Dmin >= m-1 inside the clique, so the whole clique lies in
/// the colorful (m-1)-core: m <= colorful_degeneracy + 1 and
/// size <= 2(colorful_degeneracy+1) + delta. Additionally size <=
/// max_v min(Da(v)+Db(v)+2, 2*min(Da,Db)+2+delta) (any clique vertex v
/// bounds it). Returns the min of the two.
int64_t ColorfulDegeneracyBound(const AttributedGraph& sub,
                                const Coloring& coloring, int delta);

/// Lemma 13 (sound form): >= m-1 vertices have colorful Dmin >= m-1, so
/// m <= colorful_h_index + 1; combined with the per-vertex bound as in
/// ColorfulDegeneracyBound.
int64_t ColorfulHIndexBound(const AttributedGraph& sub,
                            const Coloring& coloring, int delta);

/// Lemma 14 / Algorithm 4: length of the longest path in the DAG oriented by
/// (color, id); colors strictly increase along any such path, and a clique's
/// vertices form one, so this bounds the maximum (fair) clique size. Sound
/// as printed in the paper.
int64_t ColorfulPathBound(const AttributedGraph& sub, const Coloring& coloring);

/// The ubAD group: min(ubs, uba, ubc, ubac, ubeac).
int64_t AdvancedBound(const AttributedGraph& sub, const Coloring& coloring,
                      int delta);

/// Evaluates the configured bound on the induced subgraph `sub` (colored
/// internally). Returns the min over the selected component bounds.
int64_t ComputeUpperBound(const AttributedGraph& sub, int delta,
                          const UpperBoundConfig& config);

}  // namespace fairclique

#endif  // FAIRCLIQUE_BOUNDS_UPPER_BOUNDS_H_
