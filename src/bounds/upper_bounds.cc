#include "bounds/upper_bounds.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/cores.h"
#include "reduction/colorful_core.h"

namespace fairclique {

namespace {

// min(total, 2*min + delta): the universal shape of attribute-capped bounds.
// `lo`/`hi` are the per-attribute capacities available to a fair clique.
int64_t FairCap(int64_t lo, int64_t hi, int delta) {
  if (lo > hi) std::swap(lo, hi);
  return std::min(lo + hi, 2 * lo + delta);
}

// Per-vertex colorful-degree cap: a fair clique containing v has
// cnt(a) <= Da(v)+1 and cnt(b) <= Db(v)+1 (v's own membership contributes
// the +1; its in-clique neighbors of each attribute all carry distinct
// colors).
int64_t PerVertexColorfulCap(const AttrCounts& d, int delta) {
  return FairCap(d.a() + 1, d.b() + 1, delta);
}

}  // namespace

std::string ExtraBoundName(ExtraBound extra) {
  switch (extra) {
    case ExtraBound::kNone: return "ubAD";
    case ExtraBound::kDegeneracy: return "ubAD+ubD";
    case ExtraBound::kHIndex: return "ubAD+ubh";
    case ExtraBound::kColorfulDegeneracy: return "ubAD+ubcd";
    case ExtraBound::kColorfulHIndex: return "ubAD+ubch";
    case ExtraBound::kColorfulPath: return "ubAD+ubcp";
  }
  return "?";
}

int64_t SizeBound(const AttributedGraph& sub) { return sub.num_vertices(); }

int64_t AttributeBound(const AttributedGraph& sub, int delta) {
  AttrCounts cnt = sub.attribute_counts();
  return FairCap(cnt.a(), cnt.b(), delta);
}

int64_t ColorBound(const Coloring& coloring) { return coloring.num_colors; }

int64_t AttributeColorBound(const AttributedGraph& sub,
                            const Coloring& coloring, int delta) {
  // Distinct colors used by each attribute class.
  std::vector<uint8_t> seen[2];
  seen[0].assign(coloring.num_colors, 0);
  seen[1].assign(coloring.num_colors, 0);
  AttrCounts col;
  for (VertexId v = 0; v < sub.num_vertices(); ++v) {
    int ai = AttrIndex(sub.attribute(v));
    ColorId c = coloring.color[v];
    if (!seen[ai][c]) {
      seen[ai][c] = 1;
      col.counts[ai]++;
    }
  }
  return FairCap(col.a(), col.b(), delta);
}

int64_t EnhancedAttributeColorBound(const AttributedGraph& sub,
                                    const Coloring& coloring, int delta) {
  // Classify each color: used by a only / b only / both.
  std::vector<uint8_t> seen[2];
  seen[0].assign(coloring.num_colors, 0);
  seen[1].assign(coloring.num_colors, 0);
  for (VertexId v = 0; v < sub.num_vertices(); ++v) {
    seen[AttrIndex(sub.attribute(v))][coloring.color[v]] = 1;
  }
  int64_t ca = 0, cb = 0, cm = 0;
  for (int c = 0; c < coloring.num_colors; ++c) {
    if (seen[0][c] && seen[1][c]) {
      ++cm;
    } else if (seen[0][c]) {
      ++ca;
    } else if (seen[1][c]) {
      ++cb;
    }
  }
  // A fair clique uses <= ca + x colors on attribute a and <= cb + (cm - x)
  // on b for some split x of the mixed colors; maximize the balanced min.
  int64_t bal = BalancedAssignMin(ca, cb, cm);
  return std::min(ca + cb + cm, 2 * bal + delta);
}

int64_t DegeneracyBound(const AttributedGraph& sub) {
  return static_cast<int64_t>(ComputeCores(sub).degeneracy) + 1;
}

int64_t HIndexBound(const AttributedGraph& sub) {
  return static_cast<int64_t>(GraphHIndex(sub)) + 1;
}

int64_t ColorfulDegeneracyBound(const AttributedGraph& sub,
                                const Coloring& coloring, int delta) {
  ColorfulCoreDecomposition dec = ComputeColorfulCores(sub, coloring);
  int64_t by_degeneracy =
      2 * (static_cast<int64_t>(dec.colorful_degeneracy) + 1) + delta;
  std::vector<AttrCounts> d = ColorfulDegrees(sub, coloring);
  int64_t by_vertex = 0;
  for (VertexId v = 0; v < sub.num_vertices(); ++v) {
    by_vertex = std::max(by_vertex, PerVertexColorfulCap(d[v], delta));
  }
  return std::min(by_degeneracy, by_vertex);
}

int64_t ColorfulHIndexBound(const AttributedGraph& sub,
                            const Coloring& coloring, int delta) {
  std::vector<AttrCounts> d = ColorfulDegrees(sub, coloring);
  std::vector<int64_t> dmin(sub.num_vertices());
  int64_t by_vertex = 0;
  for (VertexId v = 0; v < sub.num_vertices(); ++v) {
    dmin[v] = d[v].Min();
    by_vertex = std::max(by_vertex, PerVertexColorfulCap(d[v], delta));
  }
  int64_t h = HIndexOfValues(dmin);
  return std::min(2 * (h + 1) + delta, by_vertex);
}

int64_t ColorfulPathBound(const AttributedGraph& sub,
                          const Coloring& coloring) {
  const VertexId n = sub.num_vertices();
  if (n == 0) return 0;
  // Total order: (color, id) ascending. Counting sort by color.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint32_t> bucket(coloring.num_colors + 1, 0);
  for (VertexId v = 0; v < n; ++v) bucket[coloring.color[v] + 1]++;
  for (size_t c = 1; c < bucket.size(); ++c) bucket[c] += bucket[c - 1];
  std::vector<VertexId> sorted(n);
  for (VertexId v = 0; v < n; ++v) sorted[bucket[coloring.color[v]]++] = v;
  std::vector<uint32_t> rank(n);
  for (uint32_t i = 0; i < n; ++i) rank[sorted[i]] = i;

  // f(u): longest path in the (color, id)-oriented DAG ending at u. Visiting
  // vertices in rank order is a topological order; every edge goes from the
  // lower-ranked endpoint to the higher-ranked one. Colors strictly increase
  // along paths (equal-color vertices are never adjacent in a proper
  // coloring), so every path is a colorful path (Definition 11).
  std::vector<int64_t> f(n, 1);
  int64_t best = 1;
  for (uint32_t i = 0; i < n; ++i) {
    VertexId u = sorted[i];
    for (VertexId w : sub.neighbors(u)) {
      if (rank[w] < i) {
        f[u] = std::max(f[u], f[w] + 1);
      }
    }
    best = std::max(best, f[u]);
  }
  return best;
}

int64_t AdvancedBound(const AttributedGraph& sub, const Coloring& coloring,
                      int delta) {
  int64_t ub = SizeBound(sub);
  ub = std::min(ub, AttributeBound(sub, delta));
  ub = std::min(ub, ColorBound(coloring));
  ub = std::min(ub, AttributeColorBound(sub, coloring, delta));
  ub = std::min(ub, EnhancedAttributeColorBound(sub, coloring, delta));
  return ub;
}

int64_t ComputeUpperBound(const AttributedGraph& sub, int delta,
                          const UpperBoundConfig& config) {
  if (sub.num_vertices() == 0) return 0;
  Coloring coloring = GreedyColoring(sub);
  int64_t ub = SizeBound(sub);
  if (config.use_advanced) {
    ub = std::min(ub, AdvancedBound(sub, coloring, delta));
  }
  switch (config.extra) {
    case ExtraBound::kNone:
      break;
    case ExtraBound::kDegeneracy:
      ub = std::min(ub, DegeneracyBound(sub));
      break;
    case ExtraBound::kHIndex:
      ub = std::min(ub, HIndexBound(sub));
      break;
    case ExtraBound::kColorfulDegeneracy:
      ub = std::min(ub, ColorfulDegeneracyBound(sub, coloring, delta));
      break;
    case ExtraBound::kColorfulHIndex:
      ub = std::min(ub, ColorfulHIndexBound(sub, coloring, delta));
      break;
    case ExtraBound::kColorfulPath:
      ub = std::min(ub, ColorfulPathBound(sub, coloring));
      break;
  }
  return ub;
}

}  // namespace fairclique
