#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/logging.h"

namespace fairclique {
namespace obs {

std::atomic<bool> g_enabled{true};

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

namespace {

/// Bucket index of a sample: 0 for v <= 0, else bit_width(v) clamped into
/// the table. Bucket i therefore spans [2^(i-1), 2^i).
size_t BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  size_t width = static_cast<size_t>(
      std::bit_width(static_cast<uint64_t>(value)));
  return std::min(width, Histogram::kBuckets - 1);
}

/// Inclusive upper bound of bucket i (the `le` label).
int64_t BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 63) return INT64_MAX;
  return (int64_t{1} << index) - 1;
}

}  // namespace

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// fclint: hot-path-begin(histogram_record)
void Histogram::Record(int64_t value) {
  if (!Enabled()) return;
  Shard& shard = shards_[internal::ThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}
// fclint: hot-path-end

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t counts[kBuckets] = {};
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  size_t last = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.count += counts[i];
    if (counts[i] > 0) last = i;
  }
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.buckets.reserve(last + 1);
  for (size_t i = 0; i <= last; ++i) {
    snap.buckets.push_back({BucketUpperBound(i), counts[i]});
  }
  return snap;
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-quantile sample, 1-based ("nearest rank" definition).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (const Bucket& bucket : buckets) {
    cumulative += bucket.count;
    if (cumulative >= rank) {
      // The top bucket's nominal bound can exceed anything recorded; the
      // exact max is tighter and costs nothing.
      return std::min(bucket.le, max);
    }
  }
  return max;
}

void MetricsSnapshot::AddCounter(const std::string& name,
                                 const std::string& help, uint64_t value) {
  MetricSnapshot m;
  m.name = name;
  m.help = help;
  m.kind = MetricSnapshot::Kind::kCounter;
  m.counter_value = value;
  metrics.push_back(std::move(m));
}

void MetricsSnapshot::AddGauge(const std::string& name,
                               const std::string& help, int64_t value) {
  MetricSnapshot m;
  m.name = name;
  m.help = help;
  m.kind = MetricSnapshot::Kind::kGauge;
  m.gauge_value = value;
  metrics.push_back(std::move(m));
}

void MetricsSnapshot::AddLabeledGauge(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels,
                                      int64_t value) {
  MetricSnapshot m;
  m.name = name;
  m.help = help;
  m.labels = labels;
  m.kind = MetricSnapshot::Kind::kGauge;
  m.gauge_value = value;
  metrics.push_back(std::move(m));
}

namespace {

/// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  char buf[160];
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + EscapeHelp(m.help) + "\n";
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + m.name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(m.counter_value));
        out += m.name + m.labels + " " + buf + "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + m.name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(m.gauge_value));
        out += m.name + m.labels + " " + buf + "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + m.name + " histogram\n";
        uint64_t cumulative = 0;
        for (const HistogramSnapshot::Bucket& b : m.histogram.buckets) {
          cumulative += b.count;
          std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%lld\"} %llu\n",
                        m.name.c_str(), static_cast<long long>(b.le),
                        static_cast<unsigned long long>(cumulative));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %llu\n",
                      m.name.c_str(),
                      static_cast<unsigned long long>(m.histogram.count));
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_sum %lld\n", m.name.c_str(),
                      static_cast<long long>(m.histogram.sum));
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_count %llu\n", m.name.c_str(),
                      static_cast<unsigned long long>(m.histogram.count));
        out += buf;
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

MetricRegistry& MetricRegistry::Default() {
  // Leaked on purpose: instruments resolved from it are recorded into by
  // arbitrary threads (including detached ones) until process exit, so the
  // registry must never run a destructor.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help) {
  fc::MutexLock lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.kind = MetricSnapshot::Kind::kCounter;
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
  }
  FC_CHECK(entry.kind == MetricSnapshot::Kind::kCounter)
      << "metric '" << name << "' already registered with another kind";
  if (entry.help.empty()) entry.help = help;
  return entry.counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help) {
  fc::MutexLock lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.kind = MetricSnapshot::Kind::kGauge;
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
  }
  FC_CHECK(entry.kind == MetricSnapshot::Kind::kGauge)
      << "metric '" << name << "' already registered with another kind";
  if (entry.help.empty()) entry.help = help;
  return entry.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help) {
  fc::MutexLock lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.kind = MetricSnapshot::Kind::kHistogram;
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>();
  }
  FC_CHECK(entry.kind == MetricSnapshot::Kind::kHistogram)
      << "metric '" << name << "' already registered with another kind";
  if (entry.help.empty()) entry.help = help;
  return entry.histogram.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  fc::MutexLock lock(mu_);
  snap.metrics.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot m;
    m.name = name;
    m.help = entry.help;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        m.counter_value = entry.counter->Value();
        break;
      case MetricSnapshot::Kind::kGauge:
        m.gauge_value = entry.gauge->Value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        m.histogram = entry.histogram->Snapshot();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

Histogram* QueryQueueWaitHistogram() {
  static Histogram* h = MetricRegistry::Default().GetHistogram(
      "fc_query_queue_wait_micros",
      "Admission-queue wait per queued query, microseconds");
  return h;
}

Histogram* QueryRunHistogram() {
  static Histogram* h = MetricRegistry::Default().GetHistogram(
      "fc_query_run_micros",
      "Service time per query (cache probe + search), microseconds");
  return h;
}

Histogram* QueryPrepareHistogram() {
  static Histogram* h = MetricRegistry::Default().GetHistogram(
      "fc_query_prepare_micros",
      "Prepared-plan stage per non-cached query (cache probe or "
      "Reduce+Decompose build), microseconds");
  return h;
}

Histogram* QueryBranchHistogram() {
  static Histogram* h = MetricRegistry::Default().GetHistogram(
      "fc_query_branch_micros",
      "Branch stage wall time per searched query, microseconds");
  return h;
}

Histogram* WalFsyncHistogram() {
  static Histogram* h = MetricRegistry::Default().GetHistogram(
      "fc_wal_fsync_micros", "fsync latency per durable append, microseconds");
  return h;
}

Histogram* WalGroupFramesHistogram() {
  static Histogram* h = MetricRegistry::Default().GetHistogram(
      "fc_wal_group_frames", "WAL frames settled per group commit fsync");
  return h;
}

Counter* WalBytesWrittenCounter() {
  static Counter* c = MetricRegistry::Default().GetCounter(
      "fc_wal_bytes_written_total", "Bytes appended to WAL files");
  return c;
}

}  // namespace obs
}  // namespace fairclique
