#include "obs/crash_handler.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__GLIBC__)
#include <execinfo.h>
#define FAIRCLIQUE_HAVE_BACKTRACE 1
#endif

#include "common/build_info.h"
#include "common/bitset_simd.h"
#include "common/logging.h"
#include "obs/event_journal.h"
#include "obs/progress.h"

namespace fairclique {
namespace obs {
namespace {

// ------------------------------------------------------------------
// Install-time state. The handler itself may only read plain/atomic
// fields from here — never the std::string.

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE};
constexpr size_t kNumSignals = sizeof(kSignals) / sizeof(kSignals[0]);

std::atomic<bool> g_installed{false};
std::atomic<int> g_in_handler{0};
int g_dirfd = -1;
char g_filename[64] = {0};
std::string g_dir_for_reporting;  // CrashFilePath() only, never the handler
size_t g_journal_events = 64;
struct sigaction g_old_actions[kNumSignals];

/// Pre-reserved postmortem buffer: large enough for the fixed sections
/// plus kCrashRenderMax journal events and kCrashContextGraphs graphs.
constexpr size_t kBufBytes = 256 * 1024;
char g_buf[kBufBytes];

// ------------------------------------------------------------------
// Per-graph epoch/WAL table. Lock-free: a slot is claimed once with a CAS
// and then only its payload words change, so the handler's reads are
// bounded-stale but never torn (name bytes are written exactly once while
// the slot is claimed).

struct GraphSlot {
  std::atomic<uint32_t> state{0};  // 0 empty, 1 claiming, 2 published
  std::atomic<char> name[24] = {};
  std::atomic<uint64_t> version{0};
  std::atomic<uint64_t> fingerprint{0};
  std::atomic<uint64_t> wal_records{0};
};
GraphSlot g_graphs[kCrashContextGraphs];

bool SlotNameEquals(const GraphSlot& slot, const char* name) {
  size_t i = 0;
  for (; i < sizeof(slot.name) - 1 && name[i] != '\0'; ++i) {
    if (slot.name[i].load(std::memory_order_relaxed) != name[i]) return false;
  }
  if (i == sizeof(slot.name) - 1) return true;  // both truncated-equal
  return slot.name[i].load(std::memory_order_relaxed) == '\0';
}

GraphSlot* FindSlot(const char* name) {
  for (GraphSlot& slot : g_graphs) {
    if (slot.state.load(std::memory_order_acquire) == 2 &&
        SlotNameEquals(slot, name)) {
      return &slot;
    }
  }
  return nullptr;
}

GraphSlot* FindOrClaimSlot(const char* name) {
  GraphSlot* found = FindSlot(name);
  if (found != nullptr) return found;
  for (GraphSlot& slot : g_graphs) {
    uint32_t expected = 0;
    if (slot.state.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel)) {
      size_t i = 0;
      for (; i < sizeof(slot.name) - 1 && name[i] != '\0'; ++i) {
        slot.name[i].store(name[i], std::memory_order_relaxed);
      }
      slot.name[i].store('\0', std::memory_order_relaxed);
      slot.state.store(2, std::memory_order_release);
      return &slot;
    }
  }
  return nullptr;  // table full — journal events still cover this graph
}

// ------------------------------------------------------------------
// Async-signal-safe formatting into g_buf.

size_t Append(size_t pos, const char* s) {
  while (*s != '\0' && pos < kBufBytes - 1) g_buf[pos++] = *s++;
  return pos;
}

size_t AppendDec(size_t pos, uint64_t v) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos < kBufBytes - 1) g_buf[pos++] = tmp[--n];
  return pos;
}

size_t AppendDecSigned(size_t pos, int64_t v) {
  if (v < 0) {
    if (pos < kBufBytes - 1) g_buf[pos++] = '-';
    return AppendDec(pos, static_cast<uint64_t>(-v));
  }
  return AppendDec(pos, static_cast<uint64_t>(v));
}

size_t AppendHex(size_t pos, uint64_t v) {
  static const char kHex[] = "0123456789abcdef";
  pos = Append(pos, "0x");
  char tmp[16];
  size_t n = 0;
  do {
    tmp[n++] = kHex[v & 0xf];
    v >>= 4;
  } while (v != 0);
  while (n > 0 && pos < kBufBytes - 1) g_buf[pos++] = tmp[--n];
  return pos;
}

/// Quoted string with JSON-hostile bytes flattened to '?'.
size_t AppendQuoted(size_t pos, const char* s) {
  if (pos < kBufBytes - 1) g_buf[pos++] = '"';
  for (const char* p = s; *p != '\0' && pos < kBufBytes - 1; ++p) {
    char ch = *p;
    if (ch == '"' || ch == '\\' || static_cast<unsigned char>(ch) < 0x20) {
      ch = '?';
    }
    g_buf[pos++] = ch;
  }
  if (pos < kBufBytes - 1) g_buf[pos++] = '"';
  return pos;
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
  }
  return "SIG?";
}

void WriteAllFd(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void RestoreAndReraise(int sig) {
  signal(sig, SIG_DFL);
  raise(sig);
}

// fclint: signal-safe-begin
// Everything from here to the matching end marker runs inside a fatal
// signal handler: no allocation, no stdio, no blocking lock acquisition.
// tools/lint/fclint.py enforces the allowlist on every commit.
void CrashSignalHandler(int sig, siginfo_t* info, void* /*ucontext*/) {
  // A crash inside the handler (or a second faulting thread) must not
  // recurse or interleave: first one in wins, everyone else re-raises.
  if (g_in_handler.exchange(1, std::memory_order_acq_rel) != 0) {
    RestoreAndReraise(sig);
    return;
  }
  // Mute ordinary logging so the postmortem pointer below is the last
  // coherent stderr line even while other threads keep running.
  SetLogSuppressed(true);
  EventJournal::Default().Record(EventType::kCrashSignal,
                                 static_cast<uint64_t>(sig));

  size_t pos = 0;
  pos = Append(pos, "{\"signal\":");
  pos = AppendQuoted(pos, SignalName(sig));
  pos = Append(pos, ",\"signo\":");
  pos = AppendDec(pos, static_cast<uint64_t>(sig));
  pos = Append(pos, ",\"fault_addr\":\"");
  pos = AppendHex(pos, info != nullptr
                           ? reinterpret_cast<uint64_t>(info->si_addr)
                           : 0);
  pos = Append(pos, "\"");
  pos = Append(pos, ",\"pid\":");
  pos = AppendDec(pos, static_cast<uint64_t>(::getpid()));
  pos = Append(pos, ",\"uptime_seconds\":");
  pos = AppendDecSigned(pos, ProcessUptimeSeconds());
  pos = Append(pos, ",\"build\":{\"version\":");
  pos = AppendQuoted(pos, BuildVersion());
  pos = Append(pos, ",\"type\":");
  pos = AppendQuoted(pos, BuildType());
  pos = Append(pos, ",\"compiler\":");
  pos = AppendQuoted(pos, BuildCompiler());
  pos = Append(pos, "},\"simd_kernel\":");
  pos = AppendQuoted(pos, simd::ActiveName());

  pos = Append(pos, ",\"graphs\":[");
  bool first = true;
  for (const GraphSlot& slot : g_graphs) {
    if (slot.state.load(std::memory_order_acquire) != 2) continue;
    char name[sizeof(slot.name)];
    for (size_t i = 0; i < sizeof(name); ++i) {
      name[i] = slot.name[i].load(std::memory_order_relaxed);
    }
    name[sizeof(name) - 1] = '\0';
    if (!first) pos = Append(pos, ",");
    first = false;
    pos = Append(pos, "{\"name\":");
    pos = AppendQuoted(pos, name);
    pos = Append(pos, ",\"version\":");
    pos = AppendDec(pos, slot.version.load(std::memory_order_relaxed));
    pos = Append(pos, ",\"fingerprint\":\"");
    pos = AppendHex(pos, slot.fingerprint.load(std::memory_order_relaxed));
    pos = Append(pos, "\"");
    pos = Append(pos, ",\"wal_records\":");
    pos = AppendDec(pos, slot.wal_records.load(std::memory_order_relaxed));
    pos = Append(pos, "}");
  }
  pos = Append(pos, "]");

  CrashQueryRow rows[32];
  bool lock_acquired = false;
  size_t nrows = ProgressRegistry::Default().SnapshotForCrash(
      rows, sizeof(rows) / sizeof(rows[0]), &lock_acquired);
  pos = Append(pos, ",\"inflight_lock\":");
  pos = AppendQuoted(pos, lock_acquired ? "acquired" : "busy");
  pos = Append(pos, ",\"inflight_queries\":[");
  for (size_t i = 0; i < nrows; ++i) {
    if (i > 0) pos = Append(pos, ",");
    pos = Append(pos, "{\"trace_id\":");
    pos = AppendDec(pos, rows[i].trace_id);
    pos = Append(pos, ",\"graph\":");
    pos = AppendQuoted(pos, rows[i].graph);
    pos = Append(pos, ",\"nodes\":");
    pos = AppendDec(pos, rows[i].nodes);
    pos = Append(pos, ",\"incumbent\":");
    pos = AppendDecSigned(pos, rows[i].incumbent_size);
    pos = Append(pos, ",\"upper_bound\":");
    pos = AppendDecSigned(pos, rows[i].upper_bound);
    pos = Append(pos, ",\"components_done\":");
    pos = AppendDec(pos, rows[i].components_done);
    pos = Append(pos, ",\"components_total\":");
    pos = AppendDec(pos, rows[i].components_total);
    pos = Append(pos, ",\"elapsed_micros\":");
    pos = AppendDecSigned(pos, rows[i].elapsed_micros);
    pos = Append(pos, "}");
  }
  pos = Append(pos, "]");

  pos = Append(pos, ",\"backtrace\":[");
#if FAIRCLIQUE_HAVE_BACKTRACE
  void* frames[64];
  int nframes = backtrace(frames, 64);
  for (int i = 0; i < nframes; ++i) {
    if (i > 0) pos = Append(pos, ",");
    if (pos < kBufBytes - 1) g_buf[pos++] = '"';
    pos = AppendHex(pos, reinterpret_cast<uint64_t>(frames[i]));
    if (pos < kBufBytes - 1) g_buf[pos++] = '"';
  }
#endif
  pos = Append(pos, "]");

  pos = Append(pos, ",\"journal\":");
  if (pos < kBufBytes - 1) {
    pos += EventJournal::Default().RenderLastTo(g_buf + pos, kBufBytes - 1 - pos,
                                               g_journal_events);
  }
  pos = Append(pos, "}\n");

  int fd = ::openat(g_dirfd, g_filename, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    WriteAllFd(fd, g_buf, pos);
    ::fsync(fd);
    ::close(fd);
  }

  // One terse breadcrumb on stderr, written directly (stdio is off-limits
  // here and suppressed anyway).
  char note[160];
  size_t npos = 0;
  const char* head = "fairclique: fatal signal ";
  while (*head && npos < sizeof(note) - 1) note[npos++] = *head++;
  const char* sname = SignalName(sig);
  while (*sname && npos < sizeof(note) - 1) note[npos++] = *sname++;
  const char* mid = ", postmortem: ";
  while (*mid && npos < sizeof(note) - 1) note[npos++] = *mid++;
  const char* fname = g_filename;
  while (*fname && npos < sizeof(note) - 1) note[npos++] = *fname++;
  if (npos < sizeof(note)) note[npos++] = '\n';
  WriteAllFd(2, note, npos);

  RestoreAndReraise(sig);
}
// fclint: signal-safe-end

}  // namespace

bool InstallCrashHandler(const CrashHandlerOptions& options) {
  int dirfd = ::open(options.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) {
    FC_LOG(kError) << "crash handler: cannot open postmortem directory '"
                   << options.dir << "': " << std::strerror(errno);
    return false;
  }
  if (g_dirfd >= 0) ::close(g_dirfd);
  g_dirfd = dirfd;
  g_dir_for_reporting = options.dir;
  g_journal_events = options.journal_events;
  std::snprintf(g_filename, sizeof(g_filename), "crash-%d.json",
                static_cast<int>(::getpid()));

#if FAIRCLIQUE_HAVE_BACKTRACE
  // glibc's backtrace lazily loads libgcc on first use, which may
  // allocate; warm it now so the in-handler call is allocation-free.
  void* warm[4];
  backtrace(warm, 4);
#endif
  // Same for the lazily resolved SIMD dispatch name.
  (void)simd::ActiveName();

  if (!g_installed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = &CrashSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_SIGINFO;
    for (size_t i = 0; i < kNumSignals; ++i) {
      if (sigaction(kSignals[i], &action, &g_old_actions[i]) != 0) {
        FC_LOG(kError) << "crash handler: sigaction(" << kSignals[i]
                       << ") failed: " << std::strerror(errno);
      }
    }
  }
  FC_LOG(kInfo) << "crash handler armed: " << CrashFilePath();
  return true;
}

bool CrashHandlerInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

std::string CrashFilePath() {
  if (!CrashHandlerInstalled() && g_dirfd < 0) return "";
  if (g_dir_for_reporting.empty()) return g_filename;
  return g_dir_for_reporting + "/" + g_filename;
}

void NoteGraphEpoch(const std::string& name, uint64_t version,
                    uint64_t fingerprint) {
  GraphSlot* slot = FindOrClaimSlot(name.c_str());
  if (slot == nullptr) return;
  slot->version.store(version, std::memory_order_relaxed);
  slot->fingerprint.store(fingerprint, std::memory_order_relaxed);
}

void NoteGraphWalRecords(const std::string& name, uint64_t records) {
  GraphSlot* slot = FindOrClaimSlot(name.c_str());
  if (slot == nullptr) return;
  slot->wal_records.store(records, std::memory_order_relaxed);
}

void ForgetGraphEpoch(const std::string& name) {
  GraphSlot* slot = FindSlot(name.c_str());
  if (slot == nullptr) return;
  slot->version.store(0, std::memory_order_relaxed);
  slot->fingerprint.store(0, std::memory_order_relaxed);
  slot->wal_records.store(0, std::memory_order_relaxed);
  // Keep the name claimed: freeing and re-claiming slots concurrently
  // would allow torn names; a table of ever-seen graphs is bounded by
  // kCrashContextGraphs anyway.
}

void ResetCrashContextForTesting() {
  for (GraphSlot& slot : g_graphs) {
    slot.state.store(0, std::memory_order_relaxed);
    for (auto& ch : slot.name) ch.store('\0', std::memory_order_relaxed);
    slot.version.store(0, std::memory_order_relaxed);
    slot.fingerprint.store(0, std::memory_order_relaxed);
    slot.wal_records.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace fairclique
