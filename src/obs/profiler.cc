#include "obs/profiler.h"

#include <algorithm>

#include "common/thread_annotations.h"

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define FAIRCLIQUE_PROFILER_HAVE_SIGPROF 1
#include <signal.h>
#include <sys/time.h>
#endif

namespace fairclique {
namespace obs {

namespace {

/// Deepest tag stack a sample retains; deeper scopes still push/pop
/// correctly, the sample just truncates to the outermost kMaxDepth tags.
constexpr uint32_t kMaxDepth = 16;

/// Folded-stack table capacity (power of two). The tag vocabulary is a
/// couple dozen static names, so distinct stacks number in the dozens —
/// 1024 slots means saturation only on pathological misuse, and `dropped`
/// reports it honestly when it happens.
constexpr size_t kTableSlots = 1024;
constexpr size_t kMaxProbes = 32;

/// Per-thread scope-tag stack. The only writers are the owning thread
/// (ProfileScope) and the SIGPROF handler *running on that same thread*, so
/// plain program order plus signal fences is enough; the atomics exist to
/// make the accesses well-defined and TSan-visible.
struct TlsState {
  std::atomic<const char*> frames[kMaxDepth] = {};
  std::atomic<uint32_t> depth{0};
};

thread_local TlsState* g_tls = nullptr;

struct TlsHolder {
  TlsState state;
  TlsHolder() { g_tls = &state; }
  // Null the raw pointer before the state dies with the thread, so a
  // SIGPROF delivered during thread teardown cannot touch freed TLS.
  ~TlsHolder() { g_tls = nullptr; }
};

TlsState* EnsureTls() {
  thread_local TlsHolder holder;
  return &holder.state;
}

/// One folded stack and its sample count. `hash` is claimed by CAS (0 =
/// empty); `depth` is published with release only after the frames are
/// written, so a reader that sees depth != 0 sees a complete stack.
struct TableSlot {
  std::atomic<uint64_t> hash{0};
  std::atomic<const char*> frames[kMaxDepth] = {};
  std::atomic<uint32_t> depth{0};
  std::atomic<uint64_t> count{0};
};

TableSlot g_table[kTableSlots];
std::atomic<uint64_t> g_samples{0};
std::atomic<uint64_t> g_dropped{0};
/// The handler's kill switch: checked first, so a stopped profiler costs a
/// stray late signal exactly one relaxed load.
std::atomic<bool> g_profiling{false};
int g_hz = 0;
fc::Mutex g_control_mu;  // serializes Start/Stop/Reset (never the handler)

uint64_t HashStack(const char* const* frames, uint32_t n) {
  // FNV-1a over the frame pointer values (tags are interned literals, so
  // pointer identity is stack identity).
  uint64_t h = 1469598103934665603ull;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t p = reinterpret_cast<uint64_t>(frames[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (p >> (b * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h == 0 ? 1 : h;
}

/// Folds one sample into the table. Async-signal-safe: lock-free atomics
/// only, no allocation, no errno.
void RecordStack(const char* const* frames, uint32_t n) {
  static const char* const kOther = "other";
  if (n == 0) {
    frames = &kOther;
    n = 1;
  }
  if (n > kMaxDepth) n = kMaxDepth;
  const uint64_t hash = HashStack(frames, n);
  const size_t mask = kTableSlots - 1;
  for (size_t probe = 0; probe < kMaxProbes; ++probe) {
    TableSlot& slot = g_table[(hash + probe) & mask];
    uint64_t h = slot.hash.load(std::memory_order_acquire);
    if (h == 0) {
      if (slot.hash.compare_exchange_strong(h, hash,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        for (uint32_t i = 0; i < n; ++i) {
          slot.frames[i].store(frames[i], std::memory_order_relaxed);
        }
        slot.depth.store(n, std::memory_order_release);
        slot.count.fetch_add(1, std::memory_order_relaxed);
        g_samples.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Lost the claim; h now holds the winner's hash — fall through.
    }
    if (h == hash) {
      // Same folded stack (a 64-bit collision between the few dozen
      // distinct tag stacks is beyond negligible).
      slot.count.fetch_add(1, std::memory_order_relaxed);
      g_samples.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  g_dropped.fetch_add(1, std::memory_order_relaxed);
}

/// Samples the calling thread's live tag stack (the handler body, also
/// reused verbatim by TestingSampleNow).
void SampleCurrentThread() {
  const char* stack[kMaxDepth];
  uint32_t n = 0;
  if (TlsState* t = g_tls) {
    uint32_t d = t->depth.load(std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_acquire);
    if (d > kMaxDepth) d = kMaxDepth;
    for (uint32_t i = 0; i < d; ++i) {
      const char* f = t->frames[i].load(std::memory_order_relaxed);
      if (f != nullptr) stack[n++] = f;
    }
  }
  RecordStack(stack, n);
}

#ifdef FAIRCLIQUE_PROFILER_HAVE_SIGPROF
void SigprofHandler(int) {
  if (!g_profiling.load(std::memory_order_relaxed)) return;
  SampleCurrentThread();
}
#endif

}  // namespace

ProfileScope::ProfileScope(const char* name) {
  if (!Enabled()) return;  // the global obs kill switch covers scopes too
  TlsState* t = EnsureTls();
  uint32_t d = t->depth.load(std::memory_order_relaxed);
  if (d < kMaxDepth) {
    t->frames[d].store(name, std::memory_order_relaxed);
  }
  // The frame must be visible before the depth that exposes it — to the
  // signal handler on this same thread, so a compiler fence suffices.
  std::atomic_signal_fence(std::memory_order_release);
  t->depth.store(d + 1, std::memory_order_relaxed);
  tls_ = t;
}

ProfileScope::~ProfileScope() {
  if (tls_ == nullptr) return;
  TlsState* t = static_cast<TlsState*>(tls_);
  uint32_t d = t->depth.load(std::memory_order_relaxed);
  if (d > 0) t->depth.store(d - 1, std::memory_order_relaxed);
}

Profiler& Profiler::Default() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

bool Profiler::Start(int hz) {
  fc::MutexLock lock(g_control_mu);
  if (g_profiling.load(std::memory_order_relaxed)) return false;
  if (hz > 0) {
#ifdef FAIRCLIQUE_PROFILER_HAVE_SIGPROF
    struct sigaction sa = {};
    sa.sa_handler = &SigprofHandler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;
    g_profiling.store(true, std::memory_order_relaxed);
    const long interval_usec = std::max(1000000L / hz, 1L);
    struct itimerval timer = {};
    timer.it_interval.tv_sec = interval_usec / 1000000;
    timer.it_interval.tv_usec = interval_usec % 1000000;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
      g_profiling.store(false, std::memory_order_relaxed);
      return false;
    }
#else
    return false;  // no SIGPROF on this platform; hz <= 0 still works
#endif
  } else {
    g_profiling.store(true, std::memory_order_relaxed);
  }
  g_hz = hz;
  return true;
}

bool Profiler::Stop() {
  fc::MutexLock lock(g_control_mu);
  if (!g_profiling.load(std::memory_order_relaxed)) return false;
#ifdef FAIRCLIQUE_PROFILER_HAVE_SIGPROF
  if (g_hz > 0) {
    struct itimerval timer = {};  // zero = disarm
    setitimer(ITIMER_PROF, &timer, nullptr);
  }
#endif
  // The handler stays installed but bails on this flag, so a signal already
  // in flight when the timer disarmed is harmless.
  g_profiling.store(false, std::memory_order_relaxed);
  g_hz = 0;
  return true;
}

bool Profiler::running() const {
  return g_profiling.load(std::memory_order_relaxed);
}

int Profiler::hz() const {
  fc::MutexLock lock(g_control_mu);
  return g_hz;
}

uint64_t Profiler::samples() const {
  return g_samples.load(std::memory_order_relaxed);
}

uint64_t Profiler::dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

size_t Profiler::stacks() const {
  size_t n = 0;
  for (const TableSlot& slot : g_table) {
    if (slot.depth.load(std::memory_order_acquire) != 0) ++n;
  }
  return n;
}

std::string Profiler::DumpFolded() const {
  std::vector<std::string> lines;
  for (const TableSlot& slot : g_table) {
    const uint32_t depth = slot.depth.load(std::memory_order_acquire);
    if (depth == 0) continue;  // empty, or a claim whose frames are in flight
    const uint64_t count = slot.count.load(std::memory_order_relaxed);
    std::string line;
    for (uint32_t i = 0; i < depth; ++i) {
      if (i > 0) line.push_back(';');
      line += slot.frames[i].load(std::memory_order_relaxed);
    }
    line.push_back(' ');
    line += std::to_string(count);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

bool Profiler::Reset() {
  fc::MutexLock lock(g_control_mu);
  if (g_profiling.load(std::memory_order_relaxed)) return false;
  for (TableSlot& slot : g_table) {
    slot.depth.store(0, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
    slot.hash.store(0, std::memory_order_release);
  }
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  return true;
}

void Profiler::TestingRecordSample(const std::vector<const char*>& frames) {
  RecordStack(frames.data(), static_cast<uint32_t>(frames.size()));
}

void Profiler::TestingSampleNow() { SampleCurrentThread(); }

}  // namespace obs
}  // namespace fairclique
