#include "obs/event_journal.h"

#include <time.h>

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace fairclique {
namespace obs {
namespace {

/// Round-robin shard assignment at first record from each thread. The
/// journal keeps its own assignment (rather than reusing the metrics
/// shards) so its shard count can differ and so a thread's ordinal can be
/// stamped into events for per-thread-order tests.
uint32_t JournalShard() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % EventJournal::kShards;
  return shard;
}

int64_t WallMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

// ------------------------------------------------------------------
// Async-signal-safe append helpers: every function writes into buf at
// pos, bounded by cap, and returns the new pos. No allocation, no
// locale-dependent formatting.

size_t AppendRaw(char* buf, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

size_t AppendDec(char* buf, size_t cap, size_t pos, uint64_t v) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos < cap) buf[pos++] = tmp[--n];
  return pos;
}

size_t AppendDecSigned(char* buf, size_t cap, size_t pos, int64_t v) {
  if (v < 0) {
    if (pos < cap) buf[pos++] = '-';
    return AppendDec(buf, cap, pos, static_cast<uint64_t>(-v));
  }
  return AppendDec(buf, cap, pos, static_cast<uint64_t>(v));
}

/// Label bytes with anything JSON-hostile flattened to '?'. Crash-path
/// output favours robustness over fidelity; the non-signal Json() path
/// does real escaping.
size_t AppendLabelSafe(char* buf, size_t cap, size_t pos, const char* label) {
  for (const char* p = label; *p != '\0' && pos < cap; ++p) {
    char ch = *p;
    if (ch == '"' || ch == '\\' || static_cast<unsigned char>(ch) < 0x20) {
      ch = '?';
    }
    buf[pos++] = ch;
  }
  return pos;
}

size_t AppendEvent(char* buf, size_t cap, size_t pos, const Event& e) {
  pos = AppendRaw(buf, cap, pos, "{\"seq\":");
  pos = AppendDec(buf, cap, pos, e.seq);
  pos = AppendRaw(buf, cap, pos, ",\"t_micros\":");
  pos = AppendDecSigned(buf, cap, pos, e.micros);
  pos = AppendRaw(buf, cap, pos, ",\"thread\":");
  pos = AppendDec(buf, cap, pos, e.thread);
  pos = AppendRaw(buf, cap, pos, ",\"type\":\"");
  pos = AppendRaw(buf, cap, pos, EventTypeName(e.type));
  pos = AppendRaw(buf, cap, pos, "\",\"a\":");
  pos = AppendDec(buf, cap, pos, e.a);
  pos = AppendRaw(buf, cap, pos, ",\"b\":");
  pos = AppendDec(buf, cap, pos, e.b);
  pos = AppendRaw(buf, cap, pos, ",\"c\":");
  pos = AppendDec(buf, cap, pos, e.c);
  if (e.label[0] != '\0') {
    pos = AppendRaw(buf, cap, pos, ",\"label\":\"");
    pos = AppendLabelSafe(buf, cap, pos, e.label);
    pos = AppendRaw(buf, cap, pos, "\"");
  }
  pos = AppendRaw(buf, cap, pos, "}");
  return pos;
}

void EscapeJson(const char* s, std::string* out) {
  for (const char* p = s; *p != '\0'; ++p) {
    char ch = *p;
    if (ch == '"' || ch == '\\') {
      out->push_back('\\');
      out->push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      static const char kHex[] = "0123456789abcdef";
      out->append("\\u00");
      out->push_back(kHex[(ch >> 4) & 0xf]);
      out->push_back(kHex[ch & 0xf]);
    } else {
      out->push_back(ch);
    }
  }
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kQueryAdmit: return "query_admit";
    case EventType::kQueryReject: return "query_reject";
    case EventType::kQueryExpire: return "query_expire";
    case EventType::kQueryStart: return "query_start";
    case EventType::kQueryFinish: return "query_finish";
    case EventType::kTaskBegin: return "task_begin";
    case EventType::kTaskEnd: return "task_end";
    case EventType::kWalAppend: return "wal_append";
    case EventType::kWalFsync: return "wal_fsync";
    case EventType::kWalGroupCommit: return "wal_group_commit";
    case EventType::kSnapshotWrite: return "snapshot_write";
    case EventType::kEpochReplace: return "epoch_replace";
    case EventType::kGraphLoad: return "graph_load";
    case EventType::kGraphEvict: return "graph_evict";
    case EventType::kRecoveryStep: return "recovery_step";
    case EventType::kCacheEvict: return "cache_evict";
    case EventType::kEngineDecision: return "engine_decision";
    case EventType::kWatchdogStall: return "watchdog_stall";
    case EventType::kWatchdogFsync: return "watchdog_fsync_stall";
    case EventType::kWatchdogQueue: return "watchdog_queue_stall";
    case EventType::kCrashSignal: return "crash_signal";
    case EventType::kMaxEventType: break;
  }
  return "unknown";
}

EventJournal& EventJournal::Default() {
  static EventJournal* journal = new EventJournal();
  return *journal;
}

EventJournal::EventJournal(size_t capacity_per_shard)
    : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  for (Shard& shard : shards_) shard.slots.reset(new Slot[capacity_]);
}

void EventJournal::ResizeForStartup(size_t capacity_per_shard) {
  capacity_ = capacity_per_shard == 0 ? 1 : capacity_per_shard;
  next_seq_.store(1, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    shard.cursor.store(0, std::memory_order_relaxed);
    shard.slots.reset(new Slot[capacity_]);
  }
}

// fclint: hot-path-begin(event_journal_record)
// Record sits on every served query and inside the WAL commit path; it must
// stay allocation-free and lock-free (tools/lint/fclint.py enforces this).
void EventJournal::Record(EventType type, uint64_t a, uint64_t b, uint64_t c,
                          const char* label) {
  if (!Enabled()) return;
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t shard_idx = JournalShard();
  Shard& shard = shards_[shard_idx];
  const uint64_t ordinal =
      shard.cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = shard.slots[ordinal % capacity_];
  // Invalidate first so a drainer racing the overwrite sees "empty", then
  // publish the new seq last with release.
  slot.seq.store(0, std::memory_order_release);
  slot.micros.store(WallMicros(), std::memory_order_relaxed);
  slot.thread.store(shard_idx, std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  size_t i = 0;
  if (label != nullptr) {
    for (; i < kLabelBytes - 1 && label[i] != '\0'; ++i) {
      slot.label[i].store(label[i], std::memory_order_relaxed);
    }
  }
  slot.label[i].store('\0', std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}
// fclint: hot-path-end

bool EventJournal::ReadSlot(const Slot& slot, Event* out) {
  const uint64_t seq = slot.seq.load(std::memory_order_acquire);
  if (seq == 0) return false;
  out->seq = seq;
  out->micros = slot.micros.load(std::memory_order_relaxed);
  out->thread = slot.thread.load(std::memory_order_relaxed);
  uint8_t type = slot.type.load(std::memory_order_relaxed);
  out->type = type < static_cast<uint8_t>(EventType::kMaxEventType)
                  ? static_cast<EventType>(type)
                  : EventType::kMaxEventType;
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  out->c = slot.c.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kLabelBytes; ++i) {
    out->label[i] = slot.label[i].load(std::memory_order_relaxed);
  }
  out->label[kLabelBytes - 1] = '\0';
  // If a writer reclaimed the slot while we were reading, the payload may
  // be torn — detectable because seq moved (or was zeroed).
  return slot.seq.load(std::memory_order_acquire) == seq;
}

std::vector<Event> EventJournal::Snapshot(size_t last_n) const {
  std::vector<Event> out;
  out.reserve(kShards * capacity_);
  Event e;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ReadSlot(shard.slots[i], &e)) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  if (last_n > 0 && out.size() > last_n) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(last_n));
  }
  return out;
}

std::string EventJournal::Json(size_t last_n) const {
  std::vector<Event> events = Snapshot(last_n);
  std::string out = "[";
  char buf[192];
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) out.push_back(',');
    size_t pos = 0;
    pos = AppendRaw(buf, sizeof(buf), pos, "{\"seq\":");
    pos = AppendDec(buf, sizeof(buf), pos, e.seq);
    pos = AppendRaw(buf, sizeof(buf), pos, ",\"t_micros\":");
    pos = AppendDecSigned(buf, sizeof(buf), pos, e.micros);
    pos = AppendRaw(buf, sizeof(buf), pos, ",\"thread\":");
    pos = AppendDec(buf, sizeof(buf), pos, e.thread);
    pos = AppendRaw(buf, sizeof(buf), pos, ",\"type\":\"");
    pos = AppendRaw(buf, sizeof(buf), pos, EventTypeName(e.type));
    pos = AppendRaw(buf, sizeof(buf), pos, "\",\"a\":");
    pos = AppendDec(buf, sizeof(buf), pos, e.a);
    pos = AppendRaw(buf, sizeof(buf), pos, ",\"b\":");
    pos = AppendDec(buf, sizeof(buf), pos, e.b);
    pos = AppendRaw(buf, sizeof(buf), pos, ",\"c\":");
    pos = AppendDec(buf, sizeof(buf), pos, e.c);
    out.append(buf, pos);
    if (e.label[0] != '\0') {
      out.append(",\"label\":\"");
      EscapeJson(e.label, &out);
      out.push_back('"');
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

size_t EventJournal::RenderLastTo(char* buf, size_t cap, size_t last_n) const {
  if (cap == 0) return 0;
  if (last_n > kCrashRenderMax) last_n = kCrashRenderMax;
  // Fixed-size selection of the newest `last_n` events, kept sorted
  // ascending by seq. O(slots * last_n) worst case — acceptable on the
  // crash path, and no allocation.
  static_assert(EventJournal::kCrashRenderMax <= 128, "stack budget");
  Event picked[kCrashRenderMax];
  size_t count = 0;
  Event e;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (!ReadSlot(shard.slots[i], &e)) continue;
      if (count == last_n) {
        if (last_n == 0 || e.seq <= picked[0].seq) continue;
        // Evict the oldest (slot 0), then insert in order below.
        std::memmove(&picked[0], &picked[1], (last_n - 1) * sizeof(Event));
        --count;
      }
      size_t at = count;
      while (at > 0 && picked[at - 1].seq > e.seq) {
        picked[at] = picked[at - 1];
        --at;
      }
      picked[at] = e;
      ++count;
    }
  }
  size_t pos = 0;
  pos = AppendRaw(buf, cap, pos, "[");
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) pos = AppendRaw(buf, cap, pos, ",");
    pos = AppendEvent(buf, cap, pos, picked[i]);
  }
  pos = AppendRaw(buf, cap, pos, "]");
  return pos;
}

}  // namespace obs
}  // namespace fairclique
