#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace fairclique {
namespace obs {
namespace {

Counter* SweepCounter() {
  static Counter* c = MetricRegistry::Default().GetCounter(
      "fc_watchdog_sweeps_total", "watchdog sweeps completed");
  return c;
}
Counter* StalledQueryCounter() {
  static Counter* c = MetricRegistry::Default().GetCounter(
      "fc_watchdog_stalled_queries_total",
      "queries flagged stuck (no progress advance)");
  return c;
}
Counter* FsyncStallCounter() {
  static Counter* c = MetricRegistry::Default().GetCounter(
      "fc_watchdog_fsync_stalls_total",
      "sweep windows whose mean WAL fsync latency exceeded the stall bound");
  return c;
}
Counter* QueueStallCounter() {
  static Counter* c = MetricRegistry::Default().GetCounter(
      "fc_watchdog_queue_stalls_total",
      "episodes of a backed-up admission queue with zero serves");
  return c;
}
Gauge* StuckNowGauge() {
  static Gauge* g = MetricRegistry::Default().GetGauge(
      "fc_watchdog_stuck_queries", "queries currently flagged stuck");
  return g;
}

}  // namespace

Watchdog::Watchdog(const WatchdogOptions& options, ProgressRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry : &ProgressRegistry::Default()) {
  // Intern the instruments now so they are on the scrape page from the
  // first export, not the first incident.
  SweepCounter();
  StalledQueryCounter();
  FsyncStallCounter();
  QueueStallCounter();
  StuckNowGauge();
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::SetExecutorSampler(
    std::function<WatchdogExecutorSample()> sampler) {
  sampler_ = std::move(sampler);
}

void Watchdog::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&Watchdog::Loop, this);
}

void Watchdog::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    fc::MutexLock lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Loop() {
  while (true) {
    {
      // Explicit predicate loop (not a wait_for-with-lambda): sleep out the
      // interval, but leave as soon as Stop() flips the flag. Spurious or
      // notified wakeups just re-check the clock.
      fc::MutexLock lock(wake_mu_);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.interval_micros);
      while (!stop_.load(std::memory_order_relaxed)) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        wake_cv_.WaitFor(lock, deadline - now);
      }
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    SweepOnce();
  }
}

void Watchdog::SweepOnce() {
  fc::MutexLock lock(mu_);
  stats_.sweeps++;
  SweepCounter()->Increment();

  // --- stuck queries: deadline blown or no node advance for too long.
  std::vector<ProgressSnapshot> inflight = registry_->List();
  std::set<uint64_t> seen;
  uint64_t stuck_now = 0;
  for (const ProgressSnapshot& s : inflight) {
    seen.insert(s.trace_id);
    auto [it, inserted] = tracks_.emplace(s.trace_id, QueryTrack{});
    QueryTrack& track = it->second;
    if (inserted) {
      track.nodes = s.nodes;
      // A query first seen with zero published nodes has never advanced:
      // measure its stall from Branch entry, so a long-frozen query is
      // flagged on the very first sweep that sees it.
      track.last_advance_elapsed = s.nodes == 0 ? 0 : s.elapsed_micros;
    } else if (s.nodes != track.nodes) {
      track.nodes = s.nodes;
      track.last_advance_elapsed = s.elapsed_micros;
      track.flagged = false;
    }
    const int64_t frozen_for = s.elapsed_micros - track.last_advance_elapsed;
    // Stuck if frozen past the configured bound, or — the tighter check —
    // past its own deadline with no advance for at least one sweep: a
    // healthy search would have noticed the deadline at its next
    // 1024-node progress tick.
    const bool past_deadline = s.deadline_micros > 0 &&
                               s.elapsed_micros > s.deadline_micros &&
                               frozen_for >= options_.interval_micros;
    const bool stuck = frozen_for >= options_.stall_after_micros ||
                       past_deadline;
    if (stuck) ++stuck_now;
    if (stuck && !track.flagged) {
      track.flagged = true;
      stats_.stalled_queries++;
      StalledQueryCounter()->Increment();
      EventJournal::Default().Record(EventType::kWatchdogStall, s.trace_id,
                                     s.nodes,
                                     static_cast<uint64_t>(frozen_for),
                                     s.graph.c_str());
      // The one-shot diagnostic dump: everything an operator needs to
      // decide whether to wait, evict the graph, or take a profile.
      FC_LOG(kWarning) << "watchdog: query trace_id=" << s.trace_id
                       << " graph=" << s.graph << " options=[" << s.options
                       << "] appears stuck: no progress for "
                       << frozen_for / 1000 << " ms (elapsed "
                       << s.elapsed_micros / 1000 << " ms, nodes=" << s.nodes
                       << ", incumbent=" << s.incumbent_size << ", bound="
                       << s.upper_bound << ", components " << s.components_done
                       << "/" << s.components_total << ")";
    }
  }
  for (auto it = tracks_.begin(); it != tracks_.end();) {
    it = seen.count(it->first) ? std::next(it) : tracks_.erase(it);
  }
  stats_.currently_stuck = stuck_now;
  StuckNowGauge()->Set(static_cast<int64_t>(stuck_now));

  // --- fsync stalls: mean WAL fsync latency over this sweep's window.
  HistogramSnapshot fsync = WalFsyncHistogram()->Snapshot();
  const uint64_t dcount = fsync.count - last_fsync_count_;
  const int64_t dsum = fsync.sum - last_fsync_sum_;
  last_fsync_count_ = fsync.count;
  last_fsync_sum_ = fsync.sum;
  if (dcount > 0) {
    const int64_t mean = dsum / static_cast<int64_t>(dcount);
    stats_.last_fsync_mean_micros = mean;
    if (mean >= options_.fsync_stall_micros) {
      stats_.fsync_stalls++;
      FsyncStallCounter()->Increment();
      EventJournal::Default().Record(EventType::kWatchdogFsync,
                                     static_cast<uint64_t>(mean), dcount);
      FC_LOG(kWarning) << "watchdog: WAL fsync stall: mean " << mean
                       << " us over " << dcount << " fsyncs this sweep";
    }
  }

  // --- admission-queue stalls and the rolling deadline-miss rate.
  if (sampler_) {
    WatchdogExecutorSample sample = sampler_();
    if (have_exec_sample_) {
      if (sample.queue_depth > 0 && sample.served == last_exec_.served) {
        queue_frozen_sweeps_++;
        if (queue_frozen_sweeps_ == options_.queue_stall_sweeps) {
          stats_.queue_stalls++;
          QueueStallCounter()->Increment();
          EventJournal::Default().Record(EventType::kWatchdogQueue,
                                         sample.queue_depth,
                                         queue_frozen_sweeps_);
          FC_LOG(kWarning) << "watchdog: admission queue stalled: depth "
                           << sample.queue_depth << " with no serves for "
                           << queue_frozen_sweeps_ << " sweeps";
        }
      } else {
        queue_frozen_sweeps_ = 0;
      }
    }
    stats_.queue_stalled_now =
        queue_frozen_sweeps_ >= options_.queue_stall_sweeps;
    have_exec_sample_ = true;
    last_exec_ = sample;

    miss_window_.push_back(sample);
    while (miss_window_.size() > options_.miss_rate_window_sweeps &&
           miss_window_.size() > 1) {
      miss_window_.pop_front();
    }
    const WatchdogExecutorSample& oldest = miss_window_.front();
    const uint64_t served_delta = sample.served - oldest.served;
    const uint64_t miss_delta = sample.deadline_misses - oldest.deadline_misses;
    stats_.deadline_miss_rate =
        served_delta > 0
            ? static_cast<double>(miss_delta) / static_cast<double>(served_delta)
            : 0.0;
  }
  stats_.running = running_.load(std::memory_order_relaxed);
}

WatchdogStats Watchdog::stats() const {
  fc::MutexLock lock(mu_);
  WatchdogStats out = stats_;
  out.running = running_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace obs
}  // namespace fairclique
