#ifndef FAIRCLIQUE_OBS_METRICS_H_
#define FAIRCLIQUE_OBS_METRICS_H_

/// Process-wide telemetry instruments: named monotonic counters, gauges, and
/// log-bucketed latency histograms, collected in a MetricRegistry and
/// rendered as Prometheus text exposition. Recording is lock-free —
/// relaxed atomics sharded across cache lines so eight workers hammering the
/// cached-hit fast path do not serialize on one counter word — and costs a
/// handful of nanoseconds per event; all locking (name interning, snapshot
/// assembly) happens off the hot path.
///
/// Instruments are interned by name and live as long as the registry (the
/// default registry lives for the process), so callers resolve a pointer
/// once and record through it forever:
///
///   obs::Histogram* h = obs::MetricRegistry::Default().GetHistogram(
///       "fc_query_run_micros", "query service time");
///   h->Record(elapsed_micros);
///
/// SetEnabled(false) turns every Record/Increment into a near-no-op (one
/// relaxed load) — bench_service uses it to measure the instrumentation
/// overhead itself.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace fairclique {
namespace obs {

/// Global recording switch, default on. Checked by the recording fast paths
/// (and by the trace/slowlog layer); snapshots and rendering ignore it.
extern std::atomic<bool> g_enabled;
inline bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled);

namespace internal {
/// Number of cache-line-padded shards per instrument. Each thread hashes to
/// a fixed shard, so concurrent recorders rarely share a line.
constexpr size_t kShards = 8;
/// This thread's shard index (assigned round-robin at first use).
size_t ThreadShard();
}  // namespace internal

/// Monotonic counter. Increment is wait-free; Value sums the shards.
class Counter {
 public:
  // fclint: hot-path-begin(counter_increment)
  void Increment(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  // fclint: hot-path-end
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[internal::kShards];
};

/// Last-write-wins instantaneous value (queue depths, entry counts).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram. Buckets are NON-cumulative here;
/// RenderPrometheus accumulates them into the exposition format's running
/// `le` counts.
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;  // exact largest recorded value (not a bucket bound)
  struct Bucket {
    int64_t le = 0;  // inclusive upper bound of this bucket
    uint64_t count = 0;
  };
  std::vector<Bucket> buckets;  // ascending le; trailing empty buckets cut

  /// Bucket-resolution quantile estimate in [p50, p99]: the upper bound of
  /// the bucket containing the rank, i.e. within 2x of the true value
  /// (buckets are powers of two). Returns 0 on an empty histogram.
  int64_t Quantile(double q) const;
};

/// Log-bucketed histogram of non-negative integer samples (microseconds,
/// group sizes, byte counts). Bucket i holds values with bit-width i:
/// [2^(i-1), 2^i), so p50/p95/p99 are derivable within 2x at any scale from
/// sub-microsecond cache hits to multi-second cold searches — the right
/// trade for a service whose latencies span seven orders of magnitude.
class Histogram {
 public:
  /// Number of buckets: values up to 2^46 us (~2.2 years) resolve exactly;
  /// anything larger clamps into the last bucket.
  static constexpr size_t kBuckets = 48;

  void Record(int64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<int64_t> sum{0};
  };
  Shard shards_[internal::kShards];
  std::atomic<int64_t> max_{0};
};

/// One rendered metric in a snapshot.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  /// Optional pre-rendered label set ('{key="value",...}'), appended
  /// verbatim after the name in the exposition — used for info-style
  /// metrics like fc_build_info whose value is constant 1 and whose
  /// payload lives in the labels. Empty for ordinary metrics.
  std::string labels;
  Kind kind = Kind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// All metrics at one instant, name-sorted. Service-level exporters append
/// their own counter structs (executor, caches, storage) to this before
/// rendering, so scrape output is one consistent page.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  void AddCounter(const std::string& name, const std::string& help,
                  uint64_t value);
  void AddGauge(const std::string& name, const std::string& help,
                int64_t value);
  /// Gauge carrying a pre-rendered '{key="value",...}' label set (see
  /// MetricSnapshot::labels). Values must already be exposition-escaped.
  void AddLabeledGauge(const std::string& name, const std::string& help,
                       const std::string& labels, int64_t value);
};

/// Prometheus text exposition (version 0.0.4): # HELP / # TYPE preamble per
/// family, histogram buckets cumulative with a trailing le="+Inf", and a
/// final "# EOF" line so line-oriented consumers can find the end.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Thread-safe name -> instrument map. Get* interns on first use and
/// returns a pointer that stays valid for the registry's lifetime; a name
/// re-requested as a different kind is a programming error (FC_CHECK).
class MetricRegistry {
 public:
  /// The process-wide registry (never destroyed).
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable fc::Mutex mu_;
  std::map<std::string, Entry> metrics_ GUARDED_BY(mu_);
};

// ------------------------------------------------- standard instruments
//
// Instruments shared across layers (the executor records them, the
// telemetry exporter guarantees they appear on the scrape page even before
// the first sample). Each accessor interns into the default registry once.

Histogram* QueryQueueWaitHistogram();  // fc_query_queue_wait_micros
Histogram* QueryRunHistogram();        // fc_query_run_micros
Histogram* QueryPrepareHistogram();    // fc_query_prepare_micros
Histogram* QueryBranchHistogram();     // fc_query_branch_micros
Histogram* WalFsyncHistogram();        // fc_wal_fsync_micros
Histogram* WalGroupFramesHistogram();  // fc_wal_group_frames
Counter* WalBytesWrittenCounter();     // fc_wal_bytes_written_total

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_METRICS_H_
