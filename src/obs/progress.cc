#include "obs/progress.h"

#include <algorithm>
#include <utility>

namespace fairclique {
namespace obs {

QueryProgress::QueryProgress(uint64_t trace_id, std::string graph,
                             std::string options, uint64_t components_total)
    : trace_id_(trace_id),
      graph_(std::move(graph)),
      options_(std::move(options)),
      components_total_(components_total) {}

ProgressSnapshot QueryProgress::Snapshot() const {
  ProgressSnapshot s;
  s.trace_id = trace_id_;
  s.graph = graph_;
  s.options = options_;
  s.nodes = nodes_.load(std::memory_order_relaxed);
  s.incumbent_size = incumbent_.load(std::memory_order_relaxed);
  s.upper_bound = upper_bound_.load(std::memory_order_relaxed);
  s.components_done = components_done_.load(std::memory_order_relaxed);
  s.components_total = components_total_;
  s.elapsed_micros = started_.ElapsedMicros();
  s.deadline_micros = deadline_micros_.load(std::memory_order_relaxed);
  return s;
}

void QueryProgress::FillCrashRow(CrashQueryRow* row) const {
  row->trace_id = trace_id_;
  size_t n = graph_.size();
  if (n > sizeof(row->graph) - 1) n = sizeof(row->graph) - 1;
  for (size_t i = 0; i < n; ++i) row->graph[i] = graph_[i];
  row->graph[n] = '\0';
  row->nodes = nodes_.load(std::memory_order_relaxed);
  row->incumbent_size = incumbent_.load(std::memory_order_relaxed);
  row->upper_bound = upper_bound_.load(std::memory_order_relaxed);
  row->components_done = components_done_.load(std::memory_order_relaxed);
  row->components_total = components_total_;
  row->elapsed_micros = started_.ElapsedMicros();
}

void ProgressRegistration::Reset() {
  if (registry_ != nullptr && progress_ != nullptr) {
    registry_->Unregister(progress_->trace_id());
  }
  registry_ = nullptr;
  progress_.reset();
}

ProgressRegistry& ProgressRegistry::Default() {
  static ProgressRegistry* registry = new ProgressRegistry();
  return *registry;
}

std::shared_ptr<QueryProgress> ProgressRegistry::Register(
    uint64_t trace_id, std::string graph, std::string options,
    uint64_t components_total) {
  auto progress = std::make_shared<QueryProgress>(
      trace_id, std::move(graph), std::move(options), components_total);
  fc::MutexLock lock(mu_);
  inflight_[trace_id] = progress;
  return progress;
}

ProgressRegistration ProgressRegistry::RegisterScoped(
    uint64_t trace_id, std::string graph, std::string options,
    uint64_t components_total) {
  return ProgressRegistration(
      this, Register(trace_id, std::move(graph), std::move(options),
                     components_total));
}

void ProgressRegistry::Unregister(uint64_t trace_id) {
  fc::MutexLock lock(mu_);
  inflight_.erase(trace_id);
}

std::vector<ProgressSnapshot> ProgressRegistry::List() const {
  std::vector<std::shared_ptr<QueryProgress>> live;
  {
    fc::MutexLock lock(mu_);
    live.reserve(inflight_.size());
    for (const auto& [id, progress] : inflight_) live.push_back(progress);
  }
  // Snapshots are taken outside the lock: each one reads several atomics
  // plus a clock, and a slow scraper must not stall query completion.
  std::vector<ProgressSnapshot> out;
  out.reserve(live.size());
  for (const auto& progress : live) out.push_back(progress->Snapshot());
  return out;
}

size_t ProgressRegistry::size() const {
  fc::MutexLock lock(mu_);
  return inflight_.size();
}

size_t ProgressRegistry::SnapshotForCrash(CrashQueryRow* rows, size_t cap,
                                          bool* lock_acquired) const {
  if (!mu_.TryLock()) {
    *lock_acquired = false;
    return 0;
  }
  *lock_acquired = true;
  size_t count = 0;
  for (const auto& [id, progress] : inflight_) {
    if (count == cap) break;
    progress->FillCrashRow(&rows[count]);
    ++count;
  }
  mu_.Unlock();
  return count;
}

int64_t ProgressRegistry::MaxIncumbentGap() const {
  int64_t gap = 0;
  for (const ProgressSnapshot& s : List()) {
    gap = std::max(gap, std::max<int64_t>(s.upper_bound - s.incumbent_size, 0));
  }
  return gap;
}

}  // namespace obs
}  // namespace fairclique
