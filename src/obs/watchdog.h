#ifndef FAIRCLIQUE_OBS_WATCHDOG_H_
#define FAIRCLIQUE_OBS_WATCHDOG_H_

/// Liveness watchdog: a background thread that sweeps the process every
/// interval and looks for the three ways this service silently wedges —
/// a query past its deadline whose progress counter stopped advancing, a
/// WAL fsync latency stall, and an admission queue that is backed up while
/// nothing gets served. Each detection emits a journal event, bumps an
/// fc_watchdog_* metric, and (for stuck queries) logs a one-shot
/// diagnostic dump so the log has exactly one actionable line per episode
/// instead of one per sweep. The health endpoint reads WatchdogStats for
/// its ok/degraded verdict.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <thread>

#include "common/thread_annotations.h"

namespace fairclique {
namespace obs {

class ProgressRegistry;

struct WatchdogOptions {
  /// Sweep cadence.
  int64_t interval_micros = 1000000;
  /// A query with no node-counter advance for this long (or past its
  /// deadline with no advance since the previous sweep) is stuck.
  int64_t stall_after_micros = 10000000;
  /// Mean fsync latency over a sweep window above this is an fsync stall.
  int64_t fsync_stall_micros = 1000000;
  /// Consecutive sweeps with queued work but zero serves before the
  /// admission queue is declared stalled.
  uint64_t queue_stall_sweeps = 3;
  /// Sweeps in the rolling deadline-miss-rate window.
  size_t miss_rate_window_sweeps = 60;
};

/// Executor liveness sample, provided by the service layer via a callback
/// (obs cannot depend on src/service).
struct WatchdogExecutorSample {
  uint64_t served = 0;
  uint64_t deadline_misses = 0;
  uint64_t queue_depth = 0;
};

struct WatchdogStats {
  bool running = false;
  uint64_t sweeps = 0;
  uint64_t stalled_queries = 0;     // cumulative detections
  uint64_t currently_stuck = 0;     // stuck right now
  uint64_t fsync_stalls = 0;
  uint64_t queue_stalls = 0;
  bool queue_stalled_now = false;
  int64_t last_fsync_mean_micros = 0;  // over the last sweep window
  /// Deadline misses / serves over the rolling window (0 when idle).
  double deadline_miss_rate = 0.0;
};

class Watchdog {
 public:
  /// `registry` defaults to ProgressRegistry::Default() when null.
  explicit Watchdog(const WatchdogOptions& options,
                    ProgressRegistry* registry = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Executor metrics source; optional (queue/miss checks are skipped
  /// without one). Set before Start.
  void SetExecutorSampler(std::function<WatchdogExecutorSample()> sampler);

  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// One synchronous sweep — the unit tests drive detection with this
  /// instead of sleeping through intervals.
  void SweepOnce();

  WatchdogStats stats() const;

 private:
  struct QueryTrack {
    uint64_t nodes = 0;
    /// progress->elapsed at the last time the node counter moved.
    int64_t last_advance_elapsed = 0;
    bool flagged = false;
  };

  void Loop();

  const WatchdogOptions options_;
  ProgressRegistry* const registry_;
  std::function<WatchdogExecutorSample()> sampler_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  fc::Mutex wake_mu_;
  fc::CondVar wake_cv_;

  /// Sweep state: touched only from SweepOnce / the loop thread, guarded
  /// anyway so tests can drive SweepOnce while stats() readers race.
  mutable fc::Mutex mu_;
  std::map<uint64_t, QueryTrack> tracks_ GUARDED_BY(mu_);
  uint64_t last_fsync_count_ GUARDED_BY(mu_) = 0;
  int64_t last_fsync_sum_ GUARDED_BY(mu_) = 0;
  bool have_exec_sample_ GUARDED_BY(mu_) = false;
  WatchdogExecutorSample last_exec_ GUARDED_BY(mu_);
  uint64_t queue_frozen_sweeps_ GUARDED_BY(mu_) = 0;
  std::deque<WatchdogExecutorSample> miss_window_ GUARDED_BY(mu_);
  WatchdogStats stats_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_WATCHDOG_H_
