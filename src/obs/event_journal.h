#ifndef FAIRCLIQUE_OBS_EVENT_JOURNAL_H_
#define FAIRCLIQUE_OBS_EVENT_JOURNAL_H_

/// Black-box flight recorder: a process-wide, fixed-capacity,
/// per-thread-sharded ring buffer of structured binary events. Every layer
/// of the service drops breadcrumbs here — query admission and completion,
/// component task begin/end, WAL appends and fsyncs, epoch replaces, cache
/// evictions, engine decisions, recovery steps — so that when the process
/// wedges or dies the last few thousand things it did can be reconstructed.
///
/// Recording is zero-allocation and lock-free: a global relaxed fetch_add
/// hands out the sequence number (total order across threads), the
/// recording thread's shard hands out a slot, and the slot's fields are
/// plain relaxed atomic stores with the sequence published last (release)
/// so a concurrent drainer never observes a half-written event. Cost is a
/// few tens of nanoseconds per event; `obs::SetEnabled(false)` reduces it
/// to one relaxed load.
///
/// Draining (`Snapshot`, `Json`) allocates and sorts and is meant for the
/// `journal` server command and tests. `RenderLastTo` is the
/// async-signal-safe variant the crash handler uses: no allocation, no
/// locks, no formatted I/O — it walks the rings into a caller-provided
/// buffer from inside a fatal-signal handler.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fairclique {
namespace obs {

enum class EventType : uint8_t {
  kQueryAdmit = 0,    // a = queue depth after admit; label = graph
  kQueryReject,       // a = queue depth at rejection; label = graph
  kQueryExpire,       // a = trace id (expired in queue); label = graph
  kQueryStart,        // a = trace id, b = components, c = seed size
  kQueryFinish,       // a = trace id, b = result size, c = run micros
  kTaskBegin,         // a = trace id, b = component slot, c = vertices
  kTaskEnd,           // a = trace id, b = component slot, c = branch nodes
  kWalAppend,         // a = record version, b = bytes; label = graph
  kWalFsync,          // a = fsync micros, b = bytes synced
  kWalGroupCommit,    // a = frames in group, b = bytes, c = commit micros
  kSnapshotWrite,     // a = graph version, b = bytes; label = graph
  kEpochReplace,      // a = new version, b = delta edges; label = graph
  kGraphLoad,         // a = version, b = vertices, c = edges; label = graph
  kGraphEvict,        // a = last version; label = graph
  kRecoveryStep,      // a = version reached, b = WAL records replayed
  kCacheEvict,        // a = entries evicted, b = 0 result / 1 prepared
  kEngineDecision,    // a = trace id, b = arena bytes; label = engine
  kWatchdogStall,     // a = trace id, b = nodes, c = stalled micros
  kWatchdogFsync,     // a = mean fsync micros over the sweep window
  kWatchdogQueue,     // a = queue depth, b = sweeps without a serve
  kCrashSignal,       // a = signal number
  kMaxEventType,      // sentinel, not recordable
};

/// Stable lowercase name for JSON output ("query_admit", "wal_fsync", ...).
/// Returns a pointer into static storage — async-signal-safe.
const char* EventTypeName(EventType type);

/// One drained journal entry. `seq` is the global total order (1-based,
/// gapless at record time; drained views may have holes where slots were
/// overwritten). `label` is a short context string (graph name, engine
/// name), truncated to fit the fixed slot.
struct Event {
  uint64_t seq = 0;
  int64_t micros = 0;  // wall-clock microseconds since the Unix epoch
  uint32_t thread = 0;  // recording thread's journal shard ordinal
  EventType type = EventType::kMaxEventType;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  char label[24] = {0};
};

class EventJournal {
 public:
  /// Events retained per shard by default (16 shards => 16384 events,
  /// ~1.5 MiB). The `--journal` server flag resizes the default journal at
  /// startup.
  static constexpr size_t kDefaultCapacity = 1024;
  static constexpr size_t kShards = 16;
  static constexpr size_t kLabelBytes = 24;

  /// The process-wide journal (never destroyed).
  static EventJournal& Default();

  explicit EventJournal(size_t capacity_per_shard = kDefaultCapacity);

  /// Records one event. Zero allocation, lock-free, ~50 ns; a near-no-op
  /// when obs::SetEnabled(false). `label` may be null; longer labels are
  /// truncated to kLabelBytes-1.
  void Record(EventType type, uint64_t a = 0, uint64_t b = 0, uint64_t c = 0,
              const char* label = nullptr);

  /// Events still resident in the rings, oldest first (sorted by seq). If
  /// `last_n` > 0, only the newest `last_n` are returned. Safe to call
  /// while recorders run: an event being overwritten mid-read is detected
  /// via its sequence word and dropped.
  std::vector<Event> Snapshot(size_t last_n = 0) const;

  /// Snapshot rendered as a JSON array of event objects, oldest first.
  std::string Json(size_t last_n = 0) const;

  /// Async-signal-safe drain for the crash handler: renders the newest
  /// `last_n` events (capped at kCrashRenderMax) as a JSON array into
  /// `buf`, returns bytes written (no NUL). No allocation, no locks.
  static constexpr size_t kCrashRenderMax = 128;
  size_t RenderLastTo(char* buf, size_t cap, size_t last_n) const;

  /// Total events ever recorded (including ones already overwritten).
  uint64_t recorded() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }

  size_t capacity_per_shard() const { return capacity_; }

  /// Replaces the rings with fresh ones of the given per-shard capacity.
  /// NOT thread-safe: call only at process startup (the server does, from
  /// the --journal flag) or in single-threaded tests, never while
  /// recorders or the crash handler may touch the journal.
  void ResizeForStartup(size_t capacity_per_shard);

 private:
  /// One ring slot. Fields are individually atomic (relaxed) so a racing
  /// drainer is data-race-free; `seq` is the publication word: 0 while a
  /// writer is mid-update, the event's sequence number (release) once the
  /// payload is complete. A reader re-checks `seq` after reading the
  /// payload and discards the slot if it moved.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> micros{0};
    std::atomic<uint32_t> thread{0};
    std::atomic<uint8_t> type{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> c{0};
    std::atomic<char> label[kLabelBytes];
  };
  struct alignas(64) Shard {
    std::atomic<uint64_t> cursor{0};  // next slot ordinal in this shard
    std::unique_ptr<Slot[]> slots;
  };

  /// Reads one slot race-safely. Returns false if the slot is empty or a
  /// writer overwrote it mid-read.
  static bool ReadSlot(const Slot& slot, Event* out);

  size_t capacity_;
  std::atomic<uint64_t> next_seq_{1};
  Shard shards_[kShards];
};

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_EVENT_JOURNAL_H_
