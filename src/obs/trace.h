#ifndef FAIRCLIQUE_OBS_TRACE_H_
#define FAIRCLIQUE_OBS_TRACE_H_

/// Per-query trace spans and the slowlog.
///
/// Every request served by the QueryExecutor gets a process-unique trace id
/// (returned in the wire response). When the query completes, its stage
/// timeline — submit -> admission queue -> result-cache probe ->
/// prepared-plan probe/build -> per-component Branch tasks -> respond — is
/// assembled into a Trace of spans whose times are relative to Submit. Span
/// timestamps are captured on the hot path as plain integers the executor
/// mostly measures anyway; the Trace object itself is only materialized for
/// queries slow enough to enter the slowlog, so the cached-hit fast path
/// pays one atomic id fetch and one lock-free floor probe.
///
/// The slowlog is a fixed-size buffer retaining the N *slowest* completed
/// traces (not the most recent): the eviction victim is always the current
/// fastest entry, so a latency spike stays inspectable long after it
/// happened. `slowlog` / `trace <id>` on the server dump these as JSON.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace fairclique {
namespace obs {

/// One stage of a query's execution. `parent` indexes into Trace::spans
/// (-1 = top level). Top-level spans tile the query's run contiguously, so
/// their durations sum to the response's run_micros (plus the queue span,
/// which precedes the run); child spans (per-component Branch tasks) overlap
/// in wall time when components run on several workers.
struct TraceSpan {
  const char* name = "";  // static string; never freed
  int32_t parent = -1;
  int64_t start_micros = 0;  // relative to Submit
  int64_t duration_micros = 0;
};

/// A completed query's timeline plus the serving flags that explain it.
struct Trace {
  uint64_t id = 0;
  std::string graph;    // registered graph name
  std::string options;  // canonical options key (core/options_key.h)
  int64_t queue_micros = 0;
  int64_t run_micros = 0;
  int64_t total_micros = 0;  // submit -> respond
  bool ok = true;
  bool cache_hit = false;
  bool prepared_hit = false;
  bool incremental = false;
  bool warm_start = false;
  bool deadline_missed = false;
  /// Why the search stopped early: "" | "node_limit" | "time_limit" |
  /// "deadline" (static strings; "deadline" when the request deadline is
  /// what tightened the effective time limit).
  const char* stop_reason = "";
  /// Pre-serialized EXPLAIN plan (service/explain.h) when the request asked
  /// for one; empty otherwise. Stored serialized so the trace layer stays
  /// independent of the plan schema.
  std::string explain_json;
  std::vector<TraceSpan> spans;
};

/// Process-unique trace ids starting at 1, strictly increasing within each
/// thread (ids are handed out in thread-local blocks to keep the shared
/// counter off the per-query hot path, so interleaving across threads does
/// not follow global submission order).
uint64_t NextTraceId();

/// Bounded buffer of the N slowest completed traces, ordered internally as
/// a min-heap on run_micros so admission and eviction are O(log N) under
/// one mutex. `Admits` is the lock-free fast-path probe: once the buffer is
/// full, queries faster than the current floor skip the lock (and the Trace
/// allocation) entirely.
class Slowlog {
 public:
  explicit Slowlog(size_t capacity = kDefaultCapacity);

  static constexpr size_t kDefaultCapacity = 32;

  /// The process-wide slowlog fed by every QueryExecutor.
  static Slowlog& Default();

  /// Would a trace with this run time enter the log right now? Cheap
  /// (one relaxed load) and racy by design: a false positive costs one
  /// Trace allocation that Record then discards, a false negative can only
  /// happen when a concurrent admission raised the floor past this value —
  /// in which case the log holds N traces at least this slow already.
  bool Admits(int64_t run_micros) const {
    return run_micros > floor_micros_.load(std::memory_order_relaxed);
  }

  void Record(std::shared_ptr<const Trace> trace);

  /// The retained traces, slowest first, at most `limit` (0 = all).
  std::vector<std::shared_ptr<const Trace>> Slowest(size_t limit = 0) const;

  /// The retained trace with this id, or nullptr (evicted or never slow
  /// enough to be retained).
  std::shared_ptr<const Trace> Find(uint64_t id) const;

  /// Drops every entry; with `capacity` > 0 also resizes the buffer (the
  /// server's --slowlog flag re-caps the default instance at startup).
  void Reset(size_t capacity = 0);

  size_t size() const;
  size_t capacity() const;

 private:
  void UpdateFloorLocked() REQUIRES(mu_);

  mutable fc::Mutex mu_;
  size_t capacity_ GUARDED_BY(mu_);
  /// Min-heap on run_micros: heap_[0] is the fastest retained trace, i.e.
  /// the eviction victim.
  std::vector<std::shared_ptr<const Trace>> heap_ GUARDED_BY(mu_);
  /// run_micros of heap_[0] when full, -1 while below capacity.
  std::atomic<int64_t> floor_micros_{-1};
};

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_TRACE_H_
