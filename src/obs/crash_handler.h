#ifndef FAIRCLIQUE_OBS_CRASH_HANDLER_H_
#define FAIRCLIQUE_OBS_CRASH_HANDLER_H_

/// Fatal-signal postmortem writer. InstallCrashHandler hooks SIGSEGV,
/// SIGBUS, SIGABRT, and SIGFPE; when one fires, the handler writes a
/// single JSON file `crash-<pid>.json` into the configured directory and
/// re-raises the signal so the process still dies with the original
/// disposition (exit code, core dump).
///
/// Everything the handler touches is async-signal-safe by construction:
/// the directory fd is opened at install time and the file is created with
/// openat(2); the output is rendered into a static pre-reserved buffer
/// with manual integer formatting (no malloc, no stdio); the journal and
/// the per-graph epoch table are lock-free; the in-flight query listing
/// uses try_lock and degrades to "unavailable" rather than deadlocking.
///
/// The postmortem contains: the signal (name, number, fault address), a
/// raw backtrace (glibc backtrace() addresses — symbolize offline with
/// addr2line), build provenance and uptime, the active SIMD kernel
/// variant, per-graph epoch/WAL state, the in-flight queries from
/// ProgressRegistry, and the last N journal events.

#include <cstddef>
#include <cstdint>
#include <string>

namespace fairclique {
namespace obs {

struct CrashHandlerOptions {
  /// Directory the postmortem is written into (the server passes
  /// --data-dir). Must exist.
  std::string dir;
  /// Newest journal events to include (capped at
  /// EventJournal::kCrashRenderMax).
  size_t journal_events = 64;
};

/// Installs the handlers. Returns false (with an error log) when the
/// directory cannot be opened. Safe to call again to re-point at a new
/// directory; handlers are only hooked once.
bool InstallCrashHandler(const CrashHandlerOptions& options);

bool CrashHandlerInstalled();

/// The path the next postmortem will be written to ("" before install).
std::string CrashFilePath();

// ------------------------------------------------------------------
// Crash context: a lock-free table of per-graph epoch/WAL state, updated
// by the registry and storage layers as graphs change, read only by the
// signal handler. Bounded; beyond kCrashContextGraphs graphs the newest
// writers are silently dropped (the journal still has their events).

constexpr size_t kCrashContextGraphs = 32;

/// Publishes (or updates) a graph's current epoch version and fingerprint.
void NoteGraphEpoch(const std::string& name, uint64_t version,
                    uint64_t fingerprint);

/// Updates a graph's count of WAL records appended since its last
/// snapshot publish.
void NoteGraphWalRecords(const std::string& name, uint64_t records);

/// Removes a graph from the table (eviction).
void ForgetGraphEpoch(const std::string& name);

/// Clears the whole table (tests).
void ResetCrashContextForTesting();

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_CRASH_HANDLER_H_
