#include "obs/trace.h"

#include <algorithm>

namespace fairclique {
namespace obs {

uint64_t NextTraceId() {
  // One shared fetch_add per kBlock ids instead of per id: the global
  // counter's cache line would otherwise ping-pong between every serving
  // thread on every query (measurably so on the result-cache-hit path).
  // fetch_add is globally monotonic, so each thread's next block starts
  // past its previous one and per-thread ids stay strictly increasing.
  constexpr uint64_t kBlock = 1024;
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t cursor = 0;
  thread_local uint64_t block_end = 0;
  if (cursor == block_end) {
    cursor = next.fetch_add(kBlock, std::memory_order_relaxed);
    block_end = cursor + kBlock;
  }
  return cursor++;
}

Slowlog::Slowlog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  heap_.reserve(capacity_);
}

Slowlog& Slowlog::Default() {
  // Leaked like the metric registry: executors record into it until exit.
  static Slowlog* slowlog = new Slowlog();
  return *slowlog;
}

namespace {
bool HeapGreater(const std::shared_ptr<const Trace>& a,
                 const std::shared_ptr<const Trace>& b) {
  // std::push_heap with > builds a min-heap on run_micros.
  return a->run_micros > b->run_micros;
}
}  // namespace

void Slowlog::UpdateFloorLocked() {
  floor_micros_.store(
      heap_.size() >= capacity_ ? heap_.front()->run_micros : -1,
      std::memory_order_relaxed);
}

void Slowlog::Record(std::shared_ptr<const Trace> trace) {
  if (trace == nullptr) return;
  fc::MutexLock lock(mu_);
  if (heap_.size() >= capacity_) {
    // Evict the fastest retained trace — strict >, so at a tie the
    // incumbent survives (it was slow first).
    if (trace->run_micros <= heap_.front()->run_micros) return;
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater);
    heap_.pop_back();
  }
  heap_.push_back(std::move(trace));
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater);
  UpdateFloorLocked();
}

std::vector<std::shared_ptr<const Trace>> Slowlog::Slowest(
    size_t limit) const {
  std::vector<std::shared_ptr<const Trace>> out;
  {
    fc::MutexLock lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<const Trace>& a,
               const std::shared_ptr<const Trace>& b) {
              if (a->run_micros != b->run_micros) {
                return a->run_micros > b->run_micros;
              }
              return a->id < b->id;  // deterministic at equal durations
            });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::shared_ptr<const Trace> Slowlog::Find(uint64_t id) const {
  fc::MutexLock lock(mu_);
  for (const auto& trace : heap_) {
    if (trace->id == id) return trace;
  }
  return nullptr;
}

void Slowlog::Reset(size_t capacity) {
  fc::MutexLock lock(mu_);
  if (capacity > 0) capacity_ = capacity;
  heap_.clear();
  heap_.reserve(capacity_);
  floor_micros_.store(-1, std::memory_order_relaxed);
}

size_t Slowlog::size() const {
  fc::MutexLock lock(mu_);
  return heap_.size();
}

size_t Slowlog::capacity() const {
  fc::MutexLock lock(mu_);
  return capacity_;
}

}  // namespace obs
}  // namespace fairclique
