#ifndef FAIRCLIQUE_OBS_PROFILER_H_
#define FAIRCLIQUE_OBS_PROFILER_H_

/// Sampling CPU profiler with flamegraph-compatible folded-stack output.
///
/// The usual backtrace()+symbolization approach cannot name the frames that
/// matter here: the branch kernels are internal-linkage functions inlined
/// into a static -O3 binary. Instead, the code marks its own coarse stages
/// with RAII ProfileScope tags (static string literals: "BranchComponent",
/// "EnColorfulCore", ...) maintained on a per-thread tag stack, and a
/// SIGPROF handler — armed by setitimer(ITIMER_PROF), so samples land on
/// whichever thread is burning CPU — folds the interrupted thread's tag
/// stack into a fixed lock-free table of (stack, count) pairs. `DumpFolded`
/// renders the table as `frame;frame;frame count` lines, the input format
/// of flamegraph.pl / speedscope / inferno.
///
/// Costs: a stopped profiler adds nothing to any path (no timer, the
/// handler bails on one relaxed load). ProfileScope itself is two relaxed
/// TLS stores per scope *entry* — scopes mark per-component / per-stage
/// units, never per-node work — and honors the global obs::SetEnabled kill
/// switch. Everything the handler touches is a lock-free atomic, keeping it
/// async-signal-safe and the cross-thread table reads TSan-clean.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fairclique {
namespace obs {

/// RAII tag marking the current thread as inside `name` until scope exit.
/// `name` must be a string literal (or otherwise outlive the process): the
/// profiler stores the pointer, never a copy.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  void* tls_ = nullptr;  // non-null only when a tag was actually pushed
};

/// The process-wide sampling profiler driven by `profile start|stop|dump`.
class Profiler {
 public:
  static Profiler& Default();

  /// Arms SIGPROF at `hz` samples per second of process CPU time and starts
  /// folding samples. hz <= 0 enables the profiler without arming a timer
  /// (samples then come only from TestingSampleNow — the unit-test mode).
  /// Returns false when already running or when the platform has no
  /// setitimer/SIGPROF.
  bool Start(int hz);

  /// Disarms the timer and stops sampling; the folded table is retained for
  /// DumpFolded. Returns false when not running.
  bool Stop();

  bool running() const;
  int hz() const;

  uint64_t samples() const;  // samples folded into the table
  uint64_t dropped() const;  // samples lost to table saturation
  size_t stacks() const;     // distinct folded stacks retained

  /// The folded table as flamegraph collapse format: one
  /// `frame;frame;frame count` line per distinct stack, sorted, newline-
  /// terminated (empty string when no samples). Safe to call while running.
  std::string DumpFolded() const;

  /// Clears the folded table and the sample counters. Refused (returns
  /// false) while running: the handler may be mid-record on another thread.
  bool Reset();

  /// Test hooks. TestingRecordSample folds an explicit stack (outermost
  /// frame first); TestingSampleNow folds the calling thread's live scope
  /// stack exactly as the signal handler would. Both work without a timer.
  void TestingRecordSample(const std::vector<const char*>& frames);
  void TestingSampleNow();

 private:
  Profiler() = default;
};

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_PROFILER_H_
