#ifndef FAIRCLIQUE_OBS_PROGRESS_H_
#define FAIRCLIQUE_OBS_PROGRESS_H_

/// Live progress of in-flight searches.
///
/// Every query that reaches the Branch stage registers a QueryProgress in
/// the process-wide ProgressRegistry, keyed by its trace id. The branch
/// kernels publish into it with relaxed atomics at the same 1024-node
/// cadence as the deadline check (one predictable branch per kilonode — no
/// new per-node cost), the executor publishes component completions and the
/// live upper bound, and the `ps` server command / Prometheus gauges read
/// point-in-time snapshots. The registry is the seed of the ROADMAP's
/// anytime-queries item: everything an anytime response needs (incumbent,
/// bound, how much work is left) is already flowing through here.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/timer.h"

namespace fairclique {
namespace obs {

/// Point-in-time view of one in-flight query, taken under no lock: the
/// fields are read individually with relaxed loads, so a snapshot racing
/// the search may mix instants a few kilonodes apart — fine for a live
/// listing, never for correctness decisions.
struct ProgressSnapshot {
  uint64_t trace_id = 0;
  std::string graph;    // registered graph name
  std::string options;  // canonical options key
  uint64_t nodes = 0;   // branch nodes expanded (1024-node granularity)
  int64_t incumbent_size = 0;  // best fair clique found so far
  /// Largest size any still-unfinished component could yield (the biggest
  /// unfinished component's vertex count, floored by the incumbent). The
  /// search is provably done improving when upper_bound == incumbent_size.
  int64_t upper_bound = 0;
  uint64_t components_done = 0;
  uint64_t components_total = 0;
  int64_t elapsed_micros = 0;  // since the query entered the Branch stage
  int64_t deadline_micros = 0;  // total budget; 0 = none
};

/// The mutable progress record the search publishes into. All mutators are
/// relaxed atomics, safe to call from any component worker concurrently;
/// the immutable identity fields are set once at registration.
class QueryProgress {
 public:
  QueryProgress(uint64_t trace_id, std::string graph, std::string options,
                uint64_t components_total);

  /// Kernel hook: `n` more branch nodes were expanded.
  void AddNodes(uint64_t n) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Kernel / seed hook: a fair clique of this size was recorded. Monotonic
  /// max, so racing components can publish in any order.
  void NoteIncumbent(int64_t size) {
    int64_t cur = incumbent_.load(std::memory_order_relaxed);
    while (cur < size && !incumbent_.compare_exchange_weak(
                             cur, size, std::memory_order_relaxed)) {
    }
  }

  /// Executor hook: the best size any unfinished component could still
  /// yield. Plain store — the publisher recomputes it from scratch at each
  /// component completion, so last-writer-wins is the correct merge.
  void SetUpperBound(int64_t bound) {
    upper_bound_.store(bound, std::memory_order_relaxed);
  }

  void NoteComponentDone() {
    components_done_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Executor hook: the query's total budget (0 = none). Lets the watchdog
  /// distinguish "slow but inside budget" from "past deadline and frozen".
  void SetDeadlineMicros(int64_t micros) {
    deadline_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t deadline_micros() const {
    return deadline_micros_.load(std::memory_order_relaxed);
  }

  uint64_t trace_id() const { return trace_id_; }

  ProgressSnapshot Snapshot() const;

  /// Allocation-free snapshot for the crash handler. The identity strings
  /// were set at construction and are only read here, so copying their
  /// bytes is async-signal-safe.
  void FillCrashRow(struct CrashQueryRow* row) const;

 private:
  const uint64_t trace_id_;
  const std::string graph_;
  const std::string options_;
  const uint64_t components_total_;
  WallTimer started_;
  std::atomic<uint64_t> nodes_{0};
  std::atomic<int64_t> incumbent_{0};
  std::atomic<int64_t> upper_bound_{0};
  std::atomic<uint64_t> components_done_{0};
  std::atomic<int64_t> deadline_micros_{0};
};

class ProgressRegistry;

/// Move-only RAII handle for a registry entry: unregisters in the
/// destructor, so a submit path that throws (or any early return) can
/// never leak a phantom in-flight query. Replaces the manual
/// Register/Unregister pairing in the executor.
class ProgressRegistration {
 public:
  ProgressRegistration() = default;
  ProgressRegistration(ProgressRegistry* registry,
                       std::shared_ptr<QueryProgress> progress)
      : registry_(registry), progress_(std::move(progress)) {}
  ProgressRegistration(ProgressRegistration&& other) noexcept
      : registry_(other.registry_), progress_(std::move(other.progress_)) {
    other.registry_ = nullptr;
    other.progress_.reset();
  }
  ProgressRegistration& operator=(ProgressRegistration&& other) noexcept {
    if (this != &other) {
      Reset();
      registry_ = other.registry_;
      progress_ = std::move(other.progress_);
      other.registry_ = nullptr;
      other.progress_.reset();
    }
    return *this;
  }
  ProgressRegistration(const ProgressRegistration&) = delete;
  ProgressRegistration& operator=(const ProgressRegistration&) = delete;
  ~ProgressRegistration() { Reset(); }

  /// Unregisters now (idempotent).
  void Reset();

  QueryProgress* get() const { return progress_.get(); }
  QueryProgress* operator->() const { return progress_.get(); }
  explicit operator bool() const { return progress_ != nullptr; }

 private:
  ProgressRegistry* registry_ = nullptr;
  std::shared_ptr<QueryProgress> progress_;
};

/// Fixed-width in-flight-query row for the crash handler: plain PODs only,
/// filled without allocation.
struct CrashQueryRow {
  uint64_t trace_id = 0;
  char graph[24] = {0};
  uint64_t nodes = 0;
  int64_t incumbent_size = 0;
  int64_t upper_bound = 0;
  uint64_t components_done = 0;
  uint64_t components_total = 0;
  int64_t elapsed_micros = 0;
};

/// Process-wide map of in-flight queries keyed by trace id. Register /
/// Unregister take a mutex once per *searching* query (cached hits never
/// register), which is noise next to a Branch stage; List snapshots under
/// the same mutex and is only called by scrapers.
class ProgressRegistry {
 public:
  static ProgressRegistry& Default();

  /// Creates and publishes the progress record for a query entering the
  /// Branch stage. A re-registered trace id replaces the old record.
  std::shared_ptr<QueryProgress> Register(uint64_t trace_id,
                                          std::string graph,
                                          std::string options,
                                          uint64_t components_total);

  /// Register wrapped in an RAII handle — the entry is removed when the
  /// handle dies, however the owning scope exits. Preferred over the raw
  /// Register/Unregister pair.
  ProgressRegistration RegisterScoped(uint64_t trace_id, std::string graph,
                                      std::string options,
                                      uint64_t components_total);

  void Unregister(uint64_t trace_id);

  /// Snapshots of every in-flight query, ordered by trace id (submission
  /// order within a thread).
  std::vector<ProgressSnapshot> List() const;

  size_t size() const;

  /// The largest (upper_bound - incumbent) over in-flight queries, clamped
  /// to >= 0; 0 when nothing is in flight. Exported as the
  /// fc_search_incumbent_gap gauge: a gap stuck high means searches are far
  /// from proving optimality.
  int64_t MaxIncumbentGap() const;

  /// Crash-handler drain: fills up to `cap` rows without allocating. Uses
  /// try_lock — a mutex held by a thread the fatal signal interrupted must
  /// not deadlock the postmortem — and reports via `lock_acquired` whether
  /// the listing is trustworthy. Returns the number of rows filled.
  size_t SnapshotForCrash(CrashQueryRow* rows, size_t cap,
                          bool* lock_acquired) const;

 private:
  mutable fc::Mutex mu_;
  std::map<uint64_t, std::shared_ptr<QueryProgress>> inflight_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_PROGRESS_H_
