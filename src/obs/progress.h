#ifndef FAIRCLIQUE_OBS_PROGRESS_H_
#define FAIRCLIQUE_OBS_PROGRESS_H_

/// Live progress of in-flight searches.
///
/// Every query that reaches the Branch stage registers a QueryProgress in
/// the process-wide ProgressRegistry, keyed by its trace id. The branch
/// kernels publish into it with relaxed atomics at the same 1024-node
/// cadence as the deadline check (one predictable branch per kilonode — no
/// new per-node cost), the executor publishes component completions and the
/// live upper bound, and the `ps` server command / Prometheus gauges read
/// point-in-time snapshots. The registry is the seed of the ROADMAP's
/// anytime-queries item: everything an anytime response needs (incumbent,
/// bound, how much work is left) is already flowing through here.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace fairclique {
namespace obs {

/// Point-in-time view of one in-flight query, taken under no lock: the
/// fields are read individually with relaxed loads, so a snapshot racing
/// the search may mix instants a few kilonodes apart — fine for a live
/// listing, never for correctness decisions.
struct ProgressSnapshot {
  uint64_t trace_id = 0;
  std::string graph;    // registered graph name
  std::string options;  // canonical options key
  uint64_t nodes = 0;   // branch nodes expanded (1024-node granularity)
  int64_t incumbent_size = 0;  // best fair clique found so far
  /// Largest size any still-unfinished component could yield (the biggest
  /// unfinished component's vertex count, floored by the incumbent). The
  /// search is provably done improving when upper_bound == incumbent_size.
  int64_t upper_bound = 0;
  uint64_t components_done = 0;
  uint64_t components_total = 0;
  int64_t elapsed_micros = 0;  // since the query entered the Branch stage
};

/// The mutable progress record the search publishes into. All mutators are
/// relaxed atomics, safe to call from any component worker concurrently;
/// the immutable identity fields are set once at registration.
class QueryProgress {
 public:
  QueryProgress(uint64_t trace_id, std::string graph, std::string options,
                uint64_t components_total);

  /// Kernel hook: `n` more branch nodes were expanded.
  void AddNodes(uint64_t n) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Kernel / seed hook: a fair clique of this size was recorded. Monotonic
  /// max, so racing components can publish in any order.
  void NoteIncumbent(int64_t size) {
    int64_t cur = incumbent_.load(std::memory_order_relaxed);
    while (cur < size && !incumbent_.compare_exchange_weak(
                             cur, size, std::memory_order_relaxed)) {
    }
  }

  /// Executor hook: the best size any unfinished component could still
  /// yield. Plain store — the publisher recomputes it from scratch at each
  /// component completion, so last-writer-wins is the correct merge.
  void SetUpperBound(int64_t bound) {
    upper_bound_.store(bound, std::memory_order_relaxed);
  }

  void NoteComponentDone() {
    components_done_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t trace_id() const { return trace_id_; }

  ProgressSnapshot Snapshot() const;

 private:
  const uint64_t trace_id_;
  const std::string graph_;
  const std::string options_;
  const uint64_t components_total_;
  WallTimer started_;
  std::atomic<uint64_t> nodes_{0};
  std::atomic<int64_t> incumbent_{0};
  std::atomic<int64_t> upper_bound_{0};
  std::atomic<uint64_t> components_done_{0};
};

/// Process-wide map of in-flight queries keyed by trace id. Register /
/// Unregister take a mutex once per *searching* query (cached hits never
/// register), which is noise next to a Branch stage; List snapshots under
/// the same mutex and is only called by scrapers.
class ProgressRegistry {
 public:
  static ProgressRegistry& Default();

  /// Creates and publishes the progress record for a query entering the
  /// Branch stage. A re-registered trace id replaces the old record.
  std::shared_ptr<QueryProgress> Register(uint64_t trace_id,
                                          std::string graph,
                                          std::string options,
                                          uint64_t components_total);

  void Unregister(uint64_t trace_id);

  /// Snapshots of every in-flight query, ordered by trace id (submission
  /// order within a thread).
  std::vector<ProgressSnapshot> List() const;

  size_t size() const;

  /// The largest (upper_bound - incumbent) over in-flight queries, clamped
  /// to >= 0; 0 when nothing is in flight. Exported as the
  /// fc_search_incumbent_gap gauge: a gap stuck high means searches are far
  /// from proving optimality.
  int64_t MaxIncumbentGap() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<QueryProgress>> inflight_;
};

}  // namespace obs
}  // namespace fairclique

#endif  // FAIRCLIQUE_OBS_PROGRESS_H_
