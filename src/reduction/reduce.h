#ifndef FAIRCLIQUE_REDUCTION_REDUCE_H_
#define FAIRCLIQUE_REDUCTION_REDUCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Which reduction stages the pipeline runs, in the paper's order
/// (Algorithm 2 lines 1-3). Each stage can be toggled for ablation.
struct ReductionOptions {
  bool use_en_colorful_core = true;  // EnColorfulCore(g, k-1), Lemma 2
  bool use_colorful_sup = true;      // ColorfulSup(g, k), Lemma 3
  bool use_en_colorful_sup = true;   // EnColorfulSup(g, k), Lemma 4
};

/// Sizes after one reduction stage.
struct ReductionStageStats {
  std::string name;
  VertexId vertices_left = 0;
  EdgeId edges_left = 0;
  int64_t micros = 0;
};

/// Result of the staged reduction pipeline. `reduced` is the materialized
/// surviving subgraph; `original_ids[i]` maps its vertex i back to the input
/// graph.
struct ReductionPipelineResult {
  AttributedGraph reduced;
  std::vector<VertexId> original_ids;
  std::vector<ReductionStageStats> stages;
};

/// Runs EnColorfulCore -> ColorfulSup -> EnColorfulSup (subject to
/// `options`), recoloring the shrinking graph before each stage. Every
/// relative fair clique with parameters (k, *) of `g` survives in the result
/// (Lemmas 2-4); reductions are independent of delta.
ReductionPipelineResult ReduceForFairClique(const AttributedGraph& g, int k,
                                            const ReductionOptions& options);

}  // namespace fairclique

#endif  // FAIRCLIQUE_REDUCTION_REDUCE_H_
