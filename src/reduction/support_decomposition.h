#ifndef FAIRCLIQUE_REDUCTION_SUPPORT_DECOMPOSITION_H_
#define FAIRCLIQUE_REDUCTION_SUPPORT_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/coloring.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Full decomposition of the colorful-support reductions, analogous to truss
/// decomposition (which Algorithm 1 is a variant of): for every edge e, the
/// *colorful support number* ksup(e) is the largest k such that e survives
/// the ColorfulSup (resp. EnColorfulSup) reduction with parameter k.
///
/// Well-defined because the surviving subgraphs are nested: the Lemma-3/4
/// thresholds grow with k, so the k-fixpoint satisfies the (k-1) conditions
/// and is contained in the (k-1)-fixpoint.
///
/// One decomposition answers every future query instantly: the parameter-k
/// reduced graph is exactly {e : ksup(e) >= k} — useful when the same graph
/// is queried with many (k, delta) settings (bench_ablation measures the
/// break-even against per-k peeling).
struct SupportDecomposition {
  /// ksup[e]: largest k for which edge e survives; 0 when it dies already
  /// at k = 1.
  std::vector<int> ksup;  // size E
  /// Largest k with a non-empty surviving subgraph.
  int max_k = 0;
};

/// Decomposition under the plain colorful support conditions (Lemma 3).
/// Runs the peeling once per level on the shrinking survivor set; total cost
/// is bounded by max_k times one reduction pass.
SupportDecomposition ComputeColorfulSupportNumbers(const AttributedGraph& g,
                                                   const Coloring& coloring);

/// Decomposition under the enhanced conditions (Lemma 4). Pointwise <= the
/// plain numbers (the enhanced reduction removes a superset of edges).
SupportDecomposition ComputeEnhancedSupportNumbers(const AttributedGraph& g,
                                                   const Coloring& coloring);

/// Edge-alive flags for parameter k, read off a precomputed decomposition.
std::vector<uint8_t> EdgeAliveAtK(const SupportDecomposition& decomposition,
                                  int k);

}  // namespace fairclique

#endif  // FAIRCLIQUE_REDUCTION_SUPPORT_DECOMPOSITION_H_
