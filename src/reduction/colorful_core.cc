#include "reduction/colorful_core.h"

#include <algorithm>

#include "common/logging.h"

namespace fairclique {

namespace {

// Per-vertex multiset of neighbor (attribute, color) pairs, stored as a
// sorted flat array keyed by (color << 1) | attr with a count per key.
// Lookup is binary search; the whole structure is built once in O(sum deg).
struct ColorCountTable {
  std::vector<uint32_t> keys;    // concatenated per-vertex sorted key arrays
  std::vector<uint32_t> counts;  // parallel to keys
  std::vector<uint64_t> offsets; // size V+1

  static uint32_t MakeKey(ColorId color, Attribute attr) {
    return (static_cast<uint32_t>(color) << 1) | static_cast<uint32_t>(attr);
  }

  // Index of `key` within vertex v's slice; FC_CHECKs that it exists.
  size_t Find(VertexId v, uint32_t key) const {
    const uint32_t* begin = keys.data() + offsets[v];
    const uint32_t* end = keys.data() + offsets[v + 1];
    const uint32_t* it = std::lower_bound(begin, end, key);
    FC_CHECK(it != end && *it == key) << "color count key missing";
    return static_cast<size_t>(it - keys.data());
  }

  void Build(const AttributedGraph& g, const Coloring& coloring) {
    const VertexId n = g.num_vertices();
    offsets.assign(n + 1, 0);
    std::vector<uint32_t> scratch;
    std::vector<uint32_t> scratch_counts;
    keys.clear();
    counts.clear();
    keys.reserve(2 * g.num_edges());
    counts.reserve(2 * g.num_edges());
    for (VertexId v = 0; v < n; ++v) {
      scratch.clear();
      for (VertexId w : g.neighbors(v)) {
        scratch.push_back(MakeKey(coloring.color[w], g.attribute(w)));
      }
      std::sort(scratch.begin(), scratch.end());
      scratch_counts.clear();
      size_t out = 0;
      for (size_t i = 0; i < scratch.size();) {
        size_t j = i;
        while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
        scratch[out] = scratch[i];
        scratch_counts.push_back(static_cast<uint32_t>(j - i));
        ++out;
        i = j;
      }
      keys.insert(keys.end(), scratch.begin(), scratch.begin() + out);
      counts.insert(counts.end(), scratch_counts.begin(), scratch_counts.end());
      offsets[v + 1] = keys.size();
    }
  }
};

}  // namespace

VertexReductionResult ColorfulCore(const AttributedGraph& g,
                                   const Coloring& coloring, int k) {
  const VertexId n = g.num_vertices();
  VertexReductionResult result;
  result.alive.assign(n, 1);
  if (k <= 0) {
    // Every vertex trivially qualifies.
    result.vertices_left = n;
    result.edges_left = g.num_edges();
    return result;
  }

  ColorCountTable table;
  table.Build(g, coloring);
  // Distinct-color degree per attribute.
  std::vector<AttrCounts> d(n);
  for (VertexId v = 0; v < n; ++v) {
    for (uint64_t i = table.offsets[v]; i < table.offsets[v + 1]; ++i) {
      Attribute attr = static_cast<Attribute>(table.keys[i] & 1);
      d[v][attr]++;
    }
  }

  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (d[v].Min() < k) {
      result.alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    uint32_t key = ColorCountTable::MakeKey(coloring.color[v], g.attribute(v));
    for (VertexId u : g.neighbors(v)) {
      if (!result.alive[u]) continue;
      size_t idx = table.Find(u, key);
      if (--table.counts[idx] == 0) {
        Attribute attr = g.attribute(v);
        if (--d[u][attr] < k && d[u][attr] + 1 == k) {
          // Dropped below threshold just now.
          result.alive[u] = 0;
          queue.push_back(u);
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (result.alive[v]) result.vertices_left++;
  }
  for (const Edge& e : g.edges()) {
    if (result.alive[e.u] && result.alive[e.v]) result.edges_left++;
  }
  return result;
}

VertexReductionResult EnColorfulCore(const AttributedGraph& g,
                                     const Coloring& coloring, int k) {
  const VertexId n = g.num_vertices();
  VertexReductionResult result;
  result.alive.assign(n, 1);
  if (k <= 0) {
    result.vertices_left = n;
    result.edges_left = g.num_edges();
    return result;
  }

  ColorCountTable table;
  table.Build(g, coloring);
  // Per-vertex color-class sizes: ca (a-only colors), cb (b-only), cm (mixed).
  struct Classes {
    int64_t ca = 0, cb = 0, cm = 0;
    int64_t Ed() const { return BalancedAssignMin(ca, cb, cm); }
  };
  std::vector<Classes> cls(n);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t i = table.offsets[v];
    const uint64_t end = table.offsets[v + 1];
    while (i < end) {
      // Keys for the same color are adjacent: (c<<1|0) then (c<<1|1).
      if (i + 1 < end && (table.keys[i] >> 1) == (table.keys[i + 1] >> 1)) {
        cls[v].cm++;
        i += 2;
      } else if ((table.keys[i] & 1) == 0) {
        cls[v].ca++;
        i += 1;
      } else {
        cls[v].cb++;
        i += 1;
      }
    }
  }

  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (cls[v].Ed() < k) {
      result.alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    const ColorId color = coloring.color[v];
    const Attribute attr = g.attribute(v);
    const uint32_t key = ColorCountTable::MakeKey(color, attr);
    const uint32_t other_key = ColorCountTable::MakeKey(color, Other(attr));
    for (VertexId u : g.neighbors(v)) {
      if (!result.alive[u]) continue;
      size_t idx = table.Find(u, key);
      if (--table.counts[idx] != 0) continue;
      // Color `color` lost its `attr` side at u; reclassify.
      // Does u still see the other attribute with this color?
      const uint32_t* begin = table.keys.data() + table.offsets[u];
      const uint32_t* end = table.keys.data() + table.offsets[u + 1];
      const uint32_t* it = std::lower_bound(begin, end, other_key);
      bool other_alive = false;
      if (it != end && *it == other_key) {
        other_alive = table.counts[it - table.keys.data()] > 0;
      }
      if (other_alive) {
        // mixed -> other-only
        cls[u].cm--;
        if (attr == Attribute::kA) {
          cls[u].cb++;
        } else {
          cls[u].ca++;
        }
      } else {
        // attr-only -> gone
        if (attr == Attribute::kA) {
          cls[u].ca--;
        } else {
          cls[u].cb--;
        }
      }
      if (cls[u].Ed() < k) {
        result.alive[u] = 0;
        queue.push_back(u);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (result.alive[v]) result.vertices_left++;
  }
  for (const Edge& e : g.edges()) {
    if (result.alive[e.u] && result.alive[e.v]) result.edges_left++;
  }
  return result;
}

ColorfulCoreDecomposition ComputeColorfulCores(const AttributedGraph& g,
                                               const Coloring& coloring) {
  const VertexId n = g.num_vertices();
  ColorfulCoreDecomposition result;
  result.ccore.assign(n, 0);
  result.position.assign(n, 0);
  result.peel_order.reserve(n);
  if (n == 0) return result;

  ColorCountTable table;
  table.Build(g, coloring);
  std::vector<AttrCounts> d(n);
  for (VertexId v = 0; v < n; ++v) {
    for (uint64_t i = table.offsets[v]; i < table.offsets[v + 1]; ++i) {
      Attribute attr = static_cast<Attribute>(table.keys[i] & 1);
      d[v][attr]++;
    }
  }

  // Bucket peeling on Dmin with lazy entries: a vertex may sit in several
  // buckets; stale entries (bucket != current Dmin) are skipped.
  auto dmin = [&d](VertexId v) {
    return static_cast<uint32_t>(d[v].Min());
  };
  uint32_t max_val = 0;
  for (VertexId v = 0; v < n; ++v) max_val = std::max(max_val, dmin(v));
  std::vector<std::vector<VertexId>> buckets(max_val + 1);
  for (VertexId v = 0; v < n; ++v) buckets[dmin(v)].push_back(v);

  std::vector<uint8_t> removed(n, 0);
  uint32_t level = 0;
  uint32_t processed = 0;
  uint32_t cursor = 0;
  while (processed < n) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    FC_CHECK(cursor < buckets.size()) << "colorful core peel ran dry";
    VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || dmin(v) != cursor) continue;  // Stale entry.
    removed[v] = 1;
    level = std::max(level, cursor);
    result.ccore[v] = level;
    result.position[v] = processed;
    result.peel_order.push_back(v);
    ++processed;
    const uint32_t key =
        ColorCountTable::MakeKey(coloring.color[v], g.attribute(v));
    for (VertexId u : g.neighbors(v)) {
      if (removed[u]) continue;
      size_t idx = table.Find(u, key);
      if (--table.counts[idx] == 0) {
        d[u][g.attribute(v)]--;
        uint32_t nd = dmin(u);
        buckets[nd].push_back(u);
        // Dmin only drops during peeling; rewind the cursor when a vertex
        // falls below the current level so it is processed next.
        cursor = std::min(cursor, nd);
      }
    }
  }
  result.colorful_degeneracy = level;
  return result;
}

}  // namespace fairclique
