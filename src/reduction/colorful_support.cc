#include "reduction/colorful_support.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "graph/triangles.h"

namespace fairclique {

namespace {

// Per-edge multiset of common-neighbor (attribute, color) pairs — the data
// structure M_(u,v) of Algorithm 1 — stored as a flat sorted key/count table
// per edge, built in one triangle-enumeration pass.
struct EdgeColorTable {
  std::vector<uint32_t> keys;     // (color << 1) | attr, sorted per edge
  std::vector<uint32_t> counts;   // parallel to keys
  std::vector<uint64_t> offsets;  // size E+1

  static uint32_t MakeKey(ColorId color, Attribute attr) {
    return (static_cast<uint32_t>(color) << 1) | static_cast<uint32_t>(attr);
  }

  size_t Find(EdgeId e, uint32_t key) const {
    const uint32_t* begin = keys.data() + offsets[e];
    const uint32_t* end = keys.data() + offsets[e + 1];
    const uint32_t* it = std::lower_bound(begin, end, key);
    FC_CHECK(it != end && *it == key) << "edge color key missing";
    return static_cast<size_t>(it - keys.data());
  }

  void Build(const AttributedGraph& g, const Coloring& coloring) {
    const EdgeId m = g.num_edges();
    offsets.assign(m + 1, 0);
    keys.clear();
    counts.clear();
    std::vector<uint32_t> scratch;
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& edge = g.edges()[e];
      scratch.clear();
      ForEachCommonNeighbor(g, edge.u, edge.v,
                            [&](VertexId w, EdgeId, EdgeId) {
                              scratch.push_back(MakeKey(coloring.color[w],
                                                        g.attribute(w)));
                            });
      std::sort(scratch.begin(), scratch.end());
      for (size_t i = 0; i < scratch.size();) {
        size_t j = i;
        while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
        keys.push_back(scratch[i]);
        counts.push_back(static_cast<uint32_t>(j - i));
        i = j;
      }
      offsets[e + 1] = keys.size();
    }
  }
};

// Shared edge-peeling driver. `Violates(e)` checks the per-edge survival
// condition from the current support state; `OnNeighborLoss(e, w_attr, w)`
// updates edge e's state after losing common neighbor w and returns true
// when e must be re-checked.
//
// Triangle accounting: a triangle is torn down exactly once — when the first
// of its edges to be *popped* from the queue is processed. At that moment the
// other two side edges each lose their third vertex (decrements on already-
// dead-but-unpopped edges are skipped; their state no longer matters). Edges
// are marked removed at push time, matching Algorithm 1 line 10, so the
// violation check never re-queues an edge. At fixpoint every dead edge has
// been popped, hence every alive edge's support counts exactly the triangles
// whose other two edges are alive — the maximal subgraph of Lemma 3/4.
template <typename ViolatesFn, typename LossFn>
EdgeReductionResult PeelEdges(const AttributedGraph& g,
                              ViolatesFn&& violates, LossFn&& on_loss) {
  const EdgeId m = g.num_edges();
  EdgeReductionResult result;
  result.edge_alive.assign(m, 1);
  result.vertex_alive.assign(g.num_vertices(), 0);
  // not_processed[e] == 1 until e has been popped and its triangles torn
  // down. Doubles as the enumeration filter: a triangle with a processed
  // side edge has already been handled.
  std::vector<uint8_t> not_processed(m, 1);

  std::deque<EdgeId> queue;
  for (EdgeId e = 0; e < m; ++e) {
    if (violates(e)) {
      result.edge_alive[e] = 0;  // Removed immediately (Alg. 1 line 10).
      queue.push_back(e);
    }
  }
  while (!queue.empty()) {
    EdgeId e = queue.front();
    queue.pop_front();
    const Edge& edge = g.edges()[e];
    const VertexId u = edge.u;
    const VertexId v = edge.v;
    not_processed[e] = 0;
    // Edge (u,w) loses common neighbor v; edge (v,w) loses u.
    ForEachAliveCommonNeighbor(
        g, u, v, {}, not_processed,
        [&](VertexId w, EdgeId euw, EdgeId evw) {
          (void)w;
          if (result.edge_alive[euw] && on_loss(euw, g.attribute(v), v) &&
              violates(euw)) {
            result.edge_alive[euw] = 0;
            queue.push_back(euw);
          }
          if (result.edge_alive[evw] && on_loss(evw, g.attribute(u), u) &&
              violates(evw)) {
            result.edge_alive[evw] = 0;
            queue.push_back(evw);
          }
        });
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (result.edge_alive[e]) {
      result.edges_left++;
      result.vertex_alive[g.edges()[e].u] = 1;
      result.vertex_alive[g.edges()[e].v] = 1;
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (result.vertex_alive[v]) result.vertices_left++;
  }
  return result;
}

}  // namespace

std::vector<AttrCounts> ComputeColorfulSupports(const AttributedGraph& g,
                                                const Coloring& coloring) {
  EdgeColorTable table;
  table.Build(g, coloring);
  std::vector<AttrCounts> sup(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (uint64_t i = table.offsets[e]; i < table.offsets[e + 1]; ++i) {
      sup[e][static_cast<Attribute>(table.keys[i] & 1)]++;
    }
  }
  return sup;
}

EdgeReductionResult ColorfulSupReduction(const AttributedGraph& g,
                                         const Coloring& coloring, int k) {
  EdgeColorTable table;
  table.Build(g, coloring);
  std::vector<AttrCounts> sup(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (uint64_t i = table.offsets[e]; i < table.offsets[e + 1]; ++i) {
      sup[e][static_cast<Attribute>(table.keys[i] & 1)]++;
    }
  }

  auto violates = [&](EdgeId e) {
    const Edge& edge = g.edges()[e];
    int64_t ta, tb;
    SupportThresholds(g.attribute(edge.u), g.attribute(edge.v), k, &ta, &tb);
    return sup[e][Attribute::kA] < ta || sup[e][Attribute::kB] < tb;
  };
  // Losing common neighbor w (attribute attr_w, color color(w)) decrements
  // M_e(attr_w, color_w); the support drops only when that count hits zero.
  auto on_loss = [&](EdgeId e, Attribute attr_w, VertexId w) {
    uint32_t key = EdgeColorTable::MakeKey(coloring.color[w], attr_w);
    size_t idx = table.Find(e, key);
    FC_CHECK(table.counts[idx] > 0) << "double decrement on edge color count";
    if (--table.counts[idx] == 0) {
      sup[e][attr_w]--;
      return true;
    }
    return false;
  };
  return PeelEdges(g, violates, on_loss);
}

AttrCounts GreedyEnhancedSupport(int64_t ca, int64_t cb, int64_t cm,
                                 int64_t ta, int64_t tb) {
  // Definition 7: assign mixed colors to attribute a first (up to its
  // deficit), then the remainder to b.
  int64_t gamma_a = ca < ta ? std::min(ta - ca, cm) : 0;
  int64_t rest = cm - gamma_a;
  int64_t gamma_b = cb < tb ? std::min(tb - cb, rest) : 0;
  AttrCounts gsup;
  gsup[Attribute::kA] = ca + gamma_a;
  gsup[Attribute::kB] = cb + gamma_b;
  return gsup;
}

EdgeReductionResult EnColorfulSupReduction(const AttributedGraph& g,
                                           const Coloring& coloring, int k) {
  EdgeColorTable table;
  table.Build(g, coloring);
  // Per-edge color-class sizes (Group a / Group b / Mixed of Fig. 2(c)).
  struct Classes {
    int32_t ca = 0, cb = 0, cm = 0;
  };
  std::vector<Classes> cls(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    uint64_t i = table.offsets[e];
    const uint64_t end = table.offsets[e + 1];
    while (i < end) {
      if (i + 1 < end && (table.keys[i] >> 1) == (table.keys[i + 1] >> 1)) {
        cls[e].cm++;
        i += 2;
      } else if ((table.keys[i] & 1) == 0) {
        cls[e].ca++;
        i += 1;
      } else {
        cls[e].cb++;
        i += 1;
      }
    }
  }

  auto violates = [&](EdgeId e) {
    const Edge& edge = g.edges()[e];
    int64_t ta, tb;
    SupportThresholds(g.attribute(edge.u), g.attribute(edge.v), k, &ta, &tb);
    // Feasibility of the mixed-color assignment: both deficits must be
    // coverable by distinct mixed colors.
    int64_t need_a = std::max<int64_t>(0, ta - cls[e].ca);
    int64_t need_b = std::max<int64_t>(0, tb - cls[e].cb);
    return need_a + need_b > cls[e].cm;
  };
  auto on_loss = [&](EdgeId e, Attribute attr_w, VertexId w) {
    const ColorId color = coloring.color[w];
    uint32_t key = EdgeColorTable::MakeKey(color, attr_w);
    size_t idx = table.Find(e, key);
    FC_CHECK(table.counts[idx] > 0) << "double decrement on edge color count";
    if (--table.counts[idx] != 0) return false;
    // Color lost its attr_w side on this edge; reclassify.
    uint32_t other_key = EdgeColorTable::MakeKey(color, Other(attr_w));
    const uint32_t* begin = table.keys.data() + table.offsets[e];
    const uint32_t* end = table.keys.data() + table.offsets[e + 1];
    const uint32_t* it = std::lower_bound(begin, end, other_key);
    bool other_alive = it != end && *it == other_key &&
                       table.counts[it - table.keys.data()] > 0;
    if (other_alive) {
      cls[e].cm--;
      if (attr_w == Attribute::kA) {
        cls[e].cb++;
      } else {
        cls[e].ca++;
      }
    } else {
      if (attr_w == Attribute::kA) {
        cls[e].ca--;
      } else {
        cls[e].cb--;
      }
    }
    return true;
  };
  return PeelEdges(g, violates, on_loss);
}

}  // namespace fairclique
