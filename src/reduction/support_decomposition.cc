#include "reduction/support_decomposition.h"

#include <utility>

#include "common/logging.h"
#include "reduction/colorful_support.h"

namespace fairclique {

namespace {

// Shared level-by-level driver: at level k the reduction runs on the level
// (k-1) survivor subgraph (same fixpoint as running on g — peeling from any
// superset of the fixpoint converges to it — but far cheaper), with the
// *original* coloring carried along so every level is consistent with a
// direct ColorfulSupReduction(g, coloring, k) call.
template <typename ReduceFn>
SupportDecomposition Decompose(const AttributedGraph& g,
                               const Coloring& coloring, ReduceFn&& reduce) {
  SupportDecomposition result;
  result.ksup.assign(g.num_edges(), 0);
  if (g.num_edges() == 0) return result;

  AttributedGraph current = g;
  // Maps current-graph artifacts back to g: vertices and edge ids.
  std::vector<VertexId> vertex_ids(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) vertex_ids[v] = v;
  Coloring current_coloring = coloring;

  for (int k = 1; current.num_edges() > 0; ++k) {
    EdgeReductionResult r = reduce(current, current_coloring, k);
    // Every surviving edge has ksup >= k.
    for (EdgeId e = 0; e < current.num_edges(); ++e) {
      if (!r.edge_alive[e]) continue;
      const Edge& edge = current.edges()[e];
      EdgeId orig = g.FindEdge(vertex_ids[edge.u], vertex_ids[edge.v]);
      FC_CHECK(orig != kInvalidEdge) << "survivor edge missing in base graph";
      result.ksup[orig] = k;
    }
    if (r.edges_left == 0) break;
    result.max_k = k;
    // Materialize the survivor subgraph and restrict the coloring.
    std::vector<VertexId> inner;
    AttributedGraph next =
        current.FilteredSubgraph(r.vertex_alive, r.edge_alive, &inner);
    Coloring next_coloring;
    next_coloring.num_colors = current_coloring.num_colors;
    next_coloring.color.resize(next.num_vertices());
    std::vector<VertexId> next_ids(next.num_vertices());
    for (VertexId v = 0; v < next.num_vertices(); ++v) {
      next_coloring.color[v] = current_coloring.color[inner[v]];
      next_ids[v] = vertex_ids[inner[v]];
    }
    current = std::move(next);
    current_coloring = std::move(next_coloring);
    vertex_ids = std::move(next_ids);
  }
  return result;
}

}  // namespace

SupportDecomposition ComputeColorfulSupportNumbers(const AttributedGraph& g,
                                                   const Coloring& coloring) {
  return Decompose(g, coloring,
                   [](const AttributedGraph& cur, const Coloring& col, int k) {
                     return ColorfulSupReduction(cur, col, k);
                   });
}

SupportDecomposition ComputeEnhancedSupportNumbers(const AttributedGraph& g,
                                                   const Coloring& coloring) {
  return Decompose(g, coloring,
                   [](const AttributedGraph& cur, const Coloring& col, int k) {
                     return EnColorfulSupReduction(cur, col, k);
                   });
}

std::vector<uint8_t> EdgeAliveAtK(const SupportDecomposition& decomposition,
                                  int k) {
  std::vector<uint8_t> alive(decomposition.ksup.size());
  for (size_t e = 0; e < alive.size(); ++e) {
    alive[e] = decomposition.ksup[e] >= k ? 1 : 0;
  }
  return alive;
}

}  // namespace fairclique
