#ifndef FAIRCLIQUE_REDUCTION_COLORFUL_CORE_H_
#define FAIRCLIQUE_REDUCTION_COLORFUL_CORE_H_

#include <cstdint>
#include <vector>

#include "graph/coloring.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Result of a vertex-peeling reduction: per-vertex alive flags plus summary
/// counts of the surviving subgraph.
struct VertexReductionResult {
  std::vector<uint8_t> alive;  // size V, 1 = kept
  VertexId vertices_left = 0;
  EdgeId edges_left = 0;
};

/// Colorful k-core (Definition 3): the maximal subgraph H where every vertex
/// has at least `k` distinct neighbor colors in each attribute class,
/// min{D_a(u,H), D_b(u,H)} >= k. By Lemma 1, every relative fair clique with
/// parameter k is contained in the colorful (k-1)-core, so callers pass
/// k-1 for reduction.
///
/// O(V + E * 1) peeling with per-(vertex, attribute, color) counters;
/// space O(sum deg) via per-vertex color maps.
VertexReductionResult ColorfulCore(const AttributedGraph& g,
                                   const Coloring& coloring, int k);

/// Enhanced colorful k-core (Definition 5): like ColorfulCore but colors are
/// assigned exclusively to one attribute; a vertex survives while its
/// enhanced colorful degree ED(u) = max_x min(ca+x, cb+cm-x) >= k (see
/// EnhancedColorfulDegrees). By Lemma 2 fair cliques live in the enhanced
/// colorful (k-1)-core.
VertexReductionResult EnColorfulCore(const AttributedGraph& g,
                                     const Coloring& coloring, int k);

/// Full colorful core decomposition: colorful core number ccore(v) =
/// largest k such that v survives in the colorful k-core (Definition 8), the
/// peeling order (used as the paper's CalColorOD vertex ordering for the
/// branch-and-bound) and the colorful degeneracy (Definition 9).
struct ColorfulCoreDecomposition {
  std::vector<uint32_t> ccore;      // size V
  std::vector<VertexId> peel_order; // all vertices, peeling order
  std::vector<uint32_t> position;   // inverse of peel_order
  uint32_t colorful_degeneracy = 0;
};

ColorfulCoreDecomposition ComputeColorfulCores(const AttributedGraph& g,
                                               const Coloring& coloring);

}  // namespace fairclique

#endif  // FAIRCLIQUE_REDUCTION_COLORFUL_CORE_H_
