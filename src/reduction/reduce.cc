#include "reduction/reduce.h"

#include <numeric>
#include <utility>

#include "common/timer.h"
#include "graph/coloring.h"
#include "obs/profiler.h"
#include "reduction/colorful_core.h"
#include "reduction/colorful_support.h"

namespace fairclique {

namespace {

// Composes `inner` (ids of the current graph -> previous graph) into
// `outer` (previous graph -> original graph).
std::vector<VertexId> ComposeIds(const std::vector<VertexId>& outer,
                                 const std::vector<VertexId>& inner) {
  std::vector<VertexId> composed(inner.size());
  for (size_t i = 0; i < inner.size(); ++i) composed[i] = outer[inner[i]];
  return composed;
}

}  // namespace

ReductionPipelineResult ReduceForFairClique(const AttributedGraph& g, int k,
                                            const ReductionOptions& options) {
  ReductionPipelineResult result;
  result.reduced = g;
  result.original_ids.resize(g.num_vertices());
  std::iota(result.original_ids.begin(), result.original_ids.end(), 0);

  auto run_stage = [&result](const char* name, auto&& stage_fn) {
    // The stage names below are string literals, which is what lets the
    // profiler tag the scope by pointer identity.
    obs::ProfileScope profile_scope(name);
    WallTimer timer;
    AttributedGraph& cur = result.reduced;
    Coloring coloring = GreedyColoring(cur);
    std::vector<VertexId> inner_ids;
    AttributedGraph next = stage_fn(cur, coloring, &inner_ids);
    result.stages.push_back({name, next.num_vertices(), next.num_edges(),
                             timer.ElapsedMicros()});
    result.original_ids = ComposeIds(result.original_ids, inner_ids);
    result.reduced = std::move(next);
  };

  if (options.use_en_colorful_core) {
    run_stage("EnColorfulCore",
              [k](const AttributedGraph& cur, const Coloring& coloring,
                  std::vector<VertexId>* ids) {
                // Lemma 2: fair cliques live in the enhanced colorful
                // (k-1)-core.
                VertexReductionResult r = EnColorfulCore(cur, coloring, k - 1);
                return cur.FilteredSubgraph(r.alive, {}, ids);
              });
  }
  if (options.use_colorful_sup) {
    run_stage("ColorfulSup",
              [k](const AttributedGraph& cur, const Coloring& coloring,
                  std::vector<VertexId>* ids) {
                EdgeReductionResult r = ColorfulSupReduction(cur, coloring, k);
                return cur.FilteredSubgraph(r.vertex_alive, r.edge_alive, ids);
              });
  }
  if (options.use_en_colorful_sup) {
    run_stage("EnColorfulSup",
              [k](const AttributedGraph& cur, const Coloring& coloring,
                  std::vector<VertexId>* ids) {
                EdgeReductionResult r =
                    EnColorfulSupReduction(cur, coloring, k);
                return cur.FilteredSubgraph(r.vertex_alive, r.edge_alive, ids);
              });
  }
  return result;
}

}  // namespace fairclique
