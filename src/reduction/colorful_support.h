#ifndef FAIRCLIQUE_REDUCTION_COLORFUL_SUPPORT_H_
#define FAIRCLIQUE_REDUCTION_COLORFUL_SUPPORT_H_

#include <cstdint>
#include <vector>

#include "graph/coloring.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Result of an edge-peeling (truss-style) reduction: flags per edge and per
/// vertex (a vertex dies when all its edges die) plus summary counts.
struct EdgeReductionResult {
  std::vector<uint8_t> edge_alive;    // size E
  std::vector<uint8_t> vertex_alive;  // size V
  VertexId vertices_left = 0;
  EdgeId edges_left = 0;
};

/// Colorful support of every edge (Definition 6): sup_ai(u,v) = number of
/// distinct colors among common neighbors of u and v having attribute ai.
/// Exposed for tests and diagnostics; O(alpha * E) triangle enumeration.
std::vector<AttrCounts> ComputeColorfulSupports(const AttributedGraph& g,
                                                const Coloring& coloring);

/// ColorfulSup reduction (Algorithm 1 / Lemma 3): iteratively removes every
/// edge whose colorful support violates the attribute-dependent thresholds
///   A(u)=A(v)=a : sup_a >= k-2 and sup_b >= k
///   A(u)=A(v)=b : sup_a >= k   and sup_b >= k-2
///   mixed       : sup_a >= k-1 and sup_b >= k-1
/// The surviving subgraph contains every relative fair clique with size
/// parameter k. Time O(alpha * E + V), space O(sum over edges of distinct
/// common-neighbor (attr, color) pairs).
EdgeReductionResult ColorfulSupReduction(const AttributedGraph& g,
                                         const Coloring& coloring, int k);

/// Enhanced colorful support reduction (Definition 7 / Lemma 4): like
/// ColorfulSup, but colors of the common neighborhood are partitioned into
/// a-only / b-only / mixed classes and each mixed color counts toward only
/// one attribute. An edge with endpoint-attribute thresholds (ta, tb)
/// survives iff  max(0, ta-ca) + max(0, tb-cb) <= cm  (the greedy assignment
/// of Definition 7 succeeds exactly in this case). Strictly stronger than
/// ColorfulSup.
EdgeReductionResult EnColorfulSupReduction(const AttributedGraph& g,
                                           const Coloring& coloring, int k);

/// Greedy mixed-color assignment of Definition 7, exposed for tests: given
/// class sizes and thresholds, returns the per-attribute enhanced colorful
/// supports (gsup_a, gsup_b) produced by assigning to attribute a first.
AttrCounts GreedyEnhancedSupport(int64_t ca, int64_t cb, int64_t cm,
                                 int64_t ta, int64_t tb);

/// Thresholds (ta, tb) used by both reductions for an edge whose endpoints
/// carry `au` and `av` (Lemma 3 / Lemma 4 case analysis).
inline void SupportThresholds(Attribute au, Attribute av, int k, int64_t* ta,
                              int64_t* tb) {
  if (au == Attribute::kA && av == Attribute::kA) {
    *ta = k - 2;
    *tb = k;
  } else if (au == Attribute::kB && av == Attribute::kB) {
    *ta = k;
    *tb = k - 2;
  } else {
    *ta = k - 1;
    *tb = k - 1;
  }
}

}  // namespace fairclique

#endif  // FAIRCLIQUE_REDUCTION_COLORFUL_SUPPORT_H_
