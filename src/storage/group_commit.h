#ifndef FAIRCLIQUE_STORAGE_GROUP_COMMIT_H_
#define FAIRCLIQUE_STORAGE_GROUP_COMMIT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace fairclique {
namespace storage {

/// Monotonic statistics of one GroupCommitWal.
struct GroupCommitStats {
  uint64_t records = 0;        // frames settled durable
  uint64_t groups = 0;         // write+fsync pairs issued
  uint64_t largest_group = 0;  // most frames ever settled by one fsync
};

/// Group-commit writer for one WAL file. Appenders enqueue serialized
/// frames onto a commit queue; the first waiter whose frame is still
/// pending elects itself leader, drains *everything* queued so far, issues
/// ONE write + ONE fsync for the whole group, then releases every waiter
/// whose frame the group covered — so N concurrent appends cost one fsync
/// instead of N, without weakening the write-ahead contract: Wait() returns
/// OK only once the frame's bytes are fsync'd.
///
/// The fd is opened on the first commit and held open across appends
/// (creation syncs the parent directory, exactly as DurableAppend does).
/// Frames land in the file in Enqueue order, so a caller that must preserve
/// an ordering invariant (the WAL's fingerprint chain) enqueues under its
/// own ordering lock and waits outside it — that is what lets ordered
/// appends overlap in one group at all.
///
/// Errors are sticky: once a group's write or fsync fails, the file may end
/// in a torn frame, so every frame from the first failed one onward reports
/// the error and nothing is written again. (Appending after a torn frame
/// would turn the tear into mid-file corruption, which recovery treats as
/// data loss rather than a crash artifact.) The owner is expected to drop
/// the writer and rewrite the snapshot instead.
///
/// Thread-safe. Destruction closes the fd; callers keep the writer alive
/// (shared_ptr) until every enqueued frame has been waited on.
class GroupCommitWal {
 public:
  /// One enqueued frame, identified by its commit sequence number.
  struct Ticket {
    uint64_t seq = 0;
  };

  /// `group_window_micros` > 0 makes a fresh leader linger that long before
  /// draining, trading commit latency for larger groups under bursty
  /// arrival. 0 (the default) drains immediately: batching then comes for
  /// free from appenders piling up behind the previous group's fsync.
  /// `groups_counter`, when non-null, is incremented once per issued fsync
  /// (the owner aggregates it across writers that come and go; shared
  /// ownership, so a commit completing after the owner's destruction still
  /// touches live memory).
  explicit GroupCommitWal(
      std::string path, int64_t group_window_micros = 0,
      std::shared_ptr<std::atomic<uint64_t>> groups_counter = nullptr);
  ~GroupCommitWal();

  GroupCommitWal(const GroupCommitWal&) = delete;
  GroupCommitWal& operator=(const GroupCommitWal&) = delete;

  const std::string& path() const { return path_; }

  /// Adds one frame to the commit queue. Never blocks on IO; the frame's
  /// position in the file is its position in the Enqueue order.
  Ticket Enqueue(std::string frame);

  /// Blocks until `ticket`'s frame is settled: OK iff its group's write and
  /// fsync succeeded. May do the group's IO itself (leader election).
  Status Wait(Ticket ticket);

  /// Enqueue + Wait: the drop-in durable append.
  Status Append(std::string frame) { return Wait(Enqueue(std::move(frame))); }

  GroupCommitStats stats() const;

 private:
  /// Leader body: drains the pending buffer, writes + fsyncs it, settles
  /// the drained range. Called with `lock` (which manages mu_) held;
  /// releases it around the IO. Call sites are checked via REQUIRES; the
  /// body itself is excluded from analysis (the definition carries
  /// NO_THREAD_SAFETY_ANALYSIS) because the analysis cannot connect a
  /// MutexLock passed by reference back to mu_ across the unlock/relock
  /// around the IO.
  void CommitGroupLocked(fc::MutexLock& lock) REQUIRES(mu_);

  const std::string path_;
  const int64_t group_window_micros_;
  const std::shared_ptr<std::atomic<uint64_t>> groups_counter_;  // may be null

  mutable fc::Mutex mu_;
  fc::CondVar settled_;
  /// Opened by the first committing leader and then touched only by the
  /// (single) active leader, including outside mu_ while the group's IO
  /// runs — leader_active_ is the real guard; mu_ is what hands it over.
  int fd_ GUARDED_BY(mu_) = -1;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;  // last sequence number handed out
  /// Every seq <= this is durable or failed.
  uint64_t settled_seq_ GUARDED_BY(mu_) = 0;
  uint64_t first_failed_seq_ GUARDED_BY(mu_) = 0;  // 0 = no failure yet
  Status sticky_error_ GUARDED_BY(mu_);
  bool leader_active_ GUARDED_BY(mu_) = false;
  /// Concatenated frames (settled_seq_, next_seq_].
  std::string pending_ GUARDED_BY(mu_);
  uint64_t pending_frames_ GUARDED_BY(mu_) = 0;
  GroupCommitStats stats_ GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_GROUP_COMMIT_H_
