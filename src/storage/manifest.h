#ifndef FAIRCLIQUE_STORAGE_MANIFEST_H_
#define FAIRCLIQUE_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairclique {
namespace storage {

/// One registered graph's durable state: which snapshot file holds its
/// FCG2 image, at which (version, fingerprint), and which WAL file carries
/// the updates applied since that snapshot. The current epoch of a graph is
/// snapshot_version plus the intact records of its WAL tail.
struct ManifestEntry {
  std::string name;           // registry name
  std::string snapshot_file;  // relative to the data dir
  std::string wal_file;       // relative; empty = no WAL yet
  uint64_t snapshot_version = 0;
  uint64_t snapshot_fingerprint = 0;
  std::string source;         // original load source, for stats/debugging
};

/// The durable catalog of a data dir, replaced atomically on every change
/// (write tmp + fsync + rename), so a crash leaves either the old or the
/// new catalog — never a mix. Text format, one percent-escaped record per
/// line, ending in a whole-file checksum line:
///
///   fairclique-manifest v1
///   graph <name> <snapshot-file> <wal-file|-> <version> <fp-hex> <source>
///   ...
///   checksum <fnv1a-hex of all preceding bytes>
struct Manifest {
  std::vector<ManifestEntry> entries;

  ManifestEntry* Find(const std::string& name);
  void Remove(const std::string& name);
};

/// Serializes and durably replaces the manifest file at `path`.
Status SaveManifest(const Manifest& manifest, const std::string& path);

/// Loads `path`. NotFound when absent (a fresh data dir), Corruption on a
/// malformed or checksum-failing file.
Status LoadManifest(const std::string& path, Manifest* out);

/// Escapes a string for embedding as one whitespace-free manifest token
/// (percent-encodes '%', whitespace, control and non-ASCII bytes; empty
/// strings encode as "%"). Exposed for tests.
std::string EscapeToken(const std::string& s);
bool UnescapeToken(const std::string& token, std::string* out);

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_MANIFEST_H_
