#ifndef FAIRCLIQUE_STORAGE_IO_UTIL_H_
#define FAIRCLIQUE_STORAGE_IO_UTIL_H_

#include <string>

#include "common/status.h"

namespace fairclique {
namespace storage {

/// Durably replaces `path` with `bytes`: writes "<path>.tmp", fsyncs it,
/// renames over `path`, then fsyncs the containing directory so the rename
/// itself survives a crash. The classic atomic-publish idiom — readers see
/// either the old complete file or the new complete file, never a prefix.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Appends `bytes` to `path` (creating it if needed) and fsyncs. Used by the
/// WAL, where records must be durable before the update commits.
Status DurableAppend(const std::string& path, const std::string& bytes);

/// Reads a whole file into `out`. IOError when it cannot be opened/read;
/// missing files are NotFound.
Status ReadFile(const std::string& path, std::string* out);

/// Best-effort unlink; missing files are not an error.
void RemoveFileIfExists(const std::string& path);

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_IO_UTIL_H_
