#ifndef FAIRCLIQUE_STORAGE_IO_UTIL_H_
#define FAIRCLIQUE_STORAGE_IO_UTIL_H_

#include <string>

#include "common/status.h"

namespace fairclique {
namespace storage {

/// Durably replaces `path` with `bytes`: writes "<path>.tmp", fsyncs it,
/// renames over `path`, then fsyncs the containing directory so the rename
/// itself survives a crash. The classic atomic-publish idiom — readers see
/// either the old complete file or the new complete file, never a prefix.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Appends `bytes` to `path` (creating it if needed) and fsyncs. Used by the
/// WAL, where records must be durable before the update commits. Opens and
/// closes the file per call — the single-writer fallback; the group-commit
/// writer (storage/group_commit.h) holds one fd open instead.
Status DurableAppend(const std::string& path, const std::string& bytes);

/// Opens `path` for appending, creating it if needed; `*created` reports
/// whether the directory entry was just born (the caller must then
/// SyncParentDir so a power cut cannot drop the whole new file). The fd is
/// O_CLOEXEC; the caller owns it.
Status OpenAppendFd(const std::string& path, int* fd, bool* created);

/// Writes all of `bytes` to `fd` and fsyncs it. `path` is for error
/// messages only.
Status AppendAndSyncFd(int fd, const std::string& path,
                       const std::string& bytes);

/// fsync on the directory containing `path`, so a just-renamed or just-
/// created entry survives a crash. Best effort: some filesystems reject
/// directory fsync; the data fsync already happened.
void SyncParentDir(const std::string& path);

/// Reads a whole file into `out`. IOError when it cannot be opened/read;
/// missing files are NotFound.
Status ReadFile(const std::string& path, std::string* out);

/// Best-effort unlink; missing files are not an error.
void RemoveFileIfExists(const std::string& path);

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_IO_UTIL_H_
