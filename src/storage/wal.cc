#include "storage/wal.h"

#include <cstring>

#include "storage/format_util.h"
#include "storage/io_util.h"

namespace fairclique {
namespace storage {

namespace {

constexpr char kRecordMagic[4] = {'F', 'W', 'R', '1'};
constexpr size_t kFrameHeaderSize = 16;  // magic + length + checksum
constexpr size_t kOpSize = 12;
constexpr size_t kPayloadFixedSize = 28;  // 3 * u64 + u32 op_count

std::string SerializePayload(const WalRecord& record) {
  std::string payload;
  payload.reserve(kPayloadFixedSize + record.ops.size() * kOpSize);
  PutU64(&payload, record.base_fingerprint);
  PutU64(&payload, record.fingerprint);
  PutU64(&payload, record.version);
  PutU32(&payload, static_cast<uint32_t>(record.ops.size()));
  for (const UpdateOp& op : record.ops) {
    payload.push_back(static_cast<char>(op.kind));
    payload.push_back(static_cast<char>(op.attr));
    payload.push_back(0);
    payload.push_back(0);
    PutU32(&payload, op.u);
    PutU32(&payload, op.v);
  }
  return payload;
}

bool ParsePayload(std::span<const uint8_t> payload, WalRecord* out) {
  size_t pos = 0;
  uint32_t op_count = 0;
  if (!GetU64(payload, &pos, &out->base_fingerprint) ||
      !GetU64(payload, &pos, &out->fingerprint) ||
      !GetU64(payload, &pos, &out->version) ||
      !GetU32(payload, &pos, &op_count)) {
    return false;
  }
  if (payload.size() - pos != static_cast<size_t>(op_count) * kOpSize) {
    return false;
  }
  out->ops.clear();
  out->ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    uint8_t kind = payload[pos];
    uint8_t attr = payload[pos + 1];
    pos += 4;  // kind, attr, 2 reserved bytes
    if (kind > static_cast<uint8_t>(UpdateKind::kSetAttribute) || attr > 1) {
      return false;
    }
    UpdateOp op;
    op.kind = static_cast<UpdateKind>(kind);
    op.attr = static_cast<Attribute>(attr);
    GetU32(payload, &pos, &op.u);
    GetU32(payload, &pos, &op.v);
    out->ops.push_back(op);
  }
  return true;
}

/// True when a complete, checksummed, parseable frame starts anywhere in
/// `bytes` after `from`. Used to tell a torn tail (nothing decodable
/// follows the failure — the crash artifact) from mid-file corruption (an
/// intact record after the failure proves the file did not simply end
/// early). A stray "FWR1" inside op data never qualifies by accident: the
/// candidate must also pass the 64-bit payload checksum and parse.
bool HasIntactFrameAfter(std::span<const uint8_t> bytes, size_t from) {
  for (size_t pos = from + 1; pos + kFrameHeaderSize <= bytes.size(); ++pos) {
    if (std::memcmp(bytes.data() + pos, kRecordMagic, 4) != 0) continue;
    size_t cursor = pos + 4;
    uint32_t payload_length = 0;
    uint64_t checksum = 0;
    GetU32(bytes, &cursor, &payload_length);
    GetU64(bytes, &cursor, &checksum);
    if (payload_length < kPayloadFixedSize ||
        bytes.size() - cursor < payload_length) {
      continue;
    }
    std::span<const uint8_t> payload = bytes.subspan(cursor, payload_length);
    WalRecord record;
    if (Checksum(payload) == checksum && ParsePayload(payload, &record)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string SerializeWalFrame(const WalRecord& record) {
  std::string payload = SerializePayload(record);
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  frame.append(kRecordMagic, 4);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, Checksum(AsBytes(payload)));
  frame += payload;
  return frame;
}

Status AppendWalRecord(const std::string& path, const WalRecord& record) {
  return DurableAppend(path, SerializeWalFrame(record));
}

Status ReadWal(const std::string& path, std::vector<WalRecord>* out,
               bool* truncated_tail) {
  out->clear();
  if (truncated_tail != nullptr) *truncated_tail = false;
  std::string contents;
  Status status = ReadFile(path, &contents);
  if (status.IsNotFound()) return Status::OK();
  FAIRCLIQUE_RETURN_NOT_OK(status);

  const std::span<const uint8_t> bytes = AsBytes(contents);
  size_t pos = 0;
  while (pos < bytes.size()) {
    // A framing failure is a torn tail exactly when nothing decodable
    // follows it: a crash can only cut the END of an append-only file, so
    // an intact record after the failure means fsync-acknowledged history
    // was corrupted in place — fail loudly instead of truncating it away.
    bool failed = false;
    size_t cursor = pos + 4;
    uint32_t payload_length = 0;
    uint64_t checksum = 0;
    if (bytes.size() - pos < kFrameHeaderSize ||
        std::memcmp(bytes.data() + pos, kRecordMagic, 4) != 0) {
      failed = true;
    } else {
      GetU32(bytes, &cursor, &payload_length);
      GetU64(bytes, &cursor, &checksum);
      failed = payload_length < kPayloadFixedSize ||
               bytes.size() - cursor < payload_length;
    }
    WalRecord record;
    if (!failed) {
      std::span<const uint8_t> payload = bytes.subspan(cursor, payload_length);
      failed = Checksum(payload) != checksum || !ParsePayload(payload, &record);
    }
    if (failed) {
      if (HasIntactFrameAfter(bytes, pos)) {
        return Status::Corruption(
            "WAL record at offset " + std::to_string(pos) + " of " + path +
            " fails its frame check but intact records follow it: mid-file "
            "corruption of committed history, not a torn tail");
      }
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    out->push_back(std::move(record));
    pos = cursor + payload_length;
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace fairclique
