#ifndef FAIRCLIQUE_STORAGE_MAPPED_FILE_H_
#define FAIRCLIQUE_STORAGE_MAPPED_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"

namespace fairclique {
namespace storage {

/// A read-only memory-mapped file. Handed around as
/// shared_ptr<const MappedFile> so graph views created over the mapping
/// (AttributedGraph::FromCsr keeper) keep the pages alive for as long as any
/// copy of the graph exists; the mapping is released when the last reference
/// drops. Empty files map to a valid zero-length view.
class MappedFile {
 public:
  /// Maps `path` read-only. IOError when it cannot be opened/stat'd/mapped.
  static Status Open(const std::string& path,
                     std::shared_ptr<const MappedFile>* out);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const { return {data(), size_}; }

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;  // nullptr for zero-length files
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_MAPPED_FILE_H_
